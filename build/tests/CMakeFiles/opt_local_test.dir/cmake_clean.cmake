file(REMOVE_RECURSE
  "CMakeFiles/opt_local_test.dir/opt_local_test.cc.o"
  "CMakeFiles/opt_local_test.dir/opt_local_test.cc.o.d"
  "opt_local_test"
  "opt_local_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
