file(REMOVE_RECURSE
  "CMakeFiles/duality_test.dir/duality_test.cc.o"
  "CMakeFiles/duality_test.dir/duality_test.cc.o.d"
  "duality_test"
  "duality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
