file(REMOVE_RECURSE
  "CMakeFiles/reassociate_test.dir/reassociate_test.cc.o"
  "CMakeFiles/reassociate_test.dir/reassociate_test.cc.o.d"
  "reassociate_test"
  "reassociate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassociate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
