file(REMOVE_RECURSE
  "CMakeFiles/liveness_test.dir/liveness_test.cc.o"
  "CMakeFiles/liveness_test.dir/liveness_test.cc.o.d"
  "liveness_test"
  "liveness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
