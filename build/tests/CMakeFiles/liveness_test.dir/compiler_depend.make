# Empty compiler generated dependencies file for liveness_test.
# This may be replaced when dependencies are built.
