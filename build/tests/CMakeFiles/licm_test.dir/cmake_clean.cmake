file(REMOVE_RECURSE
  "CMakeFiles/licm_test.dir/licm_test.cc.o"
  "CMakeFiles/licm_test.dir/licm_test.cc.o.d"
  "licm_test"
  "licm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
