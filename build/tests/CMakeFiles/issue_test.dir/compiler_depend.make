# Empty compiler generated dependencies file for issue_test.
# This may be replaced when dependencies are built.
