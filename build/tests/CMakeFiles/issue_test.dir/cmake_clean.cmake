file(REMOVE_RECURSE
  "CMakeFiles/issue_test.dir/issue_test.cc.o"
  "CMakeFiles/issue_test.dir/issue_test.cc.o.d"
  "issue_test"
  "issue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/issue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
