file(REMOVE_RECURSE
  "CMakeFiles/figure_4_3_utilization.dir/figure_4_3_utilization.cc.o"
  "CMakeFiles/figure_4_3_utilization.dir/figure_4_3_utilization.cc.o.d"
  "figure_4_3_utilization"
  "figure_4_3_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_3_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
