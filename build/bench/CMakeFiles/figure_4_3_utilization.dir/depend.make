# Empty dependencies file for figure_4_3_utilization.
# This may be replaced when dependencies are built.
