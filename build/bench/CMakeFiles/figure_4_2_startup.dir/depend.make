# Empty dependencies file for figure_4_2_startup.
# This may be replaced when dependencies are built.
