file(REMOVE_RECURSE
  "CMakeFiles/figure_4_2_startup.dir/figure_4_2_startup.cc.o"
  "CMakeFiles/figure_4_2_startup.dir/figure_4_2_startup.cc.o.d"
  "figure_4_2_startup"
  "figure_4_2_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_2_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
