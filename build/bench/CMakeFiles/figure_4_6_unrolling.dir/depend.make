# Empty dependencies file for figure_4_6_unrolling.
# This may be replaced when dependencies are built.
