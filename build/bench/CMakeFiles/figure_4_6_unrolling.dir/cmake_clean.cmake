file(REMOVE_RECURSE
  "CMakeFiles/figure_4_6_unrolling.dir/figure_4_6_unrolling.cc.o"
  "CMakeFiles/figure_4_6_unrolling.dir/figure_4_6_unrolling.cc.o.d"
  "figure_4_6_unrolling"
  "figure_4_6_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_6_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
