file(REMOVE_RECURSE
  "CMakeFiles/figure_2_taxonomy.dir/figure_2_taxonomy.cc.o"
  "CMakeFiles/figure_2_taxonomy.dir/figure_2_taxonomy.cc.o.d"
  "figure_2_taxonomy"
  "figure_2_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_2_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
