# Empty compiler generated dependencies file for figure_2_taxonomy.
# This may be replaced when dependencies are built.
