# Empty dependencies file for figure_4_7_optimization_graph.
# This may be replaced when dependencies are built.
