file(REMOVE_RECURSE
  "CMakeFiles/figure_4_7_optimization_graph.dir/figure_4_7_optimization_graph.cc.o"
  "CMakeFiles/figure_4_7_optimization_graph.dir/figure_4_7_optimization_graph.cc.o.d"
  "figure_4_7_optimization_graph"
  "figure_4_7_optimization_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_7_optimization_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
