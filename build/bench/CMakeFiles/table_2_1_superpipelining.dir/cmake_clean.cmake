file(REMOVE_RECURSE
  "CMakeFiles/table_2_1_superpipelining.dir/table_2_1_superpipelining.cc.o"
  "CMakeFiles/table_2_1_superpipelining.dir/table_2_1_superpipelining.cc.o.d"
  "table_2_1_superpipelining"
  "table_2_1_superpipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_2_1_superpipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
