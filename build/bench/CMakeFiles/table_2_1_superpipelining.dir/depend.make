# Empty dependencies file for table_2_1_superpipelining.
# This may be replaced when dependencies are built.
