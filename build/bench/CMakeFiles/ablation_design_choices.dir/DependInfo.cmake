
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_design_choices.cc" "bench/CMakeFiles/ablation_design_choices.dir/ablation_design_choices.cc.o" "gcc" "bench/CMakeFiles/ablation_design_choices.dir/ablation_design_choices.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ss_study.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ss_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ss_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
