# Empty compiler generated dependencies file for figure_4_4_cray1.
# This may be replaced when dependencies are built.
