# Empty dependencies file for figure_4_8_optimization_levels.
# This may be replaced when dependencies are built.
