file(REMOVE_RECURSE
  "CMakeFiles/figure_4_8_optimization_levels.dir/figure_4_8_optimization_levels.cc.o"
  "CMakeFiles/figure_4_8_optimization_levels.dir/figure_4_8_optimization_levels.cc.o.d"
  "figure_4_8_optimization_levels"
  "figure_4_8_optimization_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_8_optimization_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
