# Empty compiler generated dependencies file for table_5_1_cache_miss_cost.
# This may be replaced when dependencies are built.
