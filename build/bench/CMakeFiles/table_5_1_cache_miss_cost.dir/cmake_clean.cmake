file(REMOVE_RECURSE
  "CMakeFiles/table_5_1_cache_miss_cost.dir/table_5_1_cache_miss_cost.cc.o"
  "CMakeFiles/table_5_1_cache_miss_cost.dir/table_5_1_cache_miss_cost.cc.o.d"
  "table_5_1_cache_miss_cost"
  "table_5_1_cache_miss_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_5_1_cache_miss_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
