file(REMOVE_RECURSE
  "CMakeFiles/figure_4_1_supersymmetry.dir/figure_4_1_supersymmetry.cc.o"
  "CMakeFiles/figure_4_1_supersymmetry.dir/figure_4_1_supersymmetry.cc.o.d"
  "figure_4_1_supersymmetry"
  "figure_4_1_supersymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_1_supersymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
