# Empty compiler generated dependencies file for figure_4_1_supersymmetry.
# This may be replaced when dependencies are built.
