file(REMOVE_RECURSE
  "CMakeFiles/figure_4_5_per_benchmark.dir/figure_4_5_per_benchmark.cc.o"
  "CMakeFiles/figure_4_5_per_benchmark.dir/figure_4_5_per_benchmark.cc.o.d"
  "figure_4_5_per_benchmark"
  "figure_4_5_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_5_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
