# Empty dependencies file for figure_4_5_per_benchmark.
# This may be replaced when dependencies are built.
