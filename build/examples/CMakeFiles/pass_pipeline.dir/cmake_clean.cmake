file(REMOVE_RECURSE
  "CMakeFiles/pass_pipeline.dir/pass_pipeline.cpp.o"
  "CMakeFiles/pass_pipeline.dir/pass_pipeline.cpp.o.d"
  "pass_pipeline"
  "pass_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
