# Empty dependencies file for pass_pipeline.
# This may be replaced when dependencies are built.
