# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_explorer "/root/repo/build/examples/machine_explorer")
set_tests_properties(example_machine_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pass_pipeline "/root/repo/build/examples/pass_pipeline")
set_tests_properties(example_pass_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
