# Empty dependencies file for ss_frontend.
# This may be replaced when dependencies are built.
