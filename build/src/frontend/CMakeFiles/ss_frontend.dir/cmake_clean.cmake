file(REMOVE_RECURSE
  "CMakeFiles/ss_frontend.dir/ast.cc.o"
  "CMakeFiles/ss_frontend.dir/ast.cc.o.d"
  "CMakeFiles/ss_frontend.dir/codegen.cc.o"
  "CMakeFiles/ss_frontend.dir/codegen.cc.o.d"
  "CMakeFiles/ss_frontend.dir/compile.cc.o"
  "CMakeFiles/ss_frontend.dir/compile.cc.o.d"
  "CMakeFiles/ss_frontend.dir/lexer.cc.o"
  "CMakeFiles/ss_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/ss_frontend.dir/parser.cc.o"
  "CMakeFiles/ss_frontend.dir/parser.cc.o.d"
  "CMakeFiles/ss_frontend.dir/unroll.cc.o"
  "CMakeFiles/ss_frontend.dir/unroll.cc.o.d"
  "libss_frontend.a"
  "libss_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
