file(REMOVE_RECURSE
  "libss_frontend.a"
)
