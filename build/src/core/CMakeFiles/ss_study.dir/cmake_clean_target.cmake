file(REMOVE_RECURSE
  "libss_study.a"
)
