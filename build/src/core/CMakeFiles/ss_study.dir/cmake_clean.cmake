file(REMOVE_RECURSE
  "CMakeFiles/ss_study.dir/study/driver.cc.o"
  "CMakeFiles/ss_study.dir/study/driver.cc.o.d"
  "CMakeFiles/ss_study.dir/study/experiment.cc.o"
  "CMakeFiles/ss_study.dir/study/experiment.cc.o.d"
  "libss_study.a"
  "libss_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
