# Empty compiler generated dependencies file for ss_study.
# This may be replaced when dependencies are built.
