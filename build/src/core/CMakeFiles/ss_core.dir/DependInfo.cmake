
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/machine/machine.cc" "src/core/CMakeFiles/ss_core.dir/machine/machine.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/machine/machine.cc.o.d"
  "/root/repo/src/core/machine/models.cc" "src/core/CMakeFiles/ss_core.dir/machine/models.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/machine/models.cc.o.d"
  "/root/repo/src/core/metrics/metrics.cc" "src/core/CMakeFiles/ss_core.dir/metrics/metrics.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/metrics/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
