# Empty compiler generated dependencies file for ss_opt.
# This may be replaced when dependencies are built.
