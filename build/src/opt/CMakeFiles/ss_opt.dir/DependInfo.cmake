
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constfold.cc" "src/opt/CMakeFiles/ss_opt.dir/constfold.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/constfold.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/opt/CMakeFiles/ss_opt.dir/dce.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/dce.cc.o.d"
  "/root/repo/src/opt/licm.cc" "src/opt/CMakeFiles/ss_opt.dir/licm.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/licm.cc.o.d"
  "/root/repo/src/opt/localcse.cc" "src/opt/CMakeFiles/ss_opt.dir/localcse.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/localcse.cc.o.d"
  "/root/repo/src/opt/pipeline.cc" "src/opt/CMakeFiles/ss_opt.dir/pipeline.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/pipeline.cc.o.d"
  "/root/repo/src/opt/reassociate.cc" "src/opt/CMakeFiles/ss_opt.dir/reassociate.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/reassociate.cc.o.d"
  "/root/repo/src/opt/regalloc.cc" "src/opt/CMakeFiles/ss_opt.dir/regalloc.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/regalloc.cc.o.d"
  "/root/repo/src/opt/schedule.cc" "src/opt/CMakeFiles/ss_opt.dir/schedule.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/schedule.cc.o.d"
  "/root/repo/src/opt/strength.cc" "src/opt/CMakeFiles/ss_opt.dir/strength.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/strength.cc.o.d"
  "/root/repo/src/opt/tempalloc.cc" "src/opt/CMakeFiles/ss_opt.dir/tempalloc.cc.o" "gcc" "src/opt/CMakeFiles/ss_opt.dir/tempalloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
