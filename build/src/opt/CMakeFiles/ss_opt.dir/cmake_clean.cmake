file(REMOVE_RECURSE
  "CMakeFiles/ss_opt.dir/constfold.cc.o"
  "CMakeFiles/ss_opt.dir/constfold.cc.o.d"
  "CMakeFiles/ss_opt.dir/dce.cc.o"
  "CMakeFiles/ss_opt.dir/dce.cc.o.d"
  "CMakeFiles/ss_opt.dir/licm.cc.o"
  "CMakeFiles/ss_opt.dir/licm.cc.o.d"
  "CMakeFiles/ss_opt.dir/localcse.cc.o"
  "CMakeFiles/ss_opt.dir/localcse.cc.o.d"
  "CMakeFiles/ss_opt.dir/pipeline.cc.o"
  "CMakeFiles/ss_opt.dir/pipeline.cc.o.d"
  "CMakeFiles/ss_opt.dir/reassociate.cc.o"
  "CMakeFiles/ss_opt.dir/reassociate.cc.o.d"
  "CMakeFiles/ss_opt.dir/regalloc.cc.o"
  "CMakeFiles/ss_opt.dir/regalloc.cc.o.d"
  "CMakeFiles/ss_opt.dir/schedule.cc.o"
  "CMakeFiles/ss_opt.dir/schedule.cc.o.d"
  "CMakeFiles/ss_opt.dir/strength.cc.o"
  "CMakeFiles/ss_opt.dir/strength.cc.o.d"
  "CMakeFiles/ss_opt.dir/tempalloc.cc.o"
  "CMakeFiles/ss_opt.dir/tempalloc.cc.o.d"
  "libss_opt.a"
  "libss_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
