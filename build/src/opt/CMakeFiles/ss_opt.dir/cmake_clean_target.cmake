file(REMOVE_RECURSE
  "libss_opt.a"
)
