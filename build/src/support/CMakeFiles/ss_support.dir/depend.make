# Empty dependencies file for ss_support.
# This may be replaced when dependencies are built.
