file(REMOVE_RECURSE
  "libss_support.a"
)
