file(REMOVE_RECURSE
  "CMakeFiles/ss_support.dir/logging.cc.o"
  "CMakeFiles/ss_support.dir/logging.cc.o.d"
  "CMakeFiles/ss_support.dir/statistics.cc.o"
  "CMakeFiles/ss_support.dir/statistics.cc.o.d"
  "CMakeFiles/ss_support.dir/table.cc.o"
  "CMakeFiles/ss_support.dir/table.cc.o.d"
  "libss_support.a"
  "libss_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
