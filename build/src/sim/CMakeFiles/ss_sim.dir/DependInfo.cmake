
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ss_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ss_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/interp.cc" "src/sim/CMakeFiles/ss_sim.dir/interp.cc.o" "gcc" "src/sim/CMakeFiles/ss_sim.dir/interp.cc.o.d"
  "/root/repo/src/sim/issue.cc" "src/sim/CMakeFiles/ss_sim.dir/issue.cc.o" "gcc" "src/sim/CMakeFiles/ss_sim.dir/issue.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/ss_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/ss_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ss_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ss_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
