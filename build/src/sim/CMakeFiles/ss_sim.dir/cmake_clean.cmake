file(REMOVE_RECURSE
  "CMakeFiles/ss_sim.dir/cache.cc.o"
  "CMakeFiles/ss_sim.dir/cache.cc.o.d"
  "CMakeFiles/ss_sim.dir/interp.cc.o"
  "CMakeFiles/ss_sim.dir/interp.cc.o.d"
  "CMakeFiles/ss_sim.dir/issue.cc.o"
  "CMakeFiles/ss_sim.dir/issue.cc.o.d"
  "CMakeFiles/ss_sim.dir/memory.cc.o"
  "CMakeFiles/ss_sim.dir/memory.cc.o.d"
  "CMakeFiles/ss_sim.dir/trace.cc.o"
  "CMakeFiles/ss_sim.dir/trace.cc.o.d"
  "libss_sim.a"
  "libss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
