file(REMOVE_RECURSE
  "CMakeFiles/ss_isa.dir/isa.cc.o"
  "CMakeFiles/ss_isa.dir/isa.cc.o.d"
  "libss_isa.a"
  "libss_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
