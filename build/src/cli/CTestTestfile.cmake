# CMake generated Testfile for 
# Source directory: /root/repo/src/cli
# Build directory: /root/repo/build/src/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ssim_machines "/root/repo/build/src/cli/ssim" "machines")
set_tests_properties(ssim_machines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;5;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(ssim_run_fib "/root/repo/build/src/cli/ssim" "run" "/root/repo/examples/mt/fib.mt" "--machine" "ss2x2")
set_tests_properties(ssim_run_fib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;6;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(ssim_ilp_dotprod "/root/repo/build/src/cli/ssim" "ilp" "/root/repo/examples/mt/dotprod.mt" "--unroll" "4" "--careful" "--temps" "40")
set_tests_properties(ssim_ilp_dotprod PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;8;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
