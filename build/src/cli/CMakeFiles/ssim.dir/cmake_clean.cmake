file(REMOVE_RECURSE
  "CMakeFiles/ssim.dir/ssim.cc.o"
  "CMakeFiles/ssim.dir/ssim.cc.o.d"
  "ssim"
  "ssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
