file(REMOVE_RECURSE
  "CMakeFiles/ss_ir.dir/alias.cc.o"
  "CMakeFiles/ss_ir.dir/alias.cc.o.d"
  "CMakeFiles/ss_ir.dir/builder.cc.o"
  "CMakeFiles/ss_ir.dir/builder.cc.o.d"
  "CMakeFiles/ss_ir.dir/dominators.cc.o"
  "CMakeFiles/ss_ir.dir/dominators.cc.o.d"
  "CMakeFiles/ss_ir.dir/function.cc.o"
  "CMakeFiles/ss_ir.dir/function.cc.o.d"
  "CMakeFiles/ss_ir.dir/instr.cc.o"
  "CMakeFiles/ss_ir.dir/instr.cc.o.d"
  "CMakeFiles/ss_ir.dir/liveness.cc.o"
  "CMakeFiles/ss_ir.dir/liveness.cc.o.d"
  "CMakeFiles/ss_ir.dir/module.cc.o"
  "CMakeFiles/ss_ir.dir/module.cc.o.d"
  "CMakeFiles/ss_ir.dir/printer.cc.o"
  "CMakeFiles/ss_ir.dir/printer.cc.o.d"
  "CMakeFiles/ss_ir.dir/verifier.cc.o"
  "CMakeFiles/ss_ir.dir/verifier.cc.o.d"
  "libss_ir.a"
  "libss_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
