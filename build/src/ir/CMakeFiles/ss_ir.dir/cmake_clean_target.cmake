file(REMOVE_RECURSE
  "libss_ir.a"
)
