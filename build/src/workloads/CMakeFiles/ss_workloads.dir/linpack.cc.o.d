src/workloads/CMakeFiles/ss_workloads.dir/linpack.cc.o: \
 /root/repo/src/workloads/linpack.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
