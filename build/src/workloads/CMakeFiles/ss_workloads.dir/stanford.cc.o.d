src/workloads/CMakeFiles/ss_workloads.dir/stanford.cc.o: \
 /root/repo/src/workloads/stanford.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
