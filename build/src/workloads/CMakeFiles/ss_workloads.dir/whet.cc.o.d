src/workloads/CMakeFiles/ss_workloads.dir/whet.cc.o: \
 /root/repo/src/workloads/whet.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
