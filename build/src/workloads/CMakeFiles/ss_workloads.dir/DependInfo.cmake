
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ccom.cc" "src/workloads/CMakeFiles/ss_workloads.dir/ccom.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/ccom.cc.o.d"
  "/root/repo/src/workloads/grr.cc" "src/workloads/CMakeFiles/ss_workloads.dir/grr.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/grr.cc.o.d"
  "/root/repo/src/workloads/linpack.cc" "src/workloads/CMakeFiles/ss_workloads.dir/linpack.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/linpack.cc.o.d"
  "/root/repo/src/workloads/livermore.cc" "src/workloads/CMakeFiles/ss_workloads.dir/livermore.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/livermore.cc.o.d"
  "/root/repo/src/workloads/met.cc" "src/workloads/CMakeFiles/ss_workloads.dir/met.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/met.cc.o.d"
  "/root/repo/src/workloads/stanford.cc" "src/workloads/CMakeFiles/ss_workloads.dir/stanford.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/stanford.cc.o.d"
  "/root/repo/src/workloads/whet.cc" "src/workloads/CMakeFiles/ss_workloads.dir/whet.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/whet.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/ss_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/workloads.cc.o.d"
  "/root/repo/src/workloads/yacc.cc" "src/workloads/CMakeFiles/ss_workloads.dir/yacc.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/yacc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ss_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
