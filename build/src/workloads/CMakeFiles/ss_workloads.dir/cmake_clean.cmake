file(REMOVE_RECURSE
  "CMakeFiles/ss_workloads.dir/ccom.cc.o"
  "CMakeFiles/ss_workloads.dir/ccom.cc.o.d"
  "CMakeFiles/ss_workloads.dir/grr.cc.o"
  "CMakeFiles/ss_workloads.dir/grr.cc.o.d"
  "CMakeFiles/ss_workloads.dir/linpack.cc.o"
  "CMakeFiles/ss_workloads.dir/linpack.cc.o.d"
  "CMakeFiles/ss_workloads.dir/livermore.cc.o"
  "CMakeFiles/ss_workloads.dir/livermore.cc.o.d"
  "CMakeFiles/ss_workloads.dir/met.cc.o"
  "CMakeFiles/ss_workloads.dir/met.cc.o.d"
  "CMakeFiles/ss_workloads.dir/stanford.cc.o"
  "CMakeFiles/ss_workloads.dir/stanford.cc.o.d"
  "CMakeFiles/ss_workloads.dir/whet.cc.o"
  "CMakeFiles/ss_workloads.dir/whet.cc.o.d"
  "CMakeFiles/ss_workloads.dir/workloads.cc.o"
  "CMakeFiles/ss_workloads.dir/workloads.cc.o.d"
  "CMakeFiles/ss_workloads.dir/yacc.cc.o"
  "CMakeFiles/ss_workloads.dir/yacc.cc.o.d"
  "libss_workloads.a"
  "libss_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
