src/workloads/CMakeFiles/ss_workloads.dir/yacc.cc.o: \
 /root/repo/src/workloads/yacc.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
