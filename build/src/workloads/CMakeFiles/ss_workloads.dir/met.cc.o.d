src/workloads/CMakeFiles/ss_workloads.dir/met.cc.o: \
 /root/repo/src/workloads/met.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
