src/workloads/CMakeFiles/ss_workloads.dir/grr.cc.o: \
 /root/repo/src/workloads/grr.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
