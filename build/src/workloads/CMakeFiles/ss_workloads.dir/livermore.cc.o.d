src/workloads/CMakeFiles/ss_workloads.dir/livermore.cc.o: \
 /root/repo/src/workloads/livermore.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
