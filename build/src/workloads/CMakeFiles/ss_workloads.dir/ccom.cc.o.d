src/workloads/CMakeFiles/ss_workloads.dir/ccom.cc.o: \
 /root/repo/src/workloads/ccom.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/../workloads/sources.hh
