#!/usr/bin/env sh
# Nightly chaos gate (docs/robustness.md): drive `ssim` through a
# matrix of seeded fault plans and kill points, requiring that
#
#  - every faulty run with retries enabled is byte-identical to the
#    clean run (fault injection changes *how* results are computed,
#    never *what* they are),
#  - unretryable plans fail with the documented exit code and a
#    structured E-code, never a crash or a hang,
#  - a run killed mid-sweep at any cell index resumes from its
#    journal byte-for-byte, at several job counts,
#  - bench binaries checkpoint through SSIM_SWEEP_JOURNAL.
#
# Assumes an existing build (scripts/check.sh or the CI tier-1 job).
#
#   scripts/chaos.sh [build-dir]     default build dir: build
set -eu

BUILD_DIR="${1:-build}"
SSIM="$BUILD_DIR/src/cli/ssim"
MT=examples/mt/dotprod.mt
OUT="$BUILD_DIR/chaos"
mkdir -p "$OUT"

fail() {
    echo "chaos: FAIL: $1" >&2
    exit 1
}

[ -x "$SSIM" ] || fail "no ssim binary at $SSIM (build first)"

echo "== chaos: clean references =="
"$SSIM" ilp "$MT" --jobs 8 > "$OUT/ilp_clean.txt"
"$SSIM" suite --machine ss4 --jobs 8 > "$OUT/suite_clean.txt"

echo "== chaos: fault matrix (differential) =="
# Each plan trips a different layer; --cell-retries absorbs every
# transient, so stdout must match the clean run exactly.  Seeds vary
# per plan so the matrix covers different fire patterns every layer.
MATRIX="
cell:trap:0.5:101
cell:alloc:0.5:102
compile:trap:0.3:103
compile:alloc:0.3:104
execute:trap:0.3:105
interp:trap:0.001:106
tracecache.insert:alloc:0.5:107
tracecache.evict:evict:0.5:108
depgraph:trap:0.5:109
*:trap:0.002:110
cell:trap:0.25:111,compile:alloc:0.2:112,execute:trap:0.2:113
"
n=0
for plan in $MATRIX; do
    n=$((n + 1))
    for jobs in 1 8; do
        SSIM_FAULT="$plan" "$SSIM" ilp "$MT" --jobs "$jobs" \
            --cell-retries 25 > "$OUT/ilp_faulty.txt" \
            || fail "plan '$plan' jobs $jobs: nonzero exit"
        cmp -s "$OUT/ilp_clean.txt" "$OUT/ilp_faulty.txt" \
            || fail "plan '$plan' jobs $jobs: output diverged"
        SSIM_FAULT="$plan" "$SSIM" suite --machine ss4 \
            --jobs "$jobs" --cell-retries 25 \
            > "$OUT/suite_faulty.txt" \
            || fail "plan '$plan' suite jobs $jobs: nonzero exit"
        cmp -s "$OUT/suite_clean.txt" "$OUT/suite_faulty.txt" \
            || fail "plan '$plan' suite jobs $jobs: output diverged"
    done
    echo "  plan $n ok: $plan"
done

echo "== chaos: fault matrix x execution backend =="
# The matrix above runs on the session-default backend.  Re-run a
# representative slice with SSIM_EXEC pinned each way: containment
# and retry must behave identically whether the faulty cell executed
# on the interpreter or the bytecode VM, and both must land on the
# clean bytes.  (The `interp` fault site is the shared
# per-instruction site — both backends visit it.)
for backend in interp bytecode; do
    for plan in 'interp:trap:0.001:206' 'execute:trap:0.3:205' \
        'cell:trap:0.25:201,compile:alloc:0.2:202'; do
        SSIM_EXEC="$backend" SSIM_FAULT="$plan" "$SSIM" ilp "$MT" \
            --jobs 8 --cell-retries 25 \
            > "$OUT/ilp_exec_faulty.txt" \
            || fail "exec $backend plan '$plan': nonzero exit"
        cmp -s "$OUT/ilp_clean.txt" "$OUT/ilp_exec_faulty.txt" \
            || fail "exec $backend plan '$plan': output diverged"
    done
    echo "  backend $backend ok"
done

echo "== chaos: kill on bytecode, resume on interp =="
# A journal written by one backend must resume on the other — the
# sweep artifacts are backend-independent by contract.
J="$OUT/kill_xbackend.jsonl"
rm -f "$J"
rc=0
SSIM_EXEC=bytecode SSIM_FAULT='cell:exit:1:3' "$SSIM" ilp "$MT" \
    --jobs 1 --journal "$J" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 137 ] || fail "xbackend kill: expected exit 137, got $rc"
SSIM_EXEC=interp "$SSIM" ilp "$MT" --jobs 8 --resume "$J" \
    > "$OUT/resumed_xbackend.txt" || fail "xbackend resume failed"
cmp -s "$OUT/ilp_clean.txt" "$OUT/resumed_xbackend.txt" \
    || fail "xbackend resume diverged"

echo "== chaos: retry exhaustion fails structurally =="
# rate 1 faults exhaust any retry budget: the sweep must exit 1 with
# the transient-fault E-code on stderr — no crash, no zero exit.
rc=0
SSIM_FAULT='cell:trap:1:7' "$SSIM" ilp "$MT" --jobs 8 \
    --cell-retries 2 --keep-going \
    > "$OUT/exhausted.out" 2> "$OUT/exhausted.err" || rc=$?
[ "$rc" -eq 1 ] || fail "retry exhaustion: expected exit 1, got $rc"
grep -q 'E0409' "$OUT/exhausted.err" \
    || fail "retry exhaustion: missing E0409 diagnostic"

echo "== chaos: watchdog deadline =="
rc=0
"$SSIM" ilp "$MT" --jobs 8 --cell-timeout 0.0000001 --keep-going \
    > "$OUT/deadline.out" 2> "$OUT/deadline.err" || rc=$?
[ "$rc" -eq 1 ] || fail "deadline: expected exit 1, got $rc"
grep -q 'E0410' "$OUT/deadline.err" \
    || fail "deadline: missing E0410 diagnostic"

echo "== chaos: kill-and-resume sweep (every kill point) =="
# Kill at each cell index in turn; each journal must resume to the
# clean output byte-for-byte, including resuming at other job counts.
for kill_at in 0 1 2 3 4 5 6 7; do
    J="$OUT/kill_$kill_at.jsonl"
    rm -f "$J"
    rc=0
    SSIM_FAULT="cell:exit:1:$kill_at" "$SSIM" ilp "$MT" --jobs 1 \
        --journal "$J" > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 137 ] \
        || fail "kill@$kill_at: expected exit 137, got $rc"
    lines=$(wc -l < "$J")
    [ "$lines" -eq $((kill_at + 1)) ] \
        || fail "kill@$kill_at: expected $((kill_at + 1)) journal \
lines, got $lines"
    for jobs in 1 8; do
        "$SSIM" ilp "$MT" --jobs "$jobs" --resume "$J" \
            > "$OUT/resumed.txt" \
            || fail "kill@$kill_at jobs $jobs: resume failed"
        cmp -s "$OUT/ilp_clean.txt" "$OUT/resumed.txt" \
            || fail "kill@$kill_at jobs $jobs: resumed output \
diverged"
    done
done

echo "== chaos: kill-and-resume under concurrent faults =="
# Kill mid-sweep while transient faults also fire, then resume under
# a *different* fault plan: the journaled prefix plus retried
# completion must still be byte-identical to clean.
J="$OUT/kill_faulty.jsonl"
rm -f "$J"
rc=0
SSIM_FAULT='cell:exit:1:5,compile:alloc:0.3:20' "$SSIM" ilp "$MT" \
    --jobs 1 --cell-retries 25 --journal "$J" > /dev/null 2>&1 \
    || rc=$?
[ "$rc" -eq 137 ] || fail "faulty kill: expected exit 137, got $rc"
SSIM_FAULT='execute:trap:0.3:21' "$SSIM" ilp "$MT" --jobs 8 \
    --cell-retries 25 --resume "$J" > "$OUT/resumed_faulty.txt" \
    || fail "faulty resume failed"
cmp -s "$OUT/ilp_clean.txt" "$OUT/resumed_faulty.txt" \
    || fail "faulty resume diverged from clean"

echo "== chaos: suite journal resume =="
J="$OUT/suite.jsonl"
rm -f "$J"
"$SSIM" suite --machine ss4 --jobs 8 --journal "$J" > /dev/null
"$SSIM" suite --machine ss4 --jobs 8 --resume "$J" \
    > "$OUT/suite_resumed.txt"
cmp -s "$OUT/suite_clean.txt" "$OUT/suite_resumed.txt" \
    || fail "suite resume diverged"

echo "== chaos: bench sweep journal =="
J="$OUT/bench.jsonl"
rm -f "$J"
SSIM_JOBS=2 SSIM_SWEEP_JOURNAL="$J" \
    "$BUILD_DIR/bench/figure_4_5_per_benchmark" > /dev/null
[ -s "$J" ] || fail "bench journal not written"
grep -q '"kind":"header"' "$J" || fail "bench journal has no header"
grep -q '"kind":"cell"' "$J" || fail "bench journal has no cells"

echo "== chaos: OK =="
