#!/usr/bin/env sh
# Tier-1 gate: configure, build, run the test suite, then smoke the
# observability surface (a suite run with --stats-json whose output
# must parse).  Exits non-zero on the first failure.
#
#   scripts/check.sh [build-dir]     default build dir: build
set -eu

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== stats smoke =="
STATS_JSON="$BUILD_DIR/check_stats.json"
TRACE_JSON="$BUILD_DIR/check_trace.json"
"$BUILD_DIR/src/cli/ssim" suite --machine ss4 \
    --stats-json "$STATS_JSON" > /dev/null
"$BUILD_DIR/src/cli/ssim" check-json "$STATS_JSON"
"$BUILD_DIR/src/cli/ssim" run examples/mt/dotprod.mt --machine ss2x2 \
    --stats-json "$STATS_JSON" --trace-events "$TRACE_JSON" \
    > /dev/null
"$BUILD_DIR/src/cli/ssim" check-json "$STATS_JSON"
"$BUILD_DIR/src/cli/ssim" check-json "$TRACE_JSON"

echo "== profile smoke =="
# The cycle profiler must render a hot-loop listing, emit valid JSON,
# and be byte-identical live vs trace-replay and serial vs parallel.
PROF_JSON="$BUILD_DIR/check_profile.json"
PROF_JSON_PAR="$BUILD_DIR/check_profile_par.json"
PROF_JSON_LIVE="$BUILD_DIR/check_profile_live.json"
"$BUILD_DIR/src/cli/ssim" profile examples/mt/dotprod.mt \
    --machine sp4 --profile-json "$PROF_JSON" \
    > "$BUILD_DIR/check_profile.txt"
"$BUILD_DIR/src/cli/ssim" check-json "$PROF_JSON"
grep -q 'hottest loops' "$BUILD_DIR/check_profile.txt"
grep -q 'raw_latency' "$BUILD_DIR/check_profile.txt"
"$BUILD_DIR/src/cli/ssim" profile examples/mt/dotprod.mt \
    --machine sp4 --jobs 8 --profile-json "$PROF_JSON_PAR" \
    > /dev/null
cmp "$PROF_JSON" "$PROF_JSON_PAR"
"$BUILD_DIR/src/cli/ssim" profile examples/mt/dotprod.mt \
    --machine sp4 --trace-budget 0 --profile-json "$PROF_JSON_LIVE" \
    > /dev/null
cmp "$PROF_JSON" "$PROF_JSON_LIVE"
"$BUILD_DIR/src/cli/ssim" profile examples/mt/dotprod.mt \
    --diff base sp4 > "$BUILD_DIR/check_profile_diff.txt"
grep -q 'speedup B/A' "$BUILD_DIR/check_profile_diff.txt"

echo "== fault containment smoke =="
# A malformed program must produce structured diagnostics and exit 1
# (not 0, not a signal); a bad flag must exit 2.
BAD_MT="$BUILD_DIR/check_bad.mt"
printf 'func main( { return 0; }\n' > "$BAD_MT"
rc=0
"$BUILD_DIR/src/cli/ssim" run "$BAD_MT" 2> "$BUILD_DIR/check_bad.err" \
    || rc=$?
[ "$rc" -eq 1 ]
grep -q 'error\[E0' "$BUILD_DIR/check_bad.err"
rc=0
"$BUILD_DIR/src/cli/ssim" run "$BAD_MT" --machine nope 2>/dev/null \
    || rc=$?
[ "$rc" -eq 2 ]

echo "== fuzz corpus replay =="
"$BUILD_DIR/tools/fuzz/fuzz_mt_parser_replay" tools/fuzz/corpus/mt/*
"$BUILD_DIR/tools/fuzz/fuzz_json_replay" tools/fuzz/corpus/json/*
# Parseable corpus programs also execute under both backends with
# their checksums diffed (the differential oracle).
"$BUILD_DIR/tools/fuzz/fuzz_mt_exec_replay" tools/fuzz/corpus/mt/*

echo "== bytecode backend smoke =="
# The execution backend must be invisible in every output byte: the
# suite under the interpreter and under the bytecode VM (the default)
# must agree, and the --exec flag must select like SSIM_EXEC does.
EXEC_INTERP="$BUILD_DIR/check_exec_interp.txt"
EXEC_BC="$BUILD_DIR/check_exec_bytecode.txt"
SSIM_EXEC=interp "$BUILD_DIR/src/cli/ssim" suite --machine ss4 \
    > "$EXEC_INTERP"
SSIM_EXEC=bytecode "$BUILD_DIR/src/cli/ssim" suite --machine ss4 \
    > "$EXEC_BC"
cmp "$EXEC_INTERP" "$EXEC_BC"
"$BUILD_DIR/src/cli/ssim" run examples/mt/dotprod.mt --exec interp \
    > "$EXEC_INTERP"
"$BUILD_DIR/src/cli/ssim" run examples/mt/dotprod.mt --exec bytecode \
    > "$EXEC_BC"
cmp "$EXEC_INTERP" "$EXEC_BC"
rc=0
"$BUILD_DIR/src/cli/ssim" run examples/mt/dotprod.mt --exec jit \
    2> /dev/null || rc=$?
[ "$rc" -eq 2 ]

echo "== parallel sweep smoke =="
# A bench sweep must be byte-identical serial vs parallel, and the
# stats trajectory written under SSIM_JOBS>1 must stay valid JSON.
SWEEP_SERIAL="$BUILD_DIR/check_sweep_serial.txt"
SWEEP_PAR="$BUILD_DIR/check_sweep_parallel.txt"
TRAJ_JSON="$BUILD_DIR/check_trajectory.json"
rm -f "$TRAJ_JSON" "$TRAJ_JSON.bak" "$TRAJ_JSON.lock"
SSIM_JOBS=1 "$BUILD_DIR/bench/figure_4_5_per_benchmark" \
    > "$SWEEP_SERIAL"
SSIM_JOBS="$JOBS" SSIM_BENCH_STATS="$TRAJ_JSON" \
    "$BUILD_DIR/bench/figure_4_5_per_benchmark" > "$SWEEP_PAR"
cmp "$SWEEP_SERIAL" "$SWEEP_PAR"
"$BUILD_DIR/src/cli/ssim" check-json "$TRAJ_JSON"
SSIM_JOBS=2 "$BUILD_DIR/src/cli/ssim" suite --machine ss4 \
    --stats-json "$STATS_JSON" > /dev/null
"$BUILD_DIR/src/cli/ssim" check-json "$STATS_JSON"

echo "== trace cache smoke =="
# Execute-once/time-many must be invisible in the output: a suite run
# and an ilp sweep with the trace cache on must be byte-identical to
# the live-interpretation path (SSIM_TRACE_BUDGET=0 disables caching).
TRACE_LIVE="$BUILD_DIR/check_trace_live.txt"
TRACE_REPLAY="$BUILD_DIR/check_trace_replay.txt"
SSIM_TRACE_BUDGET=0 "$BUILD_DIR/src/cli/ssim" suite --machine ss4 \
    > "$TRACE_LIVE"
"$BUILD_DIR/src/cli/ssim" suite --machine ss4 > "$TRACE_REPLAY"
cmp "$TRACE_LIVE" "$TRACE_REPLAY"
SSIM_TRACE_BUDGET=0 "$BUILD_DIR/src/cli/ssim" ilp \
    examples/mt/dotprod.mt > "$TRACE_LIVE"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt \
    > "$TRACE_REPLAY"
cmp "$TRACE_LIVE" "$TRACE_REPLAY"

echo "== what-if smoke =="
# The analytic engine must answer whatif queries (valid JSON, a
# certified verdict on an ideal machine), the slack listing must
# render, and a pruned ilp sweep must be byte-identical to the
# unpruned one over the figure 4-1 grid while running at least 3x
# fewer exact replays (asserted from the JSON meta).
WHATIF_JSON="$BUILD_DIR/check_whatif.json"
ILP_PLAIN="$BUILD_DIR/check_ilp_plain.txt"
ILP_PRUNED="$BUILD_DIR/check_ilp_pruned.txt"
ILP_PRUNED_JSON="$BUILD_DIR/check_ilp_pruned.json"
"$BUILD_DIR/src/cli/ssim" whatif examples/mt/dotprod.mt \
    --machine ss4 --stats-json "$WHATIF_JSON" \
    > "$BUILD_DIR/check_whatif.txt"
"$BUILD_DIR/src/cli/ssim" check-json "$WHATIF_JSON"
grep -q 'certified exact' "$BUILD_DIR/check_whatif.txt"
grep -q 'oracle ilp bound' "$BUILD_DIR/check_whatif.txt"
"$BUILD_DIR/src/cli/ssim" profile examples/mt/dotprod.mt \
    --machine cray1 --slack > "$BUILD_DIR/check_slack.txt"
grep -q 'would speed up if' "$BUILD_DIR/check_slack.txt"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt \
    > "$ILP_PLAIN"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt \
    --prune-analytic --stats-json "$ILP_PRUNED_JSON" \
    > "$ILP_PRUNED"
cmp "$ILP_PLAIN" "$ILP_PRUNED"
"$BUILD_DIR/src/cli/ssim" check-json "$ILP_PRUNED_JSON"
grep -q '"prune"' "$ILP_PRUNED_JSON"
awk '
    /"exact_replays":/ { gsub(/[^0-9]/, ""); replays = $0 + 0 }
    /"exact_replays_unpruned":/ {
        gsub(/[^0-9]/, ""); unpruned = $0 + 0
    }
    END {
        if (replays == 0 || unpruned < 3 * replays) {
            printf "pruned sweep ran %d exact replays vs %d " \
                   "unpruned: less than the required 3x cut\n",
                   replays, unpruned
            exit 1
        }
        printf "pruned sweep: %d exact replays vs %d unpruned\n",
               replays, unpruned
    }' "$ILP_PRUNED_JSON"

echo "== flight recorder smoke =="
# A traced sweep must be byte-identical to an untraced one on stdout,
# and the sweep trace / metrics exports must be valid JSON with the
# expected shape (one named track per worker, prom counters present).
SWEEP_PLAIN="$BUILD_DIR/check_sweep_plain.txt"
SWEEP_TRACED="$BUILD_DIR/check_sweep_traced.txt"
SWEEP_TRACE_JSON="$BUILD_DIR/check_sweep_trace.json"
METRICS_JSON="$BUILD_DIR/check_metrics.json"
METRICS_PROM="$BUILD_DIR/check_metrics.prom"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt --jobs 8 \
    > "$SWEEP_PLAIN"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt --jobs 8 \
    --trace-events "$SWEEP_TRACE_JSON" \
    --metrics-json "$METRICS_JSON" --metrics-prom "$METRICS_PROM" \
    > "$SWEEP_TRACED"
cmp "$SWEEP_PLAIN" "$SWEEP_TRACED"
"$BUILD_DIR/src/cli/ssim" check-json "$SWEEP_TRACE_JSON"
"$BUILD_DIR/src/cli/ssim" check-json "$METRICS_JSON"
grep -q '"thread_name"' "$SWEEP_TRACE_JSON"
grep -q '"worker 0"' "$SWEEP_TRACE_JSON"
grep -q 'ssim_sweep_cells_total' "$METRICS_PROM"
grep -q 'quantile="0.99"' "$METRICS_PROM"

echo "== survivability smoke =="
# Fault injection must never change results: a sweep under a seeded
# fault plan with retries enabled is byte-identical to a clean run,
# and a run killed mid-sweep resumes from its journal byte-for-byte
# (the full matrix runs nightly via scripts/chaos.sh).
CHAOS_CLEAN="$BUILD_DIR/check_chaos_clean.txt"
CHAOS_FAULTY="$BUILD_DIR/check_chaos_faulty.txt"
CHAOS_JOURNAL="$BUILD_DIR/check_chaos.jsonl"
CHAOS_RESUMED="$BUILD_DIR/check_chaos_resumed.txt"
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt --jobs 8 \
    > "$CHAOS_CLEAN"
SSIM_FAULT='cell:trap:0.3:7,compile:alloc:0.2:8' \
    "$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt --jobs 8 \
    --cell-retries 10 > "$CHAOS_FAULTY"
cmp "$CHAOS_CLEAN" "$CHAOS_FAULTY"
rm -f "$CHAOS_JOURNAL"
rc=0
SSIM_FAULT='cell:exit:1:3' "$BUILD_DIR/src/cli/ssim" ilp \
    examples/mt/dotprod.mt --jobs 1 --journal "$CHAOS_JOURNAL" \
    > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 137 ]
"$BUILD_DIR/src/cli/ssim" ilp examples/mt/dotprod.mt --jobs 8 \
    --resume "$CHAOS_JOURNAL" > "$CHAOS_RESUMED"
cmp "$CHAOS_CLEAN" "$CHAOS_RESUMED"

echo "== lock artifact lint =="
# flock() sidecars (*.lock) are runtime artifacts; one committed by
# accident would make every later bench append contend on a tracked
# file.  Fail when any is in the index.
if [ -n "$(git ls-files '*.lock' 2>/dev/null)" ]; then
    echo "ERROR: lock artifacts are committed:" >&2
    git ls-files '*.lock' >&2
    exit 1
fi

echo "== tracing overhead guard (soft) =="
# BM_ParallelSweepTraced vs BM_ParallelSweep at one job: warn — never
# fail — when arming the flight recorder costs more than the 2%
# budget.  Samples from 3 repetitions land in a fresh bench-v2
# trajectory; the sentinel's --compare mode judges pooled medians
# (rank-test p-value reported alongside).
GUARD_TRAJ="$BUILD_DIR/check_guard_bench.json"
rm -f "$GUARD_TRAJ" "$GUARD_TRAJ.bak" "$GUARD_TRAJ.lock"
SSIM_BENCH_STATS="$GUARD_TRAJ" "$BUILD_DIR/bench/throughput" \
    --benchmark_filter='BM_ParallelSweep(Traced)?/1$' \
    --benchmark_repetitions=3 > /dev/null 2>&1
"$BUILD_DIR/src/cli/ssim" bench-check "$GUARD_TRAJ" --soft \
    --compare 'BM_ParallelSweep/1' 'BM_ParallelSweepTraced/1' \
    --budget 2

echo "== bytecode speed guard (soft) =="
# BM_BytecodeRun vs BM_FunctionalSimulation: the bytecode VM must
# never be slower than the IR-walk interpreter on the smoke workload
# (budget 0%: any overhead is a warning).  Warn — never fail — so a
# loaded CI host cannot flake the gate.
EXEC_TRAJ="$BUILD_DIR/check_exec_bench.json"
rm -f "$EXEC_TRAJ" "$EXEC_TRAJ.bak" "$EXEC_TRAJ.lock"
SSIM_BENCH_STATS="$EXEC_TRAJ" "$BUILD_DIR/bench/throughput" \
    --benchmark_filter='BM_(FunctionalSimulation|BytecodeRun)$' \
    --benchmark_repetitions=3 > /dev/null 2>&1
"$BUILD_DIR/src/cli/ssim" bench-check "$EXEC_TRAJ" --soft \
    --compare 'BM_FunctionalSimulation' 'BM_BytecodeRun' \
    --budget 0

echo "== bench sentinel smoke =="
# The committed perf trajectory must load (v1 rows normalize, v2 rows
# parse) and the verdict table must be byte-stable across reruns on
# identical input — CI diffs it against the job summary.
SENTINEL_A="$BUILD_DIR/check_sentinel_a.txt"
SENTINEL_B="$BUILD_DIR/check_sentinel_b.txt"
"$BUILD_DIR/src/cli/ssim" bench-check BENCH_throughput.json --soft \
    > "$SENTINEL_A" 2> /dev/null
"$BUILD_DIR/src/cli/ssim" bench-check BENCH_throughput.json --soft \
    > "$SENTINEL_B" 2> /dev/null
cmp "$SENTINEL_A" "$SENTINEL_B"
grep -q 'verdict' "$SENTINEL_A"

echo "== report smoke =="
# `ssim report` must emit one self-contained HTML document (inline
# SVG, no script tag, no external fetches), deterministically.
REPORT_A="$BUILD_DIR/check_report_a.html"
REPORT_B="$BUILD_DIR/check_report_b.html"
"$BUILD_DIR/src/cli/ssim" report --bench BENCH_throughput.json \
    --stats-in "$STATS_JSON" --metrics "$METRICS_JSON" \
    --profile-in "$PROF_JSON" --out "$REPORT_A" > /dev/null
"$BUILD_DIR/src/cli/ssim" report --bench BENCH_throughput.json \
    --stats-in "$STATS_JSON" --metrics "$METRICS_JSON" \
    --profile-in "$PROF_JSON" --out "$REPORT_B" > /dev/null
cmp "$REPORT_A" "$REPORT_B"
grep -q '<svg' "$REPORT_A"
if grep -q '<script' "$REPORT_A"; then
    echo "ERROR: report contains a script tag" >&2
    exit 1
fi
if grep -Eq 'src="http|href="http' "$REPORT_A"; then
    echo "ERROR: report references external resources" >&2
    exit 1
fi

echo "== OK =="
