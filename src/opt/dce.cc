#include <algorithm>

#include "ir/liveness.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

int
eliminateDeadCode(Function &func)
{
    SS_ASSERT(!func.allocated,
              "eliminateDeadCode needs virtual registers");
    int removed_total = 0;

    while (true) {
        Liveness live(func);
        int removed = 0;

        for (auto &bb : func.blocks) {
            // Walk backwards with a running live set.
            std::vector<bool> live_now = live.liveOut(bb.id);
            std::vector<Instr> kept;
            kept.reserve(bb.instrs.size());

            for (std::size_t i = bb.instrs.size(); i-- > 0;) {
                Instr &in = bb.instrs[i];
                bool needed = in.hasSideEffect();
                if (!needed && in.dst != kNoReg &&
                    in.dst < live_now.size() && live_now[in.dst])
                    needed = true;
                if (!needed && in.dst == kNoReg)
                    needed = true; // defensive: keep odd instructions

                if (!needed) {
                    ++removed;
                    continue;
                }
                if (in.dst != kNoReg && in.dst < live_now.size())
                    live_now[in.dst] = false;
                in.forEachSrc([&](Reg r) {
                    if (r < live_now.size())
                        live_now[r] = true;
                });
                kept.push_back(in);
            }
            if (removed) {
                std::reverse(kept.begin(), kept.end());
                bb.instrs = std::move(kept);
            } else {
                // No removals in this block; restore nothing.
                std::reverse(kept.begin(), kept.end());
                bb.instrs = std::move(kept);
            }
        }

        removed_total += removed;
        if (!removed)
            break;
    }
    return removed_total;
}

} // namespace ilp
