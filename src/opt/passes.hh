/**
 * @file
 * The classical optimizer of Section 4.4, one pass per function.
 *
 * Figure 4-8's x-axis adds these cumulatively: pipeline scheduling,
 * intra-block ("local") optimizations, global optimizations, global
 * register allocation.  All passes work on virtual-register code
 * except scheduling, which runs after register assignment so the
 * artificial dependencies introduced by temp reuse constrain it, as
 * in the paper ("using the same temporary register for two different
 * values in the same basic block introduces an artificial dependency
 * that can interfere with pipeline scheduling", §3).
 */

#ifndef SUPERSYM_OPT_PASSES_HH
#define SUPERSYM_OPT_PASSES_HH

#include "core/machine/machine.hh"
#include "ir/alias.hh"
#include "ir/module.hh"

namespace ilp {

/**
 * Cumulative optimization levels, matching Figure 4-8's x-axis.
 */
enum class OptLevel : int
{
    None = 0,       ///< raw code generation only
    Sched = 1,      ///< + pipeline scheduling
    Local = 2,      ///< + intra-block optimizations
    Global = 3,     ///< + global optimizations
    RegAlloc = 4,   ///< + global register allocation
};

/** Human-readable level name for tables. */
const char *optLevelName(OptLevel level);

// ------------------------------------------------------ local passes

/**
 * Block-local constant folding and algebraic simplification:
 * materializes constant results, folds constant operands into
 * immediate forms, and simplifies x+0, x*1, x*0.
 * @return number of instructions changed.
 */
int foldConstants(Function &func);

/**
 * Block-local common-subexpression elimination with copy propagation
 * (value numbering).  Loads participate but are killed by stores and
 * calls (the conservative rule the paper's compiler applies; its
 * visible consequence is the Livermore "anomaly" of §4.4 where
 * removing redundant address calculations reduces parallelism).
 * @return number of instructions rewritten or eliminated.
 */
int localValueNumbering(Function &func);

/**
 * Whole-function copy propagation: forwards `mov a <- b` when both a
 * and b have a single definition, so register copies created by load
 * hoisting and home promotion dissolve across block boundaries.
 * @return number of operand rewrites (dead moves fall to DCE).
 */
int globalCopyPropagation(Function &func);

/**
 * Global dead-code elimination over liveness: removes instructions
 * whose results are never used and which have no side effects.
 * @return number of instructions removed.
 */
int eliminateDeadCode(Function &func);

// ----------------------------------------------------- global passes

/**
 * Loop-invariant code motion: hoists pure register computations whose
 * operands are loop-invariant into a freshly created preheader, and
 * loads of invariant addresses whose object (frame slot or global)
 * provably differs from every object the loop stores to (so scalar
 * reads hoist out of array loops).  Divides are not hoisted
 * (speculation could fault); loops containing calls or stores to
 * unidentifiable objects hoist no loads.
 * @return number of instructions hoisted.
 */
int hoistLoopInvariants(const Module &module, Function &func);

/**
 * Reassociate chains of integer/FP adds and multiplies within a block
 * into balanced trees (shortens the critical path, §4.4's "we
 * reassociate long strings of additions or multiplications").
 * Deliberately applies FP associativity, as the paper did.
 * @return number of chains rebalanced.
 */
int reassociate(Function &func);

/**
 * Induction-variable strength reduction for rotated single-block
 * loops: array-address chains (offset, scale, base) derived from a
 * register induction variable are replaced by loop-carried address
 * registers advanced once per iteration, as production compilers of
 * the era (including the paper's Mahler system) arrange.  Runs after
 * home promotion so induction variables live in registers.
 * @return number of address computations reduced.
 */
int strengthReduceLoops(Function &func);

// ------------------------------------------------ register allocation

/**
 * Global register allocation (§3, [16]): promotes the most frequently
 * referenced frame-resident scalars (locals and parameters) to "home"
 * registers, eliminating their loads and stores.  Global scalars stay
 * memory-resident (single-module conservative policy; see DESIGN.md).
 * Reference counts are weighted by loop depth.
 * @return number of variables promoted.
 */
int allocateHomeRegisters(Function &func, const RegFileLayout &layout);

/**
 * Assign every virtual register to one of the machine's temp
 * registers (plus promoted homes and fp, already fixed by
 * allocateHomeRegisters), by linear scan over live intervals,
 * spilling to fresh frame slots when the temps run out.  Afterwards
 * `func.allocated` is true and all operands are physical.
 * @return number of virtual registers demoted to memory (spills).
 */
int assignRegisters(Function &func, const RegFileLayout &layout);

// ----------------------------------------------------------- schedule

/**
 * Static issue-slot accounting for one scheduling run: how densely
 * the list scheduler packed the machine's issue slots over the blocks
 * it actually reordered (blocks too small to schedule are skipped).
 */
struct ScheduleStats
{
    /** Instructions placed by the scheduler. */
    std::uint64_t slotsFilled = 0;
    /** issueWidth * static schedule length, summed over blocks. */
    std::uint64_t slotsTotal = 0;
    /** Blocks actually list-scheduled / skipped as too small. */
    std::uint64_t blocksScheduled = 0;
    std::uint64_t blocksSkipped = 0;

    /** slotsFilled / slotsTotal (1.0 when nothing was scheduled). */
    double fillRate() const
    {
        return slotsTotal
                   ? static_cast<double>(slotsFilled) /
                         static_cast<double>(slotsTotal)
                   : 1.0;
    }
};

/**
 * Pipeline instruction scheduling (§3): list-schedules every basic
 * block for the given machine, honoring register RAW/WAR/WAW, memory
 * dependencies at the given alias level, and functional-unit issue
 * constraints, minimizing expected stalls.  Requires allocated code.
 * `stats`, when non-null, accumulates static fill-rate accounting.
 */
void scheduleFunction(const Module &module, Function &func,
                      const MachineConfig &machine,
                      AliasLevel alias = AliasLevel::Conservative,
                      ScheduleStats *stats = nullptr);

} // namespace ilp

#endif // SUPERSYM_OPT_PASSES_HH
