#include "opt/pipeline.hh"

#include <utility>

#include "ir/verifier.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace ilp {

namespace {

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void
localCleanup(Function &func)
{
    for (int round = 0; round < 8; ++round) {
        int changed = 0;
        changed += foldConstants(func);
        changed += localValueNumbering(func);
        changed += globalCopyPropagation(func);
        changed += eliminateDeadCode(func);
        if (!changed)
            break;
    }
}

/**
 * Runs one phase of the per-function pipeline, recording wall time
 * and IR size deltas into `telemetry` when present.  The phase body
 * returns its "change units" (pass-specific: folds, hoists, spills).
 */
template <typename Fn>
void
runPhase(CompileTelemetry *telemetry, const char *name,
         const Function &func, Fn &&body)
{
    // The flight recorder observes every phase even when the caller
    // collects no CompileTelemetry (sweeps usually don't).
    trace::ScopedSpan span(name, "compile");
    if (span.armed())
        span.detail(func.name);
    if (!telemetry) {
        body();
        return;
    }
    const std::uint64_t instrs_before = func.instrCount();
    const std::uint64_t blocks_before = func.blocks.size();
    const Clock::time_point t0 = Clock::now();
    const std::int64_t changed = static_cast<std::int64_t>(body());
    const Clock::time_point t1 = Clock::now();

    PhaseStat &ps = telemetry->phase(name);
    ps.wallMs += msBetween(t0, t1);
    ps.runs += 1;
    ps.instrsBefore += instrs_before;
    ps.instrsAfter += func.instrCount();
    ps.blocksBefore += blocks_before;
    ps.blocksAfter += func.blocks.size();
    ps.changed += changed;
    telemetry->addSpan(std::string(name) + ":" + func.name, t0, t1);
}

} // namespace

PhaseStat &
CompileTelemetry::phase(const std::string &name)
{
    for (auto &ps : phases) {
        if (ps.name == name)
            return ps;
    }
    phases.push_back(PhaseStat{});
    phases.back().name = name;
    return phases.back();
}

void
CompileTelemetry::addSpan(std::string name, Clock::time_point t0,
                          Clock::time_point t1)
{
    if (!epoch_set_) {
        epoch_ = t0;
        epoch_set_ = true;
    }
    TraceSpan span;
    span.name = std::move(name);
    span.startMs = msBetween(epoch_, t0);
    span.durMs = msBetween(t0, t1);
    spans.push_back(std::move(span));
}

double
CompileTelemetry::totalWallMs() const
{
    double total = 0.0;
    for (const auto &ps : phases)
        total += ps.wallMs;
    return total;
}

void
CompileTelemetry::exportStats(stats::Group &g) const
{
    g.scalar("wall_ms", "total wall time across phases")
        .set(totalWallMs());
    g.counter("spills", "virtual registers demoted to memory")
        .inc(spills);
    g.scalar("sched_fill_rate",
             "static issue slots filled / available")
        .set(sched.fillRate());
    g.counter("sched_blocks_scheduled", "blocks list-scheduled")
        .inc(sched.blocksScheduled);
    g.counter("sched_blocks_skipped", "blocks too small to schedule")
        .inc(sched.blocksSkipped);
    g.counter("sched_slots_filled", "instructions placed")
        .inc(sched.slotsFilled);
    g.counter("sched_slots_total", "issueWidth * schedule length")
        .inc(sched.slotsTotal);

    stats::Group &pg = g.group("phase", "per-phase telemetry");
    for (const auto &ps : phases) {
        stats::Group &p = pg.group(ps.name);
        p.scalar("wall_ms").set(ps.wallMs);
        p.counter("runs").inc(ps.runs);
        p.counter("instrs_before").inc(ps.instrsBefore);
        p.counter("instrs_after").inc(ps.instrsAfter);
        p.counter("blocks_before").inc(ps.blocksBefore);
        p.counter("blocks_after").inc(ps.blocksAfter);
        p.scalar("changed", "pass-reported change units")
            .set(static_cast<double>(ps.changed));
    }
}

void
optimizeModule(Module &module, const MachineConfig &machine,
               const OptimizeOptions &options,
               CompileTelemetry *telemetry)
{
    machine.validate();
    // Optimized code may drop or duplicate source locations, but must
    // never invent ones absent from the frontend's output.
    const std::vector<SrcLoc> allowed_locs = collectSourceLocs(module);
    for (auto &func : module.functions()) {
        SS_ASSERT(!func.allocated, "optimizeModule: module already "
                                   "allocated");

        if (options.level >= OptLevel::Local) {
            runPhase(telemetry, "local", func, [&] {
                localCleanup(func);
                return 0;
            });
        }

        if (options.level >= OptLevel::Global) {
            runPhase(telemetry, "licm", func, [&] {
                int hoisted = hoistLoopInvariants(module, func);
                if (hoisted > 0)
                    localCleanup(func);
                return hoisted;
            });
        }

        if (options.reassociate) {
            runPhase(telemetry, "reassociate", func, [&] {
                int chains = reassociate(func);
                eliminateDeadCode(func);
                return chains;
            });
        }

        if (options.level >= OptLevel::RegAlloc) {
            runPhase(telemetry, "home_promotion", func, [&] {
                int promoted =
                    allocateHomeRegisters(func, options.layout);
                localCleanup(func);
                return promoted;
            });
            // Induction-variable strength reduction needs the
            // register-resident loop variables home promotion just
            // created.
            runPhase(telemetry, "strength", func, [&] {
                int reduced = strengthReduceLoops(func);
                if (reduced > 0)
                    localCleanup(func);
                return reduced;
            });
        }

        runPhase(telemetry, "regalloc", func, [&] {
            int spilled = assignRegisters(func, options.layout);
            if (telemetry)
                telemetry->spills +=
                    static_cast<std::uint64_t>(spilled);
            return spilled;
        });

        if (options.level >= OptLevel::Sched) {
            runPhase(telemetry, "sched", func, [&] {
                scheduleFunction(module, func, machine, options.alias,
                                 telemetry ? &telemetry->sched
                                           : nullptr);
                return 0;
            });
        }
    }
    verifyOrDie(module);
    verifySourceLocsOrDie(module, allowed_locs);
    module.assignPcs();
}

} // namespace ilp
