#include "opt/pipeline.hh"

#include "ir/verifier.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

void
localCleanup(Function &func)
{
    for (int round = 0; round < 8; ++round) {
        int changed = 0;
        changed += foldConstants(func);
        changed += localValueNumbering(func);
        changed += globalCopyPropagation(func);
        changed += eliminateDeadCode(func);
        if (!changed)
            break;
    }
}

} // namespace

void
optimizeModule(Module &module, const MachineConfig &machine,
               const OptimizeOptions &options)
{
    machine.validate();
    for (auto &func : module.functions()) {
        SS_ASSERT(!func.allocated, "optimizeModule: module already "
                                   "allocated");

        if (options.level >= OptLevel::Local)
            localCleanup(func);

        if (options.level >= OptLevel::Global) {
            if (hoistLoopInvariants(module, func) > 0)
                localCleanup(func);
        }

        if (options.reassociate) {
            reassociate(func);
            eliminateDeadCode(func);
        }

        if (options.level >= OptLevel::RegAlloc) {
            allocateHomeRegisters(func, options.layout);
            localCleanup(func);
            // Induction-variable strength reduction needs the
            // register-resident loop variables home promotion just
            // created.
            if (strengthReduceLoops(func) > 0)
                localCleanup(func);
        }

        assignRegisters(func, options.layout);

        if (options.level >= OptLevel::Sched)
            scheduleFunction(module, func, machine, options.alias);
    }
    verifyOrDie(module);
}

} // namespace ilp
