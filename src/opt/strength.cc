#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/**
 * Strength reduction of induction-derived address computations in
 * rotated (single-block, bottom-tested) loops.
 *
 * The codegen shape for an array reference a[h + d] inside a loop
 * with induction register h (h := h + c once per iteration) is
 *
 *     x = h + d          (d an immediate or a loop-invariant register)
 *     t = x << k
 *     addr = t + #base
 *
 * which puts a 3-deep dependence chain in front of every load/store.
 * This pass gives each distinct (family, base) pair a register p that
 * carries the address across iterations:
 *
 *     preheader:  p = ((h + d) << k) + base
 *     loop:       addr = p (+/- c<<k depending on position)
 *                 ...
 *                 h = h + c
 *                 p = p + (c << k)
 *
 * After dead-code elimination the old chain disappears and the
 * loads/stores start the iteration with their addresses ready — the
 * induction-variable optimization production compilers of the era
 * (including the paper's Mahler system) performed.
 */
class LoopStrengthReduce
{
  public:
    explicit LoopStrengthReduce(Function &func) : func_(func) {}

    int
    run()
    {
        int changed = 0;
        // Block list grows as preheaders are added; the new blocks
        // are not self-loops, so a snapshot of the count is fine.
        std::size_t nblocks = func_.blocks.size();
        for (std::size_t b = 0; b < nblocks; ++b)
            changed += reduceBlock(static_cast<BlockId>(b));
        return changed;
    }

  private:
    struct Family
    {
        Reg h = kNoReg;          ///< basic induction register
        Reg dReg = kNoReg;       ///< invariant register offset
        std::int64_t dImm = 0;   ///< immediate offset
        std::int64_t shift = 0;  ///< scale (left-shift amount)
        /** Sum of IV increments before the point h was read. */
        std::int64_t sumAtRead = 0;
        std::int64_t total = 0;  ///< IV increment per iteration
        std::size_t lastUpdIdx = 0;
    };

    bool
    isSelfLoop(const BasicBlock &bb) const
    {
        if (bb.instrs.empty())
            return false;
        const Instr &t = bb.instrs.back();
        return t.op == Opcode::Br &&
               (t.target0 == bb.id || t.target1 == bb.id);
    }

    int
    reduceBlock(BlockId bid)
    {
        BasicBlock &bb = func_.blocks[bid];
        if (!isSelfLoop(bb))
            return 0;

        const std::size_t n = bb.instrs.size();

        // Definition counts inside the loop body.
        std::vector<int> defs(func_.numVirtRegs, 0);
        for (const auto &in : bb.instrs) {
            if (in.dst != kNoReg)
                ++defs[in.dst];
        }

        // Basic induction registers: every definition of h in the
        // block is `h = h + #c` (an unrolled body updates its
        // induction variable several times per iteration).
        struct Iv
        {
            /** (index, step) of each update, ascending. */
            std::vector<std::pair<std::size_t, std::int64_t>> updates;
            std::int64_t total = 0;
            std::size_t lastIdx = 0;

            /** Sum of the steps of updates strictly before `pos`. */
            std::int64_t
            sumBefore(std::size_t pos) const
            {
                std::int64_t acc = 0;
                for (const auto &[idx, step] : updates) {
                    if (idx < pos)
                        acc += step;
                }
                return acc;
            }
        };
        std::map<Reg, Iv> ivs;
        {
            std::map<Reg, int> iv_updates;
            for (const auto &in : bb.instrs) {
                if (in.op == Opcode::AddI && in.hasImm &&
                    in.dst == in.src1 && in.dst != kNoReg)
                    ++iv_updates[in.dst];
            }
            for (const auto &[h, count] : iv_updates) {
                if (count != defs[h])
                    continue; // some def is not an increment
                Iv iv;
                for (std::size_t i = 0; i < n; ++i) {
                    const Instr &in = bb.instrs[i];
                    if (in.dst == h) {
                        iv.updates.push_back({i, in.imm});
                        iv.total += in.imm;
                        iv.lastIdx = i;
                    }
                }
                ivs.emplace(h, std::move(iv));
            }
        }
        if (ivs.empty())
            return 0;
        auto find_iv = [&](Reg r) -> const Iv * {
            auto it = ivs.find(r);
            return it == ivs.end() ? nullptr : &it->second;
        };

        // Rewrites to apply: (addr-instr index, family, base imm).
        struct Rewrite
        {
            std::size_t addrIdx;
            Family fam;
            std::int64_t base;
        };
        std::vector<Rewrite> rewrites;

        for (std::size_t si = 0; si < n; ++si) {
            const Instr &shl = bb.instrs[si];
            if (shl.op != Opcode::ShlI || !shl.hasImm ||
                shl.dst == kNoReg || defs[shl.dst] != 1)
                continue;

            Family fam;
            fam.shift = shl.imm;
            const Iv *iv = find_iv(shl.src1);
            std::size_t read_idx = si;
            if (iv) {
                fam.h = shl.src1;
            } else if (true) {
                // One level of offset: x = h + d before the shift.
                bool found = false;
                for (std::size_t xi = 0; xi < si && !found; ++xi) {
                    const Instr &x = bb.instrs[xi];
                    if (x.dst != shl.src1 || x.op != Opcode::AddI ||
                        defs[x.dst] != 1)
                        continue;
                    if (x.hasImm) {
                        if ((iv = find_iv(x.src1))) {
                            fam.h = x.src1;
                            fam.dImm = x.imm;
                            read_idx = xi;
                            found = true;
                        }
                    } else if (x.src2 != kNoReg) {
                        Reg a = x.src1, c = x.src2;
                        if (find_iv(a) && defs[c] == 0) {
                            iv = find_iv(a);
                            fam.h = a;
                            fam.dReg = c;
                            read_idx = xi;
                            found = true;
                        } else if (find_iv(c) && defs[a] == 0) {
                            iv = find_iv(c);
                            fam.h = c;
                            fam.dReg = a;
                            read_idx = xi;
                            found = true;
                        }
                    }
                    if (found)
                        break;
                }
                if (!found)
                    continue;
            }
            fam.sumAtRead = iv->sumBefore(read_idx);
            fam.total = iv->total;
            fam.lastUpdIdx = iv->lastIdx;

            // Address adds fed by this shift: addr = t + #base.
            for (std::size_t ai = si + 1; ai < n; ++ai) {
                const Instr &a = bb.instrs[ai];
                if (a.op == Opcode::AddI && a.hasImm &&
                    a.src1 == shl.dst && a.dst != kNoReg &&
                    defs[a.dst] == 1)
                    rewrites.push_back({ai, fam, a.imm});
            }
        }
        if (rewrites.empty())
            return 0;

        // Preheader: retarget out-of-loop predecessors of the loop.
        BlockId pre =
            func_.addBlock("sr.preheader.bb" + std::to_string(bid));
        for (auto &blk : func_.blocks) {
            if (blk.id == bid || blk.id == pre || blk.instrs.empty())
                continue;
            Instr &t = blk.instrs.back();
            if (!isTerminator(t.op))
                continue;
            if (t.target0 == bid)
                t.target0 = pre;
            if (t.op == Opcode::Br && t.target1 == bid)
                t.target1 = pre;
        }
        auto &pre_instrs = func_.blocks[pre].instrs;

        // Apply the rewrites.  Rewrites sharing (h, dReg, shift) use
        // one address register p = (h [+ dReg]) << shift, computed in
        // the preheader and advanced once per iteration; each member
        // differs from p only by a compile-time constant.
        BasicBlock &body = func_.blocks[bid]; // re-fetch (vector grew)
        struct Group
        {
            Reg p;
            std::size_t lastUpdIdx;
            std::int64_t inc;
        };
        std::map<std::tuple<Reg, Reg, std::int64_t>, Group> groups;
        struct Incr
        {
            std::size_t afterIdx;
            Instr instr;
        };
        std::vector<Incr> incrs;
        for (const auto &rw : rewrites) {
            const Family &f = rw.fam;
            auto key = std::make_tuple(f.h, f.dReg, f.shift);
            auto it = groups.find(key);
            if (it == groups.end()) {
                Reg cur = f.h;
                if (f.dReg != kNoReg) {
                    Reg t = func_.newVirtReg();
                    pre_instrs.push_back(
                        Instr::binary(Opcode::AddI, t, f.h, f.dReg));
                    cur = t;
                }
                Reg p = func_.newVirtReg();
                pre_instrs.push_back(
                    Instr::binaryImm(Opcode::ShlI, p, cur, f.shift));
                Group g;
                g.p = p;
                g.lastUpdIdx = f.lastUpdIdx;
                g.inc = f.total << f.shift;
                it = groups.emplace(key, g).first;
                // Loop: p advances once, after the IV's final update.
                incrs.push_back(
                    {f.lastUpdIdx,
                     Instr::binaryImm(Opcode::AddI, p, p, g.inc)});
            }
            const Group &g = it->second;

            // address = p + ((sumAtRead + dImm) << shift) + base,
            // minus one stride if the use sits after p's increment.
            Instr &addr = body.instrs[rw.addrIdx];
            std::int64_t adjust =
                ((f.sumAtRead + f.dImm) << f.shift) + rw.base;
            if (rw.addrIdx > g.lastUpdIdx)
                adjust -= g.inc;
            if (adjust != 0)
                addr = Instr::binaryImm(Opcode::AddI, addr.dst, g.p,
                                        adjust)
                                        .at(addr.loc);
            else
                addr = Instr::unary(Opcode::MovI, addr.dst, g.p)
                           .at(addr.loc);
        }
        pre_instrs.push_back(Instr::jmp(bid));

        // Insert the p-increments after the IV updates (descending
        // index order keeps earlier indices valid).
        std::sort(incrs.begin(), incrs.end(),
                  [](const Incr &a, const Incr &b) {
                      return a.afterIdx > b.afterIdx;
                  });
        for (const auto &inc : incrs) {
            body.instrs.insert(body.instrs.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       inc.afterIdx + 1),
                               inc.instr);
        }
        return static_cast<int>(rewrites.size());
    }

    Function &func_;
};

} // namespace

int
strengthReduceLoops(Function &func)
{
    SS_ASSERT(!func.allocated,
              "strengthReduceLoops needs virtual registers");
    LoopStrengthReduce sr(func);
    return sr.run();
}

} // namespace ilp
