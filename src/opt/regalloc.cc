#include <algorithm>
#include <map>

#include "ir/dominators.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/** Loop-depth of every block (0 outside loops). */
std::vector<int>
blockLoopDepths(Function &func)
{
    std::vector<int> depth(func.blocks.size(), 0);
    Dominators dom(func);
    auto loops = findNaturalLoops(func, dom);
    for (const auto &l : loops) {
        for (BlockId b : l.blocks)
            depth[b] = std::max(depth[b], l.depth);
    }
    return depth;
}

struct SlotUse
{
    std::int64_t offset = 0;
    bool isFloat = false;
    double weight = 0.0;
};

} // namespace

int
allocateHomeRegisters(Function &func, const RegFileLayout &layout)
{
    SS_ASSERT(!func.allocated,
              "allocateHomeRegisters needs virtual registers");

    auto depths = blockLoopDepths(func);

    // Collect reference weights per frame-scalar slot.  Only accesses
    // of the form fp+constant qualify; the MT language cannot take a
    // scalar's address, so these are all the accesses there are.
    std::map<std::int64_t, SlotUse> slots;
    for (const auto &bb : func.blocks) {
        double w = 1.0;
        for (int d = 0; d < std::min(depths[bb.id], 4); ++d)
            w *= 10.0;
        for (const auto &in : bb.instrs) {
            if (!isMem(in.op) || in.src1 != func.fpReg)
                continue;
            auto &slot = slots[in.imm];
            slot.offset = in.imm;
            slot.isFloat = (in.op == Opcode::LoadF ||
                            in.op == Opcode::StoreF);
            slot.weight += w;
        }
    }

    // Rank by weight and promote the top numHome slots.
    std::vector<SlotUse> ranked;
    ranked.reserve(slots.size());
    for (const auto &[off, use] : slots)
        ranked.push_back(use);
    std::sort(ranked.begin(), ranked.end(),
              [](const SlotUse &a, const SlotUse &b) {
                  return a.weight > b.weight;
              });
    if (ranked.size() > layout.numHome)
        ranked.resize(layout.numHome);

    std::map<std::int64_t, Reg> home_of;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        Reg hv = func.newVirtReg();
        func.pinnedRegs[hv] =
            layout.homeReg(static_cast<std::uint32_t>(i));
        home_of[ranked[i].offset] = hv;
    }

    // Rewrite loads/stores of promoted slots into register moves.
    for (auto &bb : func.blocks) {
        for (auto &in : bb.instrs) {
            if (!isMem(in.op) || in.src1 != func.fpReg)
                continue;
            auto it = home_of.find(in.imm);
            if (it == home_of.end())
                continue;
            Reg hv = it->second;
            if (isLoad(in.op)) {
                Opcode mv = in.op == Opcode::LoadF ? Opcode::MovF
                                                   : Opcode::MovI;
                in = Instr::unary(mv, in.dst, hv).at(in.loc);
            } else {
                Opcode mv = in.op == Opcode::StoreF ? Opcode::MovF
                                                    : Opcode::MovI;
                in = Instr::unary(mv, hv, in.src2).at(in.loc);
            }
        }
    }

    // Coalesce `mov hv <- v` with v's defining instruction when v has
    // no other use and hv is not read in between: the producer then
    // writes the home register directly, as the paper's allocator
    // arranges.
    std::vector<int> use_count(func.numVirtRegs, 0);
    for (const auto &bb : func.blocks) {
        for (const auto &in : bb.instrs)
            in.forEachSrc([&](Reg r) { ++use_count[r]; });
    }
    for (auto &bb : func.blocks) {
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            Instr &mv = bb.instrs[i];
            if ((mv.op != Opcode::MovI && mv.op != Opcode::MovF) ||
                !func.pinnedRegs.count(mv.dst))
                continue;
            Reg v = mv.src1;
            if (v == kNoReg || use_count[v] != 1 ||
                func.pinnedRegs.count(v))
                continue;
            // Find v's definition earlier in this block.
            std::size_t def = i;
            for (std::size_t j = i; j-- > 0;) {
                if (bb.instrs[j].dst == v) {
                    def = j;
                    break;
                }
            }
            if (def == i)
                continue; // defined in another block; leave the move
            if (bb.instrs[def].op == Opcode::Call)
                continue; // calls write caller temps; keep it simple
            // hv must not be read or written between def and the move.
            bool blocked = false;
            Reg hv = mv.dst;
            for (std::size_t j = def + 1; j < i && !blocked; ++j) {
                const Instr &mid = bb.instrs[j];
                if (mid.dst == hv)
                    blocked = true;
                mid.forEachSrc([&](Reg r) {
                    if (r == hv)
                        blocked = true;
                });
            }
            if (blocked)
                continue;
            bb.instrs[def].dst = hv;
            // Degrade the move to a self-move and let DCE drop it.
            mv = Instr::unary(mv.op, hv, hv);
            // A self-move is not dead to DCE (hv is live); erase now.
            bb.instrs.erase(bb.instrs.begin() +
                            static_cast<std::ptrdiff_t>(i));
            --i;
        }
    }

    return static_cast<int>(ranked.size());
}

} // namespace ilp
