#include <optional>
#include <unordered_map>

#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::None: return "none";
      case OptLevel::Sched: return "+sched";
      case OptLevel::Local: return "+local";
      case OptLevel::Global: return "+global";
      case OptLevel::RegAlloc: return "+regalloc";
    }
    return "?";
}

namespace {

struct Const
{
    bool isFloat = false;
    std::int64_t i = 0;
    double f = 0.0;
};

/** Fold a pure integer binary op over constants. */
std::optional<std::int64_t>
foldIntBinary(Opcode op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case Opcode::AddI: return a + b;
      case Opcode::SubI: return a - b;
      case Opcode::MulI: return a * b;
      case Opcode::DivI:
        if (b == 0)
            return std::nullopt;
        return a / b;
      case Opcode::RemI:
        if (b == 0)
            return std::nullopt;
        return a % b;
      case Opcode::CmpEqI: return a == b ? 1 : 0;
      case Opcode::CmpNeI: return a != b ? 1 : 0;
      case Opcode::CmpLtI: return a < b ? 1 : 0;
      case Opcode::CmpLeI: return a <= b ? 1 : 0;
      case Opcode::CmpGtI: return a > b ? 1 : 0;
      case Opcode::CmpGeI: return a >= b ? 1 : 0;
      case Opcode::AndI: return a & b;
      case Opcode::OrI: return a | b;
      case Opcode::XorI: return a ^ b;
      case Opcode::ShlI: return a << (b & 63);
      case Opcode::ShrAI: return a >> (b & 63);
      case Opcode::ShrLI:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
      default:
        return std::nullopt;
    }
}

std::optional<double>
foldFloatBinary(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::AddF: return a + b;
      case Opcode::SubF: return a - b;
      case Opcode::MulF: return a * b;
      case Opcode::DivF: return a / b;
      default:
        return std::nullopt;
    }
}

std::optional<std::int64_t>
foldFloatCompare(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::CmpEqF: return a == b ? 1 : 0;
      case Opcode::CmpNeF: return a != b ? 1 : 0;
      case Opcode::CmpLtF: return a < b ? 1 : 0;
      case Opcode::CmpLeF: return a <= b ? 1 : 0;
      case Opcode::CmpGtF: return a > b ? 1 : 0;
      case Opcode::CmpGeF: return a >= b ? 1 : 0;
      default:
        return std::nullopt;
    }
}

} // namespace

int
foldConstants(Function &func)
{
    SS_ASSERT(!func.allocated, "foldConstants needs virtual registers");
    int changed = 0;

    for (auto &bb : func.blocks) {
        std::unordered_map<Reg, Const> consts;
        auto known = [&](Reg r) -> const Const * {
            auto it = consts.find(r);
            return it == consts.end() ? nullptr : &it->second;
        };

        for (auto &in : bb.instrs) {
            bool rewrote = false;

            // Fold register constants into immediate operands for
            // commutative integer ops and subtraction.
            if (isBinaryAlu(in.op) && !in.hasImm &&
                !producesFloat(in.op) && in.src2 != kNoReg) {
                const Const *c2 = known(in.src2);
                const Const *c1 = known(in.src1);
                if (c2 && !c2->isFloat) {
                    in.hasImm = true;
                    in.imm = c2->i;
                    in.src2 = kNoReg;
                    rewrote = true;
                } else if (c1 && !c1->isFloat && isCommutative(in.op)) {
                    in.src1 = in.src2;
                    in.src2 = kNoReg;
                    in.hasImm = true;
                    in.imm = c1->i;
                    rewrote = true;
                }
            }

            // Full constant folding.
            if (isBinaryAlu(in.op)) {
                const Const *c1 = known(in.src1);
                if (c1 && in.hasImm && !c1->isFloat) {
                    auto v = foldIntBinary(in.op, c1->i, in.imm);
                    if (v) {
                        in = Instr::li(in.dst, *v).at(in.loc);
                        rewrote = true;
                    }
                } else if (c1 && !in.hasImm && in.src2 != kNoReg) {
                    const Const *c2 = known(in.src2);
                    if (c2 && c1->isFloat && c2->isFloat) {
                        if (auto v = foldFloatBinary(in.op, c1->f,
                                                     c2->f)) {
                            in = Instr::lif(in.dst, *v).at(in.loc);
                            rewrote = true;
                        } else if (auto b = foldFloatCompare(
                                       in.op, c1->f, c2->f)) {
                            in = Instr::li(in.dst, *b).at(in.loc);
                            rewrote = true;
                        }
                    }
                }
            }

            // Unary folds.
            if (in.op == Opcode::NegF || in.op == Opcode::AbsF ||
                in.op == Opcode::CvtIF || in.op == Opcode::CvtFI ||
                in.op == Opcode::NotI) {
                const Const *c = known(in.src1);
                if (c) {
                    switch (in.op) {
                      case Opcode::NegF:
                        in = Instr::lif(in.dst, -c->f).at(in.loc);
                        rewrote = true;
                        break;
                      case Opcode::AbsF:
                        in = Instr::lif(in.dst,
                                        c->f < 0 ? -c->f : c->f)
                                        .at(in.loc);
                        rewrote = true;
                        break;
                      case Opcode::CvtIF:
                        if (!c->isFloat) {
                            in = Instr::lif(
                                in.dst, static_cast<double>(c->i))
                                .at(in.loc);
                            rewrote = true;
                        }
                        break;
                      case Opcode::CvtFI:
                        if (c->isFloat) {
                            in = Instr::li(
                                in.dst,
                                static_cast<std::int64_t>(c->f))
                                .at(in.loc);
                            rewrote = true;
                        }
                        break;
                      case Opcode::NotI:
                        if (!c->isFloat) {
                            in = Instr::li(in.dst, ~c->i).at(in.loc);
                            rewrote = true;
                        }
                        break;
                      default:
                        break;
                    }
                }
            }

            // Algebraic identities on immediate forms.
            if (in.hasImm && in.dst != kNoReg) {
                if ((in.op == Opcode::AddI || in.op == Opcode::SubI ||
                     in.op == Opcode::ShlI || in.op == Opcode::ShrAI ||
                     in.op == Opcode::ShrLI || in.op == Opcode::OrI ||
                     in.op == Opcode::XorI) &&
                    in.imm == 0 && !isMem(in.op)) {
                    in = Instr::unary(Opcode::MovI, in.dst, in.src1)
                             .at(in.loc);
                    rewrote = true;
                } else if (in.op == Opcode::MulI && in.imm == 1) {
                    in = Instr::unary(Opcode::MovI, in.dst, in.src1)
                             .at(in.loc);
                    rewrote = true;
                } else if (in.op == Opcode::MulI && in.imm == 0) {
                    in = Instr::li(in.dst, 0).at(in.loc);
                    rewrote = true;
                }
            }

            // Update the constant environment.
            if (in.dst != kNoReg) {
                if (in.op == Opcode::LiI) {
                    consts[in.dst] = Const{false, in.imm, 0.0};
                } else if (in.op == Opcode::LiF) {
                    consts[in.dst] = Const{true, 0, in.fimm};
                } else if (in.op == Opcode::MovI ||
                           in.op == Opcode::MovF) {
                    const Const *c = known(in.src1);
                    if (c)
                        consts[in.dst] = *c;
                    else
                        consts.erase(in.dst);
                } else {
                    consts.erase(in.dst);
                }
            }

            if (rewrote)
                ++changed;
        }
    }
    return changed;
}

} // namespace ilp
