/**
 * @file
 * The whole optimizer as one call: applies the cumulative Figure 4-8
 * levels, assigns registers, and schedules for a target machine —
 * optionally recording per-phase telemetry (wall time, IR deltas,
 * spills, static schedule fill rate) for the observability layer.
 */

#ifndef SUPERSYM_OPT_PIPELINE_HH
#define SUPERSYM_OPT_PIPELINE_HH

#include <chrono>
#include <string>
#include <vector>

#include "opt/passes.hh"
#include "support/stats.hh"

namespace ilp {

/** Aggregated record of one optimizer phase across all functions. */
struct PhaseStat
{
    std::string name;
    double wallMs = 0.0;
    /** Function-level invocations aggregated into this record. */
    std::uint64_t runs = 0;
    /** Instruction/block totals summed over runs, before and after. */
    std::uint64_t instrsBefore = 0;
    std::uint64_t instrsAfter = 0;
    std::uint64_t blocksBefore = 0;
    std::uint64_t blocksAfter = 0;
    /** Pass-reported change units (folds, hoists, spills, ...). */
    std::int64_t changed = 0;
};

/** One raw timed segment ("licm:main"), for --trace-events. */
struct TraceSpan
{
    std::string name;
    /** Milliseconds relative to this telemetry's first segment. */
    double startMs = 0.0;
    double durMs = 0.0;
};

/**
 * Everything the compile pipeline reports about one compilation.
 * Fill by passing a pointer to optimizeModule() (and, at the driver
 * level, to compileWorkload()); costs nothing when absent.
 */
struct CompileTelemetry
{
    std::vector<PhaseStat> phases;
    std::vector<TraceSpan> spans;
    /** Virtual registers demoted to memory by assignRegisters. */
    std::uint64_t spills = 0;
    ScheduleStats sched;

    /** Find-or-append the aggregated record for `name`. */
    PhaseStat &phase(const std::string &name);

    /** Record a raw timed segment (also establishes the epoch). */
    void addSpan(std::string name,
                 std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1);

    double totalWallMs() const;

    /** Export into a stats group ("compile"). */
    void exportStats(stats::Group &g) const;

  private:
    bool epoch_set_ = false;
    std::chrono::steady_clock::time_point epoch_;
};

struct OptimizeOptions
{
    OptLevel level = OptLevel::RegAlloc;
    /** Temp/home register split (§3; Figure 4-8 uses 16/26). */
    RegFileLayout layout;
    /** Memory disambiguation given to the scheduler. */
    AliasLevel alias = AliasLevel::Conservative;
    /**
     * Careful-unrolling reassociation (§4.4).  Changes FP results by
     * design, so it is not part of any Figure 4-8 level.
     */
    bool reassociate = false;
};

/**
 * Optimize, allocate, and (at OptLevel >= Sched) schedule every
 * function of `module` for `machine`.  After this the module is
 * physical-register code, ready for tracing/timing.  `telemetry`,
 * when non-null, accumulates per-phase wall time and IR deltas.
 */
void optimizeModule(Module &module, const MachineConfig &machine,
                    const OptimizeOptions &options,
                    CompileTelemetry *telemetry = nullptr);

} // namespace ilp

#endif // SUPERSYM_OPT_PIPELINE_HH
