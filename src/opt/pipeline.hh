/**
 * @file
 * The whole optimizer as one call: applies the cumulative Figure 4-8
 * levels, assigns registers, and schedules for a target machine.
 */

#ifndef SUPERSYM_OPT_PIPELINE_HH
#define SUPERSYM_OPT_PIPELINE_HH

#include "opt/passes.hh"

namespace ilp {

struct OptimizeOptions
{
    OptLevel level = OptLevel::RegAlloc;
    /** Temp/home register split (§3; Figure 4-8 uses 16/26). */
    RegFileLayout layout;
    /** Memory disambiguation given to the scheduler. */
    AliasLevel alias = AliasLevel::Conservative;
    /**
     * Careful-unrolling reassociation (§4.4).  Changes FP results by
     * design, so it is not part of any Figure 4-8 level.
     */
    bool reassociate = false;
};

/**
 * Optimize, allocate, and (at OptLevel >= Sched) schedule every
 * function of `module` for `machine`.  After this the module is
 * physical-register code, ready for tracing/timing.
 */
void optimizeModule(Module &module, const MachineConfig &machine,
                    const OptimizeOptions &options);

} // namespace ilp

#endif // SUPERSYM_OPT_PIPELINE_HH
