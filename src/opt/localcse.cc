#include <bit>
#include <vector>
#include <map>
#include <tuple>
#include <unordered_map>

#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/**
 * Block-local value numbering.  Every register maps to a value number;
 * expressions (op, operand VNs, imm) are memoized.  A VN may be
 * "available" in some register; when a later instruction recomputes an
 * available VN it becomes a register move (which copy propagation then
 * makes dead).  Loads are value-numbered against a memory epoch that
 * stores and calls bump.
 */
class BlockVN
{
  public:
    explicit BlockVN(BasicBlock &bb) : bb_(bb) {}

    int
    run()
    {
        int changed = 0;
        for (auto &in : bb_.instrs) {
            changed += propagateCopies(in);
            changed += numberAndRewrite(in);
        }
        return changed;
    }

  private:
    using Key = std::tuple<Opcode, int, int, bool, std::int64_t,
                           std::uint64_t>;

    int
    freshVN()
    {
        return next_vn_++;
    }

    int
    vnOf(Reg r)
    {
        auto it = reg_vn_.find(r);
        if (it != reg_vn_.end())
            return it->second;
        int vn = freshVN();
        reg_vn_[r] = vn;
        // The block-entry register is the canonical holder of its own
        // value, so copies of it propagate back to it (not the other
        // way around).
        vn_holder_.emplace(vn, r);
        return vn;
    }

    /** Register currently holding `vn`, or kNoReg. */
    Reg
    holder(int vn) const
    {
        auto it = vn_holder_.find(vn);
        return it == vn_holder_.end() ? kNoReg : it->second;
    }

    void
    defineReg(Reg r, int vn)
    {
        // The old value this register held is no longer available in
        // it.
        auto old = reg_vn_.find(r);
        if (old != reg_vn_.end()) {
            auto h = vn_holder_.find(old->second);
            if (h != vn_holder_.end() && h->second == r)
                vn_holder_.erase(h);
        }
        reg_vn_[r] = vn;
        if (holder(vn) == kNoReg)
            vn_holder_[vn] = r;
    }

    /** Rewrite sources to the canonical holder of their VN. */
    int
    propagateCopies(Instr &in)
    {
        int changed = 0;
        in.rewriteSrcs([&](Reg r) {
            int vn = vnOf(r);
            Reg h = holder(vn);
            if (h != kNoReg && h != r) {
                ++changed;
                return h;
            }
            return r;
        });
        return changed;
    }

    int
    numberAndRewrite(Instr &in)
    {
        // Effects first: stores and calls invalidate memory values.
        if (isStore(in.op) || in.op == Opcode::Call) {
            ++mem_epoch_;
            if (in.op == Opcode::Call && in.dst != kNoReg)
                defineReg(in.dst, freshVN());
            return 0;
        }
        if (in.dst == kNoReg)
            return 0;

        // Moves: alias the VN.
        if (in.op == Opcode::MovI || in.op == Opcode::MovF) {
            defineReg(in.dst, vnOf(in.src1));
            return 0;
        }

        // Expression key.  LiF uses the double's bit pattern.
        bool memoizable =
            isBinaryAlu(in.op) || isUnaryAlu(in.op) ||
            in.op == Opcode::LiI || in.op == Opcode::LiF ||
            isLoad(in.op);
        if (!memoizable) {
            defineReg(in.dst, freshVN());
            return 0;
        }

        int v1 = in.src1 != kNoReg ? vnOf(in.src1) : -1;
        int v2 = in.src2 != kNoReg ? vnOf(in.src2) : -1;
        // Canonicalize commutative register-register forms.
        if (!in.hasImm && isCommutative(in.op) && v2 >= 0 && v1 > v2)
            std::swap(v1, v2);
        std::uint64_t extra = 0;
        if (in.op == Opcode::LiF) {
            extra = std::bit_cast<std::uint64_t>(in.fimm);
        } else if (isLoad(in.op)) {
            extra = mem_epoch_;
        }
        Key key{in.op, v1, v2, in.hasImm, in.hasImm ? in.imm : 0,
                extra};
        if (isLoad(in.op)) {
            // include displacement in the key's imm slot already
            key = Key{in.op, v1, v2, true, in.imm, extra};
        }

        auto it = exprs_.find(key);
        if (it != exprs_.end()) {
            Reg h = holder(it->second);
            if (h != kNoReg && h != in.dst) {
                // Redundant: rewrite to a move from the holder.
                Opcode mv = producesFloat(in.op) ? Opcode::MovF
                                                 : Opcode::MovI;
                in = Instr::unary(mv, in.dst, h).at(in.loc);
                defineReg(in.dst, it->second);
                return 1;
            }
            defineReg(in.dst, it->second);
            return 0;
        }
        int vn = freshVN();
        exprs_[key] = vn;
        defineReg(in.dst, vn);
        return 0;
    }

    BasicBlock &bb_;
    int next_vn_ = 0;
    std::unordered_map<Reg, int> reg_vn_;
    std::unordered_map<int, Reg> vn_holder_;
    std::map<Key, int> exprs_;
    std::uint64_t mem_epoch_ = 0;
};

} // namespace

int
globalCopyPropagation(Function &func)
{
    SS_ASSERT(!func.allocated,
              "globalCopyPropagation needs virtual registers");
    // Definition counts over the whole function.
    std::vector<int> defs(func.numVirtRegs, 0);
    for (const auto &bb : func.blocks) {
        for (const auto &in : bb.instrs) {
            if (in.dst != kNoReg)
                ++defs[in.dst];
        }
    }

    // mov a <- b with a and b both defined exactly once: every read
    // of a sees that single def, whose value is b's single def, so
    // a's uses can read b directly (b's definition necessarily
    // executed first).  Parameters and the frame pointer count as
    // extra definitions.
    for (Reg p : func.paramRegs)
        ++defs[p];
    if (func.fpReg != kNoReg)
        ++defs[func.fpReg];

    std::unordered_map<Reg, Reg> fwd;
    for (const auto &bb : func.blocks) {
        for (const auto &in : bb.instrs) {
            if ((in.op == Opcode::MovI || in.op == Opcode::MovF) &&
                in.dst != kNoReg && in.src1 != kNoReg &&
                in.dst != in.src1 && defs[in.dst] == 1 &&
                defs[in.src1] == 1)
                fwd[in.dst] = in.src1;
        }
    }
    if (fwd.empty())
        return 0;

    auto resolve = [&](Reg r) {
        int guard = 0;
        while (fwd.count(r) && ++guard < 1000)
            r = fwd[r];
        return r;
    };

    int changed = 0;
    for (auto &bb : func.blocks) {
        for (auto &in : bb.instrs) {
            in.rewriteSrcs([&](Reg r) {
                Reg to = resolve(r);
                if (to != r)
                    ++changed;
                return to;
            });
        }
    }
    return changed; // the dead movs fall to DCE
}

int
localValueNumbering(Function &func)
{
    SS_ASSERT(!func.allocated,
              "localValueNumbering needs virtual registers");
    int changed = 0;
    for (auto &bb : func.blocks) {
        BlockVN vn(bb);
        changed += vn.run();
    }
    return changed;
}

} // namespace ilp
