#include <algorithm>
#include <limits>

#include "ir/liveness.hh"
#include "opt/passes.hh"
#include "support/diag.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

constexpr std::uint32_t kNoInterval = 0xffffffffu;

struct Interval
{
    Reg reg = kNoReg;
    std::uint32_t start = kNoInterval;
    std::uint32_t end = 0;
    bool isFloat = false;

    bool live() const { return start != kNoInterval; }
    std::uint32_t length() const { return end - start; }
};

/**
 * Compute one conservative live interval per virtual register over a
 * linearization of the blocks (liveness-extended to block boundaries).
 * Pinned registers and the frame pointer are skipped.
 */
std::vector<Interval>
buildIntervals(Function &func)
{
    Liveness live(func);

    std::vector<Interval> iv(func.numVirtRegs);
    for (Reg r = 0; r < func.numVirtRegs; ++r)
        iv[r].reg = r;

    auto touch = [&](Reg r, std::uint32_t pos) {
        if (r == kNoReg)
            return;
        iv[r].start = std::min(iv[r].start, pos);
        iv[r].end = std::max(iv[r].end, pos);
    };

    std::uint32_t pos = 0;
    for (const auto &bb : func.blocks) {
        std::uint32_t block_start = pos;
        std::uint32_t block_end =
            pos + static_cast<std::uint32_t>(bb.instrs.size());
        const auto &in_set = live.liveIn(bb.id);
        const auto &out_set = live.liveOut(bb.id);
        for (Reg r = 0; r < func.numVirtRegs; ++r) {
            if (in_set[r])
                touch(r, block_start);
            if (out_set[r])
                touch(r, block_end);
        }
        for (const auto &in : bb.instrs) {
            in.forEachSrc([&](Reg r) { touch(r, pos); });
            if (in.dst != kNoReg) {
                touch(in.dst, pos);
                if (producesFloat(in.op))
                    iv[in.dst].isFloat = true;
            }
            ++pos;
        }
        ++pos; // leave a gap between blocks
    }

    // Parameters are live from function entry (the caller's values
    // arrive before the first instruction).
    for (Reg p : func.paramRegs) {
        if (iv[p].live())
            iv[p].start = 0;
    }
    return iv;
}

/** Max number of simultaneously-live unpinned intervals; fills
 *  `peak_out` with the registers live at the peak. */
std::uint32_t
maxPressure(const Function &func, const std::vector<Interval> &iv,
            std::vector<Reg> *peak_out)
{
    // Sweep events.
    struct Event
    {
        std::uint32_t pos;
        bool start;
        Reg reg;
    };
    std::vector<Event> events;
    for (const auto &i : iv) {
        if (!i.live() || func.pinnedRegs.count(i.reg) ||
            i.reg == func.fpReg)
            continue;
        events.push_back({i.start, true, i.reg});
        events.push_back({i.end + 1, false, i.reg});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.pos != b.pos)
                      return a.pos < b.pos;
                  return a.start < b.start; // ends before starts
              });

    std::uint32_t cur = 0, best = 0;
    std::vector<Reg> active;
    for (const auto &e : events) {
        if (e.start) {
            active.push_back(e.reg);
            ++cur;
            if (cur > best) {
                best = cur;
                if (peak_out)
                    *peak_out = active;
            }
        } else {
            active.erase(
                std::find(active.begin(), active.end(), e.reg));
            --cur;
        }
    }
    return best;
}

/**
 * Rewrite every def/use of `victim` through a fresh frame slot.  For
 * a parameter register (whose value arrives at entry with no defining
 * instruction) a store is planted at the top of the entry block, so
 * the register's live range shrinks to that single point.
 */
void
demoteToMemory(Function &func, Reg victim, bool is_float,
               bool is_param)
{
    std::int64_t off = func.addFrameSlot(
        "spill.v" + std::to_string(victim), is_float);
    Opcode ld = is_float ? Opcode::LoadF : Opcode::LoadW;
    Opcode st = is_float ? Opcode::StoreF : Opcode::StoreW;

    for (auto &bb : func.blocks) {
        std::vector<Instr> out;
        out.reserve(bb.instrs.size());
        for (auto &in : bb.instrs) {
            bool uses = false;
            in.forEachSrc([&](Reg r) { uses |= (r == victim); });
            if (uses) {
                Reg tmp = func.newVirtReg();
                out.push_back(
                    Instr::load(ld, tmp, func.fpReg, off).at(in.loc));
                in.rewriteSrcs(
                    [&](Reg r) { return r == victim ? tmp : r; });
            }
            if (in.dst == victim) {
                Reg tmp = func.newVirtReg();
                in.dst = tmp;
                out.push_back(in);
                out.push_back(
                    Instr::store(st, func.fpReg, off, tmp).at(in.loc));
            } else {
                out.push_back(in);
            }
        }
        bb.instrs = std::move(out);
    }

    if (is_param) {
        auto &entry = func.entry().instrs;
        entry.insert(entry.begin(),
                     Instr::store(st, func.fpReg, off, victim));
    }
}

} // namespace

int
assignRegisters(Function &func, const RegFileLayout &layout)
{
    SS_ASSERT(!func.allocated, "assignRegisters: already allocated");
    int spills = 0;

    // Pin the frame pointer.
    if (func.fpReg != kNoReg)
        func.pinnedRegs[func.fpReg] = layout.fp();

    // Demote long-lived registers until the peak pressure fits the
    // temp supply (the paper's finite temporary register file, §3).
    std::vector<Interval> iv;
    int guard = 0;
    while (true) {
        iv = buildIntervals(func);
        std::vector<Reg> peak;
        std::uint32_t pressure = maxPressure(func, iv, &peak);
        if (pressure <= layout.numTemp)
            break;
        SS_ASSERT(!peak.empty(), "pressure without a peak set");

        // Demote enough of the longest-lived peak registers to fit,
        // in one batch (each round recomputes liveness, so batching
        // keeps the spill loop near-linear).  Minimal intervals are
        // spill reloads: demoting them again only recreates them.
        // Parameters are demotable (their entry store shrinks the
        // range to one point), but only as a last resort.
        auto is_param = [&](Reg r) {
            return std::find(func.paramRegs.begin(),
                             func.paramRegs.end(),
                             r) != func.paramRegs.end();
        };
        std::vector<Reg> victims;
        for (Reg r : peak) {
            if (iv[r].length() >= 2)
                victims.push_back(r);
        }
        if (victims.empty())
            // A machine-configuration limit, not a supersym bug:
            // recoverable so a sweep cell with a tiny temp file
            // degrades into one reportable error.
            throw DiagException(Diag{
                Severity::Error, ErrCode::OptTempRegsExhausted,
                "temp register file too small (" +
                    std::to_string(layout.numTemp) + " temps) for '" +
                    func.name + "'",
                {}});
        std::sort(victims.begin(), victims.end(),
                  [&](Reg a, Reg b) {
                      return iv[a].length() > iv[b].length();
                  });
        std::size_t need = pressure - layout.numTemp;
        if (victims.size() > need)
            victims.resize(need);
        for (Reg v : victims)
            demoteToMemory(func, v, iv[v].isFloat, is_param(v));
        spills += static_cast<int>(victims.size());
        SS_ASSERT(++guard < 10000, "spill loop diverged in ",
                  func.name);
    }

    // Greedy linear scan: interval graphs are perfect, so with peak
    // pressure <= numTemp this always succeeds.
    std::vector<const Interval *> order;
    for (const auto &i : iv) {
        if (!i.live() || func.pinnedRegs.count(i.reg) ||
            i.reg == func.fpReg)
            continue;
        order.push_back(&i);
    }
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  if (a->start != b->start)
                      return a->start < b->start;
                  return a->reg < b->reg;
              });

    // Pick the least-recently-freed available temp rather than the
    // lowest-numbered one: maximizing the reuse distance minimizes
    // the artificial WAR/WAW dependencies that temp reuse introduces
    // (§3 — reuse "introduces an artificial dependency that can
    // interfere with pipeline scheduling"), which is what a careful
    // hand allocator (and the paper's compiler) would do.
    std::vector<Reg> assignment(func.numVirtRegs, kNoReg);
    std::vector<std::uint32_t> temp_free(layout.numTemp, 0);
    for (const Interval *i : order) {
        std::uint32_t slot = layout.numTemp;
        for (std::uint32_t t = 0; t < layout.numTemp; ++t) {
            if (temp_free[t] > i->start)
                continue;
            if (slot == layout.numTemp ||
                temp_free[t] < temp_free[slot])
                slot = t;
        }
        SS_ASSERT(slot < layout.numTemp,
                  "linear scan failed in ", func.name);
        temp_free[slot] = i->end + 1;
        assignment[i->reg] = layout.tempReg(slot);
    }

    // Pinned registers map directly.
    for (const auto &[vr, pr] : func.pinnedRegs)
        assignment[vr] = pr;

    // Rewrite all operands.
    auto map = [&](Reg r) {
        if (r == kNoReg)
            return r;
        Reg m = assignment[r];
        // Dead registers (never used) may be unassigned; park them in
        // temp 0 — nothing reads them.
        return m == kNoReg ? layout.tempReg(0) : m;
    };
    for (auto &bb : func.blocks) {
        for (auto &in : bb.instrs) {
            if (in.dst != kNoReg)
                in.dst = map(in.dst);
            in.rewriteSrcs([&](Reg r) { return map(r); });
        }
    }
    for (Reg &p : func.paramRegs)
        p = map(p);
    func.fpReg = layout.fp();
    func.pinnedRegs.clear();
    func.layout = layout;
    func.allocated = true;
    return spills;
}

} // namespace ilp
