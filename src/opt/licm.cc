#include <algorithm>
#include <map>
#include <set>

#include "ir/alias.hh"
#include "ir/dominators.hh"
#include "ir/liveness.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/** Is this instruction a pure register computation, safe to hoist
 *  speculatively? Divides can fault and are excluded. */
bool
hoistablePure(const Instr &in)
{
    if (in.dst == kNoReg)
        return false;
    switch (in.op) {
      case Opcode::DivI:
      case Opcode::RemI:
      case Opcode::DivF:
        return false;
      case Opcode::LiI:
      case Opcode::LiF:
        return true;
      default:
        return (isBinaryAlu(in.op) || isUnaryAlu(in.op));
    }
}

/**
 * Insert a preheader for `loop`: out-of-loop predecessors of the
 * header are retargeted to it; returns the preheader block id.
 */
BlockId
makePreheader(Function &func, const NaturalLoop &loop,
              const Dominators &dom)
{
    BlockId header = loop.header;
    SS_ASSERT(header != 0, "entry block cannot be a loop header here");

    BlockId pre = func.addBlock("preheader.bb" +
                                std::to_string(header));
    for (BlockId p : dom.preds()[header]) {
        if (loop.contains(p))
            continue;
        Instr &t = func.blocks[p].terminator();
        if (t.target0 == header)
            t.target0 = pre;
        if (t.op == Opcode::Br && t.target1 == header)
            t.target1 = pre;
    }
    func.blocks[pre].instrs.push_back(Instr::jmp(header));
    return pre;
}

/**
 * Memory behaviour of one loop: the set of objects it stores to, and
 * whether load hoisting is allowed at all.
 */
struct LoopMem
{
    bool loadsHoistable = true;
    std::set<std::int64_t> storeObjects;
    /** Per (block, instr) object of each load, -1 when unknown. */
    std::map<std::pair<BlockId, std::size_t>, std::int64_t> loadObject;
};

LoopMem
analyzeLoopMemory(const Module &module, const Function &func,
                  const NaturalLoop &loop)
{
    LoopMem out;
    for (BlockId b : loop.blocks) {
        const BasicBlock &bb = func.blocks[b];
        BlockAliasAnalysis aa(module, func, bb);
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr &in = bb.instrs[i];
            if (in.op == Opcode::Call) {
                out.loadsHoistable = false;
            } else if (isStore(in.op)) {
                std::int64_t obj = aa.refInfo(i).object;
                if (obj == -1)
                    out.loadsHoistable = false;
                else
                    out.storeObjects.insert(obj);
            } else if (isLoad(in.op)) {
                out.loadObject[{b, i}] = aa.refInfo(i).object;
            }
        }
    }
    return out;
}

} // namespace

int
hoistLoopInvariants(const Module &module, Function &func)
{
    SS_ASSERT(!func.allocated,
              "hoistLoopInvariants needs virtual registers");
    int hoisted_total = 0;

    // Loops are reprocessed from scratch after each change because
    // preheader insertion rewrites the CFG.
    bool any_progress = true;
    std::set<BlockId> processed_headers;
    while (any_progress) {
        any_progress = false;
        Dominators dom(func);
        auto loops = findNaturalLoops(func, dom);
        // Innermost first.
        std::sort(loops.begin(), loops.end(),
                  [](const NaturalLoop &a, const NaturalLoop &b) {
                      return a.depth > b.depth;
                  });

        for (const auto &loop : loops) {
            if (processed_headers.count(loop.header))
                continue;
            processed_headers.insert(loop.header);

            // Count definitions of each register inside the loop.
            std::vector<int> defs(func.numVirtRegs, 0);
            for (BlockId b : loop.blocks) {
                for (const auto &in : func.blocks[b].instrs) {
                    if (in.dst != kNoReg)
                        ++defs[in.dst];
                }
            }

            Liveness live(func);
            LoopMem mem = analyzeLoopMemory(module, func, loop);
            std::set<Reg> hoisted_regs;
            std::vector<Instr> to_preheader;

            // Iterate to a fixpoint so chains of invariants hoist.
            bool changed = true;
            while (changed) {
                changed = false;
                for (BlockId b : loop.blocks) {
                    auto &instrs = func.blocks[b].instrs;
                    for (std::size_t idx = 0; idx < instrs.size();) {
                        const Instr &in = instrs[idx];
                        bool candidate = hoistablePure(in);
                        if (!candidate && isLoad(in.op) &&
                            mem.loadsHoistable) {
                            auto it = mem.loadObject.find({b, idx});
                            // After earlier erasures the recorded
                            // index may be stale; recompute lazily by
                            // accepting only exact hits.
                            std::int64_t obj =
                                it != mem.loadObject.end()
                                    ? it->second
                                    : -1;
                            candidate =
                                obj != -1 &&
                                !mem.storeObjects.count(obj);
                        }
                        bool ok = candidate && in.dst != kNoReg &&
                                  defs[in.dst] == 1 &&
                                  !live.isLiveIn(loop.header, in.dst) &&
                                  !hoisted_regs.count(in.dst);
                        if (ok) {
                            in.forEachSrc([&](Reg r) {
                                if (defs[r] > 0 &&
                                    !hoisted_regs.count(r))
                                    ok = false;
                            });
                        }
                        if (ok) {
                            to_preheader.push_back(in);
                            hoisted_regs.insert(in.dst);
                            // Keep loadObject keys in sync with the
                            // shifting indices of this block.
                            std::map<std::pair<BlockId, std::size_t>,
                                     std::int64_t>
                                fixed;
                            for (auto &[key, o] : mem.loadObject) {
                                auto [kb, ki] = key;
                                if (kb == b && ki == idx)
                                    continue;
                                if (kb == b && ki > idx)
                                    fixed[{kb, ki - 1}] = o;
                                else
                                    fixed[{kb, ki}] = o;
                            }
                            mem.loadObject = std::move(fixed);
                            instrs.erase(
                                instrs.begin() +
                                static_cast<std::ptrdiff_t>(idx));
                            changed = true;
                        } else {
                            ++idx;
                        }
                    }
                }
            }

            if (!to_preheader.empty()) {
                BlockId pre = makePreheader(func, loop, dom);
                auto &pre_instrs = func.blocks[pre].instrs;
                pre_instrs.insert(pre_instrs.begin(),
                                  to_preheader.begin(),
                                  to_preheader.end());
                hoisted_total +=
                    static_cast<int>(to_preheader.size());
                any_progress = true;
                break; // CFG changed; recompute analyses
            }
        }
    }
    return hoisted_total;
}

} // namespace ilp
