#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "ir/alias.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/**
 * Dependence-graph list scheduling of one basic block for one machine
 * (§3: "The compile-time pipeline instruction scheduler knows this and
 * schedules the instructions in a basic block so that the resulting
 * stall time will be minimized").
 *
 * Edges:
 *  - register RAW, WAR, WAW (the code is post-allocation, so temp
 *    reuse produces exactly the artificial dependencies the paper
 *    attributes to a finite temp file);
 *  - memory RAW/WAW/WAR between stores and loads that may alias at
 *    the chosen level;
 *  - calls are two-sided barriers for memory operations and other
 *    calls;
 *  - the terminator stays last.
 *
 * Priority: longest latency-weighted path to the end of the block;
 * ties break towards original program order.
 */
class BlockScheduler
{
  public:
    BlockScheduler(const Module &module, const Function &func,
                   BasicBlock &bb, const MachineConfig &machine,
                   AliasLevel alias)
        : bb_(bb), machine_(machine),
          aa_(module, func, bb), alias_(alias)
    {
    }

    void
    run(ScheduleStats *stats)
    {
        const std::size_t n = bb_.instrs.size();
        if (n < 3) {
            // Nothing to reorder around the terminator.
            if (stats)
                ++stats->blocksSkipped;
            return;
        }

        buildEdges();
        computePriorities();
        listSchedule(stats);
    }

  private:
    void
    addEdge(std::size_t from, std::size_t to)
    {
        SS_ASSERT(from < to, "dependence edges must go forward");
        succs_[from].push_back(to);
        ++npreds_[to];
    }

    void
    buildEdges()
    {
        const std::size_t n = bb_.instrs.size();
        succs_.assign(n, {});
        npreds_.assign(n, 0);

        // Last writer and readers-since per register.
        std::unordered_map<Reg, std::size_t> last_def;
        std::unordered_map<Reg, std::vector<std::size_t>> readers;

        std::vector<std::size_t> mem_ops;
        std::size_t last_call = SIZE_MAX;

        for (std::size_t i = 0; i < n; ++i) {
            const Instr &in = bb_.instrs[i];

            // Register RAW and WAR/WAW.
            in.forEachSrc([&](Reg r) {
                auto d = last_def.find(r);
                if (d != last_def.end())
                    addEdge(d->second, i);
                readers[r].push_back(i);
            });
            if (in.dst != kNoReg) {
                auto d = last_def.find(in.dst);
                if (d != last_def.end())
                    addEdge(d->second, i); // WAW
                for (std::size_t rd : readers[in.dst]) {
                    if (rd != i)
                        addEdge(rd, i); // WAR
                }
                readers[in.dst].clear();
                last_def[in.dst] = i;
            }

            // Memory and call ordering.
            bool mem = isMem(in.op);
            bool call = in.op == Opcode::Call;
            if (mem || call) {
                if (last_call != SIZE_MAX)
                    addEdge(last_call, i);
            }
            if (call) {
                for (std::size_t m : mem_ops)
                    addEdge(m, i);
                mem_ops.clear();
                last_call = i;
            } else if (mem) {
                bool i_store = isStore(in.op);
                for (std::size_t m : mem_ops) {
                    bool m_store = isStore(bb_.instrs[m].op);
                    if (!i_store && !m_store)
                        continue; // load-load never conflicts
                    if (aa_.mayAlias(m, i, alias_))
                        addEdge(m, i);
                }
                mem_ops.push_back(i);
            }

            // Terminator last: every earlier instruction precedes it.
            if (i + 1 == n) {
                SS_ASSERT(isTerminator(in.op),
                          "block must end in a terminator");
                for (std::size_t j = 0; j + 1 < n; ++j) {
                    // Avoid duplicate edges cheaply: only add if j has
                    // no direct edge to i yet.
                    if (std::find(succs_[j].begin(), succs_[j].end(),
                                  i) == succs_[j].end())
                        addEdge(j, i);
                }
            }
        }
    }

    int
    latencyOf(std::size_t i) const
    {
        return machine_.latencyBase(bb_.instrs[i].cls());
    }

    void
    computePriorities()
    {
        const std::size_t n = bb_.instrs.size();
        prio_.assign(n, 0);
        for (std::size_t i = n; i-- > 0;) {
            int best = 0;
            for (std::size_t s : succs_[i])
                best = std::max(best, prio_[s]);
            prio_[i] = best + latencyOf(i);
        }
    }

    void
    listSchedule(ScheduleStats *stats)
    {
        const std::size_t n = bb_.instrs.size();
        std::vector<std::size_t> order;
        order.reserve(n);

        std::vector<int> preds_left = npreds_;
        std::vector<std::uint64_t> ready_at(n, 0);
        std::vector<char> scheduled(n, 0);

        // Ready list: instructions whose predecessors are scheduled.
        std::vector<std::size_t> ready;
        for (std::size_t i = 0; i < n; ++i) {
            if (preds_left[i] == 0)
                ready.push_back(i);
        }

        std::uint64_t cycle = 0;
        std::uint64_t sched_len = 0;
        int slots_used = 0;
        while (order.size() < n) {
            // Candidates ready by data at the current cycle.
            std::size_t pick = SIZE_MAX;
            for (std::size_t c : ready) {
                if (ready_at[c] > cycle)
                    continue;
                if (pick == SIZE_MAX || prio_[c] > prio_[pick] ||
                    (prio_[c] == prio_[pick] && c < pick))
                    pick = c;
            }
            if (pick == SIZE_MAX) {
                // Nothing ready: stall to the earliest ready time.
                std::uint64_t next =
                    std::numeric_limits<std::uint64_t>::max();
                for (std::size_t c : ready)
                    next = std::min(next, ready_at[c]);
                SS_ASSERT(next !=
                              std::numeric_limits<std::uint64_t>::max(),
                          "scheduler deadlock");
                cycle = next;
                slots_used = 0;
                continue;
            }

            order.push_back(pick);
            sched_len = cycle + 1;
            scheduled[pick] = 1;
            ready.erase(std::find(ready.begin(), ready.end(), pick));
            for (std::size_t s : succs_[pick]) {
                ready_at[s] = std::max(
                    ready_at[s],
                    cycle + static_cast<std::uint64_t>(
                                latencyOf(pick)));
                if (--preds_left[s] == 0)
                    ready.push_back(s);
            }
            if (++slots_used >= machine_.issueWidth) {
                ++cycle;
                slots_used = 0;
            }
        }

        if (stats) {
            ++stats->blocksScheduled;
            stats->slotsFilled += n;
            stats->slotsTotal +=
                sched_len *
                static_cast<std::uint64_t>(machine_.issueWidth);
        }

        std::vector<Instr> out;
        out.reserve(n);
        for (std::size_t i : order)
            out.push_back(bb_.instrs[i]);
        bb_.instrs = std::move(out);
    }

    BasicBlock &bb_;
    const MachineConfig &machine_;
    BlockAliasAnalysis aa_;
    AliasLevel alias_;

    std::vector<std::vector<std::size_t>> succs_;
    std::vector<int> npreds_;
    std::vector<int> prio_;
};

} // namespace

void
scheduleFunction(const Module &module, Function &func,
                 const MachineConfig &machine, AliasLevel alias,
                 ScheduleStats *stats)
{
    SS_ASSERT(func.allocated,
              "scheduleFunction runs after register assignment");
    for (auto &bb : func.blocks) {
        BlockScheduler sched(module, func, bb, machine, alias);
        sched.run(stats);
    }
}

} // namespace ilp
