#include <algorithm>
#include <unordered_map>

#include "ir/liveness.hh"
#include "opt/passes.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/**
 * One rebalancing attempt in a block; returns true if a chain was
 * rewritten (caller restarts, since indices shift).
 */
bool
rebalanceOne(Function &func, BasicBlock &bb, const Liveness &live)
{
    const std::size_t n = bb.instrs.size();

    // Per-register bookkeeping within this block.
    std::unordered_map<Reg, int> def_count;
    std::unordered_map<Reg, std::size_t> def_index;
    std::unordered_map<Reg, int> use_count;
    for (std::size_t i = 0; i < n; ++i) {
        const Instr &in = bb.instrs[i];
        in.forEachSrc([&](Reg r) { ++use_count[r]; });
        if (in.dst != kNoReg) {
            ++def_count[in.dst];
            def_index[in.dst] = i;
        }
    }

    auto expandable = [&](Reg r, Opcode op,
                          std::size_t consumer) -> int {
        // Is r the single-use, single-def result of another `op`
        // reg-reg instruction in this block, defined before its
        // consumer and not observed outside?
        auto dc = def_count.find(r);
        if (dc == def_count.end() || dc->second != 1)
            return -1;
        if (use_count[r] != 1)
            return -1;
        if (live.isLiveOut(bb.id, r))
            return -1;
        std::size_t j = def_index[r];
        if (j >= consumer)
            return -1; // the use sees the block-entry value
        const Instr &d = bb.instrs[j];
        if (d.op != op || d.hasImm || d.src2 == kNoReg)
            return -1;
        return static_cast<int>(j);
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Instr &root = bb.instrs[i];
        if (!isReassociable(root.op) || root.hasImm ||
            root.src2 == kNoReg || root.dst == kNoReg)
            continue;

        // Gather the maximal chain under this root.
        std::vector<Reg> leaves;
        std::vector<std::size_t> internal;
        bool viable = true;
        std::size_t cur_depth = 0; // ops on the deepest root-to-leaf path
        struct WorkItem
        {
            Reg reg;
            std::size_t consumer;
            std::size_t depth;
        };
        std::vector<WorkItem> work{{root.src1, i, 1},
                                   {root.src2, i, 1}};
        while (!work.empty()) {
            auto [r, consumer, depth] = work.back();
            work.pop_back();
            int j = expandable(r, root.op, consumer);
            if (j >= 0) {
                internal.push_back(static_cast<std::size_t>(j));
                work.push_back({bb.instrs[j].src1,
                                static_cast<std::size_t>(j),
                                depth + 1});
                work.push_back({bb.instrs[j].src2,
                                static_cast<std::size_t>(j),
                                depth + 1});
            } else {
                // Leaf: its value must still be intact at the root's
                // position, i.e. no redefinition in (consumer, i].
                auto dc = def_count.find(r);
                if (dc != def_count.end()) {
                    std::size_t j2 = def_index[r];
                    if (dc->second > 1 ||
                        (j2 >= consumer && j2 <= i))
                        viable = false;
                }
                leaves.push_back(r);
                cur_depth = std::max(cur_depth, depth);
            }
        }
        if (!viable || leaves.size() < 3)
            continue; // nothing to rebalance

        // Already balanced?  A balanced tree over `leaves` operands
        // has depth ceil(log2(leaves)).
        std::size_t chain_ops = leaves.size() - 1;
        std::size_t balanced_depth = 0;
        while ((std::size_t{1} << balanced_depth) < leaves.size())
            ++balanced_depth;
        if (cur_depth <= balanced_depth)
            continue; // can't improve

        // Rebuild: pair leaves into a balanced tree placed at the
        // root's position; delete the internal instructions.
        std::vector<Instr> tree;
        std::vector<Reg> level = leaves;
        while (level.size() > 1) {
            std::vector<Reg> next;
            for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
                bool last_pair =
                    level.size() == 2; // final combine -> root dst
                Reg dst =
                    last_pair ? root.dst : func.newVirtReg();
                tree.push_back(Instr::binary(root.op, dst, level[k],
                                                          level[k + 1])
                                             .at(root.loc));
                next.push_back(dst);
            }
            if (level.size() % 2)
                next.push_back(level.back());
            level = std::move(next);
        }
        SS_ASSERT(tree.size() == chain_ops, "tree size mismatch");

        // Splice: remove internal defs and the root, insert the tree
        // at the root's position.
        std::vector<char> dead(n, 0);
        for (std::size_t j : internal)
            dead[j] = 1;
        std::vector<Instr> out;
        out.reserve(n + tree.size());
        for (std::size_t k = 0; k < n; ++k) {
            if (k == i) {
                for (auto &t : tree)
                    out.push_back(t);
                continue;
            }
            if (!dead[k])
                out.push_back(bb.instrs[k]);
        }
        bb.instrs = std::move(out);
        return true;
    }
    return false;
}

} // namespace

int
reassociate(Function &func)
{
    SS_ASSERT(!func.allocated, "reassociate needs virtual registers");
    int changed = 0;
    // Liveness is recomputed per round; rebalancing only touches
    // block-local single-use temps so block boundaries stay stable.
    bool progress = true;
    while (progress) {
        progress = false;
        Liveness live(func);
        for (auto &bb : func.blocks) {
            if (rebalanceOne(func, bb, live)) {
                ++changed;
                progress = true;
            }
        }
    }
    return changed;
}

} // namespace ilp
