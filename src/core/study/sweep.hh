/**
 * @file
 * The parallel sweep engine.
 *
 * The paper's whole method is evaluating one (workload, compile
 * options) pair across many machine specifications (§3–§4).  Every
 * such sweep is embarrassingly parallel — cells share nothing but
 * immutable inputs — and highly cache-friendly: cells that differ
 * only in parameters the compiler cannot see (e.g. operation
 * latencies with identical scheduling behaviour do differ, but two
 * machines differing only in *name*) share a compilation.
 *
 * SweepRunner fans cell evaluations out over a fixed pool of
 * std::thread workers pulling indices off an atomic queue; results
 * land in an index-ordered vector, so consumers that fill tables or
 * append trajectories after the barrier produce byte-identical
 * output regardless of the job count.
 *
 * CompileCache shares compiled Modules between cells: one compilation
 * per distinct (workload, compile options, scheduling-relevant
 * machine parameters) key, concurrency-safe via per-entry futures so
 * two workers never duplicate a compile.  Modules are immutable after
 * compilation and each cell gets its own Interpreter/IssueEngine, so
 * sharing them across threads is safe by construction.
 *
 * Job-count resolution (see defaultSweepJobs): explicit argument >
 * SSIM_JOBS environment variable > std::thread::hardware_concurrency.
 */

#ifndef SUPERSYM_CORE_STUDY_SWEEP_HH
#define SUPERSYM_CORE_STUDY_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/study/driver.hh"
#include "sim/cancel.hh"
#include "support/faultinject.hh"

namespace ilp {

/**
 * Worker count used when a SweepRunner is built without an explicit
 * job count: SSIM_JOBS when set to a positive integer, otherwise the
 * hardware concurrency (at least 1).  A malformed SSIM_JOBS warns and
 * falls through.
 */
int defaultSweepJobs();

/** One failed sweep cell: a stable error code plus the formatted
 *  diagnostic text.  Deterministic for a given cell — the same cell
 *  fails identically at any job count. */
struct CellError
{
    ErrCode code = ErrCode::None;
    std::string message;

    bool valid() const { return code != ErrCode::None; }
};

/** Translate the in-flight exception into a CellError (call from a
 *  catch handler): DiagException and TrapException keep their stable
 *  codes and full formatted text; anything else maps to E0999. */
CellError currentCellError();

/** Record a keep-going cell failure with the observability layer:
 *  stamps the error's E-code onto the enclosing flight-recorder span
 *  (so the worker timeline shows the trapped cell instead of
 *  truncating), bumps the failed-cells metric, and notifies the live
 *  progress reporter. */
void noteCellFailure(const CellError &error);

/** Value-or-error result of one sweep cell under keep-going mode. */
template <typename T>
struct CellOutcome
{
    T value{};
    CellError error;
    /** Evaluation attempts this cell took (1 = first try succeeded;
     *  only mapHardened retries, so mapChecked always reports 1). */
    int attempts = 1;
    /** The cell completed, but at least one attempt fell back to
     *  live interpretation (memory pressure / non-replayable trace). */
    bool degraded = false;
    /** The cell failed permanently (or exhausted its retries) and
     *  was isolated from the sweep. */
    bool quarantined = false;

    bool ok() const { return !error.valid(); }
};

/** Per-cell survivability policy for mapHardened. */
struct CellPolicy
{
    /** Cooperative watchdog budget per *attempt*; <= 0 disables. */
    double timeoutSeconds = 0.0;
    /** Max retries after the first attempt, for transient-classed
     *  errors only (errCodeTransient). */
    int maxRetries = 0;
    /** Quarantine failing cells instead of aborting the sweep. */
    bool keepGoing = false;
};

/** Sweep-wide survivability accounting; each field reconciles
 *  exactly with its ssim_sweep_* metric counter. */
struct HardeningTotals
{
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t degraded = 0;
};

/** Result of a hardened sweep: index-ordered outcomes plus totals. */
template <typename T>
struct HardenedSweep
{
    std::vector<CellOutcome<T>> cells;
    HardeningTotals totals;
};

/** Record that the current cell attempt degraded to live
 *  interpretation (called from Study::timedRun's fallback path;
 *  no-op outside a hardened cell). */
void noteDegradedCell();

namespace detail {

/** Clear / read the thread-local degraded flag around one attempt. */
void beginCellAttempt();
bool cellAttemptDegraded();

/** Bump the hardening metric counters (one relaxed atomic each). */
void noteRetryMetric();
void noteTimeoutMetric();
void noteQuarantineMetric();
void noteDegradedMetric();

/** Sleep the exponential-backoff delay (deterministic jitter from
 *  (cell, attempt), ~1-100 ms) before a retry. */
void backoffBeforeRetry(std::size_t cell, int attempt);

} // namespace detail

/**
 * A fixed worker pool over an atomic-index work queue.  Stateless
 * between run() calls; cheap to construct.  jobs == 1 degenerates to
 * a plain serial loop on the calling thread, which is the reference
 * behaviour parallel runs must reproduce bit-for-bit.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker count; <= 0 resolves via defaultSweepJobs. */
    explicit SweepRunner(int jobs = 0);

    int jobs() const { return jobs_; }

    /**
     * Evaluate fn(0) .. fn(count-1), each exactly once, across the
     * pool (the calling thread participates).  The first exception
     * thrown by any cell stops the sweep and is rethrown here after
     * all workers have joined.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn) const;

    /**
     * run() collecting fn(i) into slot i of the result vector — the
     * deterministic merge point: results are index-ordered no matter
     * which worker computed them, so downstream table/trajectory
     * assembly is independent of the job count.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(std::size_t count, Fn &&fn) const
    {
        std::vector<T> out(count);
        run(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Fault-isolated map: a throwing cell is captured as a CellError
     * in its own slot while every other cell still runs to
     * completion ("keep going").  Because errors are recorded at the
     * failing index rather than by arrival order, the result —
     * values and errors both — is deterministic across job counts.
     */
    template <typename T, typename Fn>
    std::vector<CellOutcome<T>>
    mapChecked(std::size_t count, Fn &&fn) const
    {
        std::vector<CellOutcome<T>> out(count);
        run(count, [&](std::size_t i) {
            try {
                out[i].value = fn(i);
            } catch (...) {
                out[i].error = currentCellError();
                noteCellFailure(out[i].error);
            }
        });
        return out;
    }

    /**
     * The survivable sweep: mapChecked plus per-attempt watchdog
     * deadlines, bounded retry with exponential backoff for
     * transient-classed errors (injected faults, memory pressure),
     * and quarantine of permanently failing cells.  Values stay
     * index-ordered and — because retried cells recompute the same
     * deterministic computation — byte-identical to a fault-free run.
     * Without keepGoing a quarantined cell aborts the sweep by
     * rethrowing (the fail-fast contract of run()).
     */
    template <typename T, typename Fn>
    HardenedSweep<T>
    mapHardened(std::size_t count, const CellPolicy &policy,
                Fn &&fn) const
    {
        HardenedSweep<T> out;
        out.cells.resize(count);
        std::atomic<std::uint64_t> retries{0}, timeouts{0},
            quarantined{0}, degraded{0};
        run(count, [&](std::size_t i) {
            CellOutcome<T> &slot = out.cells[i];
            for (int attempt = 0;; ++attempt) {
                std::exception_ptr raised;
                detail::beginCellAttempt();
                try {
                    cancel::ScopedCellDeadline watchdog(
                        policy.timeoutSeconds);
                    if (fault::enabled())
                        fault::maybeInject("cell");
                    slot.value = fn(i);
                } catch (...) {
                    raised = std::current_exception();
                    slot.error = currentCellError();
                }
                slot.attempts = attempt + 1;
                if (!raised) {
                    slot.error = {};
                    if (detail::cellAttemptDegraded()) {
                        slot.degraded = true;
                        degraded.fetch_add(1,
                                           std::memory_order_relaxed);
                        detail::noteDegradedMetric();
                    }
                    return;
                }
                if (slot.error.code ==
                    ErrCode::TrapDeadlineExceeded) {
                    timeouts.fetch_add(1, std::memory_order_relaxed);
                    detail::noteTimeoutMetric();
                }
                if (errCodeTransient(slot.error.code) &&
                    attempt < policy.maxRetries) {
                    retries.fetch_add(1, std::memory_order_relaxed);
                    detail::noteRetryMetric();
                    detail::backoffBeforeRetry(i, attempt);
                    continue;
                }
                slot.quarantined = true;
                quarantined.fetch_add(1, std::memory_order_relaxed);
                detail::noteQuarantineMetric();
                noteCellFailure(slot.error);
                if (!policy.keepGoing)
                    std::rethrow_exception(raised);
                return;
            }
        });
        out.totals.retries = retries.load();
        out.totals.timeouts = timeouts.load();
        out.totals.quarantined = quarantined.load();
        out.totals.degraded = degraded.load();
        return out;
    }

  private:
    int jobs_;
};

/**
 * A concurrency-safe cache of compiled workloads.
 *
 * Keyed by the workload identity (name + source hash), the compile
 * options, and every machine parameter the compiler can observe
 * (issue width, pipeline degree, latency table, functional units,
 * branch-issue policy, register layout) — but *not* the machine's
 * name, so renamed or re-labelled variants of one specification share
 * a compilation.  The first requester compiles; concurrent
 * requesters for the same key block on the entry's future instead of
 * recompiling.  Compile telemetry is captured once on the miss and
 * handed to every requester, so stats snapshots do not depend on who
 * hit the cache.
 */
class CompileCache
{
  public:
    /**
     * Compiled module for (workload, machine, options), compiling on
     * first use.  `telemetry`, when non-null, receives the telemetry
     * recorded by the (single) compilation of this key.
     */
    std::shared_ptr<const Module>
    compile(const Workload &workload, const MachineConfig &machine,
            const CompileOptions &options,
            CompileTelemetry *telemetry = nullptr);

    /** The cache key; exposed for tests and diagnostics. */
    static std::string key(const Workload &workload,
                           const MachineConfig &machine,
                           const CompileOptions &options);

    /** Lookups served from an existing entry. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Lookups that had to compile. */
    std::uint64_t misses() const { return misses_.load(); }
    /** Compilations that failed.  Failed entries are evicted (never
     *  cached), so a later request for the same key retries. */
    std::uint64_t failures() const { return failures_.load(); }
    /** Distinct compilations held. */
    std::size_t size() const;

    /** Export hit/miss/failure/size counters into a stats group. */
    void exportStats(stats::Group &g) const;

  private:
    struct Compiled
    {
        std::shared_ptr<const Module> module;
        CompileTelemetry telemetry;
    };

    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<Compiled>> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> failures_{0};
};

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_SWEEP_HH
