#include "core/study/driver.hh"

#include <bit>
#include <chrono>

#include "sim/exec.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ilp {

namespace {

metrics::Histogram &
executeSeconds()
{
    static metrics::Histogram &h =
        metrics::Registry::global().histogram(
            "ssim_execute_seconds",
            "Wall-clock seconds per functional execution.");
    return h;
}

metrics::Histogram &
replaySeconds()
{
    static metrics::Histogram &h =
        metrics::Registry::global().histogram(
            "ssim_replay_seconds",
            "Wall-clock seconds per timing replay of a cached trace.");
    return h;
}

metrics::Histogram &
liveRunSeconds()
{
    static metrics::Histogram &h =
        metrics::Registry::global().histogram(
            "ssim_live_run_seconds",
            "Wall-clock seconds per live (non-replay) timing run.");
    return h;
}

} // namespace

CompileOptions
defaultCompileOptions(const Workload &workload)
{
    CompileOptions o;
    o.level = OptLevel::RegAlloc;
    o.unroll.factor = workload.defaultUnroll;
    o.unroll.careful = false;
    o.alias = AliasLevel::Arrays;
    o.layout.numTemp = 16;
    o.layout.numHome = 26;
    return o;
}

Result<Module>
compileWorkloadChecked(const std::string &source,
                       const MachineConfig &machine,
                       const CompileOptions &options,
                       CompileTelemetry *telemetry,
                       const std::string &unit)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    Result<Module> compiled =
        compileToIrChecked(source, options.unroll, unit);
    if (!compiled.ok())
        return compiled;
    Module module = compiled.take();
    const Clock::time_point t1 = Clock::now();
    if (telemetry) {
        PhaseStat &fe = telemetry->phase("frontend");
        fe.wallMs +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        fe.runs += 1;
        for (const auto &func : module.functions()) {
            fe.instrsAfter += func.instrCount();
            fe.blocksAfter += func.blocks.size();
        }
        telemetry->addSpan("frontend", t0, t1);
    }
    OptimizeOptions oo;
    oo.level = options.level;
    oo.layout = options.layout;
    oo.alias = options.alias;
    oo.reassociate = options.unroll.careful;
    try {
        optimizeModule(module, machine, oo, telemetry);
    } catch (const DiagException &e) {
        // Machine-configuration limits (e.g. a temp register file
        // too small for the workload) surface as diagnostics.
        return Result<Module>::failure(e.diags());
    }
    return Result<Module>::success(std::move(module));
}

Module
compileWorkload(const std::string &source, const MachineConfig &machine,
                const CompileOptions &options,
                CompileTelemetry *telemetry)
{
    Result<Module> r =
        compileWorkloadChecked(source, machine, options, telemetry);
    if (!r.ok())
        SS_FATAL(r.formatErrors());
    return r.take();
}

namespace {

/**
 * Shared tail of the streaming (runOnMachine) and replay (timeTrace)
 * paths: fold the functional results and the timed engine into a
 * RunOutcome.  Keeping this in one place is what guarantees the two
 * paths produce byte-identical outcomes and stats trees.
 *
 * A trapped run's returnValue is documented as meaningless, so the
 * checksum (and fpChecksum, which the caller must not have read) stay
 * at their zero defaults.
 */
RunOutcome
assembleOutcome(const RunResult &r, double fpChecksum,
                IssueEngine &engine, CacheSink &dcache,
                const RunTelemetryOptions &telemetry,
                const CompileTelemetry *compile)
{
    RunOutcome out;
    if (!r.trapped()) {
        out.checksum = static_cast<std::int64_t>(r.returnValue);
        out.fpChecksum = fpChecksum;
    }
    out.instructions = r.instructions;
    out.cycles = engine.baseCycles();
    out.trap = r.trap;

    if (telemetry.timelineLimit > 0) {
        out.issueTimeline = engine.timeline();
        out.timelineDropped = engine.timelineDropped();
    }
    if (telemetry.collectProfile) {
        out.pcCounters = engine.profileCounters();
        out.stalls = engine.stallBreakdown();
        out.issueSlotsTotal =
            engine.issuePeriodMinorCycles() *
            static_cast<std::uint64_t>(engine.config().issueWidth);
    }
    if (compile)
        out.compile = *compile;

    if (telemetry.collectStats) {
        stats::Registry registry;
        stats::Group &run = registry.group("run", "headline numbers");
        run.counter("instructions", "dynamic instructions")
            .inc(out.instructions);
        run.scalar("base_cycles", "elapsed base cycles")
            .set(out.cycles);
        run.scalar("ipc", "instructions per base cycle")
            .set(out.ipc());
        run.scalar("checksum", "main()'s return value")
            .set(static_cast<double>(out.checksum));

        engine.exportStats(
            registry.group("issue", "in-order issue engine"));
        dcache.exportStats(
            registry.group("cache", "data-cache model"));
        exportClassMix(
            registry.group("mix", "dynamic instruction mix"),
            r.classCounts);
        if (compile) {
            compile->exportStats(
                registry.group("compile", "compile pipeline"));
        }
        out.stats = registry.snapshot();
    }
    return out;
}

} // namespace

RunOutcome
runOnMachine(const Module &module, const MachineConfig &machine,
             const RunTelemetryOptions &telemetry,
             const CompileTelemetry *compile)
{
    trace::ScopedSpan span("live_run", "execute");
    if (span.armed())
        span.detail(module.sourceName);
    metrics::ScopedTimer timer(metrics::Registry::global(),
                               liveRunSeconds());
    std::unique_ptr<Executor> exec = makeExecutor(module);
    IssueEngine engine(machine);
    if (telemetry.timelineLimit > 0)
        engine.recordTimeline(telemetry.timelineLimit);
    if (telemetry.collectProfile)
        engine.enableProfile(module.pcCount());

    CacheSink dcache(telemetry.cache);
    RunResult r;
    if (telemetry.collectStats) {
        TeeSink tee;
        tee.addSink(&engine);
        tee.addSink(&dcache);
        r = exec->run("main", &tee);
    } else {
        // Fused: the backend binds the engine's emit directly into
        // its dispatch loop.
        r = exec->runTimed("main", engine);
    }

    double fpChecksum = 0.0;
    if (!r.trapped() && module.findGlobal("result_fp")) {
        fpChecksum = std::bit_cast<double>(
            exec->memory().readGlobal(module, "result_fp"));
    }
    return assembleOutcome(r, fpChecksum, engine, dcache, telemetry,
                           compile);
}

TraceArtifact
executeWorkload(const Module &module, std::size_t maxTraceBytes)
{
    trace::ScopedSpan span("execute", "execute");
    if (span.armed())
        span.detail(module.sourceName);
    metrics::ScopedTimer timer(metrics::Registry::global(),
                               executeSeconds());
    TraceArtifact art;
    art.pcCount = module.pcCount();
    std::unique_ptr<Executor> exec = makeExecutor(module);
    PackedSink sink(art.trace, maxTraceBytes);
    art.result = exec->runPacked("main", sink);
    if (!art.result.trapped() && module.findGlobal("result_fp")) {
        art.fpChecksumBits =
            exec->memory().readGlobal(module, "result_fp");
        art.hasFpChecksum = true;
    }
    art.replayable = sink.complete() && !art.result.trapped();
    if (!art.replayable)
        art.trace.clear();
    return art;
}

RunOutcome
timeTrace(const TraceArtifact &artifact, const MachineConfig &machine,
          const RunTelemetryOptions &telemetry,
          const CompileTelemetry *compile)
{
    SS_ASSERT(artifact.replayable,
              "timeTrace needs a replayable artifact; trapped or "
              "lossy executions must go through runOnMachine");
    trace::ScopedSpan span("replay", "replay");
    metrics::ScopedTimer timer(metrics::Registry::global(),
                               replaySeconds());
    IssueEngine engine(machine);
    if (telemetry.timelineLimit > 0)
        engine.recordTimeline(telemetry.timelineLimit);
    if (telemetry.collectProfile)
        engine.enableProfile(artifact.pcCount);

    CacheSink dcache(telemetry.cache);
    if (telemetry.collectStats) {
        TeeSink tee;
        tee.addSink(&engine);
        tee.addSink(&dcache);
        artifact.trace.replay(tee);
    } else {
        artifact.trace.replay(engine);
    }

    const double fpChecksum =
        artifact.hasFpChecksum
            ? std::bit_cast<double>(artifact.fpChecksumBits)
            : 0.0;
    return assembleOutcome(artifact.result, fpChecksum, engine, dcache,
                           telemetry, compile);
}

RunOutcome
runWorkload(const Workload &workload, const MachineConfig &machine,
            const CompileOptions &options,
            const RunTelemetryOptions &telemetry)
{
    const bool want = telemetry.collectStats ||
                      telemetry.timelineLimit > 0;
    CompileTelemetry compile;
    Module module = compileWorkload(workload.source, machine, options,
                                    want ? &compile : nullptr);
    return runOnMachine(module, machine, telemetry,
                        want ? &compile : nullptr);
}

ClassFrequencies
profileWorkload(const Workload &workload, const CompileOptions &options)
{
    MachineConfig base = MachineConfig{};
    Module module = compileWorkload(workload.source, base, options);
    std::unique_ptr<Executor> exec = makeExecutor(module);
    ClassProfileSink profile;
    RunResult r = exec->run("main", &profile);
    if (r.trapped())
        SS_FATAL(r.trap.format());
    return profile.frequencies();
}

} // namespace ilp
