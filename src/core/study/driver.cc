#include "core/study/driver.hh"

#include <bit>

#include "support/logging.hh"

namespace ilp {

CompileOptions
defaultCompileOptions(const Workload &workload)
{
    CompileOptions o;
    o.level = OptLevel::RegAlloc;
    o.unroll.factor = workload.defaultUnroll;
    o.unroll.careful = false;
    o.alias = AliasLevel::Arrays;
    o.layout.numTemp = 16;
    o.layout.numHome = 26;
    return o;
}

Module
compileWorkload(const std::string &source, const MachineConfig &machine,
                const CompileOptions &options)
{
    Module module = compileToIr(source, options.unroll);
    OptimizeOptions oo;
    oo.level = options.level;
    oo.layout = options.layout;
    oo.alias = options.alias;
    oo.reassociate = options.unroll.careful;
    optimizeModule(module, machine, oo);
    return module;
}

RunOutcome
runOnMachine(const Module &module, const MachineConfig &machine)
{
    Interpreter interp(module);
    IssueEngine engine(machine);
    RunResult r = interp.run("main", &engine);

    RunOutcome out;
    out.checksum = static_cast<std::int64_t>(r.returnValue);
    out.instructions = r.instructions;
    out.cycles = engine.baseCycles();
    if (module.findGlobal("result_fp")) {
        out.fpChecksum = std::bit_cast<double>(
            interp.memory().readGlobal(module, "result_fp"));
    }
    return out;
}

RunOutcome
runWorkload(const Workload &workload, const MachineConfig &machine,
            const CompileOptions &options)
{
    Module module =
        compileWorkload(workload.source, machine, options);
    return runOnMachine(module, machine);
}

ClassFrequencies
profileWorkload(const Workload &workload, const CompileOptions &options)
{
    MachineConfig base = MachineConfig{};
    Module module = compileWorkload(workload.source, base, options);
    Interpreter interp(module);
    ClassProfileSink profile;
    interp.run("main", &profile);
    return profile.frequencies();
}

} // namespace ilp
