#include "core/study/tracecache.hh"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "sim/trap.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ilp {

namespace {

// Dual accounting, same contract as CompileCache: the cache atomics
// feed exportStats snapshots, the global counters feed the
// process-wide metrics surface, and the two must reconcile exactly.
metrics::Counter &
traceCacheCounter(const char *name, const char *help)
{
    return metrics::Registry::global().counter(name, help);
}

metrics::Counter &
traceHits()
{
    static metrics::Counter &c = traceCacheCounter(
        "ssim_trace_cache_hits_total",
        "Trace-cache lookups served from an existing entry.");
    return c;
}

metrics::Counter &
traceMisses()
{
    static metrics::Counter &c = traceCacheCounter(
        "ssim_trace_cache_misses_total",
        "Trace-cache lookups that had to execute.");
    return c;
}

metrics::Counter &
traceEvictions()
{
    static metrics::Counter &c = traceCacheCounter(
        "ssim_trace_cache_evictions_total",
        "Trace-cache entries dropped to fit the byte budget.");
    return c;
}

metrics::Counter &
traceFallbacks()
{
    static metrics::Counter &c = traceCacheCounter(
        "ssim_trace_cache_fallbacks_total",
        "Timing runs interpreted live (non-replayable artifact).");
    return c;
}

metrics::Gauge &
traceBytesHeld()
{
    static metrics::Gauge &g = metrics::Registry::global().gauge(
        "ssim_trace_cache_bytes",
        "Trace bytes currently accounted against the budget.");
    return g;
}

} // namespace

bool
parseByteSize(const std::string &text, std::size_t &out)
{
    if (text.empty())
        return false;
    std::size_t shift = 0;
    std::string digits = text;
    switch (digits.back()) {
      case 'k':
      case 'K':
        shift = 10;
        break;
      case 'm':
      case 'M':
        shift = 20;
        break;
      case 'g':
      case 'G':
        shift = 30;
        break;
      default:
        break;
    }
    if (shift != 0)
        digits.pop_back();
    if (digits.empty())
        return false;
    std::size_t value = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        const std::size_t digit = static_cast<std::size_t>(c - '0');
        if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    if (shift != 0 &&
        value > (std::numeric_limits<std::size_t>::max() >> shift))
        return false;
    out = value << shift;
    return true;
}

std::size_t
defaultTraceBudget()
{
    constexpr std::size_t kDefault = std::size_t{2} << 30; // 2 GiB
    if (const char *env = std::getenv("SSIM_TRACE_BUDGET");
        env && *env) {
        std::size_t bytes = 0;
        if (parseByteSize(env, bytes))
            return bytes;
        SS_WARN("SSIM_TRACE_BUDGET='", env,
                "' is not a byte size (digits with optional k/m/g "
                "suffix); using the 2 GiB default");
    }
    return kDefault;
}

void
TraceCache::setBudget(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = bytes;
    evictLocked();
}

void
TraceCache::evictLocked()
{
    while (bytes_held_ > budget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.ready)
                continue;
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            return; // nothing ready to evict; in-flight bytes settle later
        bytes_held_ -= victim->second.bytes;
        entries_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        traceEvictions().inc();
    }
    traceBytesHeld().set(static_cast<double>(bytes_held_));
}

void
TraceCache::noteFallback()
{
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    traceFallbacks().inc();
}

std::shared_ptr<const TraceArtifact>
TraceCache::execute(const std::string &key, const Module &module)
{
    std::shared_future<Artifact> future;
    std::shared_ptr<std::promise<Artifact>> fill;
    std::size_t cap = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            fill = std::make_shared<std::promise<Artifact>>();
            Entry e;
            e.future = fill->get_future().share();
            e.lastUse = ++use_clock_;
            future = e.future;
            entries_.emplace(key, std::move(e));
            cap = budget_;
        } else {
            it->second.lastUse = ++use_clock_;
            future = it->second.future;
        }
    }

    if (fill) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        traceMisses().inc();
        try {
            if (fault::enabled())
                fault::maybeInject("execute");
            // Cap recording at the whole budget: a trace that cannot
            // fit even an empty cache becomes non-replayable rather
            // than blowing past the budget.
            auto art = std::make_shared<const TraceArtifact>(
                executeWorkload(module, cap));
            // A deadline or transient-fault trap is a property of
            // this *attempt*, not of the module: caching it would
            // poison every later request (including untimed resumes),
            // so it propagates as a failure and the entry is evicted
            // — the retry re-executes.  Genuine workload traps stay
            // cached as non-replayable artifacts (live fallback).
            const Trap &trap = art->result.trap;
            if (trap.valid() &&
                (errCodeTransient(trap.code) ||
                 trap.code == ErrCode::TrapDeadlineExceeded))
                throw TrapException(trap);
            if (fault::enabled())
                fault::maybeInject("tracecache.insert");
            const std::size_t bytes = art->byteSize();
            fill->set_value(std::move(art));
            const bool forced_evict =
                fault::enabled() &&
                fault::shouldEvict("tracecache.evict");
            std::lock_guard<std::mutex> lock(mu_);
            auto it = entries_.find(key);
            if (it != entries_.end()) {
                if (forced_evict) {
                    // Chaos: drop the entry immediately.  Waiters
                    // already share the artifact via the future;
                    // later requesters re-execute, exactly as after
                    // a budget eviction.
                    entries_.erase(it);
                    evictions_.fetch_add(1,
                                         std::memory_order_relaxed);
                    traceEvictions().inc();
                } else {
                    it->second.bytes = bytes;
                    it->second.ready = true;
                    bytes_held_ += bytes;
                    evictLocked();
                }
            }
        } catch (...) {
            // Mirror CompileCache: hand the exception to parked
            // waiters, then evict so later requesters retry.
            fill->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu_);
            entries_.erase(key);
        }
    } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        traceHits().inc();
        // Parked on another worker's in-flight execution: make the
        // wait visible on this worker's timeline.
        if (trace::active() &&
            future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
            trace::ScopedSpan span("trace-wait", "cache");
            future.wait();
        }
    }

    return future.get(); // rethrows a failed execution
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::size_t
TraceCache::bytesHeld() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_held_;
}

void
TraceCache::exportStats(stats::Group &g) const
{
    g.counter("hits", "lookups served from the cache").inc(hits());
    g.counter("misses", "lookups that executed").inc(misses());
    g.counter("evictions", "entries dropped to fit the byte budget")
        .inc(evictions());
    g.counter("fallbacks",
              "timing runs interpreted live (non-replayable artifact)")
        .inc(fallbacks());
    g.counter("entries", "distinct executions held").inc(size());
    g.counter("bytes_held", "trace bytes accounted against the budget")
        .inc(bytesHeld());
}

} // namespace ilp
