#include "core/study/sweep.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/study/progress.hh"
#include "sim/trap.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ilp {

namespace {

// Metric handles are resolved once and cached; updates after that are
// one relaxed atomic each (see support/metrics.hh).
metrics::Counter &
cellsTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cells_total", "Sweep cells evaluated.");
    return c;
}

metrics::Counter &
cellsFailedTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cells_failed_total",
        "Sweep cells that faulted under keep-going mode.");
    return c;
}

metrics::Histogram &
cellSeconds()
{
    static metrics::Histogram &h =
        metrics::Registry::global().histogram(
            "ssim_sweep_cell_seconds",
            "Wall-clock seconds per sweep cell.");
    return h;
}

metrics::Counter &
cellRetriesTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cell_retries_total",
        "Transient-fault cell retries under hardened sweeps.");
    return c;
}

metrics::Counter &
cellTimeoutsTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cell_timeouts_total",
        "Cell attempts cancelled by the watchdog deadline.");
    return c;
}

metrics::Counter &
cellsQuarantinedTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cells_quarantined_total",
        "Cells isolated after permanent failure or retry "
        "exhaustion.");
    return c;
}

metrics::Counter &
cellsDegradedTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_sweep_cells_degraded_total",
        "Cells that completed via live-interpretation fallback.");
    return c;
}

/** Set while a hardened cell attempt degraded to live interpretation
 *  (Study::timedRun's fallback path notes it; mapHardened reads it
 *  back after the attempt). */
thread_local bool tl_cell_degraded = false;

/** One cell evaluation wrapped in its observability: a flight-recorder
 *  span (which a keep-going failure annotates rather than truncates),
 *  the cell metrics, and the live progress notification. */
void
runSweepCell(const std::function<void(std::size_t)> &fn, std::size_t i)
{
    const auto t0 = std::chrono::steady_clock::now();
    {
        trace::ScopedSpan span("cell", "sweep");
        if (span.armed())
            span.detail("cell " + std::to_string(i));
        fn(i);
    }
    const double dur = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    cellsTotal().inc();
    cellSeconds().observe(dur);
    if (ProgressReporter *progress = ProgressReporter::current())
        progress->cellFinished(dur);
}

} // namespace

void
noteDegradedCell()
{
    tl_cell_degraded = true;
}

namespace detail {

void
beginCellAttempt()
{
    tl_cell_degraded = false;
}

bool
cellAttemptDegraded()
{
    return tl_cell_degraded;
}

void
noteRetryMetric()
{
    cellRetriesTotal().inc();
}

void
noteTimeoutMetric()
{
    cellTimeoutsTotal().inc();
}

void
noteQuarantineMetric()
{
    cellsQuarantinedTotal().inc();
}

void
noteDegradedMetric()
{
    cellsDegradedTotal().inc();
}

void
backoffBeforeRetry(std::size_t cell, int attempt)
{
    // Exponential base (1 ms << attempt, capped at 64 ms) scaled by
    // a deterministic jitter in [0.5, 1.5) drawn from (cell,
    // attempt), so colliding retries decorrelate identically on
    // every run.
    const int exp = attempt < 7 ? attempt : 6;
    const double base_ms = static_cast<double>(1u << exp);
    std::uint64_t h = (static_cast<std::uint64_t>(cell) << 32) ^
                      static_cast<std::uint64_t>(attempt + 1);
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    const double jitter = 0.5 + static_cast<double>(h & 0x3FF) / 1024.0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(base_ms * jitter));
}

} // namespace detail

void
noteCellFailure(const CellError &error)
{
    cellsFailedTotal().inc();
    if (trace::active()) {
        trace::annotateCurrentSpan(
            "error[" + std::string(errCodeId(error.code)) + "]");
    }
    if (ProgressReporter *progress = ProgressReporter::current())
        progress->noteFailure();
}

CellError
currentCellError()
{
    try {
        throw;
    } catch (const DiagException &e) {
        return {e.code(), formatDiags(e.diags())};
    } catch (const TrapException &e) {
        return {e.trap().code, e.trap().format()};
    } catch (const std::bad_alloc &) {
        // Memory pressure — real or injected — is transient: the
        // hardened runner may retry the cell once pressure clears.
        return {ErrCode::ResourceExhausted, "out of memory"};
    } catch (const std::exception &e) {
        return {ErrCode::Internal, e.what()};
    } catch (...) {
        return {ErrCode::Internal, "unknown error"};
    }
}

int
defaultSweepJobs()
{
    if (const char *env = std::getenv("SSIM_JOBS"); env && *env) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<int>(v);
        SS_WARN("SSIM_JOBS='", env,
                "' is not a job count in [1, 4096]; using hardware "
                "concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultSweepJobs())
{
}

void
SweepRunner::run(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const
{
    if (count == 0)
        return;
    const std::size_t workers =
        std::min(static_cast<std::size_t>(jobs_), count);
    if (workers <= 1) {
        if (trace::active())
            trace::setThreadTrack(0, "worker 0");
        for (std::size_t i = 0; i < count; ++i)
            runSweepCell(fn, i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;

    auto body = [&](std::uint32_t worker) {
        if (trace::active()) {
            trace::setThreadTrack(worker,
                                  "worker " + std::to_string(worker));
        }
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                runSweepCell(fn, i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!error)
                        error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t)
        pool.emplace_back(body, static_cast<std::uint32_t>(t));
    body(0); // the calling thread is worker 0
    for (auto &th : pool)
        th.join();
    if (error)
        std::rethrow_exception(error);
}

// ------------------------------------------------------- CompileCache

std::string
CompileCache::key(const Workload &workload, const MachineConfig &machine,
                  const CompileOptions &options)
{
    std::string k = workload.name;
    k += '#';
    k += std::to_string(workload.source.size());
    k += '.';
    k += std::to_string(std::hash<std::string>{}(workload.source));

    k += "|o";
    k += std::to_string(static_cast<int>(options.level));
    k += '.';
    k += std::to_string(options.unroll.factor);
    k += options.unroll.careful ? 'c' : 'n';
    k += std::to_string(static_cast<int>(options.alias));
    k += '.';
    k += std::to_string(options.layout.numTemp);
    k += '.';
    k += std::to_string(options.layout.numHome);

    // Everything the compiler/scheduler can observe about the
    // machine; deliberately not its name, so re-labelled variants of
    // one specification share a compilation.
    k += "|w";
    k += std::to_string(machine.issueWidth);
    k += 'm';
    k += std::to_string(machine.pipelineDegree);
    k += machine.issueAcrossBranches ? "b1" : "b0";
    k += 'r';
    k += std::to_string(machine.regs.numTemp);
    k += '.';
    k += std::to_string(machine.regs.numHome);
    k += "|L";
    for (int l : machine.latency) {
        k += std::to_string(l);
        k += ',';
    }
    k += "|U";
    for (const FuncUnit &u : machine.units) {
        k += 'x';
        k += std::to_string(u.multiplicity);
        k += 'i';
        k += std::to_string(u.issueLatency);
        k += 'c';
        for (InstrClass c : u.classes) {
            k += std::to_string(static_cast<int>(c));
            k += '.';
        }
        k += ';';
    }
    return k;
}

std::shared_ptr<const Module>
CompileCache::compile(const Workload &workload,
                      const MachineConfig &machine,
                      const CompileOptions &options,
                      CompileTelemetry *telemetry)
{
    const std::string k = key(workload, machine, options);

    std::shared_future<Compiled> future;
    std::shared_ptr<std::promise<Compiled>> fill;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(k);
        if (it == entries_.end()) {
            fill = std::make_shared<std::promise<Compiled>>();
            future = fill->get_future().share();
            entries_.emplace(k, future);
        } else {
            future = it->second;
        }
    }

    // Cache accounting runs twice on purpose: the cache's own atomics
    // feed per-sweep exportStats snapshots, while the global metric
    // counters feed the process-wide --metrics-json / Prometheus
    // surface.  The two are independent paths over the same events and
    // must reconcile exactly (checkMetricsReconciliation).
    static metrics::Counter &metric_hits =
        metrics::Registry::global().counter(
            "ssim_compile_cache_hits_total",
            "Compile-cache lookups served from an existing entry.");
    static metrics::Counter &metric_misses =
        metrics::Registry::global().counter(
            "ssim_compile_cache_misses_total",
            "Compile-cache lookups that had to compile.");
    static metrics::Counter &metric_failures =
        metrics::Registry::global().counter(
            "ssim_compile_cache_failures_total",
            "Compilations that failed (entry evicted).");
    static metrics::Histogram &metric_seconds =
        metrics::Registry::global().histogram(
            "ssim_compile_seconds",
            "Wall-clock seconds per workload compilation.");

    if (fill) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        metric_misses.inc();
        try {
            trace::ScopedSpan span("compile", "compile");
            if (span.armed())
                span.detail(workload.name);
            metrics::ScopedTimer timer(metrics::Registry::global(),
                                       metric_seconds);
            if (fault::enabled())
                fault::maybeInject("compile");
            Compiled c;
            Result<Module> r = compileWorkloadChecked(
                workload.source, machine, options, &c.telemetry,
                workload.name);
            if (!r.ok())
                r.raise(); // DiagException with the full list
            c.module = std::make_shared<const Module>(r.take());
            fill->set_value(std::move(c));
        } catch (...) {
            // A failed compile must not poison the cache: hand the
            // exception to the waiters already parked on this entry,
            // then evict it so later requesters retry instead of
            // replaying a stale failure forever.
            failures_.fetch_add(1, std::memory_order_relaxed);
            metric_failures.inc();
            fill->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu_);
            entries_.erase(k);
        }
    } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        metric_hits.inc();
        // A hit on an entry another worker is still compiling is a
        // wait, and the worker timeline should show it as one.
        if (trace::active() &&
            future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
            trace::ScopedSpan span("compile-wait", "cache");
            if (span.armed())
                span.detail(workload.name);
            future.wait();
        }
    }

    const Compiled &c = future.get(); // rethrows a failed compile
    if (telemetry)
        *telemetry = c.telemetry;
    return c.module;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CompileCache::exportStats(stats::Group &g) const
{
    g.counter("hits", "lookups served from the cache").inc(hits());
    g.counter("misses", "lookups that compiled").inc(misses());
    g.counter("failures", "compilations that failed (evicted)")
        .inc(failures());
    g.counter("entries", "distinct compilations held").inc(size());
}

} // namespace ilp
