/**
 * @file
 * Crash-safe sweep checkpointing: an append-only JSONL journal.
 *
 * A full-taxonomy sweep is hours of deterministic work; a killed
 * process (OOM, preemption, ctrl-C) must not lose it.  The journal
 * records every completed cell as one line of JSON,
 *
 *     {"c":"<crc32 hex>","r":{<record>}}
 *
 * where the CRC covers the compact dump of `r`.  Records are either
 * the sweep header (written once, carrying the sweep's full identity:
 * command, workload/options fingerprint, machine-config hashes, cell
 * count) or one cell result keyed by compile-key + machine hash.
 *
 * Crash-safety model:
 *  - the file is opened O_APPEND and every record is a single
 *    write(2) of a complete line, so concurrent or dying writers
 *    never interleave partial records *within* a line;
 *  - fsync is batched (every kSyncInterval records, plus on close),
 *    trading at most a few records of durability against disk churn
 *    — process death alone loses nothing (the page cache survives);
 *  - the loader verifies the CRC of every line and drops corrupt or
 *    truncated ones (counting them), so a line torn by power loss
 *    degrades into one re-run cell, never a poisoned resume.
 *
 * Resume (`--resume <journal>`): the caller re-derives its cell keys
 * (pure functions of the sweep spec), loads the journal, verifies
 * the header matches its own identity byte-for-byte, and skips every
 * cell whose key is present — values are replayed from the journal,
 * producing final output byte-identical to an uninterrupted run
 * (JSON numbers round-trip exactly through the writer/parser).
 */

#ifndef SUPERSYM_CORE_STUDY_JOURNAL_HH
#define SUPERSYM_CORE_STUDY_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/json.hh"

namespace ilp::journal {

/** CRC-32 (IEEE 802.3, the zlib polynomial) of `text`. */
std::uint32_t crc32(const std::string &text);

/**
 * Append-only journal writer.  Thread-safe: cells complete on worker
 * threads and write their records directly.
 */
class Writer
{
  public:
    /** Records between fsync batches. */
    static constexpr unsigned kSyncInterval = 16;

    Writer() = default;
    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Open (creating or appending) the journal at `path`.
     *  @return false with `error` filled on I/O failure. */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return fd_ >= 0; }

    /** Append the sweep-identity header record. */
    void writeHeader(const Json &identity);

    /** Append one completed cell: its stable key and its value. */
    void writeCell(const std::string &key, const Json &value);

    /** Flush batched records to stable storage. */
    void sync();

    void close();

  private:
    void writeRecord(const Json &record);

    int fd_ = -1;
    unsigned unsynced_ = 0;
    std::mutex mu_;
};

/** Everything load() recovered from a journal. */
struct LoadResult
{
    /** File existed and was readable (corrupt lines are not an
     *  error — they are dropped and counted). */
    bool ok = false;
    std::string error;

    /** The first valid header record's identity (null Json when the
     *  journal has none — e.g. only torn lines survived). */
    Json identity;
    /** Completed cells: key -> journaled value (last record wins,
     *  so a cell re-run after a partial resume stays consistent). */
    std::map<std::string, Json> cells;
    /** Lines dropped for failed CRC or unparseable JSON. */
    std::size_t corrupt = 0;
};

/** Read and validate a journal.  Never throws; I/O problems land in
 *  the result's ok/error. */
LoadResult load(const std::string &path);

} // namespace ilp::journal

#endif // SUPERSYM_CORE_STUDY_JOURNAL_HH
