/**
 * @file
 * The machine evaluation environment of Section 3, end to end: "the
 * language system then optimizes the code, allocates registers, and
 * schedules the instructions for the pipeline, all according to this
 * specification.  The simulator executes the program according to the
 * same specification."
 *
 * compileWorkload() runs source -> (unroll) -> IR -> optimizer ->
 * register allocation -> machine-specific scheduling; runOnMachine()
 * then executes the result functionally while the in-order issue
 * engine times the dynamic stream against the *same* machine
 * description.
 *
 * The execute-once / time-many split factors runOnMachine() into
 * executeWorkload() (functional execution, producing an immutable
 * TraceArtifact) and timeTrace() (timing, pure over the artifact) so
 * the dynamic stream — which depends only on the compiled Module —
 * is produced once per compile and timed against many machines.
 * runOnMachine() remains the streaming path for single runs and for
 * artifacts that cannot be replayed.
 */

#ifndef SUPERSYM_CORE_STUDY_DRIVER_HH
#define SUPERSYM_CORE_STUDY_DRIVER_HH

#include <string>

#include "core/machine/machine.hh"
#include "frontend/compile.hh"
#include "opt/pipeline.hh"
#include "sim/cache.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"
#include "sim/ptrace.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace ilp {

struct CompileOptions
{
    OptLevel level = OptLevel::RegAlloc;
    UnrollOptions unroll;
    AliasLevel alias = AliasLevel::Conservative;
    RegFileLayout layout;
};

/** The paper's default measurement configuration (§4 headline runs):
 *  full optimization, 16 temps / 26 homes, array-symbol memory
 *  disambiguation, the workload's own default unroll factor. */
CompileOptions defaultCompileOptions(const Workload &workload);

/** Compile MT source for a machine (parses, unrolls, optimizes,
 *  allocates, schedules), reporting user errors (syntax, semantic,
 *  machine-limit) as diagnostics instead of exiting.  `telemetry`,
 *  when non-null, records the frontend phase plus every optimizer
 *  phase. */
Result<Module> compileWorkloadChecked(const std::string &source,
                                      const MachineConfig &machine,
                                      const CompileOptions &options,
                                      CompileTelemetry *telemetry =
                                          nullptr,
                                      const std::string &unit =
                                          "<input>");

/** Compile MT source for a machine; errors are fatal().  Thin
 *  wrapper over compileWorkloadChecked() for the CLI edge. */
Module compileWorkload(const std::string &source,
                       const MachineConfig &machine,
                       const CompileOptions &options,
                       CompileTelemetry *telemetry = nullptr);

/** What a run should observe about itself, beyond the headline
 *  numbers.  The default collects nothing and costs nothing. */
struct RunTelemetryOptions
{
    /** Build a full StatsSnapshot (issue, cache, mix, compile). */
    bool collectStats = false;
    /** Max issue-timeline events captured for --trace-events
     *  (0 disables capture). */
    std::size_t timelineLimit = 0;
    /** Collect per-static-instruction timing counters (the cycle
     *  profiler).  Off by default; the engine's emit path then pays
     *  only one predictable branch. */
    bool collectProfile = false;
    /** Data-cache model attached when collecting stats. */
    CacheConfig cache;
};

/** Everything a timing run produces. */
struct RunOutcome
{
    /** main()'s checksum. */
    std::int64_t checksum = 0;
    /** Bit pattern of the `result_fp` global after the run (0 if the
     *  program has no such global). */
    double fpChecksum = 0.0;
    /** Dynamic instructions executed. */
    std::uint64_t instructions = 0;
    /** Elapsed time in base cycles on the machine. */
    double cycles = 0.0;

    /** Full stats tree (empty unless collectStats). */
    stats::StatsSnapshot stats;
    /** Issue timeline (empty unless timelineLimit > 0). */
    std::vector<IssueEvent> issueTimeline;
    std::uint64_t timelineDropped = 0;
    /** Per-pc timing counters (empty unless collectProfile); the
     *  last record is the unattributed (pc == kNoPc) bucket. */
    std::vector<PcCounters> pcCounters;
    /** Aggregate engine counters the per-pc records must reconcile
     *  with exactly (filled with pcCounters when collectProfile). */
    StallBreakdown stalls;
    std::uint64_t issueSlotsTotal = 0;
    /** Compile telemetry (filled by runWorkload with collectStats). */
    CompileTelemetry compile;
    /** Set when the workload faulted mid-run; checksum is then
     *  meaningless and cycles/instructions count up to the fault. */
    Trap trap;

    bool trapped() const { return trap.valid(); }

    /** Instructions per base cycle (the exploited parallelism).
     *  A run that never advanced the clock (cycles == 0) reports 0
     *  rather than inf/NaN, so downstream JSON stays finite. */
    double ipc() const
    {
        return cycles > 0.0 ? instructions / cycles : 0.0;
    }
};

/** Execute an already-compiled module against a machine.  `compile`
 *  telemetry, when given, is folded into the snapshot and outcome. */
RunOutcome runOnMachine(const Module &module,
                        const MachineConfig &machine,
                        const RunTelemetryOptions &telemetry = {},
                        const CompileTelemetry *compile = nullptr);

/** One functional execution, frozen.  The dynamic stream depends only
 *  on the compiled Module, so one artifact can be timed against any
 *  number of machines (timeTrace) without re-executing. */
struct TraceArtifact
{
    /** The packed dynamic stream (empty unless replayable). */
    PackedTrace trace;
    /** Functional results: return value, instruction count, class
     *  mix, trap — exactly what Interpreter::run reported. */
    RunResult result;
    /** Bit pattern of `result_fp` after the run (valid only when
     *  hasFpChecksum; absent globals and trapped runs leave it 0). */
    std::uint64_t fpChecksumBits = 0;
    bool hasFpChecksum = false;
    /** True when the trace covers the whole run losslessly and the
     *  run did not trap; otherwise consumers must fall back to live
     *  interpretation (runOnMachine). */
    bool replayable = false;
    /** Static instruction count of the executed module (sizes the
     *  replay-side profiler exactly like the live path). */
    Pc pcCount = 0;

    /** Trace storage held (the unit the TraceCache budgets). */
    std::size_t byteSize() const { return trace.byteSize(); }
};

/** Execute-once half: run the module functionally, recording the
 *  packed trace (up to `maxTraceBytes`) and functional results.
 *  Never throws for workload faults — a trapped run yields a
 *  non-replayable artifact carrying the trap. */
TraceArtifact executeWorkload(const Module &module,
                              std::size_t maxTraceBytes =
                                  static_cast<std::size_t>(-1));

/** Time-many half: time a replayable artifact on a machine.  Pure
 *  over the artifact (safe to call concurrently on one artifact) and
 *  produces a RunOutcome byte-identical to runOnMachine() on the
 *  same module/machine/telemetry. */
RunOutcome timeTrace(const TraceArtifact &artifact,
                     const MachineConfig &machine,
                     const RunTelemetryOptions &telemetry = {},
                     const CompileTelemetry *compile = nullptr);

/** compileWorkload + runOnMachine in one step. */
RunOutcome runWorkload(const Workload &workload,
                       const MachineConfig &machine,
                       const CompileOptions &options,
                       const RunTelemetryOptions &telemetry = {});

/** Dynamic class frequencies of a workload (for Table 2-1). */
ClassFrequencies profileWorkload(const Workload &workload,
                                 const CompileOptions &options);

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_DRIVER_HH
