/**
 * @file
 * The machine evaluation environment of Section 3, end to end: "the
 * language system then optimizes the code, allocates registers, and
 * schedules the instructions for the pipeline, all according to this
 * specification.  The simulator executes the program according to the
 * same specification."
 *
 * compileWorkload() runs source -> (unroll) -> IR -> optimizer ->
 * register allocation -> machine-specific scheduling; runOnMachine()
 * then executes the result functionally while the in-order issue
 * engine times the dynamic stream against the *same* machine
 * description.
 */

#ifndef SUPERSYM_CORE_STUDY_DRIVER_HH
#define SUPERSYM_CORE_STUDY_DRIVER_HH

#include <string>

#include "core/machine/machine.hh"
#include "frontend/compile.hh"
#include "opt/pipeline.hh"
#include "sim/cache.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace ilp {

struct CompileOptions
{
    OptLevel level = OptLevel::RegAlloc;
    UnrollOptions unroll;
    AliasLevel alias = AliasLevel::Conservative;
    RegFileLayout layout;
};

/** The paper's default measurement configuration (§4 headline runs):
 *  full optimization, 16 temps / 26 homes, array-symbol memory
 *  disambiguation, the workload's own default unroll factor. */
CompileOptions defaultCompileOptions(const Workload &workload);

/** Compile MT source for a machine (parses, unrolls, optimizes,
 *  allocates, schedules), reporting user errors (syntax, semantic,
 *  machine-limit) as diagnostics instead of exiting.  `telemetry`,
 *  when non-null, records the frontend phase plus every optimizer
 *  phase. */
Result<Module> compileWorkloadChecked(const std::string &source,
                                      const MachineConfig &machine,
                                      const CompileOptions &options,
                                      CompileTelemetry *telemetry =
                                          nullptr,
                                      const std::string &unit =
                                          "<input>");

/** Compile MT source for a machine; errors are fatal().  Thin
 *  wrapper over compileWorkloadChecked() for the CLI edge. */
Module compileWorkload(const std::string &source,
                       const MachineConfig &machine,
                       const CompileOptions &options,
                       CompileTelemetry *telemetry = nullptr);

/** What a run should observe about itself, beyond the headline
 *  numbers.  The default collects nothing and costs nothing. */
struct RunTelemetryOptions
{
    /** Build a full StatsSnapshot (issue, cache, mix, compile). */
    bool collectStats = false;
    /** Max issue-timeline events captured for --trace-events
     *  (0 disables capture). */
    std::size_t timelineLimit = 0;
    /** Data-cache model attached when collecting stats. */
    CacheConfig cache;
};

/** Everything a timing run produces. */
struct RunOutcome
{
    /** main()'s checksum. */
    std::int64_t checksum = 0;
    /** Bit pattern of the `result_fp` global after the run (0 if the
     *  program has no such global). */
    double fpChecksum = 0.0;
    /** Dynamic instructions executed. */
    std::uint64_t instructions = 0;
    /** Elapsed time in base cycles on the machine. */
    double cycles = 0.0;

    /** Full stats tree (empty unless collectStats). */
    stats::StatsSnapshot stats;
    /** Issue timeline (empty unless timelineLimit > 0). */
    std::vector<IssueEvent> issueTimeline;
    std::uint64_t timelineDropped = 0;
    /** Compile telemetry (filled by runWorkload with collectStats). */
    CompileTelemetry compile;
    /** Set when the workload faulted mid-run; checksum is then
     *  meaningless and cycles/instructions count up to the fault. */
    Trap trap;

    bool trapped() const { return trap.valid(); }

    /** Instructions per base cycle (the exploited parallelism).
     *  A run that never advanced the clock (cycles == 0) reports 0
     *  rather than inf/NaN, so downstream JSON stays finite. */
    double ipc() const
    {
        return cycles > 0.0 ? instructions / cycles : 0.0;
    }
};

/** Execute an already-compiled module against a machine.  `compile`
 *  telemetry, when given, is folded into the snapshot and outcome. */
RunOutcome runOnMachine(const Module &module,
                        const MachineConfig &machine,
                        const RunTelemetryOptions &telemetry = {},
                        const CompileTelemetry *compile = nullptr);

/** compileWorkload + runOnMachine in one step. */
RunOutcome runWorkload(const Workload &workload,
                       const MachineConfig &machine,
                       const CompileOptions &options,
                       const RunTelemetryOptions &telemetry = {});

/** Dynamic class frequencies of a workload (for Table 2-1). */
ClassFrequencies profileWorkload(const Workload &workload,
                                 const CompileOptions &options);

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_DRIVER_HH
