#include "core/study/whatif.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "sim/exec.hh"
#include "sim/trap.hh"
#include "support/buildinfo.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/table.hh"

namespace ilp {

namespace {

metrics::Counter &
graphBuilds()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_depgraph_builds_total",
        "Dependence graphs constructed from a trace or live run.");
    return c;
}

metrics::Histogram &
graphBuildSeconds()
{
    static metrics::Histogram &h =
        metrics::Registry::global().histogram(
            "ssim_depgraph_build_seconds",
            "Wall-clock seconds per dependence-graph build.");
    return h;
}

metrics::Counter &
whatifQueries()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_whatif_queries_total",
        "Analytic what-if queries answered from a dependence graph.");
    return c;
}

metrics::Counter &
pruneAnalyticCells()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_prune_cells_analytic_total",
        "Sweep cells answered analytically (certified, no replay).");
    return c;
}

metrics::Counter &
pruneConfirmedCells()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_prune_cells_confirmed_total",
        "Sweep cells confirmed by an exact timing replay.");
    return c;
}

} // namespace

// ----------------------------------------------------- DepGraphCache

DepGraphCache::Graph
DepGraphCache::get(const std::string &key,
                   const std::function<DepGraph()> &build)
{
    std::shared_future<Graph> future;
    std::shared_ptr<std::promise<Graph>> fill;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            fill = std::make_shared<std::promise<Graph>>();
            future = fill->get_future().share();
            entries_.emplace(key, future);
            misses_.fetch_add(1);
        } else {
            future = it->second;
            hits_.fetch_add(1);
        }
    }
    if (fill) {
        try {
            metrics::ScopedTimer timer(metrics::Registry::global(),
                                       graphBuildSeconds());
            if (fault::enabled())
                fault::maybeInject("depgraph");
            fill->set_value(
                std::make_shared<const DepGraph>(build()));
            graphBuilds().inc();
        } catch (...) {
            // No poisoned waiters: current waiters see the exception,
            // later requesters retry the build.
            fill->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu_);
            entries_.erase(key);
        }
    }
    return future.get();
}

std::size_t
DepGraphCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::size_t
DepGraphCache::bytesHeld() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    for (const auto &[key, future] : entries_) {
        if (future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready)
            bytes += future.get()->byteSize();
    }
    return bytes;
}

void
DepGraphCache::exportStats(stats::Group &g) const
{
    g.counter("hits", "graph lookups served from the cache")
        .inc(hits());
    g.counter("misses", "graph lookups that had to build").inc(misses());
    g.counter("graphs", "dependence graphs resident")
        .inc(static_cast<std::uint64_t>(size()));
    g.counter("bytes_held", "node storage held by resident graphs")
        .inc(static_cast<std::uint64_t>(bytesHeld()));
}

// -------------------------------------------- Study::dependenceGraph

std::shared_ptr<const DepGraph>
Study::dependenceGraph(const Workload &workload,
                       const MachineConfig &machine,
                       const CompileOptions &options)
{
    std::shared_ptr<const Module> module =
        cache_.compile(workload, machine, options, nullptr);
    const std::string key =
        CompileCache::key(workload, machine, options);
    return graph_cache_.get(key, [&]() -> DepGraph {
        // Prefer the packed trace (shared with the timing replays of
        // the same compile key).
        if (trace_cache_.enabled()) {
            std::shared_ptr<const TraceArtifact> artifact =
                trace_cache_.execute(key, *module);
            if (artifact->result.trapped())
                throw TrapException(artifact->result.trap);
            if (artifact->replayable)
                return DepGraph::build(artifact->trace);
            trace_cache_.noteFallback();
        }
        // Cache disabled or trace over budget: stream the graph
        // straight out of live execution — identical result on
        // either backend.
        DepGraph::Builder builder;
        std::unique_ptr<Executor> exec = makeExecutor(*module);
        RunResult r = exec->run("main", &builder);
        if (r.trapped())
            throw TrapException(r.trap);
        return builder.take();
    });
}

namespace whatif {

// ------------------------------------------------------------ report

Report
analyze(Study &study, const Workload &workload,
        const MachineConfig &machine, const CompileOptions &options,
        std::size_t topEdges)
{
    std::shared_ptr<const Module> module =
        study.compileCache().compile(workload, machine, options,
                                     nullptr);
    std::shared_ptr<const DepGraph> graph =
        study.dependenceGraph(workload, machine, options);
    whatifQueries().inc();

    Report r;
    r.workload = workload.name;
    r.machineName = machine.name;
    r.machineHash = machine.specHash();
    r.issueWidth = machine.issueWidth;
    r.pipelineDegree = machine.pipelineDegree;
    r.analytic = graph->analyze(machine);
    r.slack = graph->slack(machine, topEdges);
    r.structureHash = graph->structureHash();
    r.graphNodes = graph->size();

    const prof::CodeMap code = prof::CodeMap::build(*module);
    auto attribute = [&](Pc pc, int &line, std::string &text) {
        if (pc != kNoPc && pc < code.entries.size()) {
            line = code.entries[pc].loc.line;
            text = code.entries[pc].text;
        }
    };
    for (const CriticalEdge &e : r.slack.topEdges) {
        EdgeRow row;
        row.edge = e;
        attribute(e.fromPc, row.fromLine, row.fromText);
        attribute(e.toPc, row.toLine, row.toText);
        r.edges.push_back(std::move(row));
    }
    return r;
}

std::string
render(const Report &r)
{
    const double m = static_cast<double>(r.pipelineDegree);
    std::ostringstream out;
    char buf[256];
    auto line = [&](const char *label, const std::string &value) {
        std::snprintf(buf, sizeof buf, "%-22s: %s\n", label,
                      value.c_str());
        out << buf;
    };
    auto num = [&](double v, int prec) {
        char b[64];
        std::snprintf(b, sizeof b, "%.*f", prec, v);
        return std::string(b);
    };

    out << "what-if: " << r.workload << " on " << r.machineName
        << "\n";
    {
        char b[96];
        std::snprintf(b, sizeof b, "%" PRIu64 " nodes, hash %016" PRIx64,
                      r.graphNodes, r.structureHash);
        line("dependence graph", b);
    }
    line("instructions",
         std::to_string(r.analytic.instructions));
    line("analytic cycles",
         num(r.analytic.baseCycles, 1) + " base (" +
             (r.analytic.certified ? "certified exact"
                                   : "lower bound") +
             ")");
    line("analytic ipc", num(r.analytic.ipc, 3));
    line("oracle critical path",
         num(static_cast<double>(r.analytic.criticalPathMinor) / m,
             1) +
             " base cycles");
    line("oracle ilp bound", num(r.analytic.oracleIlp, 3));
    line("issue-bandwidth bound",
         num(static_cast<double>(r.analytic.issueBoundMinor) / m, 1) +
             " base cycles");
    if (r.analytic.unitBoundMinor > 0)
        line("unit-conflict bound",
             num(static_cast<double>(r.analytic.unitBoundMinor) / m,
                 1) +
                 " base cycles");

    if (!r.edges.empty()) {
        out << "\ncritical-path dependence edges (top "
            << r.edges.size() << " by carried latency):\n";
        Table t("");
        t.setHeader({"from", "to", "kind", "count", "latency(base)"});
        for (const EdgeRow &e : r.edges) {
            auto where = [](int line, Pc pc) {
                if (line > 0)
                    return "line " + std::to_string(line);
                if (pc != kNoPc)
                    return "pc " + std::to_string(pc);
                return std::string("?");
            };
            t.row()
                .cell(where(e.fromLine, e.edge.fromPc))
                .cell(where(e.toLine, e.edge.toPc))
                .cell(e.edge.memory ? "memory" : "register")
                .cell(static_cast<long long>(e.edge.count))
                .cell(static_cast<double>(e.edge.latencyMinor) / m,
                      1);
        }
        out << t.render();
    }
    return out.str();
}

Json
toJson(const Report &r)
{
    Json meta = buildMeta();
    meta.set("machine", r.machineName);
    meta.set("machine_hash", std::to_string(r.machineHash));

    Json analytic = Json::object();
    analytic.set("minor_cycles",
                 static_cast<double>(r.analytic.minorCycles));
    analytic.set("base_cycles", r.analytic.baseCycles);
    analytic.set("ipc", r.analytic.ipc);
    analytic.set("certified", r.analytic.certified);
    analytic.set("critical_path_minor",
                 static_cast<double>(r.analytic.criticalPathMinor));
    analytic.set("oracle_ilp", r.analytic.oracleIlp);
    analytic.set("issue_bound_minor",
                 static_cast<double>(r.analytic.issueBoundMinor));
    analytic.set("unit_bound_minor",
                 static_cast<double>(r.analytic.unitBoundMinor));

    Json edges = Json::array();
    for (const EdgeRow &e : r.edges) {
        Json row = Json::object();
        row.set("from_pc", e.edge.fromPc == kNoPc
                               ? Json()
                               : Json(static_cast<double>(
                                     e.edge.fromPc)));
        row.set("to_pc", e.edge.toPc == kNoPc
                             ? Json()
                             : Json(static_cast<double>(e.edge.toPc)));
        row.set("from_line", static_cast<double>(e.fromLine));
        row.set("to_line", static_cast<double>(e.toLine));
        row.set("kind",
                Json(std::string(e.edge.memory ? "memory"
                                               : "register")));
        row.set("count", static_cast<double>(e.edge.count));
        row.set("latency_minor",
                static_cast<double>(e.edge.latencyMinor));
        edges.push(std::move(row));
    }

    Json graph = Json::object();
    graph.set("nodes", static_cast<double>(r.graphNodes));
    graph.set("structure_hash", std::to_string(r.structureHash));

    Json doc = Json::object();
    doc.set("schema", Json(std::string("whatif-v1")));
    doc.set("meta", std::move(meta));
    doc.set("workload", Json(r.workload));
    doc.set("machine", Json(r.machineName));
    doc.set("instructions",
            static_cast<double>(r.analytic.instructions));
    doc.set("analytic", std::move(analytic));
    doc.set("critical_edges", std::move(edges));
    doc.set("graph", std::move(graph));
    return doc;
}

// ------------------------------------------------------ slack listing

std::string
renderSlackListing(const prof::Profile &profile,
                   const SlackReport &slack,
                   const std::string &source, std::size_t topN)
{
    const double m = static_cast<double>(profile.pipelineDegree);

    // Join the graph's per-pc slack rollup with the code map's line
    // attribution (rows beyond the code map — the unattributed
    // bucket — fold into line 0, which is never printed).
    struct LineSlack
    {
        std::uint64_t dynCount = 0;
        std::uint64_t critCount = 0;
        std::uint64_t critLatencyMinor = 0;
        std::uint64_t minSlackMinor =
            std::numeric_limits<std::uint64_t>::max();
    };
    std::map<int, LineSlack> byLine;
    for (std::size_t pc = 0; pc + 1 < slack.perPc.size(); ++pc) {
        const PcSlack &ps = slack.perPc[pc];
        if (ps.dynCount == 0)
            continue;
        const int line =
            pc < profile.code.entries.size()
                ? profile.code.entries[pc].loc.line
                : 0;
        LineSlack &ls = byLine[line];
        ls.dynCount += ps.dynCount;
        ls.critCount += ps.critCount;
        ls.critLatencyMinor += ps.critLatencyMinor;
        ls.minSlackMinor =
            std::min(ls.minSlackMinor, ps.minSlackMinor);
    }

    // Source text per line, for the listing column.
    std::vector<std::string> lines;
    {
        std::istringstream in(source);
        std::string l;
        while (std::getline(in, l))
            lines.push_back(l);
    }
    auto sourceText = [&](int line) -> std::string {
        if (line <= 0 ||
            static_cast<std::size_t>(line) > lines.size())
            return "";
        std::string t = lines[static_cast<std::size_t>(line) - 1];
        const std::size_t start = t.find_first_not_of(" \t");
        return start == std::string::npos ? "" : t.substr(start);
    };

    std::ostringstream out;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "slack analysis: %s on %s\n"
                  "oracle critical path : %.1f base cycles "
                  "(%.3fx oracle ilp over %llu instructions)\n\n",
                  profile.workload.c_str(),
                  profile.machineName.c_str(),
                  static_cast<double>(slack.criticalPathMinor) / m,
                  slack.criticalPathMinor > 0
                      ? static_cast<double>(profile.instructions) *
                            m /
                            static_cast<double>(
                                slack.criticalPathMinor)
                      : 0.0,
                  static_cast<unsigned long long>(
                      profile.instructions));
    out << buf;

    // Hottest lines by critical-path contribution: the "would speed
    // up if" list — shaving latency off these lines shortens the
    // oracle critical path itself.
    std::vector<std::pair<int, LineSlack>> rows(byLine.begin(),
                                                byLine.end());
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const auto &r) {
                                  return r.first <= 0;
                              }),
               rows.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.critLatencyMinor !=
                      b.second.critLatencyMinor)
                      return a.second.critLatencyMinor >
                             b.second.critLatencyMinor;
                  return a.first < b.first;
              });
    if (rows.size() > topN)
        rows.resize(topN);

    Table t("would speed up if (top lines on the critical path):");
    t.setHeader({"line", "dyn", "critical", "crit-lat(base)",
                 "min-slack(base)", "source"});
    for (const auto &[line, ls] : rows) {
        t.row()
            .cell(static_cast<long long>(line))
            .cell(static_cast<long long>(ls.dynCount))
            .cell(static_cast<long long>(ls.critCount))
            .cell(static_cast<double>(ls.critLatencyMinor) / m, 1)
            .cell(static_cast<double>(ls.minSlackMinor) / m, 1)
            .cell(sourceText(line));
    }
    out << t.render();
    out << "\nlines with zero min-slack sit on the oracle critical "
           "path: only shortening them (or breaking the dependence) "
           "can speed the program up;\nlines with slack can slow "
           "down by that much before they matter.\n";
    return out.str();
}

// --------------------------------------------------- pruned sweep

PruneOutcome
prunedIlpSweep(Study &study, const Workload &workload,
               const CompileOptions &options, int degrees)
{
    PruneOutcome out;
    const std::size_t n = static_cast<std::size_t>(degrees);

    // The exact base-machine reference (memoized; one replay).
    const double base = study.baseCycles(workload, options);

    // Predict every cell analytically, cell-parallel on the study's
    // pool.  Each cell builds (or shares) the graph for its own
    // compile key — the compiler schedules per machine, so degrees
    // may or may not share graphs; the cache decides.
    out.cells = study.runner().map<PruneCell>(n, [&](std::size_t i) {
        const MachineConfig machine =
            idealSuperscalar(static_cast<int>(i) + 1);
        std::shared_ptr<const DepGraph> graph =
            study.dependenceGraph(workload, machine, options);
        const AnalyticResult a = graph->analyze(machine);
        PruneCell cell;
        cell.cycles = a.baseCycles;
        cell.certified = a.certified;
        return cell;
    });

    // Confirmation set: every non-certified cell (the analytic value
    // is only a bound there), plus the two extremes of the predicted
    // ranking as a validation sample anchoring the error report.
    std::vector<std::size_t> confirm;
    std::size_t lo = 0, hi = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!out.cells[i].certified)
            confirm.push_back(i);
        if (out.cells[i].cycles < out.cells[lo].cycles)
            lo = i;
        if (out.cells[i].cycles > out.cells[hi].cycles)
            hi = i;
    }
    for (std::size_t v : {hi, lo}) {
        if (std::find(confirm.begin(), confirm.end(), v) ==
            confirm.end())
            confirm.push_back(v);
    }
    std::sort(confirm.begin(), confirm.end());

    double errSum = 0.0;
    for (std::size_t i : confirm) {
        const MachineConfig machine =
            idealSuperscalar(static_cast<int>(i) + 1);
        RunOutcome exact =
            study.timedRun(workload, machine, options);
        if (exact.trapped())
            throw TrapException(exact.trap);
        PruneCell &cell = out.cells[i];
        cell.confirmed = true;
        cell.error =
            exact.cycles > 0.0
                ? std::abs(cell.cycles - exact.cycles) / exact.cycles
                : 0.0;
        cell.cycles = exact.cycles;
        out.maxError = std::max(out.maxError, cell.error);
        errSum += cell.error;
        pruneConfirmedCells().inc();
    }
    out.meanError =
        confirm.empty() ? 0.0
                        : errSum / static_cast<double>(confirm.size());

    for (PruneCell &cell : out.cells) {
        cell.speedup = base / cell.cycles;
        if (!cell.confirmed)
            pruneAnalyticCells().inc();
    }
    out.exactReplays = 1 + confirm.size();
    out.exactReplaysUnpruned = 1 + n;
    return out;
}

Json
pruneMeta(const PruneOutcome &o)
{
    std::uint64_t analytic = 0, confirmed = 0;
    for (const PruneCell &c : o.cells)
        (c.confirmed ? confirmed : analytic) += 1;
    Json meta = Json::object();
    meta.set("cells", static_cast<double>(o.cells.size()));
    meta.set("analytic_cells", static_cast<double>(analytic));
    meta.set("confirmed_cells", static_cast<double>(confirmed));
    meta.set("exact_replays", static_cast<double>(o.exactReplays));
    meta.set("exact_replays_unpruned",
             static_cast<double>(o.exactReplaysUnpruned));
    meta.set("replay_reduction",
             o.exactReplays > 0
                 ? static_cast<double>(o.exactReplaysUnpruned) /
                       static_cast<double>(o.exactReplays)
                 : 0.0);
    meta.set("max_error", o.maxError);
    meta.set("mean_error", o.meanError);
    return meta;
}

} // namespace whatif
} // namespace ilp
