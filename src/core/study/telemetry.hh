/**
 * @file
 * Structured run telemetry writers: Chrome tracing JSON from compile
 * spans and the issue timeline, and helpers for landing a
 * StatsSnapshot on disk.  Load --trace-events output in
 * chrome://tracing or https://ui.perfetto.dev.
 */

#ifndef SUPERSYM_CORE_STUDY_TELEMETRY_HH
#define SUPERSYM_CORE_STUDY_TELEMETRY_HH

#include <cstdint>
#include <string>

#include "core/study/driver.hh"
#include "support/json.hh"
#include "support/trace.hh"

namespace ilp {

class Study;
struct HardeningTotals;

/**
 * Build a Chrome tracing document ({"traceEvents": [...]}) from one
 * run.  Compile spans become complete ("ph":"X") events on pid 1,
 * one tid per phase name; issue events become per-slot events on
 * pid 2, one tid per issue slot, with one simulated minor cycle
 * mapped to one microsecond of trace time.
 */
Json buildTraceEvents(const RunOutcome &outcome,
                      const MachineConfig &machine);

/**
 * Build a Chrome tracing document from a whole-sweep flight-recorder
 * session: one pid ("sweep"), one named tid per worker thread, and a
 * complete event per recorded span (compile phases, functional
 * executions, timing replays, cache waits, cells) with the span's
 * dynamic detail (cell index, workload, E-code) under args.
 */
Json buildSweepTraceEvents(const trace::Recording &recording,
                           const MachineConfig &machine);

/**
 * Cross-check the process-global metrics registry against the
 * study's own cache counters and an expected cell count — the two
 * independent accounting paths over the same events (see
 * support/metrics.hh).  Call with a metrics registry that was reset
 * before the study ran.  @return empty when everything reconciles,
 * else a description of the first mismatch.
 */
std::string checkMetricsReconciliation(const Study &study,
                                       std::uint64_t expectedCells);

/**
 * The hardened-sweep variant: additionally reconciles the four
 * survivability counters (retries, timeouts, quarantined, degraded)
 * against the totals mapHardened accumulated in its own atomics.
 */
std::string checkMetricsReconciliation(const Study &study,
                                       std::uint64_t expectedCells,
                                       const HardeningTotals &totals);

/**
 * Write a JSON document to `path` (SS_FATAL on I/O failure).
 * Crash-safe: the document lands in a sibling temp file first and is
 * renamed into place, so a reader (or a killed writer) never sees a
 * partial document at `path`.
 */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_TELEMETRY_HH
