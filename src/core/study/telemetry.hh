/**
 * @file
 * Structured run telemetry writers: Chrome tracing JSON from compile
 * spans and the issue timeline, and helpers for landing a
 * StatsSnapshot on disk.  Load --trace-events output in
 * chrome://tracing or https://ui.perfetto.dev.
 */

#ifndef SUPERSYM_CORE_STUDY_TELEMETRY_HH
#define SUPERSYM_CORE_STUDY_TELEMETRY_HH

#include <string>

#include "core/study/driver.hh"
#include "support/json.hh"

namespace ilp {

/**
 * Build a Chrome tracing document ({"traceEvents": [...]}) from one
 * run.  Compile spans become complete ("ph":"X") events on pid 1,
 * one tid per phase name; issue events become per-slot events on
 * pid 2, one tid per issue slot, with one simulated minor cycle
 * mapped to one microsecond of trace time.
 */
Json buildTraceEvents(const RunOutcome &outcome,
                      const MachineConfig &machine);

/** Write a JSON document to `path` (SS_FATAL on I/O failure). */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_TELEMETRY_HH
