/**
 * @file
 * Live progress reporting for long sweeps: cells/s, ETA, compile- and
 * trace-cache hit rates, and worker utilization, printed to stderr at
 * a throttled interval (`ssim ilp/suite --progress`).
 *
 * The reporter is installed process-wide (ProgressReporter::current)
 * so SweepRunner workers can notify it without plumbing a pointer
 * through every map() call site.  Every notification is a couple of
 * relaxed atomics; the thread that crosses the throttle interval
 * elects itself by CAS and formats the line, so workers never contend
 * on a lock.  Under --keep-going a trapped cell still counts as
 * finished (and shows up in the `failed` field) — faulted cells must
 * degrade the report, never truncate it.
 */

#ifndef SUPERSYM_CORE_STUDY_PROGRESS_HH
#define SUPERSYM_CORE_STUDY_PROGRESS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace ilp {

class CompileCache;
class TraceCache;

class ProgressReporter
{
  public:
    struct Config
    {
        /** Cells the sweep will evaluate (for ETA / percent). */
        std::size_t totalCells = 0;
        /** Worker count (for the utilization denominator). */
        int jobs = 1;
        /** Minimum milliseconds between printed updates. */
        double intervalMs = 250.0;
        /** Cache hit-rate sources (optional). */
        const CompileCache *compileCache = nullptr;
        const TraceCache *traceCache = nullptr;
        /** Destination stream (stderr; tests substitute a file). */
        std::FILE *out = nullptr;
    };

    /** Constructing installs the reporter as current(). */
    explicit ProgressReporter(const Config &config);
    /** Destruction uninstalls it (without a final report). */
    ~ProgressReporter();
    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** The installed reporter, or nullptr (what SweepRunner checks). */
    static ProgressReporter *current();

    /** Completion timestamps kept for the rate estimate: the ETA is
     *  computed from the last kRateWindow cells, not the whole run,
     *  so a slow cold-cache start (or a fast cache-hit start) stops
     *  skewing the forecast once a window of completions is in. */
    static constexpr std::size_t kRateWindow = 64;

    /** One cell completed, taking `durSeconds` of worker time.
     *  Prints a throttled update when the interval elapsed. */
    void cellFinished(double durSeconds);

    /** Record a completion at a synthetic elapsed time (seconds since
     *  start).  Test seam for cellFinished's timestamping — lets the
     *  ETA convergence test replay a schedule without sleeping. */
    void noteCellAt(double elapsedSeconds);

    /** The finishing cell failed (keep-going mode). */
    void noteFailure();

    /** Print the final summary line unconditionally. */
    void finish();

    std::size_t cellsDone() const
    {
        return done_.load(std::memory_order_relaxed);
    }
    std::size_t cellsFailed() const
    {
        return failed_.load(std::memory_order_relaxed);
    }

    /** The status line for `elapsedSeconds` (pure; for tests). */
    std::string renderLine(double elapsedSeconds) const;

  private:
    double elapsedSeconds() const;
    /** Cells/s over the trailing completion window (falls back to the
     *  whole-run average until two completions are recorded). */
    double windowRate(double elapsedSeconds) const;
    void maybeReport();

    Config config_;
    std::chrono::steady_clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    std::atomic<std::size_t> failed_{0};
    /** Total worker-busy microseconds across finished cells. */
    std::atomic<std::uint64_t> busyUs_{0};
    /** Elapsed microseconds at the last printed update. */
    std::atomic<std::int64_t> lastReportUs_{-1};
    /** Ring of completion timestamps (elapsed microseconds); slot =
     *  completion index % kRateWindow.  Writers race benignly with
     *  the render thread — a torn window only perturbs one printed
     *  estimate. */
    std::array<std::atomic<std::int64_t>, kRateWindow> stampUs_{};
    /** Completions recorded into the ring (monotonic). */
    std::atomic<std::uint64_t> stamps_{0};
    bool tty_ = false;
};

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_PROGRESS_HH
