#include "core/study/journal.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace ilp::journal {

namespace {

metrics::Counter &
recordsWritten()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_journal_records_written_total",
        "Records appended to sweep journals.");
    return c;
}

metrics::Counter &
corruptDropped()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_journal_corrupt_records_total",
        "Journal lines dropped for CRC or parse failure on load.");
    return c;
}

std::uint32_t
crcByte(std::uint32_t crc, unsigned char byte)
{
    crc ^= byte;
    for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    return crc;
}

std::string
crcHex(std::uint32_t crc)
{
    char buf[9];
    std::snprintf(buf, sizeof buf, "%08x", crc);
    return buf;
}

/** Wrap a record into the framed {"c":crc,"r":record} line. */
std::string
frame(const Json &record)
{
    const std::string body = record.dump();
    Json line = Json::object();
    line.set("c", Json(crcHex(crc32(body))));
    line.set("r", record);
    std::string out = line.dump();
    out += '\n';
    return out;
}

} // namespace

std::uint32_t
crc32(const std::string &text)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char byte : text)
        crc = crcByte(crc, byte);
    return crc ^ 0xFFFFFFFFu;
}

Writer::~Writer()
{
    close();
}

bool
Writer::open(const std::string &path, std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        if (error)
            *error = "cannot open journal '" + path + "' for append";
        return false;
    }
    unsynced_ = 0;
    return true;
}

void
Writer::writeRecord(const Json &record)
{
    const std::string line = frame(record);
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0)
        return;
    // One write(2) per complete line: O_APPEND makes each record
    // atomic with respect to other writers and to process death.
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n <= 0) {
            SS_WARN("journal write failed; checkpointing disabled");
            ::close(fd_);
            fd_ = -1;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    recordsWritten().inc();
    if (++unsynced_ >= kSyncInterval) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
}

void
Writer::writeHeader(const Json &identity)
{
    Json r = Json::object();
    r.set("kind", Json("header"));
    r.set("identity", identity);
    writeRecord(r);
}

void
Writer::writeCell(const std::string &key, const Json &value)
{
    Json r = Json::object();
    r.set("kind", Json("cell"));
    r.set("key", Json(key));
    r.set("value", value);
    writeRecord(r);
}

void
Writer::sync()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0 && unsynced_ > 0) {
        ::fsync(fd_);
        unsynced_ = 0;
    }
}

void
Writer::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
        if (unsynced_ > 0)
            ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

LoadResult
load(const std::string &path)
{
    LoadResult out;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.error = "cannot read journal '" + path + "'";
        return out;
    }
    out.ok = true;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Json doc;
        if (!Json::tryParse(line, doc, nullptr)) {
            ++out.corrupt; // torn tail or bit rot: drop, keep going
            corruptDropped().inc();
            continue;
        }
        const Json *crc = doc.find("c");
        const Json *rec = doc.find("r");
        if (!crc || !crc->isString() || !rec ||
            crcHex(crc32(rec->dump())) != crc->asString()) {
            ++out.corrupt;
            corruptDropped().inc();
            continue;
        }
        const Json *kind = rec->find("kind");
        if (!kind || !kind->isString()) {
            ++out.corrupt;
            corruptDropped().inc();
            continue;
        }
        if (kind->asString() == "header") {
            if (const Json *id = rec->find("identity");
                id && out.identity.isNull())
                out.identity = *id;
        } else if (kind->asString() == "cell") {
            const Json *key = rec->find("key");
            const Json *value = rec->find("value");
            if (key && key->isString() && value)
                out.cells[key->asString()] = *value;
            else {
                ++out.corrupt;
                corruptDropped().inc();
            }
        }
        // Unknown kinds pass through silently: forward compatibility
        // with future record types.
    }
    return out;
}

} // namespace ilp::journal
