/**
 * @file
 * TraceCache: the execute-once store of the execute-once / time-many
 * split.
 *
 * A functional execution depends only on the compiled Module, never
 * on the machine being timed, so a sweep over N machines that share a
 * CompileCache entry needs exactly one execution — the artifact is
 * keyed by the *compile* key (CompileCache::key) and every timing run
 * replays it.  Like CompileCache, the cache is future-based: the
 * first requester of a key executes, concurrent requesters park on
 * the entry's shared_future, so one functional execution per key is a
 * structural guarantee, not a race outcome.
 *
 * Packed traces are large (20 bytes per dynamic instruction), so the
 * cache holds a global byte budget (--trace-budget /
 * SSIM_TRACE_BUDGET, default 2 GiB): recording is capped at the
 * budget, completed entries are accounted per-entry and evicted LRU
 * while the total exceeds the budget, and a trace that cannot be
 * recorded within the budget — or a run that trapped — yields a
 * non-replayable artifact that consumers time via live interpretation
 * instead (see Study::timedRun).  A budget of 0 disables the cache
 * entirely, which is the byte-compare control used by check.sh.
 *
 * Hit/miss/eviction/fallback counters are exported on demand via
 * exportStats (like CompileCache's) and deliberately never folded
 * into per-run stats snapshots: eviction order depends on thread
 * interleaving, and cached and uncached runs must stay byte-identical.
 */

#ifndef SUPERSYM_CORE_STUDY_TRACECACHE_HH
#define SUPERSYM_CORE_STUDY_TRACECACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/study/driver.hh"

namespace ilp {

/**
 * Parse a byte size with an optional k/m/g (or K/M/G) binary suffix,
 * e.g. "512m", "2g", "65536".  @return false on malformed input or
 * overflow, leaving `out` untouched.
 */
bool parseByteSize(const std::string &text, std::size_t &out);

/** Trace budget used when none is given explicitly: SSIM_TRACE_BUDGET
 *  when set and parseable (0 disables the cache), otherwise 2 GiB.
 *  A malformed value warns and falls through to the default. */
std::size_t defaultTraceBudget();

/**
 * Concurrency-safe, byte-budgeted cache of functional executions.
 *
 * Keys are caller-supplied strings — in practice CompileCache::key —
 * because the artifact's identity is exactly the compiled module's.
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t budgetBytes = defaultTraceBudget())
        : budget_(budgetBytes)
    {
    }

    /** A zero budget disables caching; callers run live instead. */
    bool enabled() const { return budget() > 0; }

    std::size_t
    budget() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return budget_;
    }

    /** Change the budget; an already-over-budget cache evicts down
     *  immediately. */
    void setBudget(std::size_t bytes);

    /**
     * The functional execution for `key`, executing `module` on first
     * use.  Concurrent requesters of one key share a single
     * execution.  The artifact may be non-replayable (trapped, or
     * trace over budget); callers must then fall back to live
     * interpretation and record it via noteFallback().
     */
    std::shared_ptr<const TraceArtifact>
    execute(const std::string &key, const Module &module);

    /** Record that a caller had to interpret live because the
     *  artifact was not replayable. */
    void noteFallback();

    /** Lookups served from an existing entry. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Lookups that had to execute. */
    std::uint64_t misses() const { return misses_.load(); }
    /** Entries discarded to fit the byte budget. */
    std::uint64_t evictions() const { return evictions_.load(); }
    /** Timing runs that fell back to live interpretation. */
    std::uint64_t fallbacks() const { return fallbacks_.load(); }

    /** Distinct executions held. */
    std::size_t size() const;
    /** Trace bytes currently accounted against the budget. */
    std::size_t bytesHeld() const;

    /** Export counters into a stats group (on demand only — never
     *  part of per-run snapshots; see file comment). */
    void exportStats(stats::Group &g) const;

  private:
    using Artifact = std::shared_ptr<const TraceArtifact>;

    struct Entry
    {
        std::shared_future<Artifact> future;
        /** Monotonic use tick for LRU; bumped on every lookup. */
        std::uint64_t lastUse = 0;
        /** Trace bytes, accounted once the producer completes. */
        std::size_t bytes = 0;
        bool ready = false;
    };

    /** Drop least-recently-used ready entries until the accounted
     *  bytes fit the budget.  Caller holds mu_. */
    void evictLocked();

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    std::size_t budget_;
    std::size_t bytes_held_ = 0;
    std::uint64_t use_clock_ = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
};

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_TRACECACHE_HH
