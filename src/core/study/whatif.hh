/**
 * @file
 * The "what-if" layer: dependence-graph analytics wired into the
 * study harness.
 *
 * Three consumers share one DepGraph per compiled module (cached,
 * future-based, keyed by CompileCache::key exactly like the trace
 * cache):
 *
 *  - `ssim whatif` — single-config questions: oracle critical path
 *    and ILP bound, analytic cycles for a machine, top critical-path
 *    dependence edges attributed back to MT source lines.
 *  - `ssim profile --slack` — per-line slack / "would speed up if"
 *    attribution interleaved with the profiler's code map.
 *  - `ssim ilp --prune-analytic` — the prune-then-confirm sweep:
 *    cells whose machine the analytic engine models exactly
 *    (certified: no functional-unit class conflicts) take their
 *    cycles from the graph; the extreme cells of the predicted
 *    ranking plus every non-certified cell are confirmed by exact
 *    timeTrace replay, and the prediction error against those
 *    confirmations is reported in the sweep's JSON meta.  Because
 *    certified predictions equal the issue engine cycle-for-cycle,
 *    the final table is byte-identical to the unpruned sweep while
 *    running a fraction of the exact replays.
 */

#ifndef SUPERSYM_CORE_STUDY_WHATIF_HH
#define SUPERSYM_CORE_STUDY_WHATIF_HH

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/study/profile.hh"
#include "sim/depgraph.hh"
#include "support/json.hh"

namespace ilp {

class Study;

/**
 * Concurrency-safe cache of dependence graphs, keyed by compile key
 * (one graph per distinct compiled module, shared by every config
 * that compiles identically).  Future-based like CompileCache /
 * TraceCache: the first requester builds, everyone else parks on the
 * shared future.  Graphs are ~1.4x the packed trace; entries stay
 * for the study's lifetime (a sweep touches every one repeatedly).
 */
class DepGraphCache
{
  public:
    using Graph = std::shared_ptr<const DepGraph>;

    /** The graph for `key`, building it via `build` on first use. */
    Graph get(const std::string &key,
              const std::function<DepGraph()> &build);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;
    /** Node-storage bytes across resident graphs. */
    std::size_t bytesHeld() const;

    void exportStats(stats::Group &g) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<Graph>> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

namespace whatif {

/** A critical dependence edge mapped back onto the program. */
struct EdgeRow
{
    CriticalEdge edge;
    /** Source lines of producer/consumer (0 = unknown). */
    int fromLine = 0;
    int toLine = 0;
    /** Printer form of the two scheduled instructions. */
    std::string fromText;
    std::string toText;
};

/** Everything `ssim whatif` reports for one workload + machine. */
struct Report
{
    std::string workload;
    std::string machineName;
    std::uint64_t machineHash = 0;
    int issueWidth = 1;
    int pipelineDegree = 1;

    /** Analytic timing + bounds for the machine. */
    AnalyticResult analytic;
    /** Slack analysis under the machine's latency table. */
    SlackReport slack;
    /** slack.topEdges with source attribution. */
    std::vector<EdgeRow> edges;

    /** Graph fingerprint (deterministic across jobs/build paths). */
    std::uint64_t structureHash = 0;
    std::uint64_t graphNodes = 0;
};

/**
 * Build (or fetch) the dependence graph for `workload` compiled for
 * `machine` and answer the what-if queries.  Throws TrapException
 * when the workload faults (a graph of a partial run would bound
 * nothing), DiagException on compile errors.
 */
Report analyze(Study &study, const Workload &workload,
               const MachineConfig &machine,
               const CompileOptions &options, std::size_t topEdges);

/** Human-readable report (ssim whatif's stdout). */
std::string render(const Report &r);

/** Machine-readable form (schema: whatif-v1). */
Json toJson(const Report &r);

/**
 * Per-line slack listing for `ssim profile --slack`: the profiler's
 * line rollup joined with the graph's slack rollup — which lines sit
 * on the oracle critical path (zero slack, "speeding this up speeds
 * the program up") and which have room.  Deterministic; reuses the
 * profile's code map, so lines match the annotated listing.
 */
std::string renderSlackListing(const prof::Profile &profile,
                               const SlackReport &slack,
                               const std::string &source,
                               std::size_t topN);

/** One cell of a pruned sweep. */
struct PruneCell
{
    /** Final cycles for the cell (analytic when certified and not
     *  confirmed; exact otherwise — equal for certified cells). */
    double cycles = 0.0;
    /** Speedup over the base machine (base / cycles). */
    double speedup = 0.0;
    bool certified = false;
    /** Cell was confirmed by an exact replay. */
    bool confirmed = false;
    /** |analytic - exact| / exact cycles; 0 unless confirmed. */
    double error = 0.0;
};

/** A pruned sweep plus its accounting (for the JSON meta and the
 *  check.sh replay-reduction assertion). */
struct PruneOutcome
{
    std::vector<PruneCell> cells;
    /** Exact timing replays this sweep ran (confirmations + the one
     *  base-machine reference run). */
    std::uint64_t exactReplays = 0;
    /** What the unpruned sweep would have run (cells + base). */
    std::uint64_t exactReplaysUnpruned = 0;
    double maxError = 0.0;
    double meanError = 0.0;
};

/**
 * Prune-then-confirm ideal-superscalar sweep over degrees 1..degrees
 * (the `ssim ilp` grid, one row of figure 4-1): analytic prediction
 * per degree (cells fan out on the study's worker pool), exact
 * confirmation of the extreme cells of the predicted ranking, final
 * speedups byte-identical to the unpruned sweep.  Throws on compile
 * errors or traps (callers wanting fault isolation wrap cells via
 * SweepRunner::mapChecked themselves).
 */
PruneOutcome prunedIlpSweep(Study &study, const Workload &workload,
                            const CompileOptions &options,
                            int degrees = 8);

/** The prune accounting as a JSON object (sweep meta.prune). */
Json pruneMeta(const PruneOutcome &o);

} // namespace whatif
} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_WHATIF_HH
