/**
 * @file
 * ilp::prof — the cycle-accurate profiler's artifact layer.
 *
 * The issue engine counts, per static instruction (pc), how many
 * slots it used and how many it lost per StallCause; this file maps
 * those counters back onto the program: per-pc, per-block, per-line,
 * per-function and per-natural-loop rollups, an annotated listing
 * that interleaves the scheduled machine code with the MT source it
 * came from, a machine-readable JSON form, and a diff of two
 * profiles of the same workload on different machines.
 *
 * Everything here is deterministic: a Profile built from a replayed
 * trace is byte-identical to one built from live interpretation, and
 * independent of worker count, because the per-pc counters come from
 * the same in-order engine either way (tests/profile_test.cc holds
 * this as an invariant alongside exact reconciliation with the
 * aggregate StallBreakdown).
 */

#ifndef SUPERSYM_CORE_STUDY_PROFILE_HH
#define SUPERSYM_CORE_STUDY_PROFILE_HH

#include <string>
#include <vector>

#include "core/study/driver.hh"
#include "support/json.hh"

namespace ilp {
namespace prof {

/** Slot counters summed over any grouping of pcs. */
struct Counters
{
    std::uint64_t issued = 0;
    std::array<std::uint64_t, kNumStallCauses> stallSlots{};

    void add(const PcCounters &c);
    void add(const Counters &c);
    std::uint64_t stallTotal() const;
    /** Slots this group accounted for: used + charged lost. */
    std::uint64_t slotTotal() const { return issued + stallTotal(); }
    /** The cause charged the most slots; RawLatency on an all-zero
     *  record (callers only print it when stallTotal() > 0). */
    StallCause dominantCause() const;
};

/** One static instruction of the final machine code. */
struct CodeEntry
{
    std::string func;
    int block = 0;
    SrcLoc loc;
    /** Printer form of the scheduled instruction. */
    std::string text;
};

/** A natural loop mapped onto pc space. */
struct CodeLoop
{
    std::string func;
    int headerBlock = 0;
    int depth = 1;
    /** Smallest known source line inside the loop (0 if none). */
    int headerLine = 0;
    /** Half-open pc ranges, one per member block. */
    std::vector<std::pair<Pc, Pc>> ranges;
};

/**
 * Immutable pc -> code structure map, captured from a module after
 * Module::assignPcs().  Build it once per compile; profiles for any
 * number of machines share it.
 */
struct CodeMap
{
    std::string sourceName;
    /** entries[pc] describes static instruction pc. */
    std::vector<CodeEntry> entries;
    std::vector<CodeLoop> loops;

    static CodeMap build(const Module &module);
};

/** A named rollup row (function, block or loop granularity). */
struct Row
{
    std::string key;
    Counters counters;
};

/** The profiler's artifact: one workload on one machine. */
struct Profile
{
    std::string workload;
    std::string machineName;
    std::uint64_t machineHash = 0;
    int issueWidth = 1;
    int pipelineDegree = 1;

    std::uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    std::uint64_t issueSlotsTotal = 0;
    StallBreakdown stalls;

    CodeMap code;
    /** Per-pc records; the last one is the unattributed bucket. */
    std::vector<PcCounters> perPc;
    /** Sum over perPc (including unattributed). */
    Counters total;

    const PcCounters &unattributed() const { return perPc.back(); }
};

/**
 * Assemble a Profile from a run's counters.  The outcome must have
 * been produced with RunTelemetryOptions::collectProfile and the
 * module the CodeMap was built from; panics when the record count
 * does not match the code map.
 */
Profile buildProfile(const std::string &workload,
                     const MachineConfig &machine, CodeMap code,
                     const RunOutcome &outcome);

/**
 * Exact reconciliation of the per-pc records against the aggregate
 * engine counters:
 *   sum(issued)         == instructions
 *   sum(stallSlots[c])  == stalls[c] for every cause
 *   sum(slotTotal)      == issueSlotsTotal
 * @return "" when the profile reconciles; otherwise a description of
 *         the first violated equation.
 */
std::string checkReconciliation(const Profile &profile);

// ------------------------------------------------------------ rollups

/** Per source line (known locs only), sorted by line. */
std::vector<std::pair<int, Counters>> rollupByLine(const Profile &p);

/** Per function, in layout order. */
std::vector<Row> rollupByFunction(const Profile &p);

/** Per basic block ("func/bbN"), in layout order. */
std::vector<Row> rollupByBlock(const Profile &p);

/** Per natural loop ("func:lineL depth d"), hottest first. */
std::vector<Row> rollupLoops(const Profile &p);

// ---------------------------------------------------------- renderers

/**
 * Human-readable annotated listing: headline numbers, the stall
 * breakdown, the `topN` hottest loops, then the scheduled code of
 * each function interleaved with the MT source lines it came from
 * (`source` is the workload's MT text), with issued/stall-slot and
 * percent-of-total columns per instruction.
 */
std::string renderAnnotatedListing(const Profile &p,
                                   const std::string &source,
                                   std::size_t topN);

/** Machine-readable form (schema: profile-v1), carrying build and
 *  machine provenance under "meta". */
Json toJson(const Profile &p);

/**
 * Compare two profiles of the same workload on different machines:
 * headline deltas plus a per-line table of slot counts under A and B.
 * Panics when the workloads differ (lines would not correspond).
 */
std::string renderDiff(const Profile &a, const Profile &b,
                       std::size_t topN);

} // namespace prof
} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_PROFILE_HH
