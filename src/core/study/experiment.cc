#include "core/study/experiment.hh"

#include "core/machine/models.hh"
#include "support/statistics.hh"

namespace ilp {

std::string
Study::fingerprint(const Workload &workload,
                   const CompileOptions &options)
{
    return workload.name + "/" +
           std::to_string(static_cast<int>(options.level)) + "/" +
           std::to_string(options.unroll.factor) + "/" +
           std::to_string(options.unroll.careful ? 1 : 0) + "/" +
           std::to_string(static_cast<int>(options.alias)) + "/" +
           std::to_string(options.layout.numTemp) + "/" +
           std::to_string(options.layout.numHome);
}

double
Study::baseCycles(const Workload &workload,
                  const CompileOptions &options)
{
    std::string key = fingerprint(workload, options);
    auto it = base_cycles_.find(key);
    if (it != base_cycles_.end())
        return it->second;
    RunOutcome out = runWorkload(workload, baseMachine(), options);
    base_cycles_[key] = out.cycles;
    return out.cycles;
}

double
Study::speedup(const Workload &workload, const MachineConfig &machine,
               const CompileOptions &options)
{
    double base = baseCycles(workload, options);
    RunOutcome out = runWorkload(workload, machine, options);
    return base / out.cycles;
}

double
Study::speedup(const Workload &workload, const MachineConfig &machine)
{
    return speedup(workload, machine, defaultCompileOptions(workload));
}

double
Study::harmonicSpeedup(const MachineConfig &machine)
{
    std::vector<double> values;
    for (const auto &w : allWorkloads())
        values.push_back(speedup(w, machine));
    return harmonicMean(values);
}

double
Study::availableParallelism(const Workload &workload,
                            const CompileOptions &options, int degree)
{
    return speedup(workload, idealSuperscalar(degree), options);
}

} // namespace ilp
