#include "core/study/experiment.hh"

#include "core/machine/models.hh"
#include "support/statistics.hh"

namespace ilp {

std::string
Study::fingerprint(const Workload &workload,
                   const CompileOptions &options)
{
    return workload.name + "/" +
           std::to_string(static_cast<int>(options.level)) + "/" +
           std::to_string(options.unroll.factor) + "/" +
           std::to_string(options.unroll.careful ? 1 : 0) + "/" +
           std::to_string(static_cast<int>(options.alias)) + "/" +
           std::to_string(options.layout.numTemp) + "/" +
           std::to_string(options.layout.numHome);
}

double
Study::baseCycles(const Workload &workload,
                  const CompileOptions &options)
{
    const std::string key = fingerprint(workload, options);

    // One producer per key: the first caller inserts a future and
    // runs the base machine; concurrent callers block on the result
    // instead of re-running it.
    std::shared_future<double> future;
    std::shared_ptr<std::promise<double>> fill;
    {
        std::lock_guard<std::mutex> lock(base_mu_);
        auto it = base_cycles_.find(key);
        if (it == base_cycles_.end()) {
            fill = std::make_shared<std::promise<double>>();
            future = fill->get_future().share();
            base_cycles_.emplace(key, future);
        } else {
            future = it->second;
        }
    }
    if (fill) {
        try {
            RunOutcome out =
                timedRun(workload, baseMachine(), options);
            if (out.trapped())
                throw TrapException(out.trap);
            fill->set_value(out.cycles);
        } catch (...) {
            // Mirror the caches: evict the failed entry before
            // handing the exception to parked waiters, so a
            // transient fault (injected, memory pressure) is not
            // memoized forever — retried cells recompute.
            {
                std::lock_guard<std::mutex> lock(base_mu_);
                base_cycles_.erase(key);
            }
            fill->set_exception(std::current_exception());
        }
    }
    return future.get();
}

RunOutcome
Study::timedRun(const Workload &workload, const MachineConfig &machine,
                const CompileOptions &options,
                const RunTelemetryOptions &telemetry)
{
    const bool want = telemetry.collectStats ||
                      telemetry.timelineLimit > 0;
    CompileTelemetry compile;
    std::shared_ptr<const Module> module = cache_.compile(
        workload, machine, options, want ? &compile : nullptr);
    const CompileTelemetry *ct = want ? &compile : nullptr;

    if (!trace_cache_.enabled())
        return runOnMachine(*module, machine, telemetry, ct);

    // The trace depends only on the compiled module, so the artifact
    // is keyed by the compile key: machines sharing a compilation
    // share one functional execution.
    std::shared_ptr<const TraceArtifact> artifact =
        trace_cache_.execute(CompileCache::key(workload, machine,
                                               options),
                             *module);
    if (!artifact->replayable) {
        trace_cache_.noteFallback();
        // Graceful degradation under memory pressure / non-packable
        // traces: the cell still completes, via live interpretation;
        // hardened sweeps count it as degraded rather than failed.
        noteDegradedCell();
        return runOnMachine(*module, machine, telemetry, ct);
    }
    return timeTrace(*artifact, machine, telemetry, ct);
}

prof::Profile
Study::profiledRun(const Workload &workload,
                   const MachineConfig &machine,
                   const CompileOptions &options)
{
    // Resolve the module first (a cache hit when timedRun follows):
    // the code map must come from the exact module that executes.
    std::shared_ptr<const Module> module =
        cache_.compile(workload, machine, options, nullptr);

    RunTelemetryOptions telemetry;
    telemetry.collectProfile = true;
    RunOutcome out = timedRun(workload, machine, options, telemetry);
    if (out.trapped())
        throw TrapException(out.trap);
    return prof::buildProfile(workload.name, machine,
                              prof::CodeMap::build(*module), out);
}

double
Study::speedup(const Workload &workload, const MachineConfig &machine,
               const CompileOptions &options)
{
    double base = baseCycles(workload, options);
    RunOutcome out = timedRun(workload, machine, options);
    if (out.trapped())
        // Re-raise the trap so sweep cells (mapChecked) record a
        // structured CellError instead of a bogus speedup.
        throw TrapException(out.trap);
    return base / out.cycles;
}

double
Study::speedup(const Workload &workload, const MachineConfig &machine)
{
    return speedup(workload, machine, defaultCompileOptions(workload));
}

double
Study::harmonicSpeedup(const MachineConfig &machine)
{
    const auto &suite = allWorkloads();
    std::vector<double> values = runner_.map<double>(
        suite.size(),
        [&](std::size_t i) { return speedup(suite[i], machine); });
    return harmonicMean(values);
}

double
Study::availableParallelism(const Workload &workload,
                            const CompileOptions &options, int degree)
{
    return speedup(workload, idealSuperscalar(degree), options);
}

} // namespace ilp
