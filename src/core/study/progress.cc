#include "core/study/progress.hh"

#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/study/sweep.hh"
#include "core/study/tracecache.hh"

namespace ilp {

namespace {

std::atomic<ProgressReporter *> g_current{nullptr};

/** "1m23s" / "45s" — coarse is fine for an ETA. */
std::string
renderDuration(double seconds)
{
    if (!std::isfinite(seconds) || seconds < 0.0)
        return "?";
    const auto total = static_cast<std::int64_t>(seconds + 0.5);
    char buf[64];
    if (total >= 3600) {
        std::snprintf(buf, sizeof(buf), "%lldh%02lldm",
                      static_cast<long long>(total / 3600),
                      static_cast<long long>((total % 3600) / 60));
    } else if (total >= 60) {
        std::snprintf(buf, sizeof(buf), "%lldm%02llds",
                      static_cast<long long>(total / 60),
                      static_cast<long long>(total % 60));
    } else {
        std::snprintf(buf, sizeof(buf), "%llds",
                      static_cast<long long>(total));
    }
    return buf;
}

std::string
renderPercent(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t total = hits + misses;
    if (total == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f%%",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(total));
    return buf;
}

} // namespace

ProgressReporter::ProgressReporter(const Config &config)
    : config_(config), start_(std::chrono::steady_clock::now())
{
    if (!config_.out)
        config_.out = stderr;
#if defined(__unix__) || defined(__APPLE__)
    tty_ = config_.out == stderr && ::isatty(fileno(stderr)) != 0;
#endif
    g_current.store(this, std::memory_order_release);
}

ProgressReporter::~ProgressReporter()
{
    // Only uninstall ourselves; a nested reporter (tests) may have
    // replaced us already.
    ProgressReporter *self = this;
    g_current.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

ProgressReporter *
ProgressReporter::current()
{
    return g_current.load(std::memory_order_acquire);
}

double
ProgressReporter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
ProgressReporter::cellFinished(double durSeconds)
{
    done_.fetch_add(1, std::memory_order_relaxed);
    if (durSeconds > 0.0) {
        busyUs_.fetch_add(
            static_cast<std::uint64_t>(durSeconds * 1e6),
            std::memory_order_relaxed);
    }
    noteCellAt(elapsedSeconds());
    maybeReport();
}

void
ProgressReporter::noteCellAt(double elapsedSeconds)
{
    const auto idx = stamps_.fetch_add(1, std::memory_order_relaxed);
    stampUs_[idx % kRateWindow].store(
        static_cast<std::int64_t>(elapsedSeconds * 1e6),
        std::memory_order_relaxed);
}

double
ProgressReporter::windowRate(double elapsedSeconds) const
{
    const std::uint64_t recorded =
        stamps_.load(std::memory_order_relaxed);
    const std::uint64_t window =
        recorded < kRateWindow ? recorded : kRateWindow;
    if (window >= 2) {
        const std::int64_t newest =
            stampUs_[(recorded - 1) % kRateWindow].load(
                std::memory_order_relaxed);
        const std::int64_t oldest =
            stampUs_[(recorded - window) % kRateWindow].load(
                std::memory_order_relaxed);
        if (newest > oldest) {
            return static_cast<double>(window - 1) /
                   (static_cast<double>(newest - oldest) / 1e6);
        }
    }
    // Not enough samples (or all in the same microsecond): the
    // whole-run average is the best estimate we have.
    const std::size_t done = done_.load(std::memory_order_relaxed);
    return elapsedSeconds > 0.0
               ? static_cast<double>(done) / elapsedSeconds
               : 0.0;
}

void
ProgressReporter::noteFailure()
{
    failed_.fetch_add(1, std::memory_order_relaxed);
}

void
ProgressReporter::maybeReport()
{
    const double elapsed = elapsedSeconds();
    const auto nowUs = static_cast<std::int64_t>(elapsed * 1e6);
    std::int64_t last = lastReportUs_.load(std::memory_order_relaxed);
    const auto interval =
        static_cast<std::int64_t>(config_.intervalMs * 1e3);
    if (last >= 0 && nowUs - last < interval)
        return;
    // One thread wins the right to print this interval's line.
    if (!lastReportUs_.compare_exchange_strong(
            last, nowUs, std::memory_order_relaxed))
        return;
    std::string line = renderLine(elapsed);
    std::fprintf(config_.out, tty_ ? "\r%s\x1b[K" : "%s\n",
                 line.c_str());
    std::fflush(config_.out);
}

void
ProgressReporter::finish()
{
    std::string line = renderLine(elapsedSeconds());
    std::fprintf(config_.out, tty_ ? "\r%s\x1b[K\n" : "%s\n",
                 line.c_str());
    std::fflush(config_.out);
}

std::string
ProgressReporter::renderLine(double elapsedSeconds) const
{
    const std::size_t done = done_.load(std::memory_order_relaxed);
    const std::size_t failed = failed_.load(std::memory_order_relaxed);
    const double busy =
        static_cast<double>(busyUs_.load(std::memory_order_relaxed)) /
        1e6;

    // Rate over the trailing completion window, so a cold-cache (or
    // cache-hot) start stops skewing the ETA once a window of cells
    // has finished.
    const double rate = windowRate(elapsedSeconds);
    std::string eta = "-";
    if (config_.totalCells > done && rate > 0.0) {
        eta = renderDuration(
            static_cast<double>(config_.totalCells - done) / rate);
    } else if (config_.totalCells != 0 && done >= config_.totalCells) {
        eta = "0s";
    }
    // Worker utilization: busy worker-seconds over available
    // worker-seconds so far.
    const int jobs = config_.jobs > 0 ? config_.jobs : 1;
    double util = 0.0;
    if (elapsedSeconds > 0.0) {
        util = 100.0 * busy / (elapsedSeconds * jobs);
        if (util > 100.0)
            util = 100.0;
    }

    char head[128];
    std::snprintf(head, sizeof(head),
                  "[sweep] %zu/%zu cells  %.1f cells/s  eta %s",
                  done, config_.totalCells, rate, eta.c_str());
    std::string line = head;

    char tail[160];
    std::snprintf(tail, sizeof(tail), "  util %.0f%%", util);
    line += tail;

    if (config_.compileCache) {
        line += "  compile-cache ";
        line += renderPercent(config_.compileCache->hits(),
                              config_.compileCache->misses());
    }
    if (config_.traceCache) {
        line += "  trace-cache ";
        line += renderPercent(config_.traceCache->hits(),
                              config_.traceCache->misses());
    }
    if (failed != 0) {
        char fbuf[48];
        std::snprintf(fbuf, sizeof(fbuf), "  failed %zu", failed);
        line += fbuf;
    }
    return line;
}

} // namespace ilp
