#include "core/study/profile.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "ir/dominators.hh"
#include "ir/printer.hh"
#include "support/buildinfo.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace ilp {
namespace prof {

void
Counters::add(const PcCounters &c)
{
    issued += c.issued;
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        stallSlots[i] += c.stallSlots[i];
}

void
Counters::add(const Counters &c)
{
    issued += c.issued;
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        stallSlots[i] += c.stallSlots[i];
}

std::uint64_t
Counters::stallTotal() const
{
    std::uint64_t t = 0;
    for (std::uint64_t s : stallSlots)
        t += s;
    return t;
}

StallCause
Counters::dominantCause() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumStallCauses; ++i) {
        if (stallSlots[i] > stallSlots[best])
            best = i;
    }
    return static_cast<StallCause>(best);
}

CodeMap
CodeMap::build(const Module &module)
{
    CodeMap map;
    map.sourceName = module.sourceName;
    map.entries.reserve(module.pcCount());

    for (const auto &func : module.functions()) {
        // Block pc ranges in layout order — the same walk as
        // Module::assignPcs(), so entry index == instr.pc.
        std::vector<std::pair<Pc, Pc>> block_range(func.blocks.size(),
                                                   {0, 0});
        for (const auto &bb : func.blocks) {
            const Pc start = static_cast<Pc>(map.entries.size());
            for (const auto &in : bb.instrs) {
                SS_ASSERT(in.pc ==
                              static_cast<Pc>(map.entries.size()),
                          "CodeMap: pc out of layout order — was "
                          "Module::assignPcs() run after the last "
                          "code-changing pass?");
                CodeEntry e;
                e.func = func.name;
                e.block = bb.id;
                e.loc = in.loc;
                e.text = toString(in);
                map.entries.push_back(std::move(e));
            }
            block_range[static_cast<std::size_t>(bb.id)] = {
                start, static_cast<Pc>(map.entries.size())};
        }

        if (func.blocks.empty())
            continue;
        Dominators dom(func);
        for (const NaturalLoop &loop : findNaturalLoops(func, dom)) {
            CodeLoop cl;
            cl.func = func.name;
            cl.headerBlock = loop.header;
            cl.depth = loop.depth;
            for (BlockId b : loop.blocks) {
                auto r = block_range[static_cast<std::size_t>(b)];
                if (r.first != r.second)
                    cl.ranges.push_back(r);
                for (const auto &in :
                     func.blocks[static_cast<std::size_t>(b)].instrs) {
                    if (in.loc.known() &&
                        (cl.headerLine == 0 ||
                         in.loc.line < cl.headerLine))
                        cl.headerLine = in.loc.line;
                }
            }
            std::sort(cl.ranges.begin(), cl.ranges.end());
            map.loops.push_back(std::move(cl));
        }
    }
    return map;
}

Profile
buildProfile(const std::string &workload, const MachineConfig &machine,
             CodeMap code, const RunOutcome &outcome)
{
    SS_ASSERT(!outcome.pcCounters.empty(),
              "buildProfile: run was not profiled (set "
              "RunTelemetryOptions::collectProfile)");
    SS_ASSERT(outcome.pcCounters.size() == code.entries.size() + 1,
              "buildProfile: ", outcome.pcCounters.size(),
              " pc records for ", code.entries.size(),
              " static instructions — outcome and code map come from "
              "different modules");

    Profile p;
    p.workload = workload;
    p.machineName = machine.name;
    p.machineHash = machine.specHash();
    p.issueWidth = machine.issueWidth;
    p.pipelineDegree = machine.pipelineDegree;
    p.instructions = outcome.instructions;
    p.cycles = outcome.cycles;
    p.ipc = outcome.ipc();
    p.issueSlotsTotal = outcome.issueSlotsTotal;
    p.stalls = outcome.stalls;
    p.code = std::move(code);
    p.perPc = outcome.pcCounters;
    for (const PcCounters &c : p.perPc)
        p.total.add(c);
    return p;
}

std::string
checkReconciliation(const Profile &p)
{
    std::ostringstream out;
    if (p.total.issued != p.instructions) {
        out << "sum(issued) = " << p.total.issued
            << " != instructions = " << p.instructions;
        return out.str();
    }
    for (std::size_t c = 0; c < kNumStallCauses; ++c) {
        if (p.total.stallSlots[c] != p.stalls.slots[c]) {
            out << "sum(stall[" << stallCauseName(
                       static_cast<StallCause>(c))
                << "]) = " << p.total.stallSlots[c]
                << " != aggregate " << p.stalls.slots[c];
            return out.str();
        }
    }
    if (p.total.slotTotal() != p.issueSlotsTotal) {
        out << "sum(issued + stalls) = " << p.total.slotTotal()
            << " != issue slots offered = " << p.issueSlotsTotal;
        return out.str();
    }
    return "";
}

std::vector<std::pair<int, Counters>>
rollupByLine(const Profile &p)
{
    std::map<int, Counters> by_line;
    for (Pc pc = 0; pc < p.code.entries.size(); ++pc) {
        const SrcLoc &loc = p.code.entries[pc].loc;
        if (loc.known())
            by_line[loc.line].add(p.perPc[pc]);
    }
    return {by_line.begin(), by_line.end()};
}

std::vector<Row>
rollupByFunction(const Profile &p)
{
    std::vector<Row> rows;
    for (Pc pc = 0; pc < p.code.entries.size(); ++pc) {
        const CodeEntry &e = p.code.entries[pc];
        if (rows.empty() || rows.back().key != e.func)
            rows.push_back(Row{e.func, {}});
        rows.back().counters.add(p.perPc[pc]);
    }
    return rows;
}

std::vector<Row>
rollupByBlock(const Profile &p)
{
    std::vector<Row> rows;
    for (Pc pc = 0; pc < p.code.entries.size(); ++pc) {
        const CodeEntry &e = p.code.entries[pc];
        std::string key =
            e.func + "/bb" + std::to_string(e.block);
        if (rows.empty() || rows.back().key != key)
            rows.push_back(Row{std::move(key), {}});
        rows.back().counters.add(p.perPc[pc]);
    }
    return rows;
}

std::vector<Row>
rollupLoops(const Profile &p)
{
    std::vector<Row> rows;
    for (const CodeLoop &loop : p.code.loops) {
        Row r;
        r.key = loop.func + ":line" + std::to_string(loop.headerLine) +
                " depth" + std::to_string(loop.depth);
        for (auto [first, last] : loop.ranges) {
            for (Pc pc = first; pc < last; ++pc)
                r.counters.add(p.perPc[pc]);
        }
        rows.push_back(std::move(r));
    }
    // Hottest first; layout order breaks ties deterministically.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.counters.slotTotal() >
                                b.counters.slotTotal();
                     });
    return rows;
}

namespace {

double
pctOf(std::uint64_t part, std::uint64_t whole)
{
    return whole > 0 ? 100.0 * static_cast<double>(part) /
                           static_cast<double>(whole)
                     : 0.0;
}

void
appendCauseCells(Table &t, const Counters &c)
{
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        t.cell(static_cast<long long>(c.stallSlots[i]));
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char ch : text) {
        if (ch == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

} // namespace

std::string
renderAnnotatedListing(const Profile &p, const std::string &source,
                       std::size_t topN)
{
    std::ostringstream out;
    out << "profile: " << p.workload << " on " << p.machineName
        << " (n=" << p.issueWidth << ", m=" << p.pipelineDegree
        << ")\n";
    out << "source: " << p.code.sourceName << "\n";
    out << "instructions " << p.instructions << ", base cycles "
        << formatFixed(p.cycles, 2) << ", ipc "
        << formatFixed(p.ipc, 3) << "\n";
    out << "issue slots " << p.issueSlotsTotal << ": used "
        << p.total.issued << " ("
        << formatFixed(pctOf(p.total.issued, p.issueSlotsTotal), 1)
        << "%), lost " << p.total.stallTotal() << "\n";
    for (std::size_t c = 0; c < kNumStallCauses; ++c) {
        out << "  " << stallCauseName(static_cast<StallCause>(c))
            << " " << p.stalls.slots[c] << " ("
            << formatFixed(
                   pctOf(p.stalls.slots[c], p.issueSlotsTotal), 1)
            << "%)\n";
    }
    if (p.unattributed().issued + p.unattributed().stallTotal() > 0) {
        out << "unattributed slots: issued "
            << p.unattributed().issued << ", lost "
            << p.unattributed().stallTotal() << "\n";
    }
    out << "\n";

    std::vector<Row> loops = rollupLoops(p);
    if (!loops.empty()) {
        Table lt("hottest loops");
        lt.setHeader({"loop", "slots", "%total", "issued", "raw",
                      "unit", "fence", "drain"});
        for (std::size_t i = 0; i < loops.size() && i < topN; ++i) {
            const Row &r = loops[i];
            lt.row()
                .cell(r.key)
                .cell(static_cast<long long>(r.counters.slotTotal()))
                .cell(pctOf(r.counters.slotTotal(),
                            p.issueSlotsTotal),
                      1)
                .cell(static_cast<long long>(r.counters.issued));
            appendCauseCells(lt, r.counters);
        }
        out << lt.render() << "\n";
    }

    const std::vector<std::string> src_lines = splitLines(source);
    const std::uint64_t slot_total = p.issueSlotsTotal;

    std::string cur_func;
    int cur_line = -1;
    Table *code_table = nullptr;
    Table table("");
    auto flush = [&] {
        if (code_table && code_table->rows() > 0)
            out << code_table->render() << "\n";
        table = Table("");
        table.setHeader({"pc", "issued", "stall", "%slots", "cause",
                         "instruction"});
        code_table = &table;
    };
    flush();

    for (Pc pc = 0; pc < p.code.entries.size(); ++pc) {
        const CodeEntry &e = p.code.entries[pc];
        if (e.func != cur_func) {
            flush();
            cur_func = e.func;
            cur_line = -1;
            out << "== function " << e.func << " ==\n";
        }
        if (e.loc.known() && e.loc.line != cur_line) {
            flush();
            cur_line = e.loc.line;
            const std::size_t idx =
                static_cast<std::size_t>(cur_line - 1);
            out << cur_line << " | "
                << (idx < src_lines.size() ? src_lines[idx]
                                           : std::string("<?>"))
                << "\n";
        }
        const PcCounters &c = p.perPc[pc];
        Counters cc;
        cc.add(c);
        code_table->row()
            .cell(static_cast<long long>(pc))
            .cell(static_cast<long long>(c.issued))
            .cell(static_cast<long long>(cc.stallTotal()))
            .cell(pctOf(cc.slotTotal(), slot_total), 1)
            .cell(cc.stallTotal() > 0
                      ? stallCauseName(cc.dominantCause())
                      : "-")
            .cell(e.text);
    }
    flush();
    return out.str();
}

namespace {

Json
countersJson(const Counters &c)
{
    Json j = Json::object();
    j.set("issued", c.issued);
    Json stalls = Json::object();
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        stalls.set(stallCauseName(static_cast<StallCause>(i)),
                   c.stallSlots[i]);
    j.set("stall_slots", std::move(stalls));
    j.set("slot_total", c.slotTotal());
    return j;
}

} // namespace

Json
toJson(const Profile &p)
{
    Json doc = Json::object();

    Json meta = buildMeta();
    meta.set("schema", "profile-v1");
    meta.set("workload", p.workload);
    meta.set("source", p.code.sourceName);
    meta.set("machine", p.machineName);
    meta.set("machine_hash", std::to_string(p.machineHash));
    doc.set("meta", std::move(meta));

    Json machine = Json::object();
    machine.set("issue_width", p.issueWidth);
    machine.set("pipeline_degree", p.pipelineDegree);
    doc.set("machine", std::move(machine));

    Json totals = Json::object();
    totals.set("instructions", p.instructions);
    totals.set("base_cycles", p.cycles);
    totals.set("ipc", p.ipc);
    totals.set("issue_slots_total", p.issueSlotsTotal);
    Json stalls = Json::object();
    for (std::size_t c = 0; c < kNumStallCauses; ++c)
        stalls.set(stallCauseName(static_cast<StallCause>(c)),
                   p.stalls.slots[c]);
    totals.set("stall_slots", std::move(stalls));
    doc.set("totals", std::move(totals));

    Json per_pc = Json::array();
    for (Pc pc = 0; pc < p.code.entries.size(); ++pc) {
        const CodeEntry &e = p.code.entries[pc];
        const PcCounters &c = p.perPc[pc];
        Counters cc;
        cc.add(c);
        Json row = countersJson(cc);
        // Prepend identity keys by rebuilding in display order.
        Json full = Json::object();
        full.set("pc", static_cast<std::uint64_t>(pc));
        full.set("func", e.func);
        full.set("block", e.block);
        full.set("line", e.loc.line);
        full.set("col", e.loc.col);
        full.set("text", e.text);
        for (const auto &[k, v] : row.asObject())
            full.set(k, v);
        per_pc.push(std::move(full));
    }
    doc.set("per_pc", std::move(per_pc));

    Counters un;
    un.add(p.unattributed());
    doc.set("unattributed", countersJson(un));

    Json lines = Json::array();
    for (const auto &[line, c] : rollupByLine(p)) {
        Json row = Json::object();
        row.set("line", line);
        // Keep the counters document alive across the loop: asObject()
        // returns a reference into it.
        const Json cj = countersJson(c);
        for (const auto &[k, v] : cj.asObject())
            row.set(k, v);
        lines.push(std::move(row));
    }
    doc.set("lines", std::move(lines));

    Json funcs = Json::array();
    for (const Row &r : rollupByFunction(p)) {
        Json row = Json::object();
        row.set("func", r.key);
        const Json cj = countersJson(r.counters);
        for (const auto &[k, v] : cj.asObject())
            row.set(k, v);
        funcs.push(std::move(row));
    }
    doc.set("functions", std::move(funcs));

    Json loops = Json::array();
    for (const Row &r : rollupLoops(p)) {
        Json row = Json::object();
        row.set("loop", r.key);
        const Json cj = countersJson(r.counters);
        for (const auto &[k, v] : cj.asObject())
            row.set(k, v);
        loops.push(std::move(row));
    }
    doc.set("loops", std::move(loops));

    return doc;
}

std::string
renderDiff(const Profile &a, const Profile &b, std::size_t topN)
{
    SS_ASSERT(a.workload == b.workload,
              "profile diff across workloads ('", a.workload,
              "' vs '", b.workload,
              "'): source lines would not correspond");

    std::ostringstream out;
    out << "profile diff: " << a.workload << "\n";
    out << "  A: " << a.machineName << " (n=" << a.issueWidth
        << ", m=" << a.pipelineDegree << ")  cycles "
        << formatFixed(a.cycles, 2) << ", ipc "
        << formatFixed(a.ipc, 3) << "\n";
    out << "  B: " << b.machineName << " (n=" << b.issueWidth
        << ", m=" << b.pipelineDegree << ")  cycles "
        << formatFixed(b.cycles, 2) << ", ipc "
        << formatFixed(b.ipc, 3) << "\n";
    if (a.cycles > 0.0)
        out << "  speedup B/A: " << formatFixed(a.cycles / b.cycles, 3)
            << "x\n";
    out << "\n";

    // Per-line slot comparison.  The two compiles may place different
    // instructions on a line, but the lines themselves correspond:
    // both profiles came from the same MT source.
    std::map<int, std::pair<Counters, Counters>> by_line;
    for (const auto &[line, c] : rollupByLine(a))
        by_line[line].first = c;
    for (const auto &[line, c] : rollupByLine(b))
        by_line[line].second = c;

    // Rank lines by how much timing changed between the machines
    // (normalized to each profile's slot budget, so a wider machine
    // doesn't dominate just by offering more slots).
    std::vector<std::pair<double, int>> ranked;
    for (const auto &[line, pair] : by_line) {
        const double pa =
            pctOf(pair.first.slotTotal(), a.issueSlotsTotal);
        const double pb =
            pctOf(pair.second.slotTotal(), b.issueSlotsTotal);
        ranked.push_back({std::abs(pa - pb), line});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &x, const auto &y) {
                         return x.first > y.first;
                     });

    Table t("largest per-line shifts (% of machine's issue slots)");
    t.setHeader({"line", "A slots", "A %", "B slots", "B %",
                 "delta %", "A cause", "B cause"});
    for (std::size_t i = 0; i < ranked.size() && i < topN; ++i) {
        const int line = ranked[i].second;
        const auto &[ca, cb] = by_line[line];
        const double pa = pctOf(ca.slotTotal(), a.issueSlotsTotal);
        const double pb = pctOf(cb.slotTotal(), b.issueSlotsTotal);
        t.row()
            .cell(line)
            .cell(static_cast<long long>(ca.slotTotal()))
            .cell(pa, 1)
            .cell(static_cast<long long>(cb.slotTotal()))
            .cell(pb, 1)
            .cell(pb - pa, 1)
            .cell(ca.stallTotal() > 0
                      ? stallCauseName(ca.dominantCause())
                      : "-")
            .cell(cb.stallTotal() > 0
                      ? stallCauseName(cb.dominantCause())
                      : "-");
    }
    out << t.render();
    return out.str();
}

} // namespace prof
} // namespace ilp
