/**
 * @file
 * Experiment harness shared by the bench binaries: speedups relative
 * to the base machine, per-benchmark sweeps, and harmonic-mean suite
 * aggregation (§4.3 plots "the harmonic mean of all eight
 * benchmarks").
 *
 * Every point reschedules the workload *for the machine being
 * evaluated* (the paper's system recompiles per machine
 * specification) — but compilations are shared through a
 * CompileCache, so two machines the compiler cannot tell apart reuse
 * one Module; functional executions are shared through a TraceCache
 * keyed by the same compile key, so each shared Module is executed
 * once and *timed* many times (timeTrace); and base-machine
 * reference cycles are memoized per compile configuration.
 *
 * A Study is safe to use from many threads at once: the compile
 * cache, the trace cache and the base-cycle memo are all future-based
 * (one producer per key, everyone else blocks on the result), and
 * each timing evaluation runs in its own IssueEngine over the shared
 * immutable Module/trace.  harmonicSpeedup fans the eight benchmarks
 * out across the study's own SweepRunner.
 */

#ifndef SUPERSYM_CORE_STUDY_EXPERIMENT_HH
#define SUPERSYM_CORE_STUDY_EXPERIMENT_HH

#include <future>
#include <map>
#include <mutex>
#include <string>

#include "core/study/profile.hh"
#include "core/study/sweep.hh"
#include "core/study/tracecache.hh"
#include "core/study/whatif.hh"

namespace ilp {

class Study
{
  public:
    /** @param jobs Worker count for suite-level fan-out; <= 0
     *  resolves via defaultSweepJobs() (SSIM_JOBS, then hardware). */
    explicit Study(int jobs = 0) : runner_(jobs) {}

    /**
     * Base-machine elapsed cycles for a workload under a compile
     * configuration (memoized).  With unit latencies this equals the
     * dynamic instruction count — §2.1's stall-free base machine.
     */
    double baseCycles(const Workload &workload,
                      const CompileOptions &options);

    /**
     * Speedup of `machine` over the base machine (§4's "relative
     * performance"), compiling/scheduling the workload for each
     * machine respectively.
     */
    double speedup(const Workload &workload,
                   const MachineConfig &machine,
                   const CompileOptions &options);

    /** speedup() with each workload's default options. */
    double speedup(const Workload &workload,
                   const MachineConfig &machine);

    /**
     * Compile (via the compile cache), execute once (via the trace
     * cache) and time `workload` on `machine` — the study-level
     * equivalent of runWorkload(), byte-identical to it whether the
     * caches hit, miss, or are disabled.  Non-replayable artifacts
     * (trapped runs, traces over budget) fall back to live
     * interpretation transparently; a trapped run surfaces through
     * RunOutcome::trap exactly as on the live path.
     */
    RunOutcome timedRun(const Workload &workload,
                        const MachineConfig &machine,
                        const CompileOptions &options,
                        const RunTelemetryOptions &telemetry = {});

    /**
     * timedRun() with the cycle profiler enabled, assembled into a
     * prof::Profile (per-pc counters mapped back onto the compiled
     * code).  Deterministic: byte-identical whether the run was live
     * or trace-replayed, and independent of the study's job count.
     * Throws TrapException when the workload faults — a profile of a
     * partial run would not reconcile.
     */
    prof::Profile profiledRun(const Workload &workload,
                              const MachineConfig &machine,
                              const CompileOptions &options);

    /** Harmonic mean of speedup() across the whole suite, evaluated
     *  benchmark-parallel on the study's worker pool. */
    double harmonicSpeedup(const MachineConfig &machine);

    /**
     * Available parallelism of one workload at a compile
     * configuration: speedup on an ideal superscalar machine of
     * `degree`, unit latencies (§4: "the available parallelism must
     * be divided by the average operation latency" — unit latencies
     * make speedup and parallelism coincide).
     */
    double availableParallelism(const Workload &workload,
                                const CompileOptions &options,
                                int degree = 8);

    /** The worker pool (for callers fanning out their own cells). */
    const SweepRunner &runner() const { return runner_; }

    /** Shared compilations (for hit accounting and stats export). */
    CompileCache &compileCache() { return cache_; }
    const CompileCache &compileCache() const { return cache_; }

    /** Shared functional executions (budget control, hit accounting
     *  and stats export). */
    TraceCache &traceCache() { return trace_cache_; }
    const TraceCache &traceCache() const { return trace_cache_; }

    /**
     * The dynamic dependence graph of `workload` compiled for
     * `machine` (cached per compile key, exactly like the trace it
     * is built from).  Prefers the cached packed trace; a
     * non-replayable artifact (trace over budget, cache disabled)
     * falls back to streaming the graph straight out of live
     * interpretation — same graph either way.  Throws TrapException
     * when the workload faults.
     */
    std::shared_ptr<const DepGraph>
    dependenceGraph(const Workload &workload,
                    const MachineConfig &machine,
                    const CompileOptions &options);

    /** Shared dependence graphs (hit accounting, stats export). */
    DepGraphCache &graphCache() { return graph_cache_; }
    const DepGraphCache &graphCache() const { return graph_cache_; }

    /** Stable identity of a (workload, compile options) pair: keys
     *  the base-cycles memo and fingerprints sweep journals. */
    static std::string fingerprint(const Workload &workload,
                                   const CompileOptions &options);

  private:
    SweepRunner runner_;
    CompileCache cache_;
    TraceCache trace_cache_;
    DepGraphCache graph_cache_;
    std::mutex base_mu_;
    std::map<std::string, std::shared_future<double>> base_cycles_;
};

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_EXPERIMENT_HH
