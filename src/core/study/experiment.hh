/**
 * @file
 * Experiment harness shared by the bench binaries: speedups relative
 * to the base machine, per-benchmark sweeps, and harmonic-mean suite
 * aggregation (§4.3 plots "the harmonic mean of all eight
 * benchmarks").
 *
 * Every point recompiles the workload *for the machine being
 * evaluated* (the paper's system reschedules per machine
 * specification) and re-runs the functional simulator; base-machine
 * reference cycles are memoized per compile configuration.
 */

#ifndef SUPERSYM_CORE_STUDY_EXPERIMENT_HH
#define SUPERSYM_CORE_STUDY_EXPERIMENT_HH

#include <map>
#include <string>

#include "core/study/driver.hh"

namespace ilp {

class Study
{
  public:
    /**
     * Base-machine elapsed cycles for a workload under a compile
     * configuration (memoized).  With unit latencies this equals the
     * dynamic instruction count — §2.1's stall-free base machine.
     */
    double baseCycles(const Workload &workload,
                      const CompileOptions &options);

    /**
     * Speedup of `machine` over the base machine (§4's "relative
     * performance"), compiling/scheduling the workload for each
     * machine respectively.
     */
    double speedup(const Workload &workload,
                   const MachineConfig &machine,
                   const CompileOptions &options);

    /** speedup() with each workload's default options. */
    double speedup(const Workload &workload,
                   const MachineConfig &machine);

    /** Harmonic mean of speedup() across the whole suite. */
    double harmonicSpeedup(const MachineConfig &machine);

    /**
     * Available parallelism of one workload at a compile
     * configuration: speedup on an ideal superscalar machine of
     * `degree`, unit latencies (§4: "the available parallelism must
     * be divided by the average operation latency" — unit latencies
     * make speedup and parallelism coincide).
     */
    double availableParallelism(const Workload &workload,
                                const CompileOptions &options,
                                int degree = 8);

  private:
    static std::string fingerprint(const Workload &workload,
                                   const CompileOptions &options);

    std::map<std::string, double> base_cycles_;
};

} // namespace ilp

#endif // SUPERSYM_CORE_STUDY_EXPERIMENT_HH
