#include "core/study/telemetry.hh"

#include <cstdio>
#include <fstream>

#include "core/study/experiment.hh"
#include "core/study/sweep.hh"
#include "support/buildinfo.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace ilp {

namespace {

Json
completeEvent(const std::string &name, const std::string &cat,
              double ts_us, double dur_us, int pid, int tid)
{
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("cat", Json(cat));
    e.set("ph", Json("X"));
    e.set("ts", Json(ts_us));
    e.set("dur", Json(dur_us));
    e.set("pid", Json(pid));
    e.set("tid", Json(tid));
    return e;
}

Json
metadataEvent(const std::string &name, int pid, int tid,
              const std::string &label)
{
    Json args = Json::object();
    args.set("name", Json(label));
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("ph", Json("M"));
    e.set("pid", Json(pid));
    e.set("tid", Json(tid));
    e.set("args", std::move(args));
    return e;
}

} // namespace

Json
buildTraceEvents(const RunOutcome &outcome,
                 const MachineConfig &machine)
{
    constexpr int kCompilePid = 1;
    constexpr int kIssuePid = 2;

    Json events = Json::array();
    events.push(
        metadataEvent("process_name", kCompilePid, 0, "compile"));
    events.push(metadataEvent("process_name", kIssuePid, 0, "issue"));

    // Compile spans: one tid per distinct phase prefix (the part
    // before ':'), so each optimizer phase gets its own track.
    // Each track is named so viewers show "frontend"/"opt"/... instead
    // of bare thread ids.
    std::vector<std::string> tracks;
    for (const auto &span : outcome.compile.spans) {
        std::string track = span.name.substr(0, span.name.find(':'));
        int tid = -1;
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i] == track)
                tid = static_cast<int>(i);
        }
        if (tid < 0) {
            tid = static_cast<int>(tracks.size());
            tracks.push_back(track);
            events.push(metadataEvent("thread_name", kCompilePid, tid,
                                      track));
        }
        events.push(completeEvent(span.name, "compile",
                                  span.startMs * 1000.0,
                                  span.durMs * 1000.0, kCompilePid,
                                  tid));
    }

    // Issue timeline: one tid per issue slot; one simulated minor
    // cycle = 1us of trace time, duration = operation latency.
    bool slot_named[64] = {};
    for (const auto &ev : outcome.issueTimeline) {
        const int tid = static_cast<int>(ev.slot);
        if (tid >= 0 && tid < 64 && !slot_named[tid]) {
            slot_named[tid] = true;
            events.push(metadataEvent(
                "thread_name", kIssuePid, tid,
                "slot " + std::to_string(tid)));
        }
        events.push(completeEvent(
            std::string(instrClassName(ev.cls)), "issue",
            static_cast<double>(ev.cycle),
            static_cast<double>(ev.latencyMinor), kIssuePid, tid));
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    Json meta = buildMeta();
    meta.set("machine", Json(machine.name));
    meta.set("machine_hash",
             Json(std::to_string(machine.specHash())));
    meta.set("issueWidth", Json(machine.issueWidth));
    meta.set("pipelineDegree", Json(machine.pipelineDegree));
    meta.set("timelineDropped", Json(outcome.timelineDropped));
    doc.set("otherData", std::move(meta));
    return doc;
}

Json
buildSweepTraceEvents(const trace::Recording &recording,
                      const MachineConfig &machine)
{
    constexpr int kSweepPid = 1;

    Json events = Json::array();
    events.push(metadataEvent("process_name", kSweepPid, 0, "sweep"));
    for (const auto &[track, label] : recording.tracks) {
        events.push(metadataEvent("thread_name", kSweepPid,
                                  static_cast<int>(track), label));
    }
    for (const trace::Span &span : recording.spans) {
        Json e = completeEvent(span.name, span.cat, span.startUs,
                               span.durUs, kSweepPid,
                               static_cast<int>(span.track));
        if (!span.detail.empty()) {
            Json args = Json::object();
            args.set("detail", Json(span.detail));
            e.set("args", std::move(args));
        }
        events.push(std::move(e));
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    Json meta = buildMeta();
    meta.set("machine", Json(machine.name));
    meta.set("machine_hash",
             Json(std::to_string(machine.specHash())));
    meta.set("spans",
             Json(static_cast<std::uint64_t>(recording.spans.size())));
    meta.set("workers",
             Json(static_cast<std::uint64_t>(recording.tracks.size())));
    doc.set("otherData", std::move(meta));
    return doc;
}

std::string
checkMetricsReconciliation(const Study &study,
                           std::uint64_t expectedCells)
{
    metrics::Registry &reg = metrics::Registry::global();
    struct Pair
    {
        const char *metric;
        std::uint64_t expected;
    };
    const Pair pairs[] = {
        {"ssim_sweep_cells_total", expectedCells},
        {"ssim_compile_cache_hits_total",
         study.compileCache().hits()},
        {"ssim_compile_cache_misses_total",
         study.compileCache().misses()},
        {"ssim_compile_cache_failures_total",
         study.compileCache().failures()},
        {"ssim_trace_cache_hits_total", study.traceCache().hits()},
        {"ssim_trace_cache_misses_total",
         study.traceCache().misses()},
        {"ssim_trace_cache_evictions_total",
         study.traceCache().evictions()},
        {"ssim_trace_cache_fallbacks_total",
         study.traceCache().fallbacks()},
    };
    for (const Pair &p : pairs) {
        const std::uint64_t got = reg.counter(p.metric).value();
        if (got != p.expected) {
            return std::string("metric '") + p.metric + "' is " +
                   std::to_string(got) +
                   " but the stats-side counter says " +
                   std::to_string(p.expected);
        }
    }
    return {};
}

std::string
checkMetricsReconciliation(const Study &study,
                           std::uint64_t expectedCells,
                           const HardeningTotals &totals)
{
    std::string mismatch =
        checkMetricsReconciliation(study, expectedCells);
    if (!mismatch.empty())
        return mismatch;
    metrics::Registry &reg = metrics::Registry::global();
    struct Pair
    {
        const char *metric;
        std::uint64_t expected;
    };
    const Pair pairs[] = {
        {"ssim_sweep_cell_retries_total", totals.retries},
        {"ssim_sweep_cell_timeouts_total", totals.timeouts},
        {"ssim_sweep_cells_quarantined_total", totals.quarantined},
        {"ssim_sweep_cells_degraded_total", totals.degraded},
    };
    for (const Pair &p : pairs) {
        const std::uint64_t got = reg.counter(p.metric).value();
        if (got != p.expected) {
            return std::string("metric '") + p.metric + "' is " +
                   std::to_string(got) +
                   " but the sweep-side counter says " +
                   std::to_string(p.expected);
        }
    }
    return {};
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    // Temp-and-rename: rename(2) is atomic within a filesystem, so
    // consumers polling `path` (dashboards, resume tooling) never
    // observe a torn document, and a crash mid-write leaves the old
    // file intact.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            SS_FATAL("cannot open '", tmp, "' for writing");
        out << doc.dump(2) << "\n";
        out.flush();
        if (!out)
            SS_FATAL("write to '", tmp, "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        SS_FATAL("cannot rename '", tmp, "' to '", path, "'");
}

} // namespace ilp
