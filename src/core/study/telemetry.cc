#include "core/study/telemetry.hh"

#include <fstream>

#include "support/buildinfo.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

Json
completeEvent(const std::string &name, const std::string &cat,
              double ts_us, double dur_us, int pid, int tid)
{
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("cat", Json(cat));
    e.set("ph", Json("X"));
    e.set("ts", Json(ts_us));
    e.set("dur", Json(dur_us));
    e.set("pid", Json(pid));
    e.set("tid", Json(tid));
    return e;
}

Json
metadataEvent(const std::string &name, int pid, int tid,
              const std::string &label)
{
    Json args = Json::object();
    args.set("name", Json(label));
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("ph", Json("M"));
    e.set("pid", Json(pid));
    e.set("tid", Json(tid));
    e.set("args", std::move(args));
    return e;
}

} // namespace

Json
buildTraceEvents(const RunOutcome &outcome,
                 const MachineConfig &machine)
{
    constexpr int kCompilePid = 1;
    constexpr int kIssuePid = 2;

    Json events = Json::array();
    events.push(
        metadataEvent("process_name", kCompilePid, 0, "compile"));
    events.push(metadataEvent("process_name", kIssuePid, 0, "issue"));

    // Compile spans: one tid per distinct phase prefix (the part
    // before ':'), so each optimizer phase gets its own track.
    // Each track is named so viewers show "frontend"/"opt"/... instead
    // of bare thread ids.
    std::vector<std::string> tracks;
    for (const auto &span : outcome.compile.spans) {
        std::string track = span.name.substr(0, span.name.find(':'));
        int tid = -1;
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i] == track)
                tid = static_cast<int>(i);
        }
        if (tid < 0) {
            tid = static_cast<int>(tracks.size());
            tracks.push_back(track);
            events.push(metadataEvent("thread_name", kCompilePid, tid,
                                      track));
        }
        events.push(completeEvent(span.name, "compile",
                                  span.startMs * 1000.0,
                                  span.durMs * 1000.0, kCompilePid,
                                  tid));
    }

    // Issue timeline: one tid per issue slot; one simulated minor
    // cycle = 1us of trace time, duration = operation latency.
    bool slot_named[64] = {};
    for (const auto &ev : outcome.issueTimeline) {
        const int tid = static_cast<int>(ev.slot);
        if (tid >= 0 && tid < 64 && !slot_named[tid]) {
            slot_named[tid] = true;
            events.push(metadataEvent(
                "thread_name", kIssuePid, tid,
                "slot " + std::to_string(tid)));
        }
        events.push(completeEvent(
            std::string(instrClassName(ev.cls)), "issue",
            static_cast<double>(ev.cycle),
            static_cast<double>(ev.latencyMinor), kIssuePid, tid));
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    Json meta = buildMeta();
    meta.set("machine", Json(machine.name));
    meta.set("machine_hash",
             Json(std::to_string(machine.specHash())));
    meta.set("issueWidth", Json(machine.issueWidth));
    meta.set("pipelineDegree", Json(machine.pipelineDegree));
    meta.set("timelineDropped", Json(outcome.timelineDropped));
    doc.set("otherData", std::move(meta));
    return doc;
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    std::ofstream out(path);
    if (!out)
        SS_FATAL("cannot open '", path, "' for writing");
    out << doc.dump(2) << "\n";
    if (!out)
        SS_FATAL("write to '", path, "' failed");
}

} // namespace ilp
