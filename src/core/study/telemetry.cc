#include "core/study/telemetry.hh"

#include <fstream>

#include "support/logging.hh"

namespace ilp {

namespace {

Json
completeEvent(const std::string &name, const std::string &cat,
              double ts_us, double dur_us, int pid, int tid)
{
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("cat", Json(cat));
    e.set("ph", Json("X"));
    e.set("ts", Json(ts_us));
    e.set("dur", Json(dur_us));
    e.set("pid", Json(pid));
    e.set("tid", Json(tid));
    return e;
}

Json
metadataEvent(const std::string &name, int pid, const std::string &label)
{
    Json args = Json::object();
    args.set("name", Json(label));
    Json e = Json::object();
    e.set("name", Json(name));
    e.set("ph", Json("M"));
    e.set("pid", Json(pid));
    e.set("tid", Json(0));
    e.set("args", std::move(args));
    return e;
}

} // namespace

Json
buildTraceEvents(const RunOutcome &outcome,
                 const MachineConfig &machine)
{
    constexpr int kCompilePid = 1;
    constexpr int kIssuePid = 2;

    Json events = Json::array();
    events.push(
        metadataEvent("process_name", kCompilePid, "compile"));
    events.push(metadataEvent("process_name", kIssuePid, "issue"));

    // Compile spans: one tid per distinct phase prefix (the part
    // before ':'), so each optimizer phase gets its own track.
    std::vector<std::string> tracks;
    for (const auto &span : outcome.compile.spans) {
        std::string track = span.name.substr(0, span.name.find(':'));
        int tid = -1;
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i] == track)
                tid = static_cast<int>(i);
        }
        if (tid < 0) {
            tid = static_cast<int>(tracks.size());
            tracks.push_back(track);
        }
        events.push(completeEvent(span.name, "compile",
                                  span.startMs * 1000.0,
                                  span.durMs * 1000.0, kCompilePid,
                                  tid));
    }

    // Issue timeline: one tid per issue slot; one simulated minor
    // cycle = 1us of trace time, duration = operation latency.
    for (const auto &ev : outcome.issueTimeline) {
        events.push(completeEvent(
            std::string(instrClassName(ev.cls)), "issue",
            static_cast<double>(ev.cycle),
            static_cast<double>(ev.latencyMinor), kIssuePid,
            static_cast<int>(ev.slot)));
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    Json meta = Json::object();
    meta.set("issueWidth", Json(machine.issueWidth));
    meta.set("pipelineDegree", Json(machine.pipelineDegree));
    meta.set("timelineDropped", Json(outcome.timelineDropped));
    doc.set("otherData", std::move(meta));
    return doc;
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    std::ofstream out(path);
    if (!out)
        SS_FATAL("cannot open '", path, "' for writing");
    out << doc.dump(2) << "\n";
    if (!out)
        SS_FATAL("write to '", path, "' failed");
}

} // namespace ilp
