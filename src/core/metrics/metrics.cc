#include "core/metrics/metrics.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

ClassFrequencies
normalizeCounts(const ClassCounts &counts)
{
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    SS_ASSERT(total > 0, "normalizeCounts on empty profile");
    ClassFrequencies f{};
    for (std::size_t i = 0; i < counts.size(); ++i)
        f[i] = static_cast<double>(counts[i]) /
               static_cast<double>(total);
    return f;
}

double
averageDegreeOfSuperpipelining(const ClassFrequencies &freqs,
                               const LatencyTable &latency)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < freqs.size(); ++i)
        acc += freqs[i] * static_cast<double>(latency[i]);
    return acc;
}

const std::vector<NominalMixRow> &
paperNominalMix()
{
    static const std::vector<NominalMixRow> rows = {
        {"logical", 0.10, 1, 1},
        {"shift", 0.10, 1, 2},
        {"add/sub", 0.20, 1, 3},
        {"load", 0.20, 2, 11},
        {"store", 0.15, 2, 1},
        {"branch", 0.15, 2, 3},
        {"FP", 0.10, 3, 7},
    };
    return rows;
}

namespace {

double
nominalDot(bool cray)
{
    double acc = 0.0;
    for (const auto &row : paperNominalMix())
        acc += row.frequency *
               (cray ? row.cray1Latency : row.multiTitanLatency);
    return acc;
}

} // namespace

double
nominalMultiTitanSuperpipelining()
{
    return nominalDot(false);
}

double
nominalCray1Superpipelining()
{
    return nominalDot(true);
}

int
ExprDag::addNode(std::vector<int> deps)
{
    for (int d : deps)
        SS_ASSERT(d >= 0 && static_cast<std::size_t>(d) < deps_.size(),
                  "ExprDag: dependency on unknown node ", d);
    deps_.push_back(std::move(deps));
    return static_cast<int>(deps_.size()) - 1;
}

int
ExprDag::criticalPath() const
{
    // Nodes are added in topological order by construction.
    std::vector<int> depth(deps_.size(), 1);
    int best = 0;
    for (std::size_t i = 0; i < deps_.size(); ++i) {
        for (int d : deps_[i])
            depth[i] = std::max(depth[i], depth[d] + 1);
        best = std::max(best, depth[i]);
    }
    return best;
}

double
ExprDag::parallelism() const
{
    SS_ASSERT(!deps_.empty(), "parallelism of an empty DAG");
    return static_cast<double>(deps_.size()) /
           static_cast<double>(criticalPath());
}

double
speedup(double base_cycles, double machine_cycles)
{
    SS_ASSERT(machine_cycles > 0.0, "speedup: zero machine cycles");
    return base_cycles / machine_cycles;
}

int
parallelismRequired(int n, int m)
{
    SS_ASSERT(n >= 1 && m >= 1, "parallelismRequired: bad degrees");
    return n * m;
}

} // namespace ilp
