/**
 * @file
 * The study's metrics.
 *
 *  - Average degree of superpipelining (§2.7, Table 2-1): dynamic
 *    instruction-class frequencies dotted with per-class operation
 *    latencies.  "To the extent that some operation latencies are
 *    greater than one base machine cycle, the remaining amount of
 *    exploitable instruction-level parallelism will be reduced."
 *  - Available parallelism / speedup: base cycles over machine cycles.
 *  - Expression-DAG parallelism (Figure 4-7): operation count divided
 *    by critical-path length, the vehicle for the "optimization can
 *    add or subtract parallelism" discussion.
 */

#ifndef SUPERSYM_CORE_METRICS_METRICS_HH
#define SUPERSYM_CORE_METRICS_METRICS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine/machine.hh"

namespace ilp {

/** Fraction of dynamic instructions per class (sums to ~1). */
using ClassFrequencies = std::array<double, kNumInstrClasses>;

/** Dynamic instruction counts per class. */
using ClassCounts = std::array<std::uint64_t, kNumInstrClasses>;

/** Normalize counts into frequencies. Panics on an empty profile. */
ClassFrequencies normalizeCounts(const ClassCounts &counts);

/**
 * Average degree of superpipelining: sum over classes of
 * frequency x latency (in the machine's own cycles).
 */
double averageDegreeOfSuperpipelining(const ClassFrequencies &freqs,
                                      const LatencyTable &latency);

/**
 * The paper's nominal Table 2-1 rows: instruction mix and latencies
 * for the MultiTitan and the CRAY-1.
 */
struct NominalMixRow
{
    const char *klass;
    double frequency;
    int multiTitanLatency;
    int cray1Latency;
};

/** The seven Table 2-1 rows (frequencies sum to 1.0). */
const std::vector<NominalMixRow> &paperNominalMix();

/** Table 2-1 result for the MultiTitan under the nominal mix (1.7). */
double nominalMultiTitanSuperpipelining();

/** Table 2-1 result for the CRAY-1 under the nominal mix (4.4). */
double nominalCray1Superpipelining();

// ------------------------------------------------------------- DAGs

/**
 * A small expression DAG for Figure 4-7 style arguments: nodes are
 * unit-latency operations; edges point from producers to consumers.
 */
class ExprDag
{
  public:
    /** Add a node depending on `deps`; returns its id. */
    int addNode(std::vector<int> deps = {});

    std::size_t size() const { return deps_.size(); }

    /** Longest path length, counting nodes. */
    int criticalPath() const;

    /** Parallelism = node count / critical path (Figure 4-7). */
    double parallelism() const;

  private:
    std::vector<std::vector<int>> deps_;
};

/**
 * Speedup of `machine_cycles` relative to `base_cycles`
 * (both in base cycles; the caller converts minor cycles first).
 */
double speedup(double base_cycles, double machine_cycles);

/**
 * Instruction-level parallelism actually required to fully utilize a
 * superpipelined superscalar machine of degree (n, m): n*m (Fig 4-3).
 */
int parallelismRequired(int n, int m);

} // namespace ilp

#endif // SUPERSYM_CORE_METRICS_METRICS_HH
