/**
 * @file
 * Predefined machine models used throughout the study.
 *
 * The ideal machines (base, superscalar(n), superpipelined(m),
 * superpipelined-superscalar(n,m)) have unit latencies and no class
 * conflicts, matching §4's measurement assumptions.  The MultiTitan
 * and CRAY-1 models carry the paper's real operation latencies
 * (Table 2-1 and §2.7).
 */

#ifndef SUPERSYM_CORE_MACHINE_MODELS_HH
#define SUPERSYM_CORE_MACHINE_MODELS_HH

#include "core/machine/machine.hh"

namespace ilp {

/** §2.1: 1 issue/cycle, unit latencies, no conflicts. */
MachineConfig baseMachine();

/** §2.3: n issues/cycle, unit latencies, no class conflicts. */
MachineConfig idealSuperscalar(int n);

/** §2.4: 1 issue per minor cycle, m minor cycles per base cycle. */
MachineConfig superpipelined(int m);

/** §2.5: n issues per minor cycle at pipeline degree m. */
MachineConfig superpipelinedSuperscalar(int n, int m);

/**
 * §2.2 Figure 2-3: an underpipelined machine that can only issue an
 * instruction every other cycle (modelled with a single universal
 * unit of issue latency 2).
 */
MachineConfig underpipelinedHalfIssue();

/**
 * §2.2 Figure 2-2: an underpipelined machine whose cycle time is
 * twice the simple-operation time (all latencies stay one cycle but
 * each base cycle counts double; modelled as latency-1 ops on a
 * machine whose reported time is scaled by the caller).  Provided for
 * the taxonomy example; reports pipelineDegree 1 with doubled
 * latencies, which has identical timing.
 */
MachineConfig underpipelinedSlowClock();

/**
 * The MultiTitan (§2.7): ALU 1 cycle; loads, stores and branches 2;
 * floating point 3.  Average degree of superpipelining 1.7 under the
 * paper's nominal frequencies.
 */
MachineConfig multiTitan();

/**
 * The CRAY-1 (§2.7/Table 2-1): logical 1, shift 2, add/sub 3,
 * load 11, store 1, branch 3, FP ~7.  Average degree of
 * superpipelining 4.4 under the paper's nominal frequencies.
 * @param unit_latencies Replace the real latencies with 1-cycle
 *        latencies (the mistaken assumption §4.2 criticizes, after
 *        Acosta et al. [1]).
 */
MachineConfig cray1(bool unit_latencies = false);

/**
 * A superscalar machine with class conflicts (§2.3.2): issue width n
 * but a conventional one-unit-per-class-group pool (one integer ALU
 * group per `alu_copies`, one load/store port per `mem_ports`, one FP
 * add and one FP multiply unit, ...).
 */
MachineConfig superscalarWithClassConflicts(int n, int alu_copies = 1,
                                            int mem_ports = 1);

/** All ideal-machine degrees used by Figure 4-1 (1..8). */
inline constexpr int kMaxDegree = 8;

} // namespace ilp

#endif // SUPERSYM_CORE_MACHINE_MODELS_HH
