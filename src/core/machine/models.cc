#include "core/machine/models.hh"

#include "support/logging.hh"

namespace ilp {

namespace {

void
setLatency(LatencyTable &t, InstrClass cls, int cycles)
{
    t[static_cast<std::size_t>(cls)] = cycles;
}

} // namespace

MachineConfig
baseMachine()
{
    MachineConfig m;
    m.name = "base";
    return m;
}

MachineConfig
idealSuperscalar(int n)
{
    MachineConfig m;
    m.name = "superscalar(" + std::to_string(n) + ")";
    m.issueWidth = n;
    m.validate();
    return m;
}

MachineConfig
superpipelined(int m_degree)
{
    MachineConfig m;
    m.name = "superpipelined(" + std::to_string(m_degree) + ")";
    m.pipelineDegree = m_degree;
    m.validate();
    return m;
}

MachineConfig
superpipelinedSuperscalar(int n, int m_degree)
{
    MachineConfig m;
    m.name = "ss(" + std::to_string(n) + "," + std::to_string(m_degree) +
             ")";
    m.issueWidth = n;
    m.pipelineDegree = m_degree;
    m.validate();
    return m;
}

MachineConfig
underpipelinedHalfIssue()
{
    MachineConfig m;
    m.name = "underpipelined-half-issue";
    FuncUnit all;
    all.name = "universal";
    for (std::size_t c = 0; c < kNumInstrClasses; ++c)
        all.classes.push_back(static_cast<InstrClass>(c));
    all.multiplicity = 1;
    all.issueLatency = 2;
    m.units.push_back(std::move(all));
    m.validate();
    return m;
}

MachineConfig
underpipelinedSlowClock()
{
    // Every operation occupies its (unpipelined) execute+writeback
    // stage for a whole double-length cycle: operations complete two
    // base cycles after issue and a new instruction starts only every
    // other base cycle — the same performance as the half-issue
    // machine, as §2.2 observes.
    MachineConfig m;
    m.name = "underpipelined-slow-clock";
    m.latency = unitLatencies();
    for (auto &l : m.latency)
        l *= 2;
    FuncUnit all;
    all.name = "universal";
    for (std::size_t c = 0; c < kNumInstrClasses; ++c)
        all.classes.push_back(static_cast<InstrClass>(c));
    all.multiplicity = 1;
    all.issueLatency = 2;
    m.units.push_back(std::move(all));
    m.validate();
    return m;
}

MachineConfig
multiTitan()
{
    MachineConfig m;
    m.name = "MultiTitan";
    LatencyTable &t = m.latency;
    setLatency(t, InstrClass::IntAdd, 1);
    setLatency(t, InstrClass::Logical, 1);
    setLatency(t, InstrClass::Shift, 1);
    setLatency(t, InstrClass::Move, 1);
    setLatency(t, InstrClass::IntMul, 3);  // via the FP unit
    setLatency(t, InstrClass::IntDiv, 12); // not a simple operation
    setLatency(t, InstrClass::Load, 2);
    setLatency(t, InstrClass::Store, 2);
    setLatency(t, InstrClass::Branch, 2);
    setLatency(t, InstrClass::Jump, 2);
    setLatency(t, InstrClass::FPAdd, 3);   // "all FP operations are 3"
    setLatency(t, InstrClass::FPMul, 3);
    setLatency(t, InstrClass::FPDiv, 12);  // not a simple operation
    setLatency(t, InstrClass::FPCvt, 3);
    m.regs.numTemp = 16;
    m.regs.numHome = 26;
    m.validate();
    return m;
}

MachineConfig
cray1(bool unit_latencies)
{
    MachineConfig m;
    m.name = unit_latencies ? "CRAY-1(unit-latency)" : "CRAY-1";
    if (!unit_latencies) {
        LatencyTable &t = m.latency;
        setLatency(t, InstrClass::IntAdd, 3);
        setLatency(t, InstrClass::Logical, 1);
        setLatency(t, InstrClass::Shift, 2);
        setLatency(t, InstrClass::Move, 1);
        setLatency(t, InstrClass::IntMul, 6);  // via FP multiply
        setLatency(t, InstrClass::IntDiv, 14);
        setLatency(t, InstrClass::Load, 11);
        setLatency(t, InstrClass::Store, 1);
        setLatency(t, InstrClass::Branch, 3);
        setLatency(t, InstrClass::Jump, 3);
        setLatency(t, InstrClass::FPAdd, 6);
        setLatency(t, InstrClass::FPMul, 7);
        setLatency(t, InstrClass::FPDiv, 14); // reciprocal approx.
        setLatency(t, InstrClass::FPCvt, 6);
    }
    m.validate();
    return m;
}

MachineConfig
superscalarWithClassConflicts(int n, int alu_copies, int mem_ports)
{
    MachineConfig m;
    m.name = "superscalar(" + std::to_string(n) + ",conflicts)";
    m.issueWidth = n;

    FuncUnit alu;
    alu.name = "int-alu";
    alu.classes = {InstrClass::IntAdd, InstrClass::Logical,
                   InstrClass::Shift, InstrClass::Move};
    alu.multiplicity = alu_copies;
    m.units.push_back(alu);

    FuncUnit imul;
    imul.name = "int-mul";
    imul.classes = {InstrClass::IntMul};
    m.units.push_back(imul);

    FuncUnit idiv;
    idiv.name = "int-div";
    idiv.classes = {InstrClass::IntDiv};
    m.units.push_back(idiv);

    FuncUnit mem;
    mem.name = "mem-port";
    mem.classes = {InstrClass::Load, InstrClass::Store};
    mem.multiplicity = mem_ports;
    m.units.push_back(mem);

    FuncUnit ctrl;
    ctrl.name = "branch";
    ctrl.classes = {InstrClass::Branch, InstrClass::Jump};
    m.units.push_back(ctrl);

    FuncUnit fpadd;
    fpadd.name = "fp-add";
    fpadd.classes = {InstrClass::FPAdd, InstrClass::FPCvt};
    m.units.push_back(fpadd);

    FuncUnit fpmul;
    fpmul.name = "fp-mul";
    fpmul.classes = {InstrClass::FPMul};
    m.units.push_back(fpmul);

    FuncUnit fpdiv;
    fpdiv.name = "fp-div";
    fpdiv.classes = {InstrClass::FPDiv};
    m.units.push_back(fpdiv);

    m.validate();
    return m;
}

} // namespace ilp
