#include "core/machine/machine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

LatencyTable
unitLatencies()
{
    LatencyTable t;
    t.fill(1);
    return t;
}

bool
FuncUnit::handles(InstrClass cls) const
{
    return std::find(classes.begin(), classes.end(), cls) !=
           classes.end();
}

int
MachineConfig::unitFor(InstrClass cls) const
{
    if (units.empty())
        return -1;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].handles(cls))
            return static_cast<int>(i);
    }
    return -1;
}

void
MachineConfig::validate() const
{
    if (issueWidth < 1)
        SS_FATAL("machine '", name, "': issue width must be >= 1");
    if (pipelineDegree < 1)
        SS_FATAL("machine '", name, "': pipeline degree must be >= 1");
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (latency[c] < 1)
            SS_FATAL("machine '", name, "': class ",
                     instrClassName(static_cast<InstrClass>(c)),
                     " has latency ", latency[c], " (must be >= 1)");
    }
    if (!units.empty()) {
        for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
            if (unitFor(static_cast<InstrClass>(c)) < 0)
                SS_FATAL("machine '", name, "': class ",
                         instrClassName(static_cast<InstrClass>(c)),
                         " is not served by any functional unit");
        }
        for (const auto &u : units) {
            if (u.multiplicity < 1 || u.issueLatency < 1)
                SS_FATAL("machine '", name, "': unit '", u.name,
                         "' has non-positive multiplicity or issue "
                         "latency");
        }
    }
    if (regs.numTemp < 2)
        SS_FATAL("machine '", name,
                 "': need at least two temp registers");
}

} // namespace ilp
