#include "core/machine/machine.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

LatencyTable
unitLatencies()
{
    LatencyTable t;
    t.fill(1);
    return t;
}

bool
FuncUnit::handles(InstrClass cls) const
{
    return std::find(classes.begin(), classes.end(), cls) !=
           classes.end();
}

int
MachineConfig::unitFor(InstrClass cls) const
{
    if (units.empty())
        return -1;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].handles(cls))
            return static_cast<int>(i);
    }
    return -1;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

} // namespace

std::uint64_t
MachineConfig::specHash() const
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, static_cast<std::uint64_t>(issueWidth));
    fnvMix(h, static_cast<std::uint64_t>(pipelineDegree));
    for (int l : latency)
        fnvMix(h, static_cast<std::uint64_t>(l));
    fnvMix(h, units.size());
    for (const FuncUnit &u : units) {
        fnvMix(h, u.classes.size());
        for (InstrClass c : u.classes)
            fnvMix(h, static_cast<std::uint64_t>(c));
        fnvMix(h, static_cast<std::uint64_t>(u.multiplicity));
        fnvMix(h, static_cast<std::uint64_t>(u.issueLatency));
    }
    fnvMix(h, issueAcrossBranches ? 1 : 0);
    fnvMix(h, regs.numTemp);
    fnvMix(h, regs.numHome);
    return h;
}

void
MachineConfig::validate() const
{
    if (issueWidth < 1)
        SS_FATAL("machine '", name, "': issue width must be >= 1");
    if (pipelineDegree < 1)
        SS_FATAL("machine '", name, "': pipeline degree must be >= 1");
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (latency[c] < 1)
            SS_FATAL("machine '", name, "': class ",
                     instrClassName(static_cast<InstrClass>(c)),
                     " has latency ", latency[c], " (must be >= 1)");
    }
    if (!units.empty()) {
        for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
            if (unitFor(static_cast<InstrClass>(c)) < 0)
                SS_FATAL("machine '", name, "': class ",
                         instrClassName(static_cast<InstrClass>(c)),
                         " is not served by any functional unit");
        }
        for (const auto &u : units) {
            if (u.multiplicity < 1 || u.issueLatency < 1)
                SS_FATAL("machine '", name, "': unit '", u.name,
                         "' has non-positive multiplicity or issue "
                         "latency");
        }
    }
    if (regs.numTemp < 2)
        SS_FATAL("machine '", name,
                 "': need at least two temp registers");
}

} // namespace ilp
