/**
 * @file
 * The machine taxonomy of Section 2, as a parameterizable description.
 *
 * A machine is characterized by (cf. §2.1, §2.3, §2.4, §2.5):
 *
 *  - `issueWidth` (n): instructions issuable per cycle.  Base and
 *    superpipelined machines have n = 1; a superscalar machine of
 *    degree n has n > 1.
 *  - `pipelineDegree` (m): minor cycles per base cycle.  The cycle
 *    time is 1/m of the base machine's, and a simple operation whose
 *    base latency is L takes L*m minor cycles.  Base and superscalar
 *    machines have m = 1.
 *  - per-class operation latencies in base cycles (§2 definitions);
 *  - optional functional units with issue latency and multiplicity
 *    (§2.3.2 class conflicts; §3 "we can also group the operations
 *    into functional units, and specify an issue latency and
 *    multiplicity for each").  An empty unit list means fully
 *    duplicated units — no class conflicts, the "ideal" machine.
 *
 * The timing simulator (sim/issue.hh) runs entirely in minor cycles
 * and reports time in base cycles, so superscalar and superpipelined
 * machines are directly comparable — the "supersymmetry" of §2.7.
 */

#ifndef SUPERSYM_CORE_MACHINE_MACHINE_HH
#define SUPERSYM_CORE_MACHINE_MACHINE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace ilp {

/** Per-class operation latencies, in base cycles. */
using LatencyTable = std::array<int, kNumInstrClasses>;

/** A latency table with every class at one cycle (§4: "when available
 *  instruction-level parallelism is discussed, it is assumed that all
 *  operations execute in one cycle"). */
LatencyTable unitLatencies();

/**
 * A functional unit group: which classes it serves, how many copies
 * exist, and how many minor cycles must separate issues to one copy.
 */
struct FuncUnit
{
    std::string name;
    std::vector<InstrClass> classes;
    /** Number of identical copies of this unit. */
    int multiplicity = 1;
    /** Minor cycles between two issues to the same copy. */
    int issueLatency = 1;

    bool handles(InstrClass cls) const;
};

struct MachineConfig
{
    std::string name = "base";

    /** n — instructions issuable per (minor) cycle. */
    int issueWidth = 1;
    /** m — minor cycles per base cycle. */
    int pipelineDegree = 1;

    /** Operation latencies in base cycles, indexed by InstrClass. */
    LatencyTable latency = unitLatencies();

    /**
     * Functional units.  Empty means every class has unlimited fully
     * pipelined units (no class conflicts).  When non-empty, every
     * class must be covered or validate() fails.
     */
    std::vector<FuncUnit> units;

    /**
     * May instructions after a (predicted) branch issue in the same
     * minor cycle as the branch?  The paper's base machine charges no
     * control latency ("assuming perfect branch slot filling and/or
     * branch prediction", §2.1); set false to model single-block issue.
     */
    bool issueAcrossBranches = true;

    /** Register file split for the compiler (§3). */
    RegFileLayout regs;

    /** Operation latency of `cls` in minor cycles. */
    int latencyMinor(InstrClass cls) const
    {
        return latency[static_cast<std::size_t>(cls)] * pipelineDegree;
    }

    int latencyBase(InstrClass cls) const
    {
        return latency[static_cast<std::size_t>(cls)];
    }

    /** Index of the unit serving `cls`; -1 if units are unlimited. */
    int unitFor(InstrClass cls) const;

    /**
     * FNV-1a digest over every timing-relevant field (name excluded:
     * two identically parameterized machines hash equal regardless of
     * labeling).  Stamped into emitted JSON (`meta.machine_hash`) so
     * archived artifacts can be matched to the exact machine spec.
     */
    std::uint64_t specHash() const;

    /** fatal() on an inconsistent description (user error). */
    void validate() const;
};

} // namespace ilp

#endif // SUPERSYM_CORE_MACHINE_MACHINE_HH
