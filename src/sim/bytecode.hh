/**
 * @file
 * The bytecode execution backend: a flat, pre-resolved encoding of a
 * Module plus a threaded-dispatch VM that executes it.
 *
 * The IR-walk interpreter (sim/interp.hh) re-derives everything per
 * executed instruction: block bounds, operand presence, immediate
 * vs. register form, call frames, branch-target validity.  The
 * bytecode compiler (lowerModule) pays those costs once per *static*
 * instruction instead, producing a BcImage:
 *
 *  - one fixed-width BcInstr per IR instruction, with the dispatch
 *    opcode split by addressing mode (reg-reg vs. reg-imm) so the VM
 *    never tests `hasImm`;
 *  - branch targets resolved to bytecode indices — invalid targets
 *    point at per-block-id BadJump trailer ops, so the hot loop has
 *    no block-bounds check at all (the interpreter's per-iteration
 *    loop-top check becomes a lowering-time decision);
 *  - call frames pre-bound: callee index, register-file size, frame
 *    bytes, frame-pointer slot and the calling convention's
 *    argument-transfer moves all live in the image (BcArgMove pool);
 *  - the source pc and instruction class pre-stamped on every op.
 *
 * The VM (BytecodeVM) executes the image with computed-goto threaded
 * dispatch (a plain switch on toolchains without the extension) and
 * produces the *same observable artifacts* as Interpreter::run: the
 * identical DynInstr stream (byte-identical PackedTrace), the same
 * trap records built by sim/semantics.hh, the same deadline-poll and
 * fault-injection cadence (sem::pollPoint at
 * cancel::kDeadlinePollInterval, site sem::kFaultSite), and the same
 * RunResult bookkeeping.  tests/bytecode_test.cc holds the
 * differential suite that enforces the contract.
 *
 * Programs the encoding cannot represent (a register file larger
 * than 16-bit indices) fail lowering with std::nullopt; the backend
 * seam (sim/exec.hh) then falls back to the interpreter, so the VM
 * never needs a slow path.
 */

#ifndef SUPERSYM_SIM_BYTECODE_HH
#define SUPERSYM_SIM_BYTECODE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"
#include "sim/memory.hh"
#include "sim/ptrace.hh"
#include "sim/trace.hh"

namespace ilp {

// X-macro master lists.  Expansion order is the BcOp enum order and
// the VM's dispatch-table order — the three sites that consume these
// lists (enum, label table, handler bodies) must all use them, never
// hand-written sequences.
#define SS_BC_BINARY_OPS(X)                                           \
    X(AddI) X(SubI) X(MulI) X(DivI) X(RemI)                           \
    X(CmpEqI) X(CmpNeI) X(CmpLtI) X(CmpLeI) X(CmpGtI) X(CmpGeI)       \
    X(AndI) X(OrI) X(XorI) X(ShlI) X(ShrAI) X(ShrLI)                  \
    X(AddF) X(SubF) X(MulF) X(DivF)                                   \
    X(CmpEqF) X(CmpNeF) X(CmpLtF) X(CmpLeF) X(CmpGtF) X(CmpGeF)

#define SS_BC_UNARY_OPS(X)                                            \
    X(NotI) X(MovI) X(MovF) X(NegF) X(AbsF) X(CvtIF) X(CvtFI)

/**
 * Dispatch opcodes.  Binary ALU/FP ops come in _RR (second operand
 * is a register) and _RI (second operand is the pre-converted
 * immediate) forms; the VM handler binds the ilp::Opcode as a
 * compile-time constant, so sem::evalBinary folds to the single
 * operation.
 */
enum class BcOp : std::uint8_t
{
#define X(n) n##_RR, n##_RI,
    SS_BC_BINARY_OPS(X)
#undef X
#define X(n) n##_U,
    SS_BC_UNARY_OPS(X)
#undef X
    /** dst <- imm (value bits; LiI and LiF lower identically). */
    Li,
    /** dst <- mem[a + imm] (LoadW / LoadF). */
    Load,
    /** mem[a + imm] <- b (StoreW / StoreF). */
    Store,
    /** if (a != 0) goto t0 else goto t1 (bytecode indices). */
    Br,
    /** goto t0. */
    Jmp,
    /** call funcs[t0] with argPool[t1 .. t1+aux). */
    Call,
    /** return a (kNone16 = void). */
    Ret,
    /** Trailer: control reached a branch whose target block did not
     *  exist; raises E0404 without counting an instruction (the
     *  interpreter traps at loop top, before its counter bump). */
    BadJump,
    /** Trailer: control ran past a block with no terminator — a
     *  malformed-IR panic, mirroring the interpreter's assert. */
    FellOff,

    Count
};

/**
 * One bytecode instruction: 40 bytes, fixed width, trivially
 * copyable.  Fields are overloaded per BcOp as documented on the
 * enum; srcOp/cls/pc/flags/dst feed DynInstr emission so the traced
 * stream is bit-identical to the interpreter's.
 */
struct BcInstr
{
    /** 16-bit register encoding of kNoReg. */
    static constexpr std::uint16_t kNone16 = 0xffff;
    /** flags: IR src1 present (trace it). */
    static constexpr std::uint8_t kSrcA = 0x01;
    /** flags: IR src2 present (trace it). */
    static constexpr std::uint8_t kSrcB = 0x02;

    /** ALU immediate (pre-converted value bits for Li), memory
     *  displacement, or the offending BlockId for BadJump. */
    std::int64_t imm = 0;
    /** Branch target / callee function index. */
    std::uint32_t t0 = 0;
    /** Branch fallthrough target / argument-pool offset. */
    std::uint32_t t1 = 0;
    /** Argument count for Call. */
    std::uint32_t aux = 0;
    /** Static instruction id (verbatim, kNoPc included). */
    Pc pc = kNoPc;
    std::uint16_t dst = kNone16;
    std::uint16_t a = kNone16;
    std::uint16_t b = kNone16;
    /** BcOp (dispatch index). */
    std::uint8_t op = 0;
    /** Original ilp::Opcode (DynInstr emission). */
    std::uint8_t srcOp = 0;
    /** Pre-computed InstrClass of srcOp. */
    std::uint8_t cls = 0;
    /** kSrcA | kSrcB. */
    std::uint8_t flags = 0;
};

static_assert(sizeof(BcInstr) == 40,
              "BcInstr is the static-code footprint; keep it packed");

/**
 * One calling-convention move, pre-bound at lowering: callee
 * parameter register <- caller argument register.  Serves double
 * duty as the frame-push copy descriptor and (when tracing) the
 * synthetic MovI/MovF DynInstr the interpreter emits per argument.
 */
struct BcArgMove
{
    std::uint16_t dst = 0;
    std::uint16_t src = 0;
    /** Opcode::MovF for float params, Opcode::MovI otherwise. */
    std::uint8_t op = 0;
};

struct BcFunction
{
    std::string name;
    std::vector<BcInstr> code;
    /** Register-file slots per activation (interpreter-identical:
     *  max(numVirtRegs, layout.total())). */
    std::uint32_t nregs = 0;
    std::int64_t frameBytes = 0;
    /** Frame-pointer slot, kNone16 when absent or out of range. */
    std::uint16_t fpReg = BcInstr::kNone16;
    std::uint32_t paramCount = 0;
    /** Opcode for the return-value transfer move (MovI / MovF). */
    std::uint8_t retMoveOp = 0;
};

/**
 * A lowered module.  funcs[i] corresponds to module.function(i), so
 * FuncId doubles as the bytecode function index and Call sites
 * resolve with no lookup.
 */
struct BcImage
{
    const Module *module = nullptr;
    std::vector<BcFunction> funcs;
    std::vector<BcArgMove> argPool;

    /** Static code size (the compile-telemetry payload). */
    std::size_t codeBytes() const;
};

/**
 * Lower a module to bytecode.  Returns std::nullopt — after counting
 * a ssim_bytecode_fallbacks_total metric — when the image cannot
 * represent the program (any function whose register file exceeds
 * 16-bit indices); the caller falls back to the interpreter.
 * Records a "bytecode_lower" compile span and the
 * ssim_bytecode_lower_seconds histogram.
 */
std::optional<BcImage> lowerModule(const Module &module);

/**
 * Executes a BcImage with the Interpreter's exact observable
 * contract (see file comment).  One VM owns one Memory, like one
 * Interpreter; run() resets all execution state, so a VM is reusable
 * across runs including after a trap.
 *
 * The fused entry points (runTimed / runPacked) are the hot-path
 * variants: they bind the concrete sink type into the dispatch loop,
 * devirtualizing and inlining the per-instruction emit.  run() with
 * a TraceSink* keeps the generic virtual-dispatch contract, and a
 * null sink selects an untraced specialization with zero per-
 * instruction trace work.
 */
class BytecodeVM
{
  public:
    explicit BytecodeVM(const BcImage &image, InterpOptions options = {});

    /** Generic entry point: virtual per-record emit (or none). */
    RunResult run(const std::string &entry = "main",
                  TraceSink *sink = nullptr);

    /** Fused: stream straight into the issue engine (live timing). */
    RunResult runTimed(const std::string &entry, IssueEngine &engine);

    /** Fused: stream straight into a packed-trace recorder. */
    RunResult runPacked(const std::string &entry, PackedSink &sink);

    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }

  private:
    template <class Sink, bool Traced>
    RunResult runWith(const std::string &entry, Sink *sink);
    template <class Sink, bool Traced>
    std::uint64_t execute(std::uint32_t entryIdx, Sink *sink);

    const BcImage *image_;
    InterpOptions opts_;
    Memory mem_;

    std::vector<std::uint64_t> arena_;
    std::uint64_t executed_ = 0;
    ClassCounts class_counts_{};
    std::int64_t stack_top_ = 0;
    /** Innermost active function (trap attribution at unwind). */
    const std::string *cur_fn_name_ = nullptr;
};

} // namespace ilp

#endif // SUPERSYM_SIM_BYTECODE_HH
