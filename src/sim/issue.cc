#include "sim/issue.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::RawLatency: return "raw_latency";
      case StallCause::UnitConflict: return "unit_conflict";
      case StallCause::BranchFence: return "branch_fence";
      case StallCause::FrontendDrain: return "frontend_drain";
    }
    SS_PANIC("bad StallCause ", static_cast<int>(cause));
}

std::uint64_t
StallBreakdown::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t s : slots)
        t += s;
    return t;
}

IssueEngine::IssueEngine(const MachineConfig &config)
    : config_(config)
{
    config_.validate();
    unit_free_.resize(config_.units.size());
    for (std::size_t u = 0; u < config_.units.size(); ++u)
        unit_free_[u].assign(
            static_cast<std::size_t>(config_.units[u].multiplicity), 0);
    counts_.assign(static_cast<std::size_t>(config_.issueWidth) + 1, 0);
    for (std::size_t c = 0; c < kNumInstrClasses; ++c)
        unit_for_[c] = config_.unitFor(static_cast<InstrClass>(c));
    SS_DEBUG("issue", "engine for ", config_.name, ": width ",
             config_.issueWidth, ", degree ", config_.pipelineDegree);
}

std::uint64_t
IssueEngine::minorCycles() const
{
    return last_complete_;
}

std::vector<std::uint64_t>
IssueEngine::issueCounts() const
{
    std::vector<std::uint64_t> out = counts_;
    out[0] += empty_cycles_;
    if (cur_count_ > 0 &&
        static_cast<std::size_t>(cur_count_) < out.size())
        ++out[static_cast<std::size_t>(cur_count_)];
    return out;
}

double
IssueEngine::baseCycles() const
{
    return static_cast<double>(last_complete_) /
           static_cast<double>(config_.pipelineDegree);
}

double
IssueEngine::instrPerBaseCycle() const
{
    SS_ASSERT(last_complete_ > 0, "no instructions simulated");
    return static_cast<double>(instructions_) / baseCycles();
}

std::uint64_t
IssueEngine::issuePeriodMinorCycles() const
{
    return instructions_ > 0 ? cur_cycle_ + 1 : 0;
}

std::uint64_t
IssueEngine::lostIssueSlots() const
{
    return issuePeriodMinorCycles() *
               static_cast<std::uint64_t>(config_.issueWidth) -
           instructions_;
}

StallBreakdown
IssueEngine::stallBreakdown() const
{
    StallBreakdown bd = stalls_;
    // The final, still-open cycle: slots past the last issue had no
    // instruction left to claim them.
    if (instructions_ > 0 && cur_count_ < config_.issueWidth)
        bd[StallCause::FrontendDrain] +=
            static_cast<std::uint64_t>(config_.issueWidth -
                                       cur_count_);
    return bd;
}

std::uint64_t
IssueEngine::completionTailMinorCycles() const
{
    return last_complete_ - issuePeriodMinorCycles();
}

void
IssueEngine::enableProfile(std::size_t pcCount)
{
    profile_enabled_ = true;
    profile_.assign(pcCount + 1, PcCounters{});
    last_profile_slot_ = pcCount; // unattributed until the 1st issue
}

std::vector<PcCounters>
IssueEngine::profileCounters() const
{
    SS_ASSERT(profile_enabled_,
              "profileCounters() without enableProfile()");
    std::vector<PcCounters> out = profile_;
    // Mirror stallBreakdown(): the still-open final cycle's empty
    // slots drained with no instruction left to claim them; charge
    // them to the last instruction that did issue so per-pc records
    // sum exactly to the aggregate breakdown.
    if (instructions_ > 0 && cur_count_ < config_.issueWidth)
        out[last_profile_slot_].stallSlots[static_cast<std::size_t>(
            StallCause::FrontendDrain)] +=
            static_cast<std::uint64_t>(config_.issueWidth -
                                       cur_count_);
    return out;
}

void
IssueEngine::recordTimeline(std::size_t limit)
{
    timeline_enabled_ = limit > 0;
    timeline_limit_ = limit;
    timeline_.reserve(std::min<std::size_t>(limit, 1 << 16));
}

void
IssueEngine::exportStats(stats::Group &g) const
{
    const std::uint64_t period = issuePeriodMinorCycles();
    const std::uint64_t width =
        static_cast<std::uint64_t>(config_.issueWidth);

    g.counter("instructions", "dynamic instructions issued")
        .inc(instructions_);
    g.counter("minor_cycles", "elapsed minor cycles to last completion")
        .inc(minorCycles());
    g.scalar("base_cycles", "elapsed base cycles (minor / m)")
        .set(baseCycles());
    g.scalar("ipc", "instructions per base cycle")
        .set(last_complete_ > 0 ? instrPerBaseCycle() : 0.0);
    g.counter("issue_period_minor_cycles",
              "minor cycles from first to last issue")
        .inc(period);
    g.counter("issue_slots_total",
              "issue slots offered during the issue period")
        .inc(period * width);
    g.counter("lost_issue_slots", "slots that issued nothing")
        .inc(lostIssueSlots());
    g.counter("completion_tail_minor_cycles",
              "latency drain after the last issue")
        .inc(completionTailMinorCycles());

    stats::Group &stall =
        g.group("stall", "lost issue slots by cause");
    StallBreakdown bd = stallBreakdown();
    for (std::size_t c = 0; c < kNumStallCauses; ++c)
        stall.counter(stallCauseName(static_cast<StallCause>(c)))
            .inc(bd.slots[c]);

    stats::Distribution &hist = g.distribution(
        "issued_per_cycle",
        "instructions issued per minor cycle of the issue period");
    std::vector<std::uint64_t> counts = issueCounts();
    for (std::size_t k = 0; k < counts.size(); ++k)
        hist.sample(static_cast<std::int64_t>(k), counts[k]);

    stats::Group &cls_g =
        g.group("class_issued", "dynamic instructions per class");
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (class_issued_[c] > 0)
            cls_g
                .counter(std::string(
                    instrClassName(static_cast<InstrClass>(c))))
                .inc(class_issued_[c]);
    }
}

double
simulateTrace(const TraceBuffer &trace, const MachineConfig &config)
{
    IssueEngine engine(config);
    trace.replay(engine);
    return engine.baseCycles();
}

} // namespace ilp
