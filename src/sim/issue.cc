#include "sim/issue.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::RawLatency: return "raw_latency";
      case StallCause::UnitConflict: return "unit_conflict";
      case StallCause::BranchFence: return "branch_fence";
      case StallCause::FrontendDrain: return "frontend_drain";
    }
    SS_PANIC("bad StallCause ", static_cast<int>(cause));
}

std::uint64_t
StallBreakdown::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t s : slots)
        t += s;
    return t;
}

IssueEngine::IssueEngine(const MachineConfig &config)
    : config_(config)
{
    config_.validate();
    unit_free_.resize(config_.units.size());
    for (std::size_t u = 0; u < config_.units.size(); ++u)
        unit_free_[u].assign(
            static_cast<std::size_t>(config_.units[u].multiplicity), 0);
    counts_.assign(static_cast<std::size_t>(config_.issueWidth) + 1, 0);
    SS_DEBUG("issue", "engine for ", config_.name, ": width ",
             config_.issueWidth, ", degree ", config_.pipelineDegree);
}

std::uint64_t
IssueEngine::regReady(Reg r) const
{
    return r < reg_ready_.size() ? reg_ready_[r] : 0;
}

void
IssueEngine::setRegReady(Reg r, std::uint64_t t)
{
    if (r >= reg_ready_.size())
        reg_ready_.resize(static_cast<std::size_t>(r) + 1, 0);
    reg_ready_[r] = t;
}

void
IssueEngine::emit(const DynInstr &di)
{
    const InstrClass cls = di.cls();
    const std::uint64_t width =
        static_cast<std::uint64_t>(config_.issueWidth);

    // Component earliest-issue times, kept separate so a stall can be
    // charged to the binding constraint.
    std::uint64_t t_data = 0;

    // Register RAW.
    for (std::uint8_t i = 0; i < di.numSrcs; ++i)
        t_data = std::max(t_data, regReady(di.srcs[i]));

    // Memory RAW / WAW through the actual word address.
    if (di.addr >= 0) {
        auto it = store_ready_.find(di.addr);
        if (it != store_ready_.end())
            t_data = std::max(t_data, it->second);
    }

    // Functional-unit availability (class conflicts).
    int unit = config_.unitFor(cls);
    std::size_t copy = 0;
    std::uint64_t t_unit = 0;
    if (unit >= 0) {
        auto &copies = unit_free_[static_cast<std::size_t>(unit)];
        copy = 0;
        for (std::size_t i = 1; i < copies.size(); ++i) {
            if (copies[i] < copies[copy])
                copy = i;
        }
        t_unit = copies[copy];
    }

    // Earliest issue: in order, after the branch fence, operands
    // ready, and a unit copy free.
    std::uint64_t t = std::max(
        std::max(cur_cycle_, fence_), std::max(t_data, t_unit));

    // Profile bucket for this record (last slot = unattributed).
    std::size_t pslot = 0;
    if (profile_enabled_)
        pslot = di.pc < profile_.size() - 1
                    ? static_cast<std::size_t>(di.pc)
                    : profile_.size() - 1;

    // Issue-slot availability: if we moved past the cycle being
    // filled, the new cycle starts empty; otherwise check the width.
    if (t > cur_cycle_) {
        // The cycle being filled closes short, plus (t-cur-1) fully
        // empty cycles: charge every lost slot to the binding
        // constraint (latency beats unit beats fence on ties — the
        // paper's headline cause wins ambiguous slots).
        StallCause cause = StallCause::BranchFence;
        if (t_data >= t)
            cause = StallCause::RawLatency;
        else if (t_unit >= t)
            cause = StallCause::UnitConflict;
        const std::uint64_t lost =
            (width - static_cast<std::uint64_t>(cur_count_)) +
            (t - cur_cycle_ - 1) * width;
        stalls_[cause] += lost;
        if (profile_enabled_)
            profile_[pslot]
                .stallSlots[static_cast<std::size_t>(cause)] += lost;
        ++counts_[static_cast<std::size_t>(cur_count_)];
        empty_cycles_ += t - cur_cycle_ - 1;
        cur_cycle_ = t;
        cur_count_ = 0;
    } else if (cur_count_ >= config_.issueWidth) {
        ++counts_[static_cast<std::size_t>(cur_count_)];
        t = ++cur_cycle_;
        cur_count_ = 0;
        // Re-check unit availability at the new cycle: the chosen
        // copy is still the earliest-free one, so only max() again.
        if (unit >= 0)
            t = std::max(
                t, unit_free_[static_cast<std::size_t>(unit)][copy]);
        if (t > cur_cycle_) {
            const std::uint64_t lost = (t - cur_cycle_) * width;
            stalls_[StallCause::UnitConflict] += lost;
            if (profile_enabled_)
                profile_[pslot].stallSlots[static_cast<std::size_t>(
                    StallCause::UnitConflict)] += lost;
            empty_cycles_ += t - cur_cycle_;
            cur_cycle_ = t;
        }
    }

    // --- Issue at minor cycle t. ---
    if (timeline_enabled_) {
        if (timeline_.size() < timeline_limit_) {
            IssueEvent ev;
            ev.cycle = t;
            ev.slot = static_cast<std::uint16_t>(cur_count_);
            ev.latencyMinor = static_cast<std::uint32_t>(
                config_.latencyMinor(cls));
            ev.cls = cls;
            timeline_.push_back(ev);
        } else {
            ++timeline_dropped_;
        }
    }
    ++class_issued_[static_cast<std::size_t>(cls)];
    ++cur_count_;
    ++instructions_;
    if (profile_enabled_) {
        ++profile_[pslot].issued;
        last_profile_slot_ = pslot;
    }

    const std::uint64_t lat =
        static_cast<std::uint64_t>(config_.latencyMinor(cls));
    const std::uint64_t done = t + lat;
    last_complete_ = std::max(last_complete_, done);

    if (di.dst != kNoReg)
        setRegReady(di.dst, done);
    if (di.addr >= 0 && isStore(di.op))
        store_ready_[di.addr] = done;
    if (unit >= 0) {
        unit_free_[static_cast<std::size_t>(unit)][copy] =
            t + static_cast<std::uint64_t>(
                    config_.units[static_cast<std::size_t>(unit)]
                        .issueLatency);
    }
    if (!config_.issueAcrossBranches &&
        (cls == InstrClass::Branch || cls == InstrClass::Jump))
        fence_ = t + 1;
}

std::uint64_t
IssueEngine::minorCycles() const
{
    return last_complete_;
}

std::vector<std::uint64_t>
IssueEngine::issueCounts() const
{
    std::vector<std::uint64_t> out = counts_;
    out[0] += empty_cycles_;
    if (cur_count_ > 0 &&
        static_cast<std::size_t>(cur_count_) < out.size())
        ++out[static_cast<std::size_t>(cur_count_)];
    return out;
}

double
IssueEngine::baseCycles() const
{
    return static_cast<double>(last_complete_) /
           static_cast<double>(config_.pipelineDegree);
}

double
IssueEngine::instrPerBaseCycle() const
{
    SS_ASSERT(last_complete_ > 0, "no instructions simulated");
    return static_cast<double>(instructions_) / baseCycles();
}

std::uint64_t
IssueEngine::issuePeriodMinorCycles() const
{
    return instructions_ > 0 ? cur_cycle_ + 1 : 0;
}

std::uint64_t
IssueEngine::lostIssueSlots() const
{
    return issuePeriodMinorCycles() *
               static_cast<std::uint64_t>(config_.issueWidth) -
           instructions_;
}

StallBreakdown
IssueEngine::stallBreakdown() const
{
    StallBreakdown bd = stalls_;
    // The final, still-open cycle: slots past the last issue had no
    // instruction left to claim them.
    if (instructions_ > 0 && cur_count_ < config_.issueWidth)
        bd[StallCause::FrontendDrain] +=
            static_cast<std::uint64_t>(config_.issueWidth -
                                       cur_count_);
    return bd;
}

std::uint64_t
IssueEngine::completionTailMinorCycles() const
{
    return last_complete_ - issuePeriodMinorCycles();
}

void
IssueEngine::enableProfile(std::size_t pcCount)
{
    profile_enabled_ = true;
    profile_.assign(pcCount + 1, PcCounters{});
    last_profile_slot_ = pcCount; // unattributed until the 1st issue
}

std::vector<PcCounters>
IssueEngine::profileCounters() const
{
    SS_ASSERT(profile_enabled_,
              "profileCounters() without enableProfile()");
    std::vector<PcCounters> out = profile_;
    // Mirror stallBreakdown(): the still-open final cycle's empty
    // slots drained with no instruction left to claim them; charge
    // them to the last instruction that did issue so per-pc records
    // sum exactly to the aggregate breakdown.
    if (instructions_ > 0 && cur_count_ < config_.issueWidth)
        out[last_profile_slot_].stallSlots[static_cast<std::size_t>(
            StallCause::FrontendDrain)] +=
            static_cast<std::uint64_t>(config_.issueWidth -
                                       cur_count_);
    return out;
}

void
IssueEngine::recordTimeline(std::size_t limit)
{
    timeline_enabled_ = limit > 0;
    timeline_limit_ = limit;
    timeline_.reserve(std::min<std::size_t>(limit, 1 << 16));
}

void
IssueEngine::exportStats(stats::Group &g) const
{
    const std::uint64_t period = issuePeriodMinorCycles();
    const std::uint64_t width =
        static_cast<std::uint64_t>(config_.issueWidth);

    g.counter("instructions", "dynamic instructions issued")
        .inc(instructions_);
    g.counter("minor_cycles", "elapsed minor cycles to last completion")
        .inc(minorCycles());
    g.scalar("base_cycles", "elapsed base cycles (minor / m)")
        .set(baseCycles());
    g.scalar("ipc", "instructions per base cycle")
        .set(last_complete_ > 0 ? instrPerBaseCycle() : 0.0);
    g.counter("issue_period_minor_cycles",
              "minor cycles from first to last issue")
        .inc(period);
    g.counter("issue_slots_total",
              "issue slots offered during the issue period")
        .inc(period * width);
    g.counter("lost_issue_slots", "slots that issued nothing")
        .inc(lostIssueSlots());
    g.counter("completion_tail_minor_cycles",
              "latency drain after the last issue")
        .inc(completionTailMinorCycles());

    stats::Group &stall =
        g.group("stall", "lost issue slots by cause");
    StallBreakdown bd = stallBreakdown();
    for (std::size_t c = 0; c < kNumStallCauses; ++c)
        stall.counter(stallCauseName(static_cast<StallCause>(c)))
            .inc(bd.slots[c]);

    stats::Distribution &hist = g.distribution(
        "issued_per_cycle",
        "instructions issued per minor cycle of the issue period");
    std::vector<std::uint64_t> counts = issueCounts();
    for (std::size_t k = 0; k < counts.size(); ++k)
        hist.sample(static_cast<std::int64_t>(k), counts[k]);

    stats::Group &cls_g =
        g.group("class_issued", "dynamic instructions per class");
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (class_issued_[c] > 0)
            cls_g
                .counter(std::string(
                    instrClassName(static_cast<InstrClass>(c))))
                .inc(class_issued_[c]);
    }
}

double
simulateTrace(const TraceBuffer &trace, const MachineConfig &config)
{
    IssueEngine engine(config);
    trace.replay(engine);
    return engine.baseCycles();
}

} // namespace ilp
