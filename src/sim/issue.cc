#include "sim/issue.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

IssueEngine::IssueEngine(const MachineConfig &config)
    : config_(config)
{
    config_.validate();
    unit_free_.resize(config_.units.size());
    for (std::size_t u = 0; u < config_.units.size(); ++u)
        unit_free_[u].assign(
            static_cast<std::size_t>(config_.units[u].multiplicity), 0);
    counts_.assign(static_cast<std::size_t>(config_.issueWidth) + 1, 0);
}

std::uint64_t
IssueEngine::regReady(Reg r) const
{
    return r < reg_ready_.size() ? reg_ready_[r] : 0;
}

void
IssueEngine::setRegReady(Reg r, std::uint64_t t)
{
    if (r >= reg_ready_.size())
        reg_ready_.resize(static_cast<std::size_t>(r) + 1, 0);
    reg_ready_[r] = t;
}

void
IssueEngine::emit(const DynInstr &di)
{
    const InstrClass cls = di.cls();

    // Earliest issue: in order, and after any branch fence.
    std::uint64_t t = std::max(cur_cycle_, fence_);

    // Register RAW.
    for (std::uint8_t i = 0; i < di.numSrcs; ++i)
        t = std::max(t, regReady(di.srcs[i]));

    // Memory RAW / WAW through the actual word address.
    if (di.addr >= 0) {
        auto it = store_ready_.find(di.addr);
        if (it != store_ready_.end())
            t = std::max(t, it->second);
    }

    // Functional-unit availability (class conflicts).
    int unit = config_.unitFor(cls);
    std::size_t copy = 0;
    if (unit >= 0) {
        auto &copies = unit_free_[static_cast<std::size_t>(unit)];
        copy = 0;
        for (std::size_t i = 1; i < copies.size(); ++i) {
            if (copies[i] < copies[copy])
                copy = i;
        }
        t = std::max(t, copies[copy]);
    }

    // Issue-slot availability: if we moved past the cycle being
    // filled, the new cycle starts empty; otherwise check the width.
    if (t > cur_cycle_) {
        ++counts_[static_cast<std::size_t>(cur_count_)];
        empty_cycles_ += t - cur_cycle_ - 1;
        cur_cycle_ = t;
        cur_count_ = 0;
    } else if (cur_count_ >= config_.issueWidth) {
        ++counts_[static_cast<std::size_t>(cur_count_)];
        t = ++cur_cycle_;
        cur_count_ = 0;
        // Re-check unit availability at the new cycle: the chosen
        // copy is still the earliest-free one, so only max() again.
        if (unit >= 0)
            t = std::max(
                t, unit_free_[static_cast<std::size_t>(unit)][copy]);
        if (t > cur_cycle_) {
            empty_cycles_ += t - cur_cycle_;
            cur_cycle_ = t;
        }
    }

    // --- Issue at minor cycle t. ---
    ++cur_count_;
    ++instructions_;

    const std::uint64_t lat =
        static_cast<std::uint64_t>(config_.latencyMinor(cls));
    const std::uint64_t done = t + lat;
    last_complete_ = std::max(last_complete_, done);

    if (di.dst != kNoReg)
        setRegReady(di.dst, done);
    if (di.addr >= 0 && isStore(di.op))
        store_ready_[di.addr] = done;
    if (unit >= 0) {
        unit_free_[static_cast<std::size_t>(unit)][copy] =
            t + static_cast<std::uint64_t>(
                    config_.units[static_cast<std::size_t>(unit)]
                        .issueLatency);
    }
    if (!config_.issueAcrossBranches &&
        (cls == InstrClass::Branch || cls == InstrClass::Jump))
        fence_ = t + 1;
}

std::uint64_t
IssueEngine::minorCycles() const
{
    return last_complete_;
}

std::vector<std::uint64_t>
IssueEngine::issueCounts() const
{
    std::vector<std::uint64_t> out = counts_;
    out[0] += empty_cycles_;
    if (cur_count_ > 0 &&
        static_cast<std::size_t>(cur_count_) < out.size())
        ++out[static_cast<std::size_t>(cur_count_)];
    return out;
}

double
IssueEngine::baseCycles() const
{
    return static_cast<double>(last_complete_) /
           static_cast<double>(config_.pipelineDegree);
}

double
IssueEngine::instrPerBaseCycle() const
{
    SS_ASSERT(last_complete_ > 0, "no instructions simulated");
    return static_cast<double>(instructions_) / baseCycles();
}

double
simulateTrace(const TraceBuffer &trace, const MachineConfig &config)
{
    IssueEngine engine(config);
    trace.replay(engine);
    return engine.baseCycles();
}

} // namespace ilp
