/**
 * @file
 * Packed dynamic traces: the execute-once half of the execute-once /
 * time-many split.
 *
 * A DynInstr is ~40 bytes of convenient in-flight record; buffering
 * whole executions of millions of instructions at that size is what
 * made replaying one functional execution against many machines too
 * expensive to be the default.  PackedInstr is the same information
 * in exactly 20 bytes (16 before the profiler added the static pc),
 * stored in fixed-size chunks (no giant reallocations), with a
 * lossless round trip to/from DynInstr for every record the
 * interpreter actually produces.
 *
 * Records that cannot be represented (a register index >= 0xffff, an
 * unaligned or out-of-range address) are detected at append time and
 * flag the trace as incomplete; consumers (core/study's TraceCache)
 * then fall back to live interpretation instead of replaying a lossy
 * trace.  The streaming TraceSink path (sim/trace.hh) is unchanged
 * and remains the single-run / --trace-events route.
 */

#ifndef SUPERSYM_SIM_PTRACE_HH
#define SUPERSYM_SIM_PTRACE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/cancel.hh"
#include "sim/trace.hh"

namespace ilp {

/**
 * One executed instruction in 20 bytes.
 *
 * Registers are narrowed to 16 bits (0xffff encodes kNoReg) and the
 * byte address of a memory reference to a 32-bit word index — enough
 * for every register file and memory the toolchain can build today;
 * canPack() is the authoritative gate.  The static pc is kept at
 * full width: kNoPc must survive the round trip, and real programs
 * can exceed 64 Ki static instructions after unrolling.
 */
struct PackedInstr
{
    static constexpr std::uint16_t kNoReg16 = 0xffff;
    /** meta layout: bits 0..2 = numSrcs, bit 3 = has-address. */
    static constexpr std::uint8_t kNumSrcsMask = 0x07;
    static constexpr std::uint8_t kHasAddr = 0x08;

    std::uint8_t op = 0;
    std::uint8_t meta = 0;
    std::uint16_t dst = kNoReg16;
    std::uint16_t srcs[4] = {kNoReg16, kNoReg16, kNoReg16, kNoReg16};
    /** addr / kWordBytes when kHasAddr is set; 0 otherwise. */
    std::uint32_t addrWord = 0;
    /** Static instruction id, stored verbatim (kNoPc included). */
    std::uint32_t pc = kNoPc;

    /** Can `di` round-trip through the packed form losslessly? */
    static bool canPack(const DynInstr &di);

    /** Pack `di`; the caller must have checked canPack(). */
    static PackedInstr pack(const DynInstr &di);

    /** The original DynInstr, bit-for-bit. */
    DynInstr unpack() const;
};

static_assert(sizeof(PackedInstr) == 20,
              "PackedInstr must stay 20 bytes — trace memory is the "
              "execute-once budget");

/**
 * A whole execution's dynamic stream in packed, chunked storage.
 *
 * Immutable once recorded (the recorder appends; consumers only
 * iterate), so one trace can be replayed concurrently from many
 * threads.
 */
class PackedTrace
{
  public:
    /** Instructions per chunk (1 MiB of records). */
    static constexpr std::size_t kChunkInstrs = 1u << 16;

    /**
     * Append one record.  @return false — and record nothing — when
     * the record cannot be packed losslessly; the caller must then
     * treat the whole trace as incomplete.
     */
    bool
    append(const DynInstr &di)
    {
        if (!PackedInstr::canPack(di))
            return false;
        if (chunks_.empty() || chunks_.back().size() == kChunkInstrs) {
            chunks_.emplace_back();
            chunks_.back().reserve(kChunkInstrs);
        }
        chunks_.back().push_back(PackedInstr::pack(di));
        ++size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Bytes of packed record storage (the TraceCache's budget unit). */
    std::size_t byteSize() const { return size_ * sizeof(PackedInstr); }

    void
    clear()
    {
        chunks_.clear();
        chunks_.shrink_to_fit();
        size_ = 0;
    }

    /** Input iterator yielding each record unpacked to a DynInstr. */
    class const_iterator
    {
      public:
        const_iterator() = default;
        const_iterator(const PackedTrace *trace, std::size_t chunk,
                       std::size_t index)
            : trace_(trace), chunk_(chunk), index_(index)
        {
        }

        DynInstr operator*() const
        {
            return trace_->chunks_[chunk_][index_].unpack();
        }

        const_iterator &
        operator++()
        {
            if (++index_ == trace_->chunks_[chunk_].size()) {
                ++chunk_;
                index_ = 0;
            }
            return *this;
        }

        bool operator==(const const_iterator &o) const
        {
            return trace_ == o.trace_ && chunk_ == o.chunk_ &&
                   index_ == o.index_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        const PackedTrace *trace_ = nullptr;
        std::size_t chunk_ = 0;
        std::size_t index_ = 0;
    };

    const_iterator begin() const { return {this, 0, 0}; }
    const_iterator end() const { return {this, chunks_.size(), 0}; }

    /**
     * Replay the whole trace into a sink (the time-many half: feed
     * the IssueEngine / CacheSink without re-executing anything).
     * Unpacks chunk-linearly — this is the sweep hot path.  The
     * cooperative cell deadline is polled every
     * cancel::kDeadlinePollInterval records (the same cadence as the
     * execution backends), so a watchdogged replay cancels promptly.
     *
     * Templated on the concrete sink type: replaying into a final
     * sink class (IssueEngine, the common case) devirtualizes and
     * inlines the per-record emit; passing a TraceSink& keeps the
     * old dynamic-dispatch behavior.
     */
    template <class Sink>
    void
    replay(Sink &sink) const
    {
        for (const auto &chunk : chunks_) {
            for (std::size_t i = 0; i < chunk.size();
                 i += cancel::kDeadlinePollInterval) {
                cancel::pollDeadline();
                const std::size_t stop = std::min(
                    chunk.size(), i + cancel::kDeadlinePollInterval);
                for (std::size_t j = i; j < stop; ++j)
                    sink.emit(chunk[j].unpack());
            }
        }
    }

  private:
    std::vector<std::vector<PackedInstr>> chunks_;
    std::size_t size_ = 0;
};

/**
 * TraceSink that records into a PackedTrace, with a byte cap.
 *
 * When a record cannot be packed or the cap is reached, recording
 * stops (the partial trace is useless for replay, so it is dropped)
 * but the functional execution streams on unharmed; complete()
 * reports whether the trace covers the whole run.
 */
class PackedSink final : public TraceSink
{
  public:
    explicit PackedSink(PackedTrace &out,
                        std::size_t maxBytes = static_cast<std::size_t>(-1))
        : out_(&out), max_bytes_(maxBytes)
    {
    }

    void
    emit(const DynInstr &di) override
    {
        if (!recording_)
            return;
        if (out_->byteSize() + sizeof(PackedInstr) > max_bytes_ ||
            !out_->append(di)) {
            recording_ = false;
            out_->clear();
        }
    }

    /** Every emitted record was stored losslessly within the cap. */
    bool complete() const { return recording_; }

  private:
    PackedTrace *out_;
    std::size_t max_bytes_;
    bool recording_ = true;
};

} // namespace ilp

#endif // SUPERSYM_SIM_PTRACE_HH
