/**
 * @file
 * Structured simulator traps.
 *
 * A trap is a run-time fault of the *workload* (divide by zero,
 * out-of-bounds memory, a jump to a nonexistent block, fuel
 * exhaustion, stack overflow) — distinct from a supersym bug, which
 * still panics.  Traps used to call fatal() and kill the process;
 * they are now a Trap record carried in RunResult/RunOutcome so a
 * sweep cell that faults degrades into one reportable error while
 * every other cell completes.
 *
 * Inside the interpreter traps travel as TrapException; Interpreter::
 * run() is the containment boundary that converts them into a Trap
 * on the returned RunResult (the interpreter object stays reusable —
 * per-frame state is unwound on the way out).
 */

#ifndef SUPERSYM_SIM_TRAP_HH
#define SUPERSYM_SIM_TRAP_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/diag.hh"

namespace ilp {

/** One simulator fault; `code` is always a TrapXxx ErrCode. */
struct Trap
{
    ErrCode code = ErrCode::None;
    /** The function executing when the fault hit (may be empty for
     *  faults before execution starts, e.g. a missing entry). */
    std::string function;
    std::string message;
    /** Dynamic instructions executed when the trap was raised. */
    std::uint64_t instruction = 0;

    bool valid() const { return code != ErrCode::None; }

    /** "trap[E0401] in 'main': integer division by zero
     *  (after 17 instructions)" */
    std::string format() const;

    /** The trap as a diagnostic (no source location — traps are
     *  dynamic; the "location" is the faulting function). */
    Diag toDiag() const;
};

/** Exception form used inside the simulator; callers outside the
 *  interpreter normally see the Trap record instead. */
class TrapException : public std::runtime_error
{
  public:
    explicit TrapException(Trap trap);

    const Trap &trap() const { return trap_; }

    /** Attribute the fault to `function` if not yet attributed
     *  (memory faults are raised below the frame that knows the
     *  function name). */
    void setFunction(const std::string &function);

  private:
    Trap trap_;
};

} // namespace ilp

#endif // SUPERSYM_SIM_TRAP_HH
