#include "sim/trace.hh"

// Header-only types; this TU anchors the vtables.

namespace ilp {
} // namespace ilp
