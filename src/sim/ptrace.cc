#include "sim/ptrace.hh"

#include "support/logging.hh"

namespace ilp {

namespace {

bool
regFits(Reg r)
{
    return r == kNoReg || r < PackedInstr::kNoReg16;
}

std::uint16_t
narrowReg(Reg r)
{
    return r == kNoReg ? PackedInstr::kNoReg16
                       : static_cast<std::uint16_t>(r);
}

Reg
widenReg(std::uint16_t r)
{
    return r == PackedInstr::kNoReg16 ? kNoReg : static_cast<Reg>(r);
}

} // namespace

bool
PackedInstr::canPack(const DynInstr &di)
{
    if (!regFits(di.dst))
        return false;
    for (Reg r : di.srcs)
        if (!regFits(r))
            return false;
    if (di.numSrcs > di.srcs.size())
        return false;
    if (di.addr != -1) {
        if (di.addr < 0 || di.addr % kWordBytes != 0)
            return false;
        if (di.addr / kWordBytes > 0xffffffffll)
            return false;
    }
    return true;
}

PackedInstr
PackedInstr::pack(const DynInstr &di)
{
    SS_ASSERT(canPack(di), "packing an unpackable DynInstr");
    PackedInstr pi;
    pi.op = static_cast<std::uint8_t>(di.op);
    pi.meta = static_cast<std::uint8_t>(di.numSrcs & kNumSrcsMask);
    pi.dst = narrowReg(di.dst);
    for (std::size_t i = 0; i < di.srcs.size(); ++i)
        pi.srcs[i] = narrowReg(di.srcs[i]);
    if (di.addr != -1) {
        pi.meta |= kHasAddr;
        pi.addrWord = static_cast<std::uint32_t>(di.addr / kWordBytes);
    }
    pi.pc = di.pc;
    return pi;
}

DynInstr
PackedInstr::unpack() const
{
    DynInstr di;
    di.op = static_cast<Opcode>(op);
    di.dst = widenReg(dst);
    for (std::size_t i = 0; i < di.srcs.size(); ++i)
        di.srcs[i] = widenReg(srcs[i]);
    di.numSrcs = static_cast<std::uint8_t>(meta & kNumSrcsMask);
    di.addr = (meta & kHasAddr)
                  ? static_cast<std::int64_t>(addrWord) * kWordBytes
                  : -1;
    di.pc = pc;
    return di;
}

} // namespace ilp
