#include "sim/memory.hh"

#include "sim/trap.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/** Guard gap between the global segment and the stack. */
constexpr std::int64_t kStackGuard = 0x1000;

} // namespace

Memory::Memory(const Module &module, std::int64_t stack_bytes)
{
    std::int64_t global_end = module.globalEnd();
    stack_base_ = (global_end + kStackGuard + kWordBytes - 1) &
                  ~(kWordBytes - 1);
    std::int64_t total = stack_base_ + stack_bytes;
    words_.assign(static_cast<std::size_t>(total / kWordBytes), 0);

    for (const auto &g : module.globals()) {
        for (std::size_t i = 0; i < g.init.size(); ++i)
            words_[static_cast<std::size_t>(g.address / kWordBytes) +
                   i] = g.init[i];
    }
}

void
Memory::check(std::int64_t addr) const
{
    // Workload faults; the faulting function name is attributed by
    // the interpreter frame the exception unwinds through.
    if (addr < kGlobalBase ||
        addr + kWordBytes >
            static_cast<std::int64_t>(words_.size()) * kWordBytes)
        throw TrapException(
            Trap{ErrCode::TrapOutOfBoundsMemory, "",
                 "memory access out of range: address " +
                     std::to_string(addr)});
    if (addr % kWordBytes != 0)
        throw TrapException(
            Trap{ErrCode::TrapMisalignedMemory, "",
                 "misaligned memory access: address " +
                     std::to_string(addr)});
}

std::uint64_t
Memory::loadWord(std::int64_t addr) const
{
    check(addr);
    return words_[static_cast<std::size_t>(addr / kWordBytes)];
}

void
Memory::storeWord(std::int64_t addr, std::uint64_t value)
{
    check(addr);
    words_[static_cast<std::size_t>(addr / kWordBytes)] = value;
}

std::uint64_t
Memory::readGlobal(const Module &module, const std::string &name,
                   std::int64_t index) const
{
    const GlobalVar *g = module.findGlobal(name);
    SS_ASSERT(g, "readGlobal: unknown global ", name);
    SS_ASSERT(index >= 0 && index < g->words,
              "readGlobal: index out of range for ", name);
    return loadWord(g->address + index * kWordBytes);
}

} // namespace ilp
