/**
 * @file
 * Flat word-addressed data memory for the functional simulator.
 *
 * Layout: [0, kGlobalBase) is unmapped (so address 0 faults),
 * globals occupy [kGlobalBase, globalEnd), and the stack grows upward
 * from a guard page above the globals.  Every access must be
 * word-aligned; out-of-range or misaligned accesses are reported as
 * fatal() — they indicate a broken workload program, not a simulator
 * bug.
 */

#ifndef SUPERSYM_SIM_MEMORY_HH
#define SUPERSYM_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"

namespace ilp {

class Memory
{
  public:
    /**
     * @param module      Supplies global layout and initializers.
     * @param stack_bytes Stack segment size.
     */
    explicit Memory(const Module &module,
                    std::int64_t stack_bytes = 1 << 20);

    std::uint64_t loadWord(std::int64_t addr) const;
    void storeWord(std::int64_t addr, std::uint64_t value);

    /** Base byte address of the stack segment. */
    std::int64_t stackBase() const { return stack_base_; }
    /** One-past-the-end byte address of the memory. */
    std::int64_t limit() const
    {
        return static_cast<std::int64_t>(words_.size()) * kWordBytes;
    }

    /** Read word `index` of global `name` (tests/checksums). */
    std::uint64_t readGlobal(const Module &module,
                             const std::string &name,
                             std::int64_t index = 0) const;

  private:
    void check(std::int64_t addr) const;

    std::vector<std::uint64_t> words_;
    std::int64_t stack_base_ = 0;
};

} // namespace ilp

#endif // SUPERSYM_SIM_MEMORY_HH
