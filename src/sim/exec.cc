#include "sim/exec.hh"

#include <cstdlib>

#include "sim/bytecode.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace ilp {

namespace {

class InterpExecutor final : public Executor
{
  public:
    InterpExecutor(const Module &module, InterpOptions options)
        : interp_(module, options)
    {
    }

    RunResult
    run(const std::string &entry, TraceSink *sink) override
    {
        return interp_.run(entry, sink);
    }
    RunResult
    runPacked(const std::string &entry, PackedSink &sink) override
    {
        return interp_.run(entry, &sink);
    }
    RunResult
    runTimed(const std::string &entry, IssueEngine &engine) override
    {
        return interp_.run(entry, &engine);
    }
    const Memory &memory() const override { return interp_.memory(); }
    ExecBackend backend() const override
    {
        return ExecBackend::Interp;
    }

  private:
    Interpreter interp_;
};

class BytecodeExecutor final : public Executor
{
  public:
    BytecodeExecutor(BcImage image, InterpOptions options)
        : image_(std::move(image)), vm_(image_, options)
    {
    }

    RunResult
    run(const std::string &entry, TraceSink *sink) override
    {
        return vm_.run(entry, sink);
    }
    RunResult
    runPacked(const std::string &entry, PackedSink &sink) override
    {
        return vm_.runPacked(entry, sink);
    }
    RunResult
    runTimed(const std::string &entry, IssueEngine &engine) override
    {
        return vm_.runTimed(entry, engine);
    }
    const Memory &memory() const override { return vm_.memory(); }
    ExecBackend backend() const override
    {
        return ExecBackend::Bytecode;
    }

  private:
    BcImage image_;
    BytecodeVM vm_;
};

} // namespace

const char *
execBackendName(ExecBackend backend)
{
    switch (backend) {
      case ExecBackend::Interp: return "interp";
      case ExecBackend::Bytecode: return "bytecode";
    }
    SS_PANIC("bad ExecBackend ", static_cast<int>(backend));
}

std::optional<ExecBackend>
parseExecBackend(std::string_view name)
{
    if (name == "interp")
        return ExecBackend::Interp;
    if (name == "bytecode")
        return ExecBackend::Bytecode;
    return std::nullopt;
}

namespace {
std::optional<ExecBackend> g_backend_override;
} // namespace

void
setDefaultExecBackend(std::optional<ExecBackend> backend)
{
    g_backend_override = backend;
}

ExecBackend
defaultExecBackend()
{
    if (g_backend_override)
        return *g_backend_override;
    static const ExecBackend resolved = [] {
        const char *env = std::getenv("SSIM_EXEC");
        if (env != nullptr && *env != '\0') {
            if (auto parsed = parseExecBackend(env))
                return *parsed;
            SS_WARN("SSIM_EXEC='", env,
                    "' is not a backend (interp|bytecode); using "
                    "bytecode");
        }
        return ExecBackend::Bytecode;
    }();
    return resolved;
}

std::unique_ptr<Executor>
makeExecutor(const Module &module, ExecBackend backend,
             InterpOptions options)
{
    if (backend == ExecBackend::Bytecode) {
        if (auto image = lowerModule(module))
            return std::make_unique<BytecodeExecutor>(
                std::move(*image), options);
        // lowerModule counted the fallback; run the reference
        // backend so the caller never sees the difference.
    }
    return std::make_unique<InterpExecutor>(module, options);
}

std::unique_ptr<Executor>
makeExecutor(const Module &module, InterpOptions options)
{
    return makeExecutor(module, defaultExecBackend(), options);
}

} // namespace ilp
