#include "sim/bytecode.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/semantics.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

// Threaded dispatch wants GNU computed goto; everything else gets a
// dense switch the optimizer turns into one jump table.
#if defined(__GNUC__) || defined(__clang__)
#define SS_BC_THREADED 1
#else
#define SS_BC_THREADED 0
#endif

namespace ilp {

namespace {

std::uint16_t
reg16(Reg r)
{
    return r == kNoReg ? BcInstr::kNone16
                       : static_cast<std::uint16_t>(r);
}

Reg
reg32(std::uint16_t r)
{
    return r == BcInstr::kNone16 ? kNoReg : static_cast<Reg>(r);
}

/** Does every register operand of `in` fit the 16-bit encoding and
 *  the function's register file?  (The VM indexes the frame arena
 *  without per-access checks, so lowering is the bounds gate.) */
bool
regsFit(const Instr &in, std::size_t nregs)
{
    auto fits = [nregs](Reg r) { return r == kNoReg || r < nregs; };
    if (!fits(in.dst) || !fits(in.src1) || !fits(in.src2))
        return false;
    for (Reg a : in.args)
        if (!fits(a))
            return false;
    return true;
}

BcOp
binaryBcOp(Opcode op, bool imm)
{
    switch (op) {
#define X(n)                                                          \
      case Opcode::n:                                                 \
        return imm ? BcOp::n##_RI : BcOp::n##_RR;
        SS_BC_BINARY_OPS(X)
#undef X
      default:
        break;
    }
    SS_PANIC("binaryBcOp: not a binary opcode: ", opcodeName(op));
}

BcOp
unaryBcOp(Opcode op)
{
    switch (op) {
#define X(n)                                                          \
      case Opcode::n:                                                 \
        return BcOp::n##_U;
        SS_BC_UNARY_OPS(X)
#undef X
      default:
        break;
    }
    SS_PANIC("unaryBcOp: not a unary opcode: ", opcodeName(op));
}

/** Does `bb` end in a terminator?  (Empty or unterminated blocks get
 *  a FellOff trailer so falling off traps like the interpreter.) */
bool
terminated(const BasicBlock &bb)
{
    if (bb.instrs.empty())
        return false;
    const Opcode op = bb.instrs.back().op;
    return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Ret;
}

metrics::Counter &
fallbackCounter()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_bytecode_fallbacks_total",
        "modules the bytecode compiler could not represent "
        "(interpreter fallback)");
    return c;
}

/**
 * Lower one function.  Returns false when the register file does not
 * fit the 16-bit encoding (the only unrepresentable shape).
 */
bool
lowerFunction(const Module &module, const Function &func,
              BcFunction &out, std::vector<BcArgMove> &pool)
{
    const std::size_t nregs = std::max<std::size_t>(
        func.numVirtRegs, func.layout.total());
    if (nregs > BcInstr::kNone16)
        return false;

    out.name = func.name;
    out.nregs = static_cast<std::uint32_t>(nregs);
    out.frameBytes = func.frameBytes;
    out.paramCount = static_cast<std::uint32_t>(func.paramRegs.size());
    out.retMoveOp = static_cast<std::uint8_t>(
        func.returnsFloat ? Opcode::MovF : Opcode::MovI);
    const Reg fp = func.framePointer();
    out.fpReg = (fp != kNoReg && fp < nregs)
                    ? static_cast<std::uint16_t>(fp)
                    : BcInstr::kNone16;

    // Pass 1: block start offsets (unterminated blocks grow a
    // FellOff trailer instruction).
    std::vector<std::uint32_t> block_start(func.blocks.size(), 0);
    std::uint32_t offset = 0;
    for (std::size_t b = 0; b < func.blocks.size(); ++b) {
        block_start[b] = offset;
        offset += static_cast<std::uint32_t>(
            func.blocks[b].instrs.size());
        if (!terminated(func.blocks[b]))
            ++offset;
    }

    // Invalid branch targets resolve to per-block-id BadJump
    // trailers appended after the last block.
    std::unordered_map<BlockId, std::uint32_t> bad_jump;
    std::uint32_t trailer = offset;
    auto resolve = [&](BlockId target) -> std::uint32_t {
        if (target >= 0 &&
            static_cast<std::size_t>(target) < func.blocks.size())
            return block_start[static_cast<std::size_t>(target)];
        auto [it, fresh] = bad_jump.try_emplace(target, trailer);
        if (fresh)
            ++trailer;
        return it->second;
    };

    out.code.clear();
    out.code.reserve(trailer);
    for (const BasicBlock &bb : func.blocks) {
        for (const Instr &in : bb.instrs) {
            if (!regsFit(in, nregs))
                return false;
            BcInstr bc;
            bc.srcOp = static_cast<std::uint8_t>(in.op);
            bc.cls = static_cast<std::uint8_t>(opcodeClass(in.op));
            bc.dst = reg16(in.dst);
            bc.a = reg16(in.src1);
            bc.b = reg16(in.src2);
            bc.pc = in.pc;
            bc.imm = in.imm;
            bc.flags = static_cast<std::uint8_t>(
                (in.src1 != kNoReg ? BcInstr::kSrcA : 0) |
                (in.src2 != kNoReg ? BcInstr::kSrcB : 0));

            if (isBinaryAlu(in.op)) {
                bc.op = static_cast<std::uint8_t>(
                    binaryBcOp(in.op, in.hasImm));
            } else if (isUnaryAlu(in.op)) {
                bc.op = static_cast<std::uint8_t>(unaryBcOp(in.op));
            } else {
                switch (in.op) {
                  case Opcode::LiI:
                    bc.op = static_cast<std::uint8_t>(BcOp::Li);
                    bc.imm = static_cast<std::int64_t>(
                        sem::fromInt(in.imm));
                    break;
                  case Opcode::LiF:
                    bc.op = static_cast<std::uint8_t>(BcOp::Li);
                    bc.imm = static_cast<std::int64_t>(
                        sem::fromF(in.fimm));
                    break;
                  case Opcode::LoadW:
                  case Opcode::LoadF:
                    bc.op = static_cast<std::uint8_t>(BcOp::Load);
                    break;
                  case Opcode::StoreW:
                  case Opcode::StoreF:
                    bc.op = static_cast<std::uint8_t>(BcOp::Store);
                    break;
                  case Opcode::Br:
                    bc.op = static_cast<std::uint8_t>(BcOp::Br);
                    bc.t0 = resolve(in.target0);
                    bc.t1 = resolve(in.target1);
                    break;
                  case Opcode::Jmp:
                    bc.op = static_cast<std::uint8_t>(BcOp::Jmp);
                    bc.t0 = resolve(in.target0);
                    break;
                  case Opcode::Call: {
                    SS_ASSERT(in.callee >= 0, "Call without callee in ",
                              func.name);
                    const Function &callee =
                        module.function(in.callee);
                    SS_ASSERT(in.args.size() ==
                                  callee.paramRegs.size(),
                              "arity mismatch lowering call to ",
                              callee.name);
                    bc.op = static_cast<std::uint8_t>(BcOp::Call);
                    bc.t0 = static_cast<std::uint32_t>(in.callee);
                    bc.t1 = static_cast<std::uint32_t>(pool.size());
                    bc.aux =
                        static_cast<std::uint32_t>(in.args.size());
                    const std::size_t callee_nregs =
                        std::max<std::size_t>(callee.numVirtRegs,
                                              callee.layout.total());
                    for (std::size_t i = 0; i < in.args.size(); ++i) {
                        if (callee.paramRegs[i] >= callee_nregs)
                            return false;
                        BcArgMove mv;
                        mv.dst = static_cast<std::uint16_t>(
                            callee.paramRegs[i]);
                        mv.src = reg16(in.args[i]);
                        mv.op = static_cast<std::uint8_t>(
                            callee.paramIsFloat[i] ? Opcode::MovF
                                                   : Opcode::MovI);
                        pool.push_back(mv);
                    }
                    break;
                  }
                  case Opcode::Ret:
                    bc.op = static_cast<std::uint8_t>(BcOp::Ret);
                    break;
                  default:
                    SS_PANIC("unhandled opcode lowering ", func.name,
                             ": ", opcodeName(in.op));
                }
            }
            out.code.push_back(bc);
        }
        if (!terminated(bb)) {
            BcInstr bc;
            bc.op = static_cast<std::uint8_t>(BcOp::FellOff);
            out.code.push_back(bc);
        }
    }

    // BadJump trailers, in first-use order (bad_jump values are
    // consecutive from `offset`).
    std::vector<std::pair<std::uint32_t, BlockId>> trailers;
    trailers.reserve(bad_jump.size());
    for (const auto &[block, idx] : bad_jump)
        trailers.emplace_back(idx, block);
    std::sort(trailers.begin(), trailers.end());
    for (const auto &[idx, block] : trailers) {
        SS_ASSERT(idx == out.code.size(), "trailer layout drift in ",
                  func.name);
        BcInstr bc;
        bc.op = static_cast<std::uint8_t>(BcOp::BadJump);
        bc.imm = static_cast<std::int64_t>(block);
        out.code.push_back(bc);
    }

    // A function with no blocks at all: entry ip 0 must trap like
    // the interpreter's loop-top check on block 0.
    if (out.code.empty()) {
        BcInstr bc;
        bc.op = static_cast<std::uint8_t>(BcOp::BadJump);
        bc.imm = 0;
        out.code.push_back(bc);
    }
    return true;
}

} // namespace

std::size_t
BcImage::codeBytes() const
{
    std::size_t bytes = argPool.size() * sizeof(BcArgMove);
    for (const BcFunction &f : funcs)
        bytes += f.code.size() * sizeof(BcInstr);
    return bytes;
}

std::optional<BcImage>
lowerModule(const Module &module)
{
    trace::ScopedSpan span("bytecode_lower", "compile");
    static metrics::Histogram &lower_s =
        metrics::Registry::global().histogram(
            "ssim_bytecode_lower_seconds",
            "wall time lowering a module to bytecode");
    metrics::ScopedTimer timer(metrics::Registry::global(), lower_s);

    BcImage image;
    image.module = &module;
    image.funcs.resize(module.functions().size());
    for (std::size_t i = 0; i < module.functions().size(); ++i) {
        if (!lowerFunction(module, module.functions()[i],
                           image.funcs[i], image.argPool)) {
            fallbackCounter().inc();
            SS_DEBUG("bytecode", "lowering fell back on ",
                     module.functions()[i].name,
                     ": register file exceeds 16-bit encoding");
            return std::nullopt;
        }
    }
    if (span.armed())
        span.detail(module.sourceName + ": " +
                    std::to_string(image.funcs.size()) + " funcs, " +
                    std::to_string(image.codeBytes()) + " bytes");
    return image;
}

// ------------------------------------------------------------- VM

namespace {

/** Suspended caller state across a Call. */
struct VmFrame
{
    const BcFunction *fn;
    std::size_t base;
    std::uint32_t resumeIp;
    /** Caller's Call dst (kNone16 = value discarded). */
    std::uint16_t retDst;
    /** Return-value transfer move opcode (callee.retMoveOp). */
    std::uint8_t retMoveOp;
    /** Call-site pc (the transfer move bills to the site). */
    Pc retPc;
};

constexpr std::size_t kMoveClass =
    static_cast<std::size_t>(InstrClass::Move);

} // namespace

BytecodeVM::BytecodeVM(const BcImage &image, InterpOptions options)
    : image_(&image), opts_(options),
      mem_(*image.module, options.stackBytes)
{
    stack_top_ = mem_.stackBase();
}

template <class Sink, bool Traced>
RunResult
BytecodeVM::runWith(const std::string &entry, Sink *sink)
{
    trace::ScopedSpan span("bytecode", "sim");
    if (span.armed())
        span.detail(entry);
    executed_ = 0;
    class_counts_.fill(0);
    stack_top_ = mem_.stackBase();
    arena_.clear();

    RunResult result;
    try {
        FuncId id = image_->module->findFunction(entry);
        if (id == kNoFunc)
            sem::trapNoEntry(entry);
        const BcFunction &func =
            image_->funcs[static_cast<std::size_t>(id)];
        if (func.paramCount != 0)
            sem::trapEntryTakesArgs(entry);
        try {
            result.returnValue = execute<Sink, Traced>(
                static_cast<std::uint32_t>(id), sink);
        } catch (TrapException &e) {
            // Innermost-frame attribution, the explicit-stack twin
            // of the interpreter's per-frame catch.
            if (cur_fn_name_)
                e.setFunction(*cur_fn_name_);
            throw;
        }
    } catch (const TrapException &e) {
        result.trap = e.trap();
        result.trap.instruction = executed_;
    }
    result.instructions = executed_;
    result.classCounts = class_counts_;
    cur_fn_name_ = nullptr;
    return result;
}

template <class Sink, bool Traced>
std::uint64_t
BytecodeVM::execute(std::uint32_t entryIdx, Sink *sink)
{
    (void)sink; // unused in the untraced instantiation
    const BcImage &img = *image_;
    const BcArgMove *const pool = img.argPool.data();

    std::vector<VmFrame> frames;
    frames.reserve(64);
    int depth = 0;

    // --- Entry activation (mirrors Interpreter::execFrame). ---
    const BcFunction *fn = &img.funcs[entryIdx];
    cur_fn_name_ = &fn->name;
    if (depth >= sem::kMaxCallDepth)
        sem::trapCallDepthExceeded(fn->name);
    ++depth;
    std::size_t base = arena_.size();
    arena_.resize(base + fn->nregs, 0);
    {
        const std::int64_t fp = stack_top_;
        stack_top_ += fn->frameBytes;
        if (stack_top_ > mem_.limit())
            sem::trapStackOverflow(fn->name);
        if (fn->fpReg != BcInstr::kNone16)
            arena_[base + fn->fpReg] = sem::fromInt(fp);
    }

    std::uint64_t *regs = arena_.data() + base;
    const BcInstr *code = fn->code.data();
    std::uint32_t ip = 0;
    const BcInstr *in = nullptr;

    // Per-instruction bookkeeping, in the interpreter's exact order:
    // fuel (count first, message carries the count), deadline/fault
    // poll, class count.  BadJump/FellOff skip it — the interpreter
    // faults those at loop top, before counting.
#define VM_COUNT()                                                    \
    do {                                                              \
        if (++executed_ > opts_.fuel)                                 \
            sem::trapFuelExhausted(executed_);                        \
        sem::pollPoint(executed_);                                    \
        ++class_counts_[in->cls];                                     \
    } while (0)

    // The interpreter's post-switch emit: dst/srcs straight from the
    // instruction, no address.
#define VM_EMIT_PLAIN()                                               \
    do {                                                              \
        if constexpr (Traced) {                                       \
            DynInstr di;                                              \
            di.op = static_cast<Opcode>(in->srcOp);                   \
            di.dst = reg32(in->dst);                                  \
            di.pc = in->pc;                                           \
            if (in->flags & BcInstr::kSrcA)                           \
                di.addSrc(in->a);                                     \
            if (in->flags & BcInstr::kSrcB)                           \
                di.addSrc(in->b);                                     \
            sink->emit(di);                                           \
        }                                                             \
    } while (0)

#if SS_BC_THREADED
    // Label table in BcOp order — the X-macro lists keep the three
    // sites (enum, table, handlers) aligned by construction.
    static const void *const kLabels[] = {
#define X(n) &&L_##n##_RR, &&L_##n##_RI,
        SS_BC_BINARY_OPS(X)
#undef X
#define X(n) &&L_##n##_U,
        SS_BC_UNARY_OPS(X)
#undef X
        &&L_Li,   &&L_Load, &&L_Store,   &&L_Br,      &&L_Jmp,
        &&L_Call, &&L_Ret,  &&L_BadJump, &&L_FellOff,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<std::size_t>(BcOp::Count),
                  "dispatch table out of sync with BcOp");

#define VM_CASE(n) L_##n
#define VM_DISPATCH()                                                 \
    do {                                                              \
        in = &code[ip];                                               \
        goto *kLabels[in->op];                                        \
    } while (0)

    VM_DISPATCH();
#else
#define VM_CASE(n) case BcOp::n
#define VM_DISPATCH() goto vm_dispatch

vm_dispatch:
    in = &code[ip];
    switch (static_cast<BcOp>(in->op)) {
#endif

#define VM_NEXT()                                                     \
    do {                                                              \
        ++ip;                                                         \
        VM_DISPATCH();                                                \
    } while (0)
#define VM_JUMP(t)                                                    \
    do {                                                              \
        ip = (t);                                                     \
        VM_DISPATCH();                                                \
    } while (0)

    // Binary ALU/FP: the Opcode is a template-constant into
    // sem::evalBinary, which folds to the single operation (division
    // keeps its zero trap).
#define X(n)                                                          \
    VM_CASE(n##_RR) : {                                               \
        VM_COUNT();                                                   \
        const std::uint64_t v = sem::evalBinary(                      \
            Opcode::n, regs[in->a], regs[in->b]);                     \
        if (in->dst != BcInstr::kNone16)                              \
            regs[in->dst] = v;                                        \
        VM_EMIT_PLAIN();                                              \
        VM_NEXT();                                                    \
    }                                                                 \
    VM_CASE(n##_RI) : {                                               \
        VM_COUNT();                                                   \
        const std::uint64_t v = sem::evalBinary(                      \
            Opcode::n, regs[in->a],                                   \
            sem::fromInt(in->imm));                                   \
        if (in->dst != BcInstr::kNone16)                              \
            regs[in->dst] = v;                                        \
        VM_EMIT_PLAIN();                                              \
        VM_NEXT();                                                    \
    }
    SS_BC_BINARY_OPS(X)
#undef X

#define X(n)                                                          \
    VM_CASE(n##_U) : {                                                \
        VM_COUNT();                                                   \
        const std::uint64_t v =                                       \
            sem::evalUnary(Opcode::n, regs[in->a]);                   \
        if (in->dst != BcInstr::kNone16)                              \
            regs[in->dst] = v;                                        \
        VM_EMIT_PLAIN();                                              \
        VM_NEXT();                                                    \
    }
    SS_BC_UNARY_OPS(X)
#undef X

    VM_CASE(Li) : {
        VM_COUNT();
        if (in->dst != BcInstr::kNone16)
            regs[in->dst] = static_cast<std::uint64_t>(in->imm);
        VM_EMIT_PLAIN();
        VM_NEXT();
    }

    VM_CASE(Load) : {
        VM_COUNT();
        const std::int64_t addr =
            sem::asInt(regs[in->a]) + in->imm;
        const std::uint64_t v = mem_.loadWord(addr);
        if (in->dst != BcInstr::kNone16)
            regs[in->dst] = v;
        if constexpr (Traced) {
            DynInstr di;
            di.op = static_cast<Opcode>(in->srcOp);
            di.dst = reg32(in->dst);
            di.pc = in->pc;
            di.addr = addr;
            if (in->flags & BcInstr::kSrcA)
                di.addSrc(in->a);
            sink->emit(di);
        }
        VM_NEXT();
    }

    VM_CASE(Store) : {
        VM_COUNT();
        const std::int64_t addr =
            sem::asInt(regs[in->a]) + in->imm;
        mem_.storeWord(addr, regs[in->b]);
        if constexpr (Traced) {
            DynInstr di;
            di.op = static_cast<Opcode>(in->srcOp);
            di.dst = reg32(in->dst);
            di.pc = in->pc;
            di.addr = addr;
            if (in->flags & BcInstr::kSrcA)
                di.addSrc(in->a);
            if (in->flags & BcInstr::kSrcB)
                di.addSrc(in->b);
            sink->emit(di);
        }
        VM_NEXT();
    }

    VM_CASE(Br) : {
        VM_COUNT();
        const std::uint32_t t = regs[in->a] != 0 ? in->t0 : in->t1;
        VM_EMIT_PLAIN();
        VM_JUMP(t);
    }

    VM_CASE(Jmp) : {
        VM_COUNT();
        VM_EMIT_PLAIN();
        VM_JUMP(in->t0);
    }

    VM_CASE(Call) : {
        VM_COUNT();
        const BcFunction &callee = img.funcs[in->t0];
        // Trace before descending: the call record, then the
        // argument-transfer moves (counted without fuel or poll
        // checks — bookkeeping, not fetched instructions — exactly
        // like the interpreter).
        if constexpr (Traced) {
            DynInstr di;
            di.op = static_cast<Opcode>(in->srcOp);
            di.dst = reg32(in->dst);
            di.pc = in->pc;
            sink->emit(di);
            for (std::uint32_t i = 0; i < in->aux; ++i) {
                const BcArgMove &mv = pool[in->t1 + i];
                DynInstr m;
                m.op = static_cast<Opcode>(mv.op);
                m.dst = mv.dst;
                m.addSrc(mv.src);
                m.pc = in->pc;
                sink->emit(m);
            }
            executed_ += in->aux;
            class_counts_[kMoveClass] += in->aux;
        }

        if (depth >= sem::kMaxCallDepth)
            sem::trapCallDepthExceeded(callee.name);
        ++depth;
        frames.push_back(VmFrame{fn, base, ip + 1, in->dst,
                                 callee.retMoveOp, in->pc});

        const std::size_t nbase = arena_.size();
        arena_.resize(nbase + callee.nregs, 0);
        const std::int64_t fp = stack_top_;
        stack_top_ += callee.frameBytes;
        if (stack_top_ > mem_.limit()) {
            cur_fn_name_ = &callee.name;
            sem::trapStackOverflow(callee.name);
        }
        std::uint64_t *nregs = arena_.data() + nbase;
        if (callee.fpReg != BcInstr::kNone16)
            nregs[callee.fpReg] = sem::fromInt(fp);
        const std::uint64_t *oregs = arena_.data() + base;
        for (std::uint32_t i = 0; i < in->aux; ++i) {
            const BcArgMove &mv = pool[in->t1 + i];
            nregs[mv.dst] = oregs[mv.src];
        }

        fn = &callee;
        cur_fn_name_ = &fn->name;
        code = fn->code.data();
        base = nbase;
        regs = arena_.data() + base;
        VM_JUMP(0);
    }

    VM_CASE(Ret) : {
        VM_COUNT();
        VM_EMIT_PLAIN();
        const std::uint16_t ret_reg = in->a;
        const std::uint64_t rv =
            ret_reg != BcInstr::kNone16 ? regs[ret_reg] : 0;

        arena_.resize(base);
        stack_top_ -= fn->frameBytes;
        --depth;
        if (frames.empty())
            return rv;

        const VmFrame f = frames.back();
        frames.pop_back();
        fn = f.fn;
        cur_fn_name_ = &fn->name;
        code = fn->code.data();
        base = f.base;
        regs = arena_.data() + base;

        if (f.retDst != BcInstr::kNone16) {
            regs[f.retDst] = rv;
            // Return-value transfer move (traced only, and only
            // when the callee actually returned a register).
            if constexpr (Traced) {
                if (ret_reg != BcInstr::kNone16) {
                    DynInstr m;
                    m.op = static_cast<Opcode>(f.retMoveOp);
                    m.dst = f.retDst;
                    m.addSrc(ret_reg);
                    m.pc = f.retPc;
                    sink->emit(m);
                    ++executed_;
                    ++class_counts_[kMoveClass];
                }
            }
        }
        VM_JUMP(f.resumeIp);
    }

    VM_CASE(BadJump) : {
        // No VM_COUNT(): the interpreter traps invalid targets at
        // loop top, before the instruction counter bumps.
        sem::trapBadJump(fn->name, in->imm);
    }

    VM_CASE(FellOff) : {
        SS_PANIC("fell off block in ", fn->name);
    }

#if !SS_BC_THREADED
    }
    SS_PANIC("bytecode: invalid dispatch opcode");
#endif

#undef VM_COUNT
#undef VM_EMIT_PLAIN
#undef VM_CASE
#undef VM_DISPATCH
#undef VM_NEXT
#undef VM_JUMP
}

/** Untraced stand-in; never called (guarded by Traced=false). */
namespace {
struct NullTraceSink
{
    void emit(const DynInstr &) {}
};
} // namespace

RunResult
BytecodeVM::run(const std::string &entry, TraceSink *sink)
{
    if (sink == nullptr)
        return runWith<NullTraceSink, false>(entry, nullptr);
    return runWith<TraceSink, true>(entry, sink);
}

RunResult
BytecodeVM::runTimed(const std::string &entry, IssueEngine &engine)
{
    return runWith<IssueEngine, true>(entry, &engine);
}

RunResult
BytecodeVM::runPacked(const std::string &entry, PackedSink &sink)
{
    return runWith<PackedSink, true>(entry, &sink);
}

} // namespace ilp
