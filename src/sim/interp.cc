#include "sim/interp.hh"

#include "sim/cancel.hh"
#include "sim/semantics.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace ilp {

Interpreter::Interpreter(const Module &module, InterpOptions options)
    : module_(module), opts_(options), mem_(module, options.stackBytes)
{
    stack_top_ = mem_.stackBase();
}

RunResult
Interpreter::run(const std::string &entry, TraceSink *sink)
{
    trace::ScopedSpan span("interp", "sim");
    if (span.armed())
        span.detail(entry);
    sink_ = sink;
    executed_ = 0;
    class_counts_.fill(0);
    stack_top_ = mem_.stackBase();
    call_depth_ = 0;
    arena_.clear();

    RunResult result;
    try {
        FuncId id = module_.findFunction(entry);
        if (id == kNoFunc)
            sem::trapNoEntry(entry);
        const Function &func = module_.function(id);
        if (!func.paramRegs.empty())
            sem::trapEntryTakesArgs(entry);
        result.returnValue = callFunction(func, {});
    } catch (const TrapException &e) {
        // Containment boundary: every frame below has unwound its
        // bookkeeping, so the interpreter stays usable.
        result.trap = e.trap();
        result.trap.instruction = executed_;
    }
    result.instructions = executed_;
    result.classCounts = class_counts_;
    sink_ = nullptr;
    return result;
}

void
exportClassMix(stats::Group &g, const ClassCounts &counts)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    g.counter("total", "dynamic instructions").inc(total);
    stats::Group &cg = g.group("counts", "per-class dynamic counts");
    stats::Group &fg = g.group("fractions", "per-class fractions");
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (counts[c] == 0)
            continue;
        std::string name(
            instrClassName(static_cast<InstrClass>(c)));
        cg.counter(name).inc(counts[c]);
        fg.scalar(name).set(static_cast<double>(counts[c]) /
                            static_cast<double>(total));
    }
}

std::uint64_t
Interpreter::callFunction(const Function &func,
                          const std::vector<std::uint64_t> &args)
{
    try {
        return execFrame(func, args);
    } catch (TrapException &e) {
        // Attribute the fault to the innermost frame (memory traps
        // are raised below the frame that knows the function name).
        e.setFunction(func.name);
        throw;
    }
}

std::uint64_t
Interpreter::execFrame(const Function &func,
                       const std::vector<std::uint64_t> &args)
{
    SS_ASSERT(args.size() == func.paramRegs.size(),
              "arity mismatch calling ", func.name);
    if (call_depth_ >= sem::kMaxCallDepth)
        sem::trapCallDepthExceeded(func.name);
    ++call_depth_;

    const std::size_t nregs =
        std::max<std::size_t>(func.numVirtRegs, func.layout.total());
    const std::size_t base = arena_.size();
    arena_.resize(base + nregs, 0);

    // Frame allocation.
    std::int64_t fp = stack_top_;
    stack_top_ += func.frameBytes;

    // Per-frame unwinder: restores the register arena, stack top and
    // call depth on both normal return and trap unwind, keeping the
    // interpreter reusable after a fault.
    struct Frame
    {
        Interpreter &self;
        const Function &func;
        std::size_t base;
        ~Frame()
        {
            self.arena_.resize(base);
            self.stack_top_ -= func.frameBytes;
            --self.call_depth_;
        }
    } frame{*this, func, base};

    if (stack_top_ > mem_.limit())
        sem::trapStackOverflow(func.name);

    Reg fp_reg = func.framePointer();
    if (fp_reg != kNoReg && fp_reg < nregs)
        arena_[base + fp_reg] = sem::fromInt(fp);
    for (std::size_t i = 0; i < args.size(); ++i)
        arena_[base + func.paramRegs[i]] = args[i];

    auto get = [&](Reg r) -> std::uint64_t {
        SS_ASSERT(r < nregs, "register v", r, " out of range in ",
                  func.name);
        return arena_[base + r];
    };

    std::uint64_t ret_value = 0;
    BlockId block = 0;
    std::size_t ip = 0;
    bool running = true;

    while (running) {
        if (block < 0 ||
            static_cast<std::size_t>(block) >= func.blocks.size())
            sem::trapBadJump(func.name, block);
        const BasicBlock &bb = func.blocks[block];
        SS_ASSERT(ip < bb.instrs.size(), "fell off block in ",
                  func.name);
        const Instr &in = bb.instrs[ip];

        if (++executed_ > opts_.fuel)
            sem::trapFuelExhausted(executed_);
        // Watchdog / chaos poll point, amortized to one branch per
        // instruction (cancel::kDeadlinePollInterval cadence, shared
        // with the bytecode VM and the replayer).
        sem::pollPoint(executed_);
        ++class_counts_[static_cast<std::size_t>(opcodeClass(in.op))];

        DynInstr di;
        if (sink_) {
            di.op = in.op;
            di.dst = in.dst;
            di.pc = in.pc;
        }

        // Fetch ALU operands.
        auto rhs = [&]() -> std::uint64_t {
            return in.hasImm ? sem::fromInt(in.imm) : get(in.src2);
        };

        std::uint64_t value = 0;
        bool writes = true;
        std::int64_t next_block = -1;

        switch (in.op) {
          case Opcode::LiI:
            value = sem::fromInt(in.imm);
            break;
          case Opcode::LiF:
            value = sem::fromF(in.fimm);
            break;
          case Opcode::LoadW:
          case Opcode::LoadF: {
            std::int64_t addr = sem::asInt(get(in.src1)) + in.imm;
            value = mem_.loadWord(addr);
            if (sink_)
                di.addr = addr;
            break;
          }
          case Opcode::StoreW:
          case Opcode::StoreF: {
            std::int64_t addr = sem::asInt(get(in.src1)) + in.imm;
            mem_.storeWord(addr, get(in.src2));
            if (sink_)
                di.addr = addr;
            writes = false;
            break;
          }
          case Opcode::Br:
            next_block = get(in.src1) != 0 ? in.target0 : in.target1;
            writes = false;
            break;
          case Opcode::Jmp:
            next_block = in.target0;
            writes = false;
            break;
          case Opcode::Call: {
            const Function &callee = module_.function(in.callee);
            // Trace the call before descending so the stream is in
            // fetch order, followed by explicit argument-transfer
            // moves (the calling convention's visible cost, which
            // also ties the callee's parameter registers to the
            // caller's dataflow in the timing model).
            if (sink_) {
                sink_->emit(di);
                for (std::size_t i = 0; i < in.args.size(); ++i) {
                    DynInstr mv;
                    mv.op = callee.paramIsFloat[i] ? Opcode::MovF
                                                   : Opcode::MovI;
                    mv.dst = callee.paramRegs[i];
                    mv.addSrc(in.args[i]);
                    // Calling-convention overhead bills to the site.
                    mv.pc = in.pc;
                    sink_->emit(mv);
                }
                executed_ += in.args.size();
                class_counts_[static_cast<std::size_t>(
                    InstrClass::Move)] += in.args.size();
            }
            std::vector<std::uint64_t> call_args;
            call_args.reserve(in.args.size());
            for (Reg a : in.args)
                call_args.push_back(get(a));
            std::uint64_t rv = callFunction(callee, call_args);
            if (in.dst != kNoReg) {
                arena_[base + in.dst] = rv;
                // Return-value transfer move.
                if (sink_ && last_ret_reg_ != kNoReg) {
                    DynInstr mv;
                    mv.op = callee.returnsFloat ? Opcode::MovF
                                                : Opcode::MovI;
                    mv.dst = in.dst;
                    mv.addSrc(last_ret_reg_);
                    mv.pc = in.pc;
                    sink_->emit(mv);
                    ++executed_;
                    ++class_counts_[static_cast<std::size_t>(
                        InstrClass::Move)];
                }
            }
            ++ip;
            continue; // trace already emitted
          }
          case Opcode::Ret:
            if (in.src1 != kNoReg)
                ret_value = get(in.src1);
            last_ret_reg_ = in.src1;
            running = false;
            writes = false;
            break;
          default:
            // Every computational opcode: evaluated by the shared
            // semantics (sim/semantics.hh), the same code the
            // bytecode VM runs.
            if (isBinaryAlu(in.op))
                value = sem::evalBinary(in.op, get(in.src1), rhs());
            else if (isUnaryAlu(in.op))
                value = sem::evalUnary(in.op, get(in.src1));
            else
                SS_PANIC("unhandled opcode in interpreter: ",
                         opcodeName(in.op));
        }

        if (writes && in.dst != kNoReg)
            arena_[base + in.dst] = value;

        if (sink_) {
            // Inline source collection (forEachSrc's std::function is
            // too hot for this path).
            if (in.src1 != kNoReg)
                di.addSrc(in.src1);
            if (in.src2 != kNoReg)
                di.addSrc(in.src2);
            sink_->emit(di);
        }

        if (next_block >= 0) {
            block = static_cast<BlockId>(next_block);
            ip = 0;
        } else {
            ++ip;
        }
    }

    return ret_value; // Frame unwinder restores the bookkeeping.
}

} // namespace ilp
