/**
 * @file
 * Cooperative per-cell deadlines (the sweep watchdog).
 *
 * A runaway cell — a pathological unroll factor, a near-infinite MT
 * loop that stays inside its fuel, an adversarial machine spec — must
 * not stall a whole sweep.  Preemption is off the table (cells share
 * caches and allocate), so cancellation is cooperative: the hardened
 * sweep layer arms a steady-clock deadline on the worker thread
 * (ScopedCellDeadline), and the execution hot loops — the IR-walk
 * interpreter, the bytecode VM, and the packed-trace replayer — poll
 * it every kDeadlinePollInterval executed instructions (one shared,
 * tested constant, below).
 *
 * An expired deadline raises TrapException(E0410
 * trap-deadline-exceeded) — a *permanent* error class: the simulator
 * is deterministic, so a cell that blew its budget once will blow it
 * again, and retrying would only double the damage.  The hardened
 * runner quarantines such cells instead.
 *
 * The trap message carries the configured budget, never the elapsed
 * time, so a timed-out cell reports identically at any job count.
 */

#ifndef SUPERSYM_SIM_CANCEL_HH
#define SUPERSYM_SIM_CANCEL_HH

#include <chrono>
#include <cstdint>

namespace ilp::cancel {

/**
 * Deadline-poll cadence for every functional-execution hot loop: the
 * IR-walk interpreter, the bytecode VM, and the packed-trace replayer
 * all poll the cooperative deadline (and the fault-injection site)
 * once per this many dynamic instructions.  One shared, tested value
 * — the cadence used to be duplicated per poll site, which let the
 * loops drift apart.  Must stay a power of two: the loops use
 * `(executed & kDeadlinePollMask) == 0`, one AND and one predictable
 * branch per instruction.
 */
inline constexpr std::uint64_t kDeadlinePollInterval = 4096;
inline constexpr std::uint64_t kDeadlinePollMask =
    kDeadlinePollInterval - 1;
static_assert((kDeadlinePollInterval &
               (kDeadlinePollInterval - 1)) == 0,
              "poll cadence must be a power of two (mask test)");

/** True when the calling thread has an armed deadline. */
bool deadlineArmed();

/**
 * Throw TrapException(TrapDeadlineExceeded) if the calling thread's
 * deadline has passed; no-op (one thread-local load) when no deadline
 * is armed.  Called from the interpreter and replay chunk loops.
 */
void pollDeadline();

/**
 * Arm a deadline of `seconds` from now on the calling thread for the
 * lifetime of the object; seconds <= 0 arms nothing.  Nests: the
 * previous deadline (if any) is restored on destruction.
 */
class ScopedCellDeadline
{
  public:
    explicit ScopedCellDeadline(double seconds);
    ~ScopedCellDeadline();

    ScopedCellDeadline(const ScopedCellDeadline &) = delete;
    ScopedCellDeadline &operator=(const ScopedCellDeadline &) = delete;

  private:
    bool prev_armed_;
    std::chrono::steady_clock::time_point prev_at_;
    double prev_seconds_;
};

} // namespace ilp::cancel

#endif // SUPERSYM_SIM_CANCEL_HH
