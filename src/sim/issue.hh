/**
 * @file
 * The timing simulator: a strictly in-order issue engine running in
 * minor cycles (1/m of a base cycle), consuming the dynamic trace.
 *
 * Per Section 2 and the §2.3.2 exclusion, instructions never issue out
 * of order: "We will not consider superscalar machines or any other
 * machines that issue instructions out of order."  An instruction
 * issues in the earliest minor cycle t such that:
 *
 *  1. t is not before the previous instruction's issue cycle;
 *  2. fewer than `issueWidth` instructions have issued in t;
 *  3. every register source is ready (producer latency elapsed);
 *  4. loads wait for earlier stores to the same word to complete,
 *     stores wait for earlier stores to the same word (memory RAW /
 *     WAW through actual addresses);
 *  5. a functional-unit copy serving its class is free (class
 *     conflicts, §2.3.2) — unless the machine has fully duplicated
 *     units;
 *  6. if `issueAcrossBranches` is false, t is strictly after the
 *     latest branch's issue cycle.
 *
 * Branch prediction is perfect and control transfers add no latency
 * (§2.1's "no contribution to control latency" assumption).  Register
 * WAW is resolved by overwrite (last writer wins; no interlock) — see
 * DESIGN.md.  Elapsed time in base cycles is minor cycles / m, making
 * superscalar and superpipelined machines directly comparable.
 */

#ifndef SUPERSYM_SIM_ISSUE_HH
#define SUPERSYM_SIM_ISSUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/machine/machine.hh"
#include "sim/trace.hh"
#include "support/statistics.hh"
#include "support/stats.hh"

namespace ilp {

/**
 * Why an issue slot went unused (the paper's lost-parallelism
 * taxonomy, §4): every minor cycle of the issue period offers
 * `issueWidth` slots; each slot either issues an instruction or is
 * charged to exactly one cause.
 */
enum class StallCause : int
{
    /** A register or memory (same-word) operand was not yet ready —
     *  operation-latency interlock. */
    RawLatency = 0,
    /** Every functional-unit copy serving the class was busy
     *  (§2.3.2 class conflicts / issue latency). */
    UnitConflict,
    /** The machine does not issue across branch boundaries and a
     *  branch closed the cycle. */
    BranchFence,
    /** No instruction arrived to claim the slot: the partially filled
     *  final cycle when the trace drains. */
    FrontendDrain,
};

constexpr std::size_t kNumStallCauses = 4;

const char *stallCauseName(StallCause cause);

/** Lost issue slots per cause, in minor-cycle issue slots. */
struct StallBreakdown
{
    std::array<std::uint64_t, kNumStallCauses> slots{};

    std::uint64_t &operator[](StallCause c)
    {
        return slots[static_cast<std::size_t>(c)];
    }
    std::uint64_t operator[](StallCause c) const
    {
        return slots[static_cast<std::size_t>(c)];
    }
    std::uint64_t total() const;
};

/**
 * One issued instruction on the simulated timeline (recorded only
 * when timeline capture is enabled; feeds --trace-events).
 */
struct IssueEvent
{
    /** Issue minor cycle. */
    std::uint64_t cycle = 0;
    /** Issue slot within the cycle (0..issueWidth-1). */
    std::uint16_t slot = 0;
    /** Operation latency in minor cycles. */
    std::uint32_t latencyMinor = 1;
    InstrClass cls = InstrClass::IntAdd;
};

/**
 * Per-static-instruction timing counters (one record per pc), filled
 * by the issue engine when profiling is enabled.  Lost slots are
 * charged to the instruction that was *waiting* to issue — the
 * stalled consumer, not the producer it waited on.
 */
struct PcCounters
{
    /** Times this static instruction issued (slots it used). */
    std::uint64_t issued = 0;
    /** Lost slots charged while this instruction waited, per cause. */
    std::array<std::uint64_t, kNumStallCauses> stallSlots{};

    std::uint64_t
    stallTotal() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t s : stallSlots)
            t += s;
        return t;
    }
};

class IssueEngine final : public TraceSink
{
  public:
    explicit IssueEngine(const MachineConfig &config);

    /** Defined inline below: the per-record hot path.  Callers that
     *  hold a concrete IssueEngine (the fused executor paths, trace
     *  replay) inline the whole thing; virtual dispatch remains for
     *  TraceSink* callers. */
    void emit(const DynInstr &di) override;

    /** Dynamic instructions issued so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** Elapsed minor cycles until the last instruction completes. */
    std::uint64_t minorCycles() const;

    /** Elapsed time in base cycles (minor cycles / m). */
    double baseCycles() const;

    /**
     * Instructions per base cycle = dynamic instructions / base
     * cycles; on an ideal machine this is the available parallelism
     * actually exploited.
     */
    double instrPerBaseCycle() const;

    /**
     * issueCounts()[k] = number of minor cycles in which exactly k
     * instructions issued (k = 0..issueWidth), up to the last issue.
     */
    std::vector<std::uint64_t> issueCounts() const;

    // ------------------------------------------------- observability

    /**
     * Minor cycles of the issue period: cycle 0 through the cycle of
     * the last issue, inclusive (0 before anything issues).  Differs
     * from minorCycles() by the completion tail of in-flight latency.
     */
    std::uint64_t issuePeriodMinorCycles() const;

    /**
     * Issue slots that went unused during the issue period:
     * issueWidth * issuePeriodMinorCycles() - instructions().
     */
    std::uint64_t lostIssueSlots() const;

    /**
     * Per-cause attribution of every lost slot.  Invariant (asserted
     * by tests): stallBreakdown().total() == lostIssueSlots().
     */
    StallBreakdown stallBreakdown() const;

    /** Minor cycles between the last issue and the last completion
     *  (latency drain; not issue slots, reported separately). */
    std::uint64_t completionTailMinorCycles() const;

    /** Dynamic instructions issued per class. */
    const ClassCounts &classIssued() const { return class_issued_; }

    /**
     * Enable per-pc profiling for a program of `pcCount` static
     * instructions.  Off by default and zero-cost when off (one
     * predictable branch per emit).  Index pcCount is the bucket for
     * records with pc == kNoPc (modules that never went through
     * Module::assignPcs()).
     */
    void enableProfile(std::size_t pcCount);
    bool profileEnabled() const { return profile_enabled_; }

    /**
     * Snapshot of the per-pc counters, pcCount + 1 records (last =
     * unattributed bucket).  FrontendDrain of the still-open final
     * cycle is charged to the last-issued pc so the records reconcile
     * exactly with the aggregates:
     *   sum(issued)         == instructions()
     *   sum(stallSlots[c])  == stallBreakdown()[c]  for every cause
     *   sum(issued + stall) == issueWidth * issuePeriodMinorCycles()
     */
    std::vector<PcCounters> profileCounters() const;

    /**
     * Record the issue timeline (for --trace-events).  At most `limit`
     * events are kept; later issues only bump timelineDropped().
     */
    void recordTimeline(std::size_t limit);
    const std::vector<IssueEvent> &timeline() const
    {
        return timeline_;
    }
    std::uint64_t timelineDropped() const { return timeline_dropped_; }

    /**
     * Export everything above into a stats group ("issue"): totals,
     * stall attribution, per-width issue histogram, per-class counts.
     */
    void exportStats(stats::Group &g) const;

    const MachineConfig &config() const { return config_; }

  private:
    std::uint64_t regReady(Reg r) const;
    void setRegReady(Reg r, std::uint64_t t);

    MachineConfig config_;

    std::uint64_t instructions_ = 0;
    /** Minor cycle currently being filled. */
    std::uint64_t cur_cycle_ = 0;
    /** Instructions already issued in cur_cycle_. */
    int cur_count_ = 0;
    /** Completion time of the latest-finishing instruction. */
    std::uint64_t last_complete_ = 0;
    /** Earliest cycle the next instruction may use (branch fences). */
    std::uint64_t fence_ = 0;

    std::vector<std::uint64_t> reg_ready_;
    /** Ready time per memory *word* (index addr / kWordBytes), grown
     *  on demand.  Addresses are word-aligned and bounded by the
     *  simulated memory, so a flat table beats a hash map on the
     *  per-instruction hot path; absent entries mean "ready at 0",
     *  exactly like the map this replaces. */
    std::vector<std::uint64_t> store_ready_;
    /** Next-free minor cycle per functional-unit copy, per unit. */
    std::vector<std::vector<std::uint64_t>> unit_free_;
    /** unitFor(cls), precomputed per class at construction. */
    std::array<int, kNumInstrClasses> unit_for_{};

    /** counts_[k] = closed cycles that issued exactly k instrs. */
    std::vector<std::uint64_t> counts_;
    /** Fully-empty cycles skipped during stalls. */
    std::uint64_t empty_cycles_ = 0;

    /** Lost-slot attribution (FrontendDrain added at snapshot time). */
    StallBreakdown stalls_;
    /** Dynamic instructions per class. */
    ClassCounts class_issued_{};

    /** Per-pc counters (empty unless enableProfile()). */
    bool profile_enabled_ = false;
    std::vector<PcCounters> profile_;
    /** pc of the most recently issued instruction (drain charge). */
    std::size_t last_profile_slot_ = 0;

    /** Issue timeline capture (off unless recordTimeline()). */
    bool timeline_enabled_ = false;
    std::size_t timeline_limit_ = 0;
    std::uint64_t timeline_dropped_ = 0;
    std::vector<IssueEvent> timeline_;
};

inline std::uint64_t
IssueEngine::regReady(Reg r) const
{
    return r < reg_ready_.size() ? reg_ready_[r] : 0;
}

inline void
IssueEngine::setRegReady(Reg r, std::uint64_t t)
{
    if (r >= reg_ready_.size())
        reg_ready_.resize(static_cast<std::size_t>(r) + 1, 0);
    reg_ready_[r] = t;
}

inline void
IssueEngine::emit(const DynInstr &di)
{
    const InstrClass cls = di.cls();
    const std::uint64_t width =
        static_cast<std::uint64_t>(config_.issueWidth);

    // Component earliest-issue times, kept separate so a stall can be
    // charged to the binding constraint.
    std::uint64_t t_data = 0;

    // Register RAW.
    for (std::uint8_t i = 0; i < di.numSrcs; ++i)
        t_data = std::max(t_data, regReady(di.srcs[i]));

    // Memory RAW / WAW through the actual word address.
    if (di.addr >= 0) {
        const std::size_t word =
            static_cast<std::size_t>(di.addr / kWordBytes);
        if (word < store_ready_.size())
            t_data = std::max(t_data, store_ready_[word]);
    }

    // Functional-unit availability (class conflicts).
    int unit = unit_for_[static_cast<std::size_t>(cls)];
    std::size_t copy = 0;
    std::uint64_t t_unit = 0;
    if (unit >= 0) {
        auto &copies = unit_free_[static_cast<std::size_t>(unit)];
        copy = 0;
        for (std::size_t i = 1; i < copies.size(); ++i) {
            if (copies[i] < copies[copy])
                copy = i;
        }
        t_unit = copies[copy];
    }

    // Earliest issue: in order, after the branch fence, operands
    // ready, and a unit copy free.
    std::uint64_t t = std::max(
        std::max(cur_cycle_, fence_), std::max(t_data, t_unit));

    // Profile bucket for this record (last slot = unattributed).
    std::size_t pslot = 0;
    if (profile_enabled_)
        pslot = di.pc < profile_.size() - 1
                    ? static_cast<std::size_t>(di.pc)
                    : profile_.size() - 1;

    // Issue-slot availability: if we moved past the cycle being
    // filled, the new cycle starts empty; otherwise check the width.
    if (t > cur_cycle_) {
        // The cycle being filled closes short, plus (t-cur-1) fully
        // empty cycles: charge every lost slot to the binding
        // constraint (latency beats unit beats fence on ties — the
        // paper's headline cause wins ambiguous slots).
        StallCause cause = StallCause::BranchFence;
        if (t_data >= t)
            cause = StallCause::RawLatency;
        else if (t_unit >= t)
            cause = StallCause::UnitConflict;
        const std::uint64_t lost =
            (width - static_cast<std::uint64_t>(cur_count_)) +
            (t - cur_cycle_ - 1) * width;
        stalls_[cause] += lost;
        if (profile_enabled_)
            profile_[pslot]
                .stallSlots[static_cast<std::size_t>(cause)] += lost;
        ++counts_[static_cast<std::size_t>(cur_count_)];
        empty_cycles_ += t - cur_cycle_ - 1;
        cur_cycle_ = t;
        cur_count_ = 0;
    } else if (cur_count_ >= config_.issueWidth) {
        ++counts_[static_cast<std::size_t>(cur_count_)];
        t = ++cur_cycle_;
        cur_count_ = 0;
        // Re-check unit availability at the new cycle: the chosen
        // copy is still the earliest-free one, so only max() again.
        if (unit >= 0)
            t = std::max(
                t, unit_free_[static_cast<std::size_t>(unit)][copy]);
        if (t > cur_cycle_) {
            const std::uint64_t lost = (t - cur_cycle_) * width;
            stalls_[StallCause::UnitConflict] += lost;
            if (profile_enabled_)
                profile_[pslot].stallSlots[static_cast<std::size_t>(
                    StallCause::UnitConflict)] += lost;
            empty_cycles_ += t - cur_cycle_;
            cur_cycle_ = t;
        }
    }

    // --- Issue at minor cycle t. ---
    if (timeline_enabled_) {
        if (timeline_.size() < timeline_limit_) {
            IssueEvent ev;
            ev.cycle = t;
            ev.slot = static_cast<std::uint16_t>(cur_count_);
            ev.latencyMinor = static_cast<std::uint32_t>(
                config_.latencyMinor(cls));
            ev.cls = cls;
            timeline_.push_back(ev);
        } else {
            ++timeline_dropped_;
        }
    }
    ++class_issued_[static_cast<std::size_t>(cls)];
    ++cur_count_;
    ++instructions_;
    if (profile_enabled_) {
        ++profile_[pslot].issued;
        last_profile_slot_ = pslot;
    }

    const std::uint64_t lat =
        static_cast<std::uint64_t>(config_.latencyMinor(cls));
    const std::uint64_t done = t + lat;
    last_complete_ = std::max(last_complete_, done);

    if (di.dst != kNoReg)
        setRegReady(di.dst, done);
    if (di.addr >= 0 && isStore(di.op)) {
        const std::size_t word =
            static_cast<std::size_t>(di.addr / kWordBytes);
        if (word >= store_ready_.size())
            store_ready_.resize(word + 1, 0);
        store_ready_[word] = done;
    }
    if (unit >= 0) {
        unit_free_[static_cast<std::size_t>(unit)][copy] =
            t + static_cast<std::uint64_t>(
                    config_.units[static_cast<std::size_t>(unit)]
                        .issueLatency);
    }
    if (!config_.issueAcrossBranches &&
        (cls == InstrClass::Branch || cls == InstrClass::Jump))
        fence_ = t + 1;
}

/**
 * Convenience: replay a buffered trace on a machine and return the
 * elapsed base cycles.
 */
double simulateTrace(const TraceBuffer &trace,
                     const MachineConfig &config);

} // namespace ilp

#endif // SUPERSYM_SIM_ISSUE_HH
