/**
 * @file
 * The per-opcode operational semantics of the functional simulator,
 * hoisted out of the IR-walk interpreter so the interpreter and the
 * bytecode VM (sim/bytecode.hh) execute from one source of truth.
 *
 * Everything observable about executing one instruction lives here:
 * the value computed for each ALU/FP opcode, the exact trap records
 * raised for workload faults (divide by zero, fuel exhaustion, call
 * depth, stack overflow, bad jumps, missing entry), and the shared
 * watchdog/fault-injection poll both backends run every
 * cancel::kDeadlinePollInterval dynamic instructions.  A divergence
 * between the two backends is, by construction, a bookkeeping bug,
 * not a semantics bug — the differential suite (tests/bytecode_test)
 * then pins the bookkeeping.
 *
 * All values are 64-bit bit patterns: integers are two's-complement
 * int64, floats are IEEE double, moved around as std::uint64_t and
 * reinterpreted at the operation.
 */

#ifndef SUPERSYM_SIM_SEMANTICS_HH
#define SUPERSYM_SIM_SEMANTICS_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include "isa/isa.hh"
#include "sim/cancel.hh"
#include "sim/trap.hh"
#include "support/faultinject.hh"

namespace ilp::sem {

/** Maximum interpreter/VM call depth before TrapCallDepthExceeded. */
inline constexpr int kMaxCallDepth = 4096;

/**
 * The fault-injection site both functional backends visit from their
 * poll point.  One shared name keeps the seeded draw sequence — and
 * therefore every chaos differential — identical whichever backend
 * executes the workload.
 */
inline constexpr const char *kFaultSite = "interp";

// ------------------------------------------------- value reinterpret

inline std::int64_t
asInt(std::uint64_t bits)
{
    return static_cast<std::int64_t>(bits);
}

inline std::uint64_t
fromInt(std::int64_t v)
{
    return static_cast<std::uint64_t>(v);
}

inline double
asF(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

inline std::uint64_t
fromF(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

// ------------------------------------------------------ shared traps
//
// Message text is part of the observable artifact contract: trap
// records must be byte-identical across backends, so the strings are
// built in exactly one place.

[[noreturn]] inline void
trapDivideByZero(bool isRemainder)
{
    throw TrapException(
        Trap{ErrCode::TrapDivideByZero, "",
             isRemainder ? "integer remainder by zero"
                         : "integer division by zero"});
}

/** @param executed The dynamic count *including* the instruction
 *  that blew the budget (the interpreter increments first). */
[[noreturn]] inline void
trapFuelExhausted(std::uint64_t executed)
{
    throw TrapException(
        Trap{ErrCode::TrapFuelExhausted, "",
             "interpreter fuel exhausted after " +
                 std::to_string(executed) +
                 " instructions — runaway workload?"});
}

[[noreturn]] inline void
trapCallDepthExceeded(const std::string &function)
{
    throw TrapException(
        Trap{ErrCode::TrapCallDepthExceeded, function,
             "call depth exceeded (" +
                 std::to_string(kMaxCallDepth) + ")"});
}

[[noreturn]] inline void
trapStackOverflow(const std::string &function)
{
    throw TrapException(
        Trap{ErrCode::TrapStackOverflow, function, "stack overflow"});
}

[[noreturn]] inline void
trapBadJump(const std::string &function, std::int64_t block)
{
    throw TrapException(
        Trap{ErrCode::TrapBadJump, function,
             "jump to invalid block " + std::to_string(block)});
}

[[noreturn]] inline void
trapNoEntry(const std::string &entry)
{
    throw TrapException(Trap{ErrCode::TrapNoEntry, "",
                             "no entry function '" + entry + "'"});
}

[[noreturn]] inline void
trapEntryTakesArgs(const std::string &entry)
{
    throw TrapException(
        Trap{ErrCode::TrapNoEntry, "",
             "entry function '" + entry +
                 "' must take no arguments"});
}

// ------------------------------------------------- watchdog cadence

/**
 * The amortized per-instruction poll both backends run *after*
 * bumping their dynamic-instruction counter: one branch per
 * instruction, and every cancel::kDeadlinePollInterval instructions
 * the cooperative cell deadline plus the shared fault-injection
 * site.  Synthetic calling-convention moves bump the counter without
 * polling (they are bookkeeping, not fetched instructions) — both
 * backends agree on that, which keeps the poll *points*, and so the
 * E0410 trap instants and fault draws, identical.
 */
inline void
pollPoint(std::uint64_t executed)
{
    if ((executed & cancel::kDeadlinePollMask) == 0) {
        cancel::pollDeadline();
        if (fault::enabled())
            fault::maybeInject(kFaultSite);
    }
}

// ------------------------------------------- ALU / FP op evaluation
//
// One inline function per computational opcode family.  `a` is the
// first source's bits, `b` the second source's bits (or the sign-
// extended immediate, already converted by the caller).  Memory,
// control and call opcodes are structural and stay in the backends.

inline std::uint64_t
evalBinary(Opcode op, std::uint64_t a, std::uint64_t b)
{
    switch (op) {
      case Opcode::AddI: return fromInt(asInt(a) + asInt(b));
      case Opcode::SubI: return fromInt(asInt(a) - asInt(b));
      case Opcode::MulI: return fromInt(asInt(a) * asInt(b));
      case Opcode::DivI: {
        const std::int64_t d = asInt(b);
        if (d == 0)
            trapDivideByZero(false);
        return fromInt(asInt(a) / d);
      }
      case Opcode::RemI: {
        const std::int64_t d = asInt(b);
        if (d == 0)
            trapDivideByZero(true);
        return fromInt(asInt(a) % d);
      }
      case Opcode::CmpEqI: return asInt(a) == asInt(b) ? 1 : 0;
      case Opcode::CmpNeI: return asInt(a) != asInt(b) ? 1 : 0;
      case Opcode::CmpLtI: return asInt(a) < asInt(b) ? 1 : 0;
      case Opcode::CmpLeI: return asInt(a) <= asInt(b) ? 1 : 0;
      case Opcode::CmpGtI: return asInt(a) > asInt(b) ? 1 : 0;
      case Opcode::CmpGeI: return asInt(a) >= asInt(b) ? 1 : 0;
      case Opcode::AndI: return a & b;
      case Opcode::OrI: return a | b;
      case Opcode::XorI: return a ^ b;
      case Opcode::ShlI:
        return fromInt(asInt(a) << (asInt(b) & 63));
      case Opcode::ShrAI:
        return fromInt(asInt(a) >> (asInt(b) & 63));
      case Opcode::ShrLI: return a >> (asInt(b) & 63);
      case Opcode::AddF: return fromF(asF(a) + asF(b));
      case Opcode::SubF: return fromF(asF(a) - asF(b));
      case Opcode::MulF: return fromF(asF(a) * asF(b));
      case Opcode::DivF: return fromF(asF(a) / asF(b));
      case Opcode::CmpEqF: return asF(a) == asF(b) ? 1 : 0;
      case Opcode::CmpNeF: return asF(a) != asF(b) ? 1 : 0;
      case Opcode::CmpLtF: return asF(a) < asF(b) ? 1 : 0;
      case Opcode::CmpLeF: return asF(a) <= asF(b) ? 1 : 0;
      case Opcode::CmpGtF: return asF(a) > asF(b) ? 1 : 0;
      case Opcode::CmpGeF: return asF(a) >= asF(b) ? 1 : 0;
      default:
        break;
    }
    SS_PANIC("evalBinary: not a binary opcode: ", opcodeName(op));
}

inline std::uint64_t
evalUnary(Opcode op, std::uint64_t a)
{
    switch (op) {
      case Opcode::NotI: return ~a;
      case Opcode::MovI:
      case Opcode::MovF: return a;
      case Opcode::NegF: return fromF(-asF(a));
      case Opcode::AbsF: return fromF(std::fabs(asF(a)));
      case Opcode::CvtIF:
        return fromF(static_cast<double>(asInt(a)));
      case Opcode::CvtFI:
        return fromInt(static_cast<std::int64_t>(asF(a)));
      default:
        break;
    }
    SS_PANIC("evalUnary: not a unary opcode: ", opcodeName(op));
}

} // namespace ilp::sem

#endif // SUPERSYM_SIM_SEMANTICS_HH
