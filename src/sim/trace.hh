/**
 * @file
 * Dynamic instruction records and trace sinks.
 *
 * The functional simulator (sim/interp.hh) executes a module and
 * streams one DynInstr per executed instruction into a TraceSink.
 * Sinks include the timing engine (sim/issue.hh), class-frequency
 * profilers, the cache model, and buffering sinks for replaying one
 * execution against many machine configurations.
 */

#ifndef SUPERSYM_SIM_TRACE_HH
#define SUPERSYM_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/metrics/metrics.hh"
#include "isa/isa.hh"
#include "support/logging.hh"

namespace ilp {

/** One executed instruction. */
struct DynInstr
{
    Opcode op = Opcode::Jmp;
    /** Destination register; kNoReg if none. */
    Reg dst = kNoReg;
    /** Source registers actually read (up to 4 recorded). */
    std::array<Reg, 4> srcs{kNoReg, kNoReg, kNoReg, kNoReg};
    std::uint8_t numSrcs = 0;
    /** Byte address for loads/stores; -1 otherwise. */
    std::int64_t addr = -1;
    /** Static instruction id (Module::assignPcs order); kNoPc when
     *  the executed module never went through pc assignment.
     *  Synthetic call-convention moves carry the Call site's pc. */
    Pc pc = kNoPc;

    InstrClass cls() const { return opcodeClass(op); }

    void
    addSrc(Reg r)
    {
        if (r == kNoReg)
            return;
        SS_ASSERT(numSrcs < srcs.size(),
                  "DynInstr source overflow: no opcode reads more "
                  "than 4 registers");
        srcs[numSrcs++] = r;
    }

    bool
    operator==(const DynInstr &o) const
    {
        return op == o.op && dst == o.dst && srcs == o.srcs &&
               numSrcs == o.numSrcs && addr == o.addr && pc == o.pc;
    }
    bool operator!=(const DynInstr &o) const { return !(*this == o); }
};

/** Receives the dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const DynInstr &di) = 0;
};

/** Fans one stream out to several sinks. */
class TeeSink : public TraceSink
{
  public:
    void addSink(TraceSink *sink) { sinks_.push_back(sink); }
    void emit(const DynInstr &di) override
    {
        for (auto *s : sinks_)
            s->emit(di);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/** Buffers the whole trace for replay against many machines. */
class TraceBuffer : public TraceSink
{
  public:
    void emit(const DynInstr &di) override { trace_.push_back(di); }
    const std::vector<DynInstr> &trace() const { return trace_; }
    std::size_t size() const { return trace_.size(); }
    void clear() { trace_.clear(); }

    /** Replay the buffered trace into another sink. */
    void replay(TraceSink &sink) const
    {
        for (const auto &di : trace_)
            sink.emit(di);
    }

  private:
    std::vector<DynInstr> trace_;
};

/** Counts dynamic instructions per class (Table 2-1 measured mix). */
class ClassProfileSink : public TraceSink
{
  public:
    ClassProfileSink() { counts_.fill(0); }
    void emit(const DynInstr &di) override
    {
        ++counts_[static_cast<std::size_t>(di.cls())];
        ++total_;
    }
    const ClassCounts &counts() const { return counts_; }
    std::uint64_t total() const { return total_; }
    ClassFrequencies frequencies() const
    {
        return normalizeCounts(counts_);
    }

  private:
    ClassCounts counts_{};
    std::uint64_t total_ = 0;
};

} // namespace ilp

#endif // SUPERSYM_SIM_TRACE_HH
