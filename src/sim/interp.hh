/**
 * @file
 * The instruction-level (functional) simulator.
 *
 * Executes a module from its `main` function, optionally streaming
 * every executed instruction into a TraceSink.  Works on both
 * virtual-register code (straight out of the front end) and
 * physical-register code (after allocation); the only difference is
 * the size of the per-frame register file.
 *
 * Modelling choices (documented in DESIGN.md):
 *  - each activation gets its own register file — an idealized
 *    callee-save convention whose save/restore traffic is not traced,
 *    mirroring the paper's intermodule register allocation which
 *    eliminated most save/restore code;
 *  - calls/returns are traced as Branch-class instructions;
 *  - a fuel limit guards against runaway workloads.
 */

#ifndef SUPERSYM_SIM_INTERP_HH
#define SUPERSYM_SIM_INTERP_HH

#include <cstdint>
#include <string>

#include "ir/module.hh"
#include "sim/memory.hh"
#include "sim/trace.hh"
#include "sim/trap.hh"
#include "support/stats.hh"

namespace ilp {

struct InterpOptions
{
    /** Maximum dynamic instructions before giving up. */
    std::uint64_t fuel = 2'000'000'000ULL;
    std::int64_t stackBytes = 1 << 20;
};

struct RunResult
{
    /** Bit pattern returned by the entry function (0 for void). */
    std::uint64_t returnValue = 0;
    /** Dynamic instructions executed. */
    std::uint64_t instructions = 0;
    /** Dynamic instruction mix (same stream the trace sink sees). */
    ClassCounts classCounts{};
    /** Set when the workload faulted; returnValue is then
     *  meaningless and `instructions` counts up to the fault. */
    Trap trap;

    bool trapped() const { return trap.valid(); }
};

/** Export a dynamic class mix into a stats group (counts plus
 *  fractions), skipping classes that never occur. */
void exportClassMix(stats::Group &g, const ClassCounts &counts);

class Interpreter
{
  public:
    explicit Interpreter(const Module &module,
                         InterpOptions options = {});

    /**
     * Run `entry` (default "main") with no arguments.
     *
     * A workload fault (trap) does not propagate: the returned
     * RunResult carries the Trap record and the interpreter object
     * remains usable for further runs.
     *
     * @param sink Optional trace sink; null to run untraced.
     */
    RunResult run(const std::string &entry = "main",
                  TraceSink *sink = nullptr);

    /** Data memory after (or during) execution. */
    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }

  private:
    std::uint64_t callFunction(const Function &func,
                               const std::vector<std::uint64_t> &args);
    std::uint64_t execFrame(const Function &func,
                            const std::vector<std::uint64_t> &args);

    const Module &module_;
    InterpOptions opts_;
    Memory mem_;
    TraceSink *sink_ = nullptr;
    std::uint64_t executed_ = 0;
    ClassCounts class_counts_{};
    std::int64_t stack_top_ = 0;
    int call_depth_ = 0;
    /** Register-file arena: one zero-initialized frame per active
     *  call (avoids per-call allocation on the hot path). */
    std::vector<std::uint64_t> arena_;
    /** Register named by the most recent Ret (for the return-value
     *  transfer move in the trace). */
    Reg last_ret_reg_ = kNoReg;
};

} // namespace ilp

#endif // SUPERSYM_SIM_INTERP_HH
