#include "sim/trap.hh"

namespace ilp {

std::string
Trap::format() const
{
    std::string out = "trap[";
    out += errCodeId(code);
    out += ']';
    if (!function.empty()) {
        out += " in '";
        out += function;
        out += '\'';
    }
    out += ": ";
    out += message;
    if (instruction > 0) {
        out += " (after ";
        out += std::to_string(instruction);
        out += " instructions)";
    }
    return out;
}

Diag
Trap::toDiag() const
{
    return Diag{Severity::Error, code, format(), {}};
}

TrapException::TrapException(Trap trap)
    : std::runtime_error(trap.format()), trap_(std::move(trap))
{
}

void
TrapException::setFunction(const std::string &function)
{
    if (trap_.function.empty()) {
        trap_.function = function;
        // Rebuild what() lazily? runtime_error's message is fixed;
        // the Trap record is the authoritative form, so leave it.
    }
}

} // namespace ilp
