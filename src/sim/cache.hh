/**
 * @file
 * Cache model for the Section 5.1 experiments.
 *
 * A set-associative cache with LRU replacement, fed from the dynamic
 * trace (data references) or used standalone.  Plus the miss-cost
 * arithmetic of Table 5-1: miss cost in cycles = memory time / cycle
 * time, and in *instructions* = miss-cost cycles / (cycles per
 * instruction) — the quantity whose growth the paper highlights
 * (0.6 instructions on a VAX-11/780, 8.6 on the WRL Titan, 140 on a
 * hypothetical 2-instruction-per-cycle superscalar).
 */

#ifndef SUPERSYM_SIM_CACHE_HH
#define SUPERSYM_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"
#include "support/stats.hh"

namespace ilp {

struct CacheConfig
{
    std::int64_t sizeBytes = 64 * 1024;
    std::int64_t lineBytes = 32;
    int associativity = 1;
    /**
     * Miss cost in base cycles, used only for the miss-cycles
     * statistic (Table 5-1 arithmetic); 0 leaves the cost unmodelled.
     * The timing engine itself does not consume this — see §5.1.
     */
    double missPenaltyCycles = 0.0;
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** @return true on hit. */
    bool access(std::int64_t addr);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return accesses_ - misses_; }
    std::uint64_t misses() const { return misses_; }
    double missRatio() const;

    /** Modelled miss burden: misses * missPenaltyCycles. */
    double missCycles() const;

    const CacheConfig &config() const { return config_; }

    /** Export accesses/hits/misses/ratios into a stats group. */
    void exportStats(stats::Group &g) const;

  private:
    struct Line
    {
        std::int64_t tag = -1;
        std::uint64_t lastUse = 0;
    };

    CacheConfig config_;
    std::int64_t num_sets_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/** Feeds data addresses (loads and stores) from a trace to a cache. */
class CacheSink : public TraceSink
{
  public:
    explicit CacheSink(const CacheConfig &config) : cache_(config) {}

    void
    emit(const DynInstr &di) override
    {
        ++instructions_;
        if (di.addr >= 0)
            cache_.access(di.addr);
    }

    const Cache &cache() const { return cache_; }
    std::uint64_t instructions() const { return instructions_; }

    /** Data-cache misses per instruction. */
    double missesPerInstr() const;

    /** Cache stats plus the per-instruction burden. */
    void exportStats(stats::Group &g) const;

  private:
    Cache cache_;
    std::uint64_t instructions_ = 0;
};

// ------------------------------------------------ Table 5-1 arithmetic

/** One row of Table 5-1. */
struct MissCostModel
{
    const char *machine;
    double cyclesPerInstr;
    double cycleTimeNs;
    double memTimeNs;

    /** Miss cost in machine cycles (memory time / cycle time). */
    double missCostCycles() const { return memTimeNs / cycleTimeNs; }
    /** Miss cost in average instruction times. */
    double missCostInstr() const
    {
        return missCostCycles() / cyclesPerInstr;
    }
};

/** The paper's three Table 5-1 rows (VAX-11/780, WRL Titan, "?"). */
const std::vector<MissCostModel> &paperMissCostRows();

/**
 * §5.1 dilution arithmetic: performance improvement from parallel
 * issue when each instruction carries `miss_cpi` cycles of cache-miss
 * burden.  Returns the speedup of moving the issue component from
 * `issue_cpi_before` to `issue_cpi_after` at fixed miss burden.
 */
double speedupWithMissBurden(double issue_cpi_before,
                             double issue_cpi_after, double miss_cpi);

} // namespace ilp

#endif // SUPERSYM_SIM_CACHE_HH
