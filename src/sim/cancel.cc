#include "sim/cancel.hh"

#include <cstdio>

#include "sim/trap.hh"

namespace ilp::cancel {

namespace {

thread_local bool tl_armed = false;
thread_local std::chrono::steady_clock::time_point tl_at;
thread_local double tl_seconds = 0.0;

} // namespace

bool
deadlineArmed()
{
    return tl_armed;
}

void
pollDeadline()
{
    if (!tl_armed)
        return;
    if (std::chrono::steady_clock::now() < tl_at)
        return;
    // Deterministic message: the configured budget, not the elapsed
    // time — a timed-out cell must report identically at any job
    // count and on any machine.
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "cell deadline of %g s exceeded", tl_seconds);
    throw TrapException(
        Trap{ErrCode::TrapDeadlineExceeded, "", buf});
}

ScopedCellDeadline::ScopedCellDeadline(double seconds)
    : prev_armed_(tl_armed), prev_at_(tl_at),
      prev_seconds_(tl_seconds)
{
    if (seconds > 0.0) {
        tl_armed = true;
        tl_at = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
        tl_seconds = seconds;
    }
}

ScopedCellDeadline::~ScopedCellDeadline()
{
    tl_armed = prev_armed_;
    tl_at = prev_at_;
    tl_seconds = prev_seconds_;
}

} // namespace ilp::cancel
