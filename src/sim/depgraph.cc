#include "sim/depgraph.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace ilp {

// ------------------------------------------------------------ build

void
DepGraph::Builder::emit(const DynInstr &di)
{
    const NodeIdx me =
        static_cast<NodeIdx>(graph_.nodes_.size());
    SS_ASSERT(me != kNoNode, "dependence graph node index overflow");

    DepNode node;
    node.cls = di.cls();
    node.pc = di.pc;
    node.isFence = node.cls == InstrClass::Branch ||
                   node.cls == InstrClass::Jump;

    // True register dependences: the last writer in program order.
    // Mirrors IssueEngine::regReady — a source never written reads
    // the initial state (no producer, ready at 0); WAW resolves by
    // overwrite below, never by interlock.
    for (std::uint8_t i = 0; i < di.numSrcs; ++i) {
        const Reg r = di.srcs[i];
        if (r < last_writer_.size())
            node.regPred[i] = last_writer_[r];
    }

    // Memory dependence through the actual address: loads and stores
    // both wait for the latest earlier store to the same word
    // (IssueEngine::store_ready_ semantics).
    if (di.addr >= 0) {
        auto it = last_store_.find(di.addr);
        if (it != last_store_.end())
            node.memPred = it->second;
    }

    graph_.nodes_.push_back(node);

    if (di.dst != kNoReg) {
        if (di.dst >= last_writer_.size())
            last_writer_.resize(
                static_cast<std::size_t>(di.dst) + 1, kNoNode);
        last_writer_[di.dst] = me;
    }
    if (di.addr >= 0 && isStore(di.op))
        last_store_[di.addr] = me;
    if (di.pc != kNoPc && di.pc >= graph_.pc_count_)
        graph_.pc_count_ = di.pc + 1;
}

DepGraph
DepGraph::Builder::take()
{
    last_writer_.clear();
    last_writer_.shrink_to_fit();
    last_store_.clear();
    return std::move(graph_);
}

DepGraph
DepGraph::build(const PackedTrace &trace)
{
    Builder b;
    b.graph_.nodes_.reserve(trace.size());
    trace.replay(b);
    return b.take();
}

std::uint64_t
DepGraph::structureHash() const
{
    // FNV-1a over the semantic fields only (padding excluded so the
    // digest is a property of the graph, not the allocator).
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(nodes_.size());
    for (const DepNode &n : nodes_) {
        for (NodeIdx p : n.regPred)
            mix(p);
        mix(n.memPred);
        mix(n.pc);
        mix(static_cast<std::uint64_t>(n.cls) << 1 |
            (n.isFence ? 1 : 0));
    }
    return h;
}

// ---------------------------------------------------------- analyze

AnalyticResult
DepGraph::analyze(const MachineConfig &config) const
{
    AnalyticResult r;
    r.instructions = nodes_.size();
    r.certified = config.units.empty();
    if (nodes_.empty())
        return r;

    const std::uint64_t width =
        static_cast<std::uint64_t>(config.issueWidth);
    const bool fencing = !config.issueAcrossBranches;

    // Minor-cycle latency per class, resolved once.
    std::array<std::uint64_t, kNumInstrClasses> lat{};
    for (std::size_t c = 0; c < kNumInstrClasses; ++c)
        lat[c] = static_cast<std::uint64_t>(
            config.latencyMinor(static_cast<InstrClass>(c)));

    // Completion times of the greedy in-order schedule (reused below
    // for the oracle pass).
    std::vector<std::uint64_t> comp(nodes_.size());

    // Greedy in-order walk — the IssueEngine's issue rule with the
    // functional-unit constraint dropped.  Identical state machine
    // (cur_cycle / cur_count / fence), so for unit-less configs the
    // result is the engine's, cycle for cycle.
    std::uint64_t cur_cycle = 0, fence = 0, last_complete = 0;
    std::uint64_t cur_count = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const DepNode &n = nodes_[i];
        std::uint64_t t_data = 0;
        for (NodeIdx p : n.regPred) {
            if (p != kNoNode)
                t_data = std::max(t_data, comp[p]);
        }
        if (n.memPred != kNoNode)
            t_data = std::max(t_data, comp[n.memPred]);

        std::uint64_t t =
            std::max(std::max(cur_cycle, fence), t_data);
        if (t > cur_cycle) {
            cur_cycle = t;
            cur_count = 0;
        } else if (cur_count >= width) {
            t = ++cur_cycle;
            cur_count = 0;
        }
        ++cur_count;

        const std::uint64_t done =
            t + lat[static_cast<std::size_t>(n.cls)];
        comp[i] = done;
        last_complete = std::max(last_complete, done);
        if (fencing && n.isFence)
            fence = t + 1;
    }

    // Issue-bandwidth bound: the last record issues no earlier than
    // cycle floor((N-1)/width) and still pays its own latency.
    r.issueBoundMinor =
        (static_cast<std::uint64_t>(nodes_.size()) - 1) / width +
        lat[static_cast<std::size_t>(nodes_.back().cls)];

    // Per-unit throughput bound: some copy of unit u handles at least
    // ceil(C_u / multiplicity) operations, spaced issueLatency apart,
    // and the last one still pays the cheapest served latency.
    if (!config.units.empty()) {
        std::array<std::uint64_t, kNumInstrClasses> clsCount{};
        for (const DepNode &n : nodes_)
            ++clsCount[static_cast<std::size_t>(n.cls)];
        for (const FuncUnit &u : config.units) {
            std::uint64_t served = 0;
            std::uint64_t minLat =
                std::numeric_limits<std::uint64_t>::max();
            for (InstrClass c : u.classes) {
                const std::size_t ci = static_cast<std::size_t>(c);
                if (clsCount[ci] == 0)
                    continue;
                served += clsCount[ci];
                minLat = std::min(minLat, lat[ci]);
            }
            if (served == 0)
                continue;
            const std::uint64_t mult =
                static_cast<std::uint64_t>(u.multiplicity);
            const std::uint64_t perCopy =
                (served + mult - 1) / mult;
            r.unitBoundMinor = std::max(
                r.unitBoundMinor,
                (perCopy - 1) *
                        static_cast<std::uint64_t>(u.issueLatency) +
                    minLat);
        }
    }

    r.minorCycles = std::max(last_complete, r.unitBoundMinor);
    r.baseCycles =
        static_cast<double>(r.minorCycles) /
        static_cast<double>(config.pipelineDegree);
    r.ipc = r.minorCycles > 0
                ? static_cast<double>(r.instructions) / r.baseCycles
                : 0.0;

    // Oracle: true dependences only — no issue order, no width, no
    // fences.  The longest dataflow chain any machine must respect.
    std::uint64_t oracle_cp = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const DepNode &n = nodes_[i];
        std::uint64_t e = 0;
        for (NodeIdx p : n.regPred) {
            if (p != kNoNode)
                e = std::max(e, comp[p]);
        }
        if (n.memPred != kNoNode)
            e = std::max(e, comp[n.memPred]);
        comp[i] = e + lat[static_cast<std::size_t>(n.cls)];
        oracle_cp = std::max(oracle_cp, comp[i]);
    }
    r.criticalPathMinor = oracle_cp;
    r.oracleIlp =
        oracle_cp > 0
            ? static_cast<double>(r.instructions) *
                  static_cast<double>(config.pipelineDegree) /
                  static_cast<double>(oracle_cp)
            : 0.0;
    return r;
}

// ------------------------------------------------------------ slack

SlackReport
DepGraph::slack(const MachineConfig &config, std::size_t topK) const
{
    SlackReport rep;
    rep.perPc.assign(static_cast<std::size_t>(pc_count_) + 1,
                     PcSlack{});
    if (nodes_.empty())
        return rep;

    std::array<std::uint64_t, kNumInstrClasses> lat{};
    for (std::size_t c = 0; c < kNumInstrClasses; ++c)
        lat[c] = static_cast<std::uint64_t>(
            config.latencyMinor(static_cast<InstrClass>(c)));

    // Forward pass over the true-dependence DAG: earliest issue e[i]
    // and the critical-path length T the slack is measured against.
    std::vector<std::uint64_t> earliest(nodes_.size());
    std::uint64_t T = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const DepNode &n = nodes_[i];
        std::uint64_t e = 0;
        for (NodeIdx p : n.regPred) {
            if (p != kNoNode)
                e = std::max(
                    e, earliest[p] +
                           lat[static_cast<std::size_t>(
                               nodes_[p].cls)]);
        }
        if (n.memPred != kNoNode)
            e = std::max(
                e, earliest[n.memPred] +
                       lat[static_cast<std::size_t>(
                           nodes_[n.memPred].cls)]);
        earliest[i] = e;
        T = std::max(T, e + lat[static_cast<std::size_t>(n.cls)]);
    }
    rep.criticalPathMinor = T;

    // Backward pass in reverse program order (a valid reverse
    // topological order: every edge points backwards): latest issue
    // l[i] that still meets T, relaxed into each producer.
    std::vector<std::uint64_t> latest(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        latest[i] = T - lat[static_cast<std::size_t>(nodes_[i].cls)];
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        const DepNode &n = nodes_[i];
        const std::uint64_t need = latest[i];
        for (NodeIdx p : n.regPred) {
            if (p == kNoNode)
                continue;
            const std::uint64_t lp =
                need -
                lat[static_cast<std::size_t>(nodes_[p].cls)];
            latest[p] = std::min(latest[p], lp);
        }
        if (n.memPred != kNoNode) {
            const std::uint64_t lp =
                need - lat[static_cast<std::size_t>(
                           nodes_[n.memPred].cls)];
            latest[n.memPred] = std::min(latest[n.memPred], lp);
        }
    }

    // Per-pc rollup + critical-edge grouping.  An edge p -> i is
    // critical when its slack l[i] - e[p] - lat[p] is zero, i.e. it
    // lies on some longest path.
    struct EdgeAcc
    {
        std::uint64_t count = 0;
        std::uint64_t latency = 0;
    };
    std::unordered_map<std::uint64_t, EdgeAcc> regEdges, memEdges;
    auto edgeKey = [](Pc from, Pc to) {
        return static_cast<std::uint64_t>(from) << 32 |
               static_cast<std::uint64_t>(to);
    };

    const std::size_t unattributed = rep.perPc.size() - 1;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const DepNode &n = nodes_[i];
        SS_ASSERT(latest[i] >= earliest[i],
                  "negative slack: backward pass inconsistent");
        const std::uint64_t s = latest[i] - earliest[i];
        const std::size_t row =
            n.pc < pc_count_ ? static_cast<std::size_t>(n.pc)
                             : unattributed;
        PcSlack &ps = rep.perPc[row];
        ++ps.dynCount;
        ps.minSlackMinor = std::min(ps.minSlackMinor, s);
        const std::uint64_t myLat =
            lat[static_cast<std::size_t>(n.cls)];
        if (s == 0) {
            ++ps.critCount;
            ps.critLatencyMinor += myLat;
        }

        auto touch = [&](NodeIdx p, bool memory) {
            const std::uint64_t plat =
                lat[static_cast<std::size_t>(nodes_[p].cls)];
            if (latest[i] != earliest[p] + plat)
                return; // off every longest path
            EdgeAcc &acc =
                (memory ? memEdges
                        : regEdges)[edgeKey(nodes_[p].pc, n.pc)];
            ++acc.count;
            acc.latency += plat;
        };
        for (NodeIdx p : n.regPred) {
            if (p != kNoNode)
                touch(p, false);
        }
        if (n.memPred != kNoNode)
            touch(n.memPred, true);
    }

    auto harvest = [&](const std::unordered_map<std::uint64_t,
                                                EdgeAcc> &edges,
                       bool memory) {
        for (const auto &[key, acc] : edges) {
            CriticalEdge e;
            e.fromPc = static_cast<Pc>(key >> 32);
            e.toPc = static_cast<Pc>(key & 0xffffffffu);
            e.count = acc.count;
            e.latencyMinor = acc.latency;
            e.memory = memory;
            rep.topEdges.push_back(e);
        }
    };
    harvest(regEdges, false);
    harvest(memEdges, true);
    std::sort(rep.topEdges.begin(), rep.topEdges.end(),
              [](const CriticalEdge &a, const CriticalEdge &b) {
                  if (a.latencyMinor != b.latencyMinor)
                      return a.latencyMinor > b.latencyMinor;
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.fromPc != b.fromPc)
                      return a.fromPc < b.fromPc;
                  if (a.toPc != b.toPc)
                      return a.toPc < b.toPc;
                  return a.memory < b.memory;
              });
    if (rep.topEdges.size() > topK)
        rep.topEdges.resize(topK);
    return rep;
}

} // namespace ilp
