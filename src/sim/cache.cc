#include "sim/cache.hh"

#include "support/logging.hh"

namespace ilp {

namespace {

bool
isPow2(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (!isPow2(config_.lineBytes) || !isPow2(config_.sizeBytes))
        SS_FATAL("cache size and line size must be powers of two");
    if (config_.associativity < 1)
        SS_FATAL("cache associativity must be >= 1");
    std::int64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines % config_.associativity != 0)
        SS_FATAL("cache associativity must divide the line count");
    num_sets_ = lines / config_.associativity;
    if (!isPow2(num_sets_))
        SS_FATAL("cache set count must be a power of two");
    lines_.assign(static_cast<std::size_t>(lines), Line{});
}

bool
Cache::access(std::int64_t addr)
{
    ++accesses_;
    ++tick_;
    std::int64_t line_addr = addr / config_.lineBytes;
    std::int64_t set = line_addr & (num_sets_ - 1);
    std::int64_t tag = line_addr >> 1; // any injective mapping works
    Line *base =
        &lines_[static_cast<std::size_t>(set * config_.associativity)];

    for (int w = 0; w < config_.associativity; ++w) {
        Line &l = base[w];
        if (l.tag == tag) {
            l.lastUse = tick_;
            return true;
        }
    }
    // Miss: fill an empty way if there is one, else evict the LRU.
    Line *victim = base;
    for (int w = 1; w < config_.associativity; ++w) {
        if (base[w].tag == -1) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    ++misses_;
    victim->tag = tag;
    victim->lastUse = tick_;
    return false;
}

double
Cache::missRatio() const
{
    SS_ASSERT(accesses_ > 0, "missRatio with no accesses");
    return static_cast<double>(misses_) /
           static_cast<double>(accesses_);
}

double
Cache::missCycles() const
{
    return static_cast<double>(misses_) * config_.missPenaltyCycles;
}

void
Cache::exportStats(stats::Group &g) const
{
    g.counter("accesses", "data references seen").inc(accesses_);
    g.counter("hits", "references that hit").inc(hits());
    g.counter("misses", "references that missed").inc(misses_);
    g.scalar("miss_ratio", "misses / accesses")
        .set(accesses_ > 0 ? missRatio() : 0.0);
    g.scalar("miss_cycles",
             "misses * configured miss penalty (base cycles)")
        .set(missCycles());
    SS_DEBUG("cache", accesses_, " accesses, ", misses_,
             " misses (", config_.sizeBytes, "B, ",
             config_.associativity, "-way)");
}

void
CacheSink::exportStats(stats::Group &g) const
{
    cache_.exportStats(g);
    g.counter("instructions", "instructions over the trace")
        .inc(instructions_);
    g.scalar("misses_per_instr", "data-cache misses per instruction")
        .set(instructions_ > 0 ? missesPerInstr() : 0.0);
}

double
CacheSink::missesPerInstr() const
{
    SS_ASSERT(instructions_ > 0, "missesPerInstr with no instructions");
    return static_cast<double>(cache_.misses()) /
           static_cast<double>(instructions_);
}

const std::vector<MissCostModel> &
paperMissCostRows()
{
    static const std::vector<MissCostModel> rows = {
        {"VAX 11/780", 10.0, 200.0, 1200.0},
        {"WRL Titan", 1.4, 45.0, 540.0},
        {"?", 0.5, 5.0, 350.0},
    };
    return rows;
}

double
speedupWithMissBurden(double issue_cpi_before, double issue_cpi_after,
                      double miss_cpi)
{
    SS_ASSERT(issue_cpi_after > 0.0 && issue_cpi_before > 0.0,
              "cpi must be positive");
    double before = issue_cpi_before + miss_cpi;
    double after = issue_cpi_after + miss_cpi;
    return before / after;
}

} // namespace ilp
