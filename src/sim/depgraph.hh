/**
 * @file
 * The dynamic dependence graph: analytic "what-if" timing over a
 * recorded trace, without re-simulation.
 *
 * A machine sweep replays one PackedTrace against many machine
 * configurations, paying the full issue-engine walk per config even
 * though the *dependences* in the stream never change.  DepGraph
 * factors that walk: one build pass over the trace resolves every
 * timing-relevant dependence into a fixed topology —
 *
 *  - true register dependences (last writer in program order; the
 *    engine's WAW-by-overwrite rule means output dependences never
 *    interlock, they only redirect who the last writer is),
 *  - memory dependences through actual word addresses (loads and
 *    stores wait for the completion of the latest earlier store to
 *    the same word — exactly the engine's store_ready_ rule),
 *  - branch fences (a Branch/Jump node fences every later node when
 *    the machine does not issue across branches).
 *
 * After the build, per-config questions are cheap array walks over
 * the node table (no hash lookups, no DynInstr unpacking, no virtual
 * sink dispatch):
 *
 *  - analyze(config): greedy in-order issue under (issueWidth,
 *    pipelineDegree, latency table, branch policy).  For machines
 *    without functional-unit class conflicts this reproduces the
 *    IssueEngine *exactly* (certified — asserted by differential
 *    tests across all benchmarks); with units it is a true lower
 *    bound, tightened by per-unit throughput bounds.
 *  - oracle critical path: the longest true-dependence chain,
 *    ignoring issue order and width — the paper's oracle ILP bound.
 *  - slack(config): earliest/latest issue times over the
 *    true-dependence DAG, per-node slack (>= 0; critical nodes have
 *    zero), aggregated per static instruction for "would speed up
 *    if" attribution, plus the hottest critical edges grouped by
 *    (producer pc, consumer pc).
 *
 * Latencies scale linearly with the pipeline degree (latencyMinor =
 * latencyBase * m), so oracle results in base cycles are independent
 * of m — the graph answers a whole (n, m) grid from one build.
 */

#ifndef SUPERSYM_SIM_DEPGRAPH_HH
#define SUPERSYM_SIM_DEPGRAPH_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/machine/machine.hh"
#include "sim/ptrace.hh"
#include "sim/trace.hh"

namespace ilp {

/** Node index into DepGraph::nodes(); kNoNode marks "no producer". */
using NodeIdx = std::uint32_t;
inline constexpr NodeIdx kNoNode =
    std::numeric_limits<NodeIdx>::max();

/**
 * One dynamic instruction, reduced to what timing depends on: its
 * class, its static pc (for attribution), and the producers it waits
 * for.  28 bytes; a graph costs ~1.4x the packed trace it came from.
 */
struct DepNode
{
    /** Producer nodes of register sources (kNoNode-padded).  The
     *  slot count mirrors DynInstr::srcs. */
    std::array<NodeIdx, 4> regPred{kNoNode, kNoNode, kNoNode,
                                   kNoNode};
    /** Latest earlier store to the same word (kNoNode if none or not
     *  a memory reference). */
    NodeIdx memPred = kNoNode;
    /** Static instruction id (kNoPc when never assigned). */
    Pc pc = kNoPc;
    InstrClass cls = InstrClass::IntAdd;
    /** Branch/Jump — fences later nodes on single-block-issue
     *  machines. */
    bool isFence = false;
};

static_assert(sizeof(DepNode) == 28, "DepNode layout drifted");

/** Per-machine-config analytic timing answers (see analyze()). */
struct AnalyticResult
{
    /** Greedy in-order schedule length in minor cycles (equals the
     *  IssueEngine's minorCycles() when `certified`). */
    std::uint64_t minorCycles = 0;
    /** minorCycles / m, the engine's reporting unit. */
    double baseCycles = 0.0;
    /** Dynamic instructions (graph nodes). */
    std::uint64_t instructions = 0;
    /** instructions / baseCycles (0 when the clock never advanced). */
    double ipc = 0.0;

    /** True when the analytic schedule provably equals the
     *  cycle-accurate engine: the config has no functional-unit
     *  class conflicts (everything else — width, degree, latencies,
     *  memory, fences — is modeled exactly). */
    bool certified = false;

    /** Oracle critical path (true dependences only, infinite width,
     *  any order) in minor cycles, and the oracle ILP bound
     *  instructions / (criticalPathMinor / m). */
    std::uint64_t criticalPathMinor = 0;
    double oracleIlp = 0.0;

    /** Issue-bandwidth lower bound in minor cycles:
     *  floor((N-1)/width) + the last node's latency. */
    std::uint64_t issueBoundMinor = 0;
    /** Strongest per-functional-unit throughput lower bound in minor
     *  cycles (0 when the config has no units). */
    std::uint64_t unitBoundMinor = 0;
};

/** Per-static-instruction slack rollup (see SlackReport). */
struct PcSlack
{
    /** Dynamic instances of this pc. */
    std::uint64_t dynCount = 0;
    /** Instances on a critical path (zero slack). */
    std::uint64_t critCount = 0;
    /** Sum of critical instances' latencies (minor cycles) — this
     *  pc's direct contribution to the critical path. */
    std::uint64_t critLatencyMinor = 0;
    /** Smallest slack of any instance, in minor cycles. */
    std::uint64_t minSlackMinor =
        std::numeric_limits<std::uint64_t>::max();
};

/** A group of same-(producer pc, consumer pc) critical edges. */
struct CriticalEdge
{
    Pc fromPc = kNoPc;
    Pc toPc = kNoPc;
    /** Dynamic critical edges in the group. */
    std::uint64_t count = 0;
    /** Total latency carried across the group (minor cycles). */
    std::uint64_t latencyMinor = 0;
    /** true = memory dependence, false = register dependence. */
    bool memory = false;
};

/**
 * Slack analysis of the true-dependence DAG under one config's
 * latencies: how far each dynamic instruction sits from the critical
 * path, rolled up per static instruction.
 */
struct SlackReport
{
    /** Oracle critical path in minor cycles (the schedule length the
     *  slack is measured against). */
    std::uint64_t criticalPathMinor = 0;
    /** Rollup rows indexed by pc; the last row is the unattributed
     *  (pc == kNoPc) bucket, mirroring PcCounters. */
    std::vector<PcSlack> perPc;
    /** Critical-path edge groups, hottest (by latency) first. */
    std::vector<CriticalEdge> topEdges;
};

/**
 * The dependence graph of one execution.  Immutable after build;
 * every query is const and safe to run concurrently.
 */
class DepGraph
{
  public:
    /** Build from a packed trace (the TraceCache artifact path). */
    static DepGraph build(const PackedTrace &trace);

    /**
     * Streaming builder: a TraceSink that constructs the graph
     * directly from the interpreter's dynamic stream, for runs whose
     * trace was never recorded (over-budget traces).  The result is
     * identical to build() on an equivalent PackedTrace.  Defined
     * after the class (it holds a DepGraph by value).
     */
    class Builder;

    std::size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }
    const std::vector<DepNode> &nodes() const { return nodes_; }

    /** Bytes of node storage (for cache budgeting). */
    std::size_t byteSize() const
    {
        return nodes_.size() * sizeof(DepNode);
    }

    /** Static instruction count implied by the nodes: max pc + 1
     *  over attributed nodes (0 when none carry a pc). */
    Pc pcCount() const { return pc_count_; }

    /** FNV-1a digest over the full node table — build determinism
     *  fingerprint (identical across job counts and build paths). */
    std::uint64_t structureHash() const;

    /**
     * Analytic timing of the recorded execution on `config`: greedy
     * in-order issue over the graph plus the oracle / bandwidth /
     * unit bounds.  O(nodes) with array-only inner loop.
     */
    AnalyticResult analyze(const MachineConfig &config) const;

    /**
     * Slack analysis under `config`'s latency table (forward +
     * backward pass over the true-dependence DAG).  `topK` bounds
     * the returned critical-edge groups.
     */
    SlackReport slack(const MachineConfig &config,
                      std::size_t topK = 16) const;

  private:
    std::vector<DepNode> nodes_;
    Pc pc_count_ = 0;
};

class DepGraph::Builder : public TraceSink
{
  public:
    void emit(const DynInstr &di) override;
    /** Move the finished graph out (the builder is then spent). */
    DepGraph take();

  private:
    friend class DepGraph;
    DepGraph graph_;
    /** Last writer per register (build-time scratch). */
    std::vector<NodeIdx> last_writer_;
    /** Last store per word address (build-time scratch). */
    std::unordered_map<std::int64_t, NodeIdx> last_store_;
};

} // namespace ilp

#endif // SUPERSYM_SIM_DEPGRAPH_HH
