/**
 * @file
 * The execution-backend seam: one place that decides *how* a module
 * is functionally executed.
 *
 * Two backends produce the same observable artifacts (trace bytes,
 * checksums, trap records, poll instants, fault draws — see
 * sim/bytecode.hh for the contract):
 *
 *  - ExecBackend::Interp   — the IR-walk interpreter (sim/interp.hh),
 *    kept as the reference implementation and the fallback;
 *  - ExecBackend::Bytecode — the threaded-dispatch VM over a lowered
 *    image (sim/bytecode.hh), the default hot path.
 *
 * Selection: callers pass a backend (the CLI's --exec flag);
 * defaultExecBackend() resolves the session default from the
 * SSIM_EXEC environment variable ("interp" | "bytecode"), defaulting
 * to bytecode.  When bytecode lowering cannot represent a module,
 * makeExecutor transparently falls back to the interpreter —
 * backend() then reports what actually runs, and the
 * ssim_bytecode_fallbacks_total metric counts the event.
 *
 * An Executor owns its data memory (like one Interpreter or one VM)
 * and is reusable across runs, including after a trap.  It is not
 * thread-safe; sweep workers each build their own.
 */

#ifndef SUPERSYM_SIM_EXEC_HH
#define SUPERSYM_SIM_EXEC_HH

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "ir/module.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"
#include "sim/ptrace.hh"

namespace ilp {

enum class ExecBackend
{
    Interp,
    Bytecode,
};

/** "interp" / "bytecode". */
const char *execBackendName(ExecBackend backend);

/** Parse a backend name; std::nullopt when unrecognized. */
std::optional<ExecBackend> parseExecBackend(std::string_view name);

/**
 * The session default: the setDefaultExecBackend override when one
 * is active, else $SSIM_EXEC when set to a valid name (an invalid
 * value warns once and is ignored), else Bytecode.
 */
ExecBackend defaultExecBackend();

/**
 * Override the session default (the CLI's --exec flag; tests).
 * std::nullopt restores environment/default resolution.
 */
void setDefaultExecBackend(std::optional<ExecBackend> backend);

/** A functional execution backend bound to one module. */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Interpreter::run's exact contract, whichever backend. */
    virtual RunResult run(const std::string &entry = "main",
                          TraceSink *sink = nullptr) = 0;

    /**
     * Fused hot paths: identical artifacts to run(entry, &sink), but
     * a backend may bind the concrete sink type into its dispatch
     * loop (the bytecode VM devirtualizes per-record emission).
     */
    virtual RunResult runPacked(const std::string &entry,
                                PackedSink &sink) = 0;
    virtual RunResult runTimed(const std::string &entry,
                               IssueEngine &engine) = 0;

    /** Data memory after (or during) execution (checksums). */
    virtual const Memory &memory() const = 0;

    /** What actually executes (Interp after a lowering fallback). */
    virtual ExecBackend backend() const = 0;
};

/**
 * Build an executor for `module` on the requested backend,
 * falling back from Bytecode to Interp when lowering fails.
 */
std::unique_ptr<Executor> makeExecutor(const Module &module,
                                       ExecBackend backend,
                                       InterpOptions options = {});

/** makeExecutor on the session default backend. */
std::unique_ptr<Executor> makeExecutor(const Module &module,
                                       InterpOptions options = {});

} // namespace ilp

#endif // SUPERSYM_SIM_EXEC_HH
