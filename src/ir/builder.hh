/**
 * @file
 * IrBuilder: append-at-point construction of IR, used by the front
 * end's code generator, by tests, and by library users building
 * workloads directly (see examples/custom_workload.cc).
 */

#ifndef SUPERSYM_IR_BUILDER_HH
#define SUPERSYM_IR_BUILDER_HH

#include "ir/module.hh"

namespace ilp {

class IrBuilder
{
  public:
    /** Builds into `func`, which must outlive the builder. */
    explicit IrBuilder(Function &func);

    Function &function() { return func_; }

    /** Create a block (does not move the insertion point). */
    BlockId makeBlock(const std::string &label = "");

    /** Move the insertion point to the end of `block`. */
    void setBlock(BlockId block);
    BlockId currentBlock() const { return cur_; }

    /** True if the current block already has a terminator. */
    bool blockTerminated() const;

    /**
     * Set the source position stamped onto subsequently emitted
     * instructions (until the next setLoc).  The default — no
     * location — marks compiler-synthesized code.
     */
    void setLoc(SrcLoc loc) { loc_ = loc; }
    SrcLoc currentLoc() const { return loc_; }

    /** Append a raw instruction to the current block, stamping the
     *  current source location unless the instruction already has
     *  one. */
    void emit(Instr instr);

    // --- Value-producing helpers; each returns a fresh virtual reg --

    Reg binary(Opcode op, Reg a, Reg b);
    Reg binaryImm(Opcode op, Reg a, std::int64_t imm);
    Reg unary(Opcode op, Reg a);
    Reg li(std::int64_t value);
    Reg lif(double value);
    Reg load(Opcode op, Reg base, std::int64_t off);
    Reg call(FuncId callee, std::vector<Reg> args, bool wants_value);

    // --- Effects ---------------------------------------------------

    void store(Opcode op, Reg base, std::int64_t off, Reg value);
    void br(Reg cond, BlockId if_true, BlockId if_false);
    void jmp(BlockId target);
    void ret(Reg value = kNoReg);
    void callVoid(FuncId callee, std::vector<Reg> args);

  private:
    Function &func_;
    BlockId cur_ = kNoBlock;
    SrcLoc loc_;
};

} // namespace ilp

#endif // SUPERSYM_IR_BUILDER_HH
