#include "ir/dominators.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

Dominators::Dominators(const Function &func)
{
    const std::size_t n = func.blocks.size();
    SS_ASSERT(n > 0, "dominators of empty function");
    idom_.assign(n, kNoBlock);
    rpo_index_.assign(n, -1);
    preds_.assign(n, {});

    for (const auto &bb : func.blocks) {
        for (BlockId s : bb.successors())
            preds_[s].push_back(bb.id);
    }

    // Iterative DFS to compute postorder.
    std::vector<BlockId> postorder;
    std::vector<char> visited(n, 0);
    struct StackEntry { BlockId block; std::size_t next_succ; };
    std::vector<StackEntry> stack;
    stack.push_back({0, 0});
    visited[0] = 1;
    std::vector<std::vector<BlockId>> succs(n);
    for (const auto &bb : func.blocks)
        succs[bb.id] = bb.successors();
    while (!stack.empty()) {
        auto &top = stack.back();
        if (top.next_succ < succs[top.block].size()) {
            BlockId s = succs[top.block][top.next_succ++];
            if (!visited[s]) {
                visited[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            postorder.push_back(top.block);
            stack.pop_back();
        }
    }

    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy iteration.
    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo_index_[a] > rpo_index_[b])
                a = idom_[a];
            while (rpo_index_[b] > rpo_index_[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo_) {
            if (b == 0)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : preds_[b]) {
                if (rpo_index_[p] < 0 || idom_[p] == kNoBlock)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == kNoBlock ? p
                                                : intersect(p, new_idom);
            }
            if (new_idom != kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    if (!reachable(b))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0)
            return a == 0;
        cur = idom_[cur];
        if (cur == kNoBlock)
            return false;
    }
}

bool
NaturalLoop::contains(BlockId b) const
{
    return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

std::vector<NaturalLoop>
findNaturalLoops(const Function &func, const Dominators &dom)
{
    // Collect back edges, grouped by header.
    std::vector<NaturalLoop> loops;
    auto find_loop = [&](BlockId header) -> NaturalLoop * {
        for (auto &l : loops) {
            if (l.header == header)
                return &l;
        }
        return nullptr;
    };

    for (const auto &bb : func.blocks) {
        if (!dom.reachable(bb.id))
            continue;
        for (BlockId s : bb.successors()) {
            if (!dom.dominates(s, bb.id))
                continue;
            // Back edge bb -> s; walk predecessors from the tail.
            NaturalLoop *loop = find_loop(s);
            if (!loop) {
                loops.push_back(NaturalLoop{s, {s}, 1});
                loop = &loops.back();
            }
            std::vector<BlockId> work;
            if (!loop->contains(bb.id)) {
                loop->blocks.push_back(bb.id);
                work.push_back(bb.id);
            }
            while (!work.empty()) {
                BlockId cur = work.back();
                work.pop_back();
                if (cur == s)
                    continue;
                for (BlockId p : dom.preds()[cur]) {
                    if (dom.reachable(p) && !loop->contains(p)) {
                        loop->blocks.push_back(p);
                        work.push_back(p);
                    }
                }
            }
        }
    }

    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.header < b.header;
              });

    // Nesting depth: count enclosing loops per header.
    for (auto &l : loops) {
        l.depth = 1;
        for (const auto &outer : loops) {
            if (outer.header != l.header && outer.contains(l.header))
                ++l.depth;
        }
    }
    return loops;
}

} // namespace ilp
