#include "ir/builder.hh"

#include "support/logging.hh"

namespace ilp {

IrBuilder::IrBuilder(Function &func)
    : func_(func)
{
    if (func_.blocks.empty())
        func_.addBlock("entry");
    cur_ = 0;
}

BlockId
IrBuilder::makeBlock(const std::string &label)
{
    return func_.addBlock(label);
}

void
IrBuilder::setBlock(BlockId block)
{
    SS_ASSERT(block >= 0 &&
                  static_cast<std::size_t>(block) < func_.blocks.size(),
              "setBlock: bad block id ", block);
    cur_ = block;
}

bool
IrBuilder::blockTerminated() const
{
    const auto &instrs = func_.blocks[cur_].instrs;
    return !instrs.empty() && isTerminator(instrs.back().op);
}

void
IrBuilder::emit(Instr instr)
{
    SS_ASSERT(cur_ != kNoBlock, "no current block");
    SS_ASSERT(!blockTerminated(),
              "emitting into terminated block ", cur_);
    if (!instr.loc.known())
        instr.loc = loc_;
    func_.blocks[cur_].instrs.push_back(std::move(instr));
}

Reg
IrBuilder::binary(Opcode op, Reg a, Reg b)
{
    Reg d = func_.newVirtReg();
    emit(Instr::binary(op, d, a, b));
    return d;
}

Reg
IrBuilder::binaryImm(Opcode op, Reg a, std::int64_t imm)
{
    Reg d = func_.newVirtReg();
    emit(Instr::binaryImm(op, d, a, imm));
    return d;
}

Reg
IrBuilder::unary(Opcode op, Reg a)
{
    Reg d = func_.newVirtReg();
    emit(Instr::unary(op, d, a));
    return d;
}

Reg
IrBuilder::li(std::int64_t value)
{
    Reg d = func_.newVirtReg();
    emit(Instr::li(d, value));
    return d;
}

Reg
IrBuilder::lif(double value)
{
    Reg d = func_.newVirtReg();
    emit(Instr::lif(d, value));
    return d;
}

Reg
IrBuilder::load(Opcode op, Reg base, std::int64_t off)
{
    Reg d = func_.newVirtReg();
    emit(Instr::load(op, d, base, off));
    return d;
}

Reg
IrBuilder::call(FuncId callee, std::vector<Reg> args, bool wants_value)
{
    Reg d = wants_value ? func_.newVirtReg() : kNoReg;
    emit(Instr::call(callee, std::move(args), d));
    return d;
}

void
IrBuilder::store(Opcode op, Reg base, std::int64_t off, Reg value)
{
    emit(Instr::store(op, base, off, value));
}

void
IrBuilder::br(Reg cond, BlockId if_true, BlockId if_false)
{
    emit(Instr::br(cond, if_true, if_false));
}

void
IrBuilder::jmp(BlockId target)
{
    emit(Instr::jmp(target));
}

void
IrBuilder::ret(Reg value)
{
    emit(Instr::ret(value));
}

void
IrBuilder::callVoid(FuncId callee, std::vector<Reg> args)
{
    emit(Instr::call(callee, std::move(args), kNoReg));
}

} // namespace ilp
