#include "ir/alias.hh"

#include <map>
#include <tuple>
#include <unordered_map>

#include "support/logging.hh"

namespace ilp {

namespace {

/**
 * A value in the block-local value numbering: a symbolic term plus a
 * constant.  term == -1 means the value is the constant alone.
 */
struct LinVal
{
    std::int32_t term = -1;
    std::int64_t c = 0;
    bool isFrameBase = false; ///< value == fp + c
};

/**
 * Builds (term, constant) linear forms for the registers of one block.
 */
class ValueNumbering
{
  public:
    ValueNumbering(const Function &func, const BasicBlock &block)
        : func_(func)
    {
        Reg fp = func.framePointer();
        for (const auto &in : block.instrs) {
            process(in, fp);
        }
    }

    /** Linear forms of load/store base registers, per instruction. */
    const std::vector<LinVal> &baseForms() const { return base_forms_; }

  private:
    /** A fresh symbolic term no other term compares equal to. */
    std::int32_t
    freshTerm()
    {
        return next_term_++;
    }

    /** Canonical term for a binary combination of two terms. */
    std::int32_t
    combineTerm(int kind, std::int32_t a, std::int32_t b)
    {
        auto key = std::make_tuple(kind, a, b);
        auto it = combos_.find(key);
        if (it != combos_.end())
            return it->second;
        std::int32_t t = freshTerm();
        combos_.emplace(key, t);
        return t;
    }

    /** The current value of a register (entry regs get leaf terms). */
    LinVal
    valueOf(Reg r, Reg fp)
    {
        auto it = reg_val_.find(r);
        if (it != reg_val_.end())
            return it->second;
        LinVal v;
        auto leaf = leaves_.find(r);
        if (leaf != leaves_.end()) {
            v.term = leaf->second;
        } else {
            v.term = freshTerm();
            leaves_[r] = v.term;
        }
        if (r == fp)
            v.isFrameBase = true;
        reg_val_[r] = v;
        return v;
    }

    void
    process(const Instr &in, Reg fp)
    {
        if (isMem(in.op)) {
            LinVal base = valueOf(in.src1, fp);
            base.c += in.imm;
            base_forms_.push_back(base);
            if (isStore(in.op)) {
                (void)valueOf(in.src2, fp);
            }
        } else {
            base_forms_.push_back(LinVal{});
        }

        if (in.dst == kNoReg) {
            return;
        }

        LinVal v;
        switch (in.op) {
          case Opcode::LiI:
            v.term = -1;
            v.c = in.imm;
            break;
          case Opcode::MovI:
          case Opcode::MovF:
            v = valueOf(in.src1, fp);
            break;
          case Opcode::AddI: {
            LinVal a = valueOf(in.src1, fp);
            LinVal b = in.hasImm ? LinVal{-1, in.imm, false}
                                 : valueOf(in.src2, fp);
            if (a.term == -1) {
                v = b;
                v.c += a.c;
            } else if (b.term == -1) {
                v = a;
                v.c += b.c;
            } else {
                std::int32_t lo = std::min(a.term, b.term);
                std::int32_t hi = std::max(a.term, b.term);
                v.term = combineTerm(0, lo, hi);
                v.c = a.c + b.c;
            }
            break;
          }
          case Opcode::SubI: {
            LinVal a = valueOf(in.src1, fp);
            LinVal b = in.hasImm ? LinVal{-1, in.imm, false}
                                 : valueOf(in.src2, fp);
            if (b.term == -1) {
                v = a;
                v.c -= b.c;
            } else {
                v.term = combineTerm(1, a.term, b.term);
                v.c = a.c - b.c;
            }
            break;
          }
          case Opcode::ShlI: {
            LinVal a = valueOf(in.src1, fp);
            if (in.hasImm && in.imm >= 0 && in.imm < 32) {
                if (a.term == -1) {
                    v.term = -1;
                    v.c = a.c << in.imm;
                } else {
                    v.term = combineTerm(2, a.term,
                                         static_cast<std::int32_t>(in.imm));
                    v.c = a.c << in.imm;
                }
            } else {
                v.term = freshTerm();
            }
            break;
          }
          case Opcode::MulI: {
            LinVal a = valueOf(in.src1, fp);
            if (in.hasImm) {
                if (a.term == -1) {
                    v.term = -1;
                    v.c = a.c * in.imm;
                } else {
                    v.term = combineTerm(
                        3, a.term, static_cast<std::int32_t>(in.imm));
                    v.c = a.c * in.imm;
                }
            } else {
                v.term = freshTerm();
            }
            break;
          }
          default:
            // Loads, calls, compares, FP ops...: opaque values.
            v.term = freshTerm();
            break;
        }
        // Frame-base propagation: fp + constant stays a frame address.
        if (in.op == Opcode::AddI || in.op == Opcode::SubI ||
            in.op == Opcode::MovI) {
            LinVal a = valueOf(in.src1, fp);
            bool imm_rhs = in.hasImm || in.op == Opcode::MovI;
            if (a.isFrameBase && imm_rhs)
                v.isFrameBase = true;
        }
        reg_val_[in.dst] = v;
    }

    const Function &func_;
    std::int32_t next_term_ = 0;
    std::unordered_map<Reg, LinVal> reg_val_;
    std::unordered_map<Reg, std::int32_t> leaves_;
    std::map<std::tuple<int, std::int32_t, std::int32_t>, std::int32_t>
        combos_;
    std::vector<LinVal> base_forms_;
};

} // namespace

BlockAliasAnalysis::BlockAliasAnalysis(const Module &module,
                                       const Function &func,
                                       const BasicBlock &block)
{
    ValueNumbering vn(func, block);
    const auto &forms = vn.baseForms();
    refs_.resize(block.instrs.size());

    // Frame-slot object encoding starts below -1.
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const Instr &in = block.instrs[i];
        if (!isMem(in.op))
            continue;
        MemRefInfo &info = refs_[i];
        info.isMem = true;
        const LinVal &form = forms[i];
        info.term = form.term;
        info.disp = form.c;
        if (form.isFrameBase) {
            info.region = MemRegion::Frame;
            // A frame scalar slot: term is the fp leaf, identity by
            // displacement.
            info.object = -2 - form.c / kWordBytes;
        } else if (form.term == -1) {
            info.region = MemRegion::Absolute;
        } else {
            info.region = MemRegion::Unknown;
        }

        if (info.region == MemRegion::Absolute ||
            info.region == MemRegion::Unknown) {
            // Identify the containing global from the base constant.
            // For Absolute refs the displacement is the full address;
            // for Unknown refs it is the array base plus a constant
            // offset, and the dynamic index is assumed in bounds.
            const auto &globals = module.globals();
            for (std::size_t gi = 0; gi < globals.size(); ++gi) {
                const auto &g = globals[gi];
                if (info.disp >= g.address &&
                    info.disp < g.address + g.words * kWordBytes) {
                    info.object = static_cast<std::int64_t>(gi);
                    info.objectIsArray = g.words > 1;
                    break;
                }
            }
        }
    }
}

const MemRefInfo &
BlockAliasAnalysis::refInfo(std::size_t idx) const
{
    SS_ASSERT(idx < refs_.size(), "refInfo: bad index");
    return refs_[idx];
}

bool
BlockAliasAnalysis::mayAlias(std::size_t a, std::size_t b,
                             AliasLevel level) const
{
    const MemRefInfo &x = refInfo(a);
    const MemRefInfo &y = refInfo(b);
    SS_ASSERT(x.isMem && y.isMem, "mayAlias on non-memory instruction");

    if (level == AliasLevel::Conservative)
        return true;

    if (level == AliasLevel::Heroic) {
        // Hand-analysis mode: only same-base same-word conflicts.
        if (x.term == y.term) {
            std::int64_t delta = x.disp - y.disp;
            if (delta < 0)
                delta = -delta;
            return delta < kWordBytes;
        }
        return false;
    }

    if (level == AliasLevel::Arrays) {
        // Only distinct *named arrays* are separated; scalars and
        // unidentified addresses stay conservative.
        return !(x.objectIsArray && y.objectIsArray &&
                 x.object != y.object);
    }

    // Different provable regions never alias: the frame segment lives
    // above the global segment by construction (see sim/memory).
    if (x.region != MemRegion::Unknown && y.region != MemRegion::Unknown &&
        x.region != y.region)
        return false;

    // Distinct known objects never alias.
    if (x.object != -1 && y.object != -1 && x.object != y.object)
        return false;

    if (level == AliasLevel::Symbols)
        return true;

    // Careful: same symbolic term, different word => disjoint.
    if (x.term == y.term) {
        std::int64_t delta = x.disp - y.disp;
        if (delta < 0)
            delta = -delta;
        return delta < kWordBytes;
    }
    return true;
}

} // namespace ilp
