#include "ir/function.hh"

#include "support/logging.hh"

namespace ilp {

const Instr &
BasicBlock::terminator() const
{
    SS_ASSERT(!instrs.empty() && isTerminator(instrs.back().op),
              "block ", id, " has no terminator");
    return instrs.back();
}

Instr &
BasicBlock::terminator()
{
    SS_ASSERT(!instrs.empty() && isTerminator(instrs.back().op),
              "block ", id, " has no terminator");
    return instrs.back();
}

std::vector<BlockId>
BasicBlock::successors() const
{
    const Instr &t = terminator();
    switch (t.op) {
      case Opcode::Br:
        return {t.target0, t.target1};
      case Opcode::Jmp:
        return {t.target0};
      case Opcode::Ret:
        return {};
      default:
        SS_PANIC("unexpected terminator");
    }
}

BlockId
Function::addBlock(std::string label)
{
    BlockId id = static_cast<BlockId>(blocks.size());
    BasicBlock bb;
    bb.id = id;
    bb.label = label.empty() ? "bb" + std::to_string(id)
                             : std::move(label);
    blocks.push_back(std::move(bb));
    return id;
}

std::int64_t
Function::addFrameSlot(std::string name, bool is_float,
                       std::int64_t words)
{
    SS_ASSERT(words > 0, "frame slot needs at least one word");
    std::int64_t offset = frameBytes;
    frameSlots.push_back(FrameSlot{std::move(name), offset, is_float});
    frameBytes += words * kWordBytes;
    return offset;
}

std::size_t
Function::instrCount() const
{
    std::size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.instrs.size();
    return n;
}

} // namespace ilp
