/**
 * @file
 * Per-block live-in/live-out sets over virtual registers, computed by
 * the classic backwards iterative dataflow.  Used by temp register
 * assignment (live-interval construction) and by dead-code
 * elimination's cross-block safety check.
 */

#ifndef SUPERSYM_IR_LIVENESS_HH
#define SUPERSYM_IR_LIVENESS_HH

#include <vector>

#include "ir/function.hh"

namespace ilp {

class Liveness
{
  public:
    explicit Liveness(const Function &func);

    /** Registers live on entry to block `b`. */
    const std::vector<bool> &liveIn(BlockId b) const
    {
        return live_in_[b];
    }
    /** Registers live on exit from block `b`. */
    const std::vector<bool> &liveOut(BlockId b) const
    {
        return live_out_[b];
    }

    bool isLiveIn(BlockId b, Reg r) const { return live_in_[b][r]; }
    bool isLiveOut(BlockId b, Reg r) const { return live_out_[b][r]; }

    /** True if `r` is live across any block boundary. */
    bool crossesBlocks(Reg r) const;

  private:
    std::vector<std::vector<bool>> live_in_;
    std::vector<std::vector<bool>> live_out_;
};

} // namespace ilp

#endif // SUPERSYM_IR_LIVENESS_HH
