#include "ir/instr.hh"

#include "support/logging.hh"

namespace ilp {

void
Instr::forEachSrc(const std::function<void(Reg)> &fn) const
{
    if (src1 != kNoReg)
        fn(src1);
    if (src2 != kNoReg)
        fn(src2);
    for (Reg a : args)
        fn(a);
}

void
Instr::rewriteSrcs(const std::function<Reg(Reg)> &fn)
{
    if (src1 != kNoReg)
        src1 = fn(src1);
    if (src2 != kNoReg)
        src2 = fn(src2);
    for (Reg &a : args)
        a = fn(a);
}

std::vector<Reg>
Instr::srcRegs() const
{
    std::vector<Reg> out;
    forEachSrc([&](Reg r) { out.push_back(r); });
    return out;
}

bool
Instr::hasSideEffect() const
{
    return isStore(op) || isTerminator(op) || op == Opcode::Call;
}

bool
Instr::operator==(const Instr &other) const
{
    return op == other.op && dst == other.dst && src1 == other.src1 &&
           src2 == other.src2 && hasImm == other.hasImm &&
           imm == other.imm && fimm == other.fimm &&
           target0 == other.target0 && target1 == other.target1 &&
           callee == other.callee && args == other.args;
}

Instr
Instr::binary(Opcode op, Reg dst, Reg src1, Reg src2)
{
    SS_ASSERT(isBinaryAlu(op), "binary() wants a binary ALU opcode");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    return i;
}

Instr
Instr::binaryImm(Opcode op, Reg dst, Reg src1, std::int64_t imm)
{
    SS_ASSERT(isBinaryAlu(op), "binaryImm() wants a binary ALU opcode");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.hasImm = true;
    i.imm = imm;
    return i;
}

Instr
Instr::unary(Opcode op, Reg dst, Reg src1)
{
    SS_ASSERT(isUnaryAlu(op), "unary() wants a unary opcode");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    return i;
}

Instr
Instr::li(Reg dst, std::int64_t value)
{
    Instr i;
    i.op = Opcode::LiI;
    i.dst = dst;
    i.hasImm = true;
    i.imm = value;
    return i;
}

Instr
Instr::lif(Reg dst, double value)
{
    Instr i;
    i.op = Opcode::LiF;
    i.dst = dst;
    i.fimm = value;
    return i;
}

Instr
Instr::load(Opcode op, Reg dst, Reg base, std::int64_t off)
{
    SS_ASSERT(isLoad(op), "load() wants LoadW or LoadF");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src1 = base;
    i.hasImm = true;
    i.imm = off;
    return i;
}

Instr
Instr::store(Opcode op, Reg base, std::int64_t off, Reg value)
{
    SS_ASSERT(isStore(op), "store() wants StoreW or StoreF");
    Instr i;
    i.op = op;
    i.src1 = base;
    i.src2 = value;
    i.hasImm = true;
    i.imm = off;
    return i;
}

Instr
Instr::br(Reg cond, BlockId if_true, BlockId if_false)
{
    Instr i;
    i.op = Opcode::Br;
    i.src1 = cond;
    i.target0 = if_true;
    i.target1 = if_false;
    return i;
}

Instr
Instr::jmp(BlockId target)
{
    Instr i;
    i.op = Opcode::Jmp;
    i.target0 = target;
    return i;
}

Instr
Instr::call(FuncId callee, std::vector<Reg> args, Reg dst)
{
    Instr i;
    i.op = Opcode::Call;
    i.callee = callee;
    i.args = std::move(args);
    i.dst = dst;
    return i;
}

Instr
Instr::ret(Reg value)
{
    Instr i;
    i.op = Opcode::Ret;
    i.src1 = value;
    return i;
}

} // namespace ilp
