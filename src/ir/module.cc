#include "ir/module.hh"

#include "support/logging.hh"

namespace ilp {

FuncId
Module::addFunction(const std::string &name)
{
    SS_ASSERT(func_index_.find(name) == func_index_.end(),
              "duplicate function ", name);
    FuncId id = static_cast<FuncId>(funcs_.size());
    Function f;
    f.id = id;
    f.name = name;
    funcs_.push_back(std::move(f));
    func_index_[name] = id;
    return id;
}

Function &
Module::function(FuncId id)
{
    SS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < funcs_.size(),
              "bad function id ", id);
    return funcs_[id];
}

const Function &
Module::function(FuncId id) const
{
    SS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < funcs_.size(),
              "bad function id ", id);
    return funcs_[id];
}

FuncId
Module::findFunction(const std::string &name) const
{
    auto it = func_index_.find(name);
    return it == func_index_.end() ? kNoFunc : it->second;
}

std::int64_t
Module::addGlobal(const std::string &name, std::int64_t words,
                  bool is_float)
{
    SS_ASSERT(global_index_.find(name) == global_index_.end(),
              "duplicate global ", name);
    SS_ASSERT(words > 0, "global ", name, " needs at least one word");
    GlobalVar g;
    g.name = name;
    g.address = next_addr_;
    g.words = words;
    g.isFloat = is_float;
    next_addr_ += words * kWordBytes;
    global_index_[name] = globals_.size();
    globals_.push_back(std::move(g));
    return globals_.back().address;
}

void
Module::setGlobalInit(const std::string &name,
                      std::vector<std::uint64_t> init)
{
    auto it = global_index_.find(name);
    SS_ASSERT(it != global_index_.end(), "unknown global ", name);
    GlobalVar &g = globals_[it->second];
    SS_ASSERT(static_cast<std::int64_t>(init.size()) <= g.words,
              "initializer too large for ", name);
    g.init = std::move(init);
}

const GlobalVar *
Module::findGlobal(const std::string &name) const
{
    auto it = global_index_.find(name);
    return it == global_index_.end() ? nullptr : &globals_[it->second];
}

Pc
Module::assignPcs()
{
    Pc next = 0;
    for (auto &func : funcs_) {
        for (auto &bb : func.blocks) {
            for (auto &in : bb.instrs)
                in.pc = next++;
        }
    }
    pc_count_ = next;
    return next;
}

bool
Module::addressInGlobals(std::int64_t addr) const
{
    for (const auto &g : globals_) {
        if (addr >= g.address && addr < g.address + g.words * kWordBytes)
            return true;
    }
    return false;
}

} // namespace ilp
