/**
 * @file
 * A single three-address instruction of the intermediate/target code.
 *
 * The same representation is used before register allocation (operands
 * are virtual registers) and after (operands are physical registers in
 * a RegFileLayout); the `Function::allocated` flag says which.
 *
 * Operand conventions by opcode family:
 *  - binary ALU/FP:  dst <- src1 op (src2 | imm)
 *  - unary ALU/FP:   dst <- op src1
 *  - LiI / LiF:      dst <- imm / fimm
 *  - LoadW/LoadF:    dst <- mem[src1 + imm]
 *  - StoreW/StoreF:  mem[src1 + imm] <- src2
 *  - Br:             if (src1 != 0) goto target0 else goto target1
 *  - Jmp:            goto target0
 *  - Call:           dst <- call callee(args...)   (dst may be kNoReg)
 *  - Ret:            return src1                   (src1 may be kNoReg)
 */

#ifndef SUPERSYM_IR_INSTR_HH
#define SUPERSYM_IR_INSTR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/isa.hh"

namespace ilp {

/** Identifies a basic block within its function. */
using BlockId = std::int32_t;
inline constexpr BlockId kNoBlock = -1;

/** Identifies a function within its module. */
using FuncId = std::int32_t;
inline constexpr FuncId kNoFunc = -1;

/**
 * Where an instruction came from in the MT source (line/col are
 * 1-based; line 0 means "no source position" — compiler-synthesized
 * code such as jumps, spill traffic, or prologue stores).  The file
 * name is per-module (Module::sourceName), not per-instruction.
 *
 * Invariant, checked by verifySourceLocs(): optimization never
 * *invents* locations — every known loc in optimized code already
 * appeared in the front end's output for the same module.
 */
struct SrcLoc
{
    std::int32_t line = 0;
    std::int32_t col = 0;

    bool known() const { return line > 0; }

    bool operator==(const SrcLoc &o) const
    {
        return line == o.line && col == o.col;
    }
    bool operator!=(const SrcLoc &o) const { return !(*this == o); }
    bool operator<(const SrcLoc &o) const
    {
        return line != o.line ? line < o.line : col < o.col;
    }
};

struct Instr
{
    Opcode op = Opcode::Jmp;
    Reg dst = kNoReg;
    Reg src1 = kNoReg;
    Reg src2 = kNoReg;
    bool hasImm = false;
    std::int64_t imm = 0;   ///< ALU immediate or memory displacement
    double fimm = 0.0;      ///< LiF payload
    BlockId target0 = kNoBlock;
    BlockId target1 = kNoBlock;
    FuncId callee = kNoFunc;
    std::vector<Reg> args;  ///< Call arguments

    /** Source position this instruction implements (see SrcLoc).
     *  Preserved by every pass; new instructions derived from an
     *  existing one inherit its loc via at(). */
    SrcLoc loc;
    /** Static instruction id in final layout order (kNoPc until
     *  Module::assignPcs runs — the optimizer pipeline's last step). */
    Pc pc = kNoPc;

    /** The instruction class (delegates to opcodeClass). */
    InstrClass cls() const { return opcodeClass(op); }

    /** Fluent loc stamping: `Instr::li(d, 0).at(in.loc)` builds a
     *  replacement that keeps the original's source position. */
    Instr &
    at(SrcLoc l)
    {
        loc = l;
        return *this;
    }

    /** Register sources read by this instruction (excluding args). */
    void forEachSrc(const std::function<void(Reg)> &fn) const;
    /** Mutable variant: fn may rewrite each source register in place. */
    void rewriteSrcs(const std::function<Reg(Reg)> &fn);

    /** All register sources including call arguments. */
    std::vector<Reg> srcRegs() const;

    /** True if this instruction writes dst. */
    bool writesReg() const { return dst != kNoReg; }

    /**
     * True if the instruction has an effect beyond writing dst
     * (memory store, control transfer, call) and so must not be
     * removed by dead-code elimination.
     */
    bool hasSideEffect() const;

    /** Structural equality (used by tests and by local CSE keys).
     *  Deliberately ignores loc and pc: two instructions computing
     *  the same value on different source lines must still CSE. */
    bool operator==(const Instr &other) const;

    // --- Convenience factories -----------------------------------

    static Instr binary(Opcode op, Reg dst, Reg src1, Reg src2);
    static Instr binaryImm(Opcode op, Reg dst, Reg src1,
                           std::int64_t imm);
    static Instr unary(Opcode op, Reg dst, Reg src1);
    static Instr li(Reg dst, std::int64_t value);
    static Instr lif(Reg dst, double value);
    static Instr load(Opcode op, Reg dst, Reg base, std::int64_t off);
    static Instr store(Opcode op, Reg base, std::int64_t off, Reg value);
    static Instr br(Reg cond, BlockId if_true, BlockId if_false);
    static Instr jmp(BlockId target);
    static Instr call(FuncId callee, std::vector<Reg> args, Reg dst);
    static Instr ret(Reg value);
};

} // namespace ilp

#endif // SUPERSYM_IR_INSTR_HH
