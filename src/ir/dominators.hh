/**
 * @file
 * Dominator tree and natural-loop discovery over a function's CFG,
 * used by loop-invariant code motion and by the loop unroller's
 * structural checks.
 *
 * Dominators use the Cooper–Harvey–Kennedy iterative algorithm over a
 * reverse-postorder numbering.  Natural loops are found from back
 * edges (tail -> head where head dominates tail); loops sharing a
 * header are merged.
 */

#ifndef SUPERSYM_IR_DOMINATORS_HH
#define SUPERSYM_IR_DOMINATORS_HH

#include <vector>

#include "ir/function.hh"

namespace ilp {

class Dominators
{
  public:
    /** Compute dominators for `func` (blocks unreachable from entry
     *  are assigned the entry as their immediate dominator marker). */
    explicit Dominators(const Function &func);

    /** Immediate dominator of `b` (entry's idom is itself). */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** True if `a` dominates `b` (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** True if `b` is reachable from the entry block. */
    bool reachable(BlockId b) const { return rpo_index_[b] >= 0; }

    /** Reverse postorder over reachable blocks. */
    const std::vector<BlockId> &reversePostorder() const { return rpo_; }

    /** Predecessor lists (for all blocks, reachable or not). */
    const std::vector<std::vector<BlockId>> &preds() const
    {
        return preds_;
    }

  private:
    std::vector<BlockId> idom_;
    std::vector<int> rpo_index_;
    std::vector<BlockId> rpo_;
    std::vector<std::vector<BlockId>> preds_;
};

/** A natural loop: header plus the set of blocks in the loop body. */
struct NaturalLoop
{
    BlockId header = kNoBlock;
    /** All blocks in the loop, including the header. */
    std::vector<BlockId> blocks;
    /** Loop nesting depth (1 = outermost). */
    int depth = 1;

    bool contains(BlockId b) const;
};

/**
 * Find all natural loops of `func`.
 * @return Loops sorted by header id; nesting depths filled in.
 */
std::vector<NaturalLoop> findNaturalLoops(const Function &func,
                                          const Dominators &dom);

} // namespace ilp

#endif // SUPERSYM_IR_DOMINATORS_HH
