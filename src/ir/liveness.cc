#include "ir/liveness.hh"

#include "support/logging.hh"

namespace ilp {

Liveness::Liveness(const Function &func)
{
    SS_ASSERT(!func.allocated,
              "liveness runs on virtual-register code");
    const std::size_t nb = func.blocks.size();
    const std::size_t nr = func.numVirtRegs;
    live_in_.assign(nb, std::vector<bool>(nr, false));
    live_out_.assign(nb, std::vector<bool>(nr, false));

    // Per-block use (upward-exposed) and def sets.
    std::vector<std::vector<bool>> use(nb, std::vector<bool>(nr, false));
    std::vector<std::vector<bool>> def(nb, std::vector<bool>(nr, false));
    for (const auto &bb : func.blocks) {
        for (const auto &in : bb.instrs) {
            in.forEachSrc([&](Reg r) {
                if (!def[bb.id][r])
                    use[bb.id][r] = true;
            });
            if (in.dst != kNoReg)
                def[bb.id][in.dst] = true;
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate blocks in reverse layout order (approximates reverse
        // topological order; correctness doesn't depend on it).
        for (std::size_t bi = nb; bi-- > 0;) {
            const auto &bb = func.blocks[bi];
            auto &out = live_out_[bi];
            for (BlockId s : bb.successors()) {
                const auto &succ_in = live_in_[s];
                for (std::size_t r = 0; r < nr; ++r) {
                    if (succ_in[r] && !out[r]) {
                        out[r] = true;
                        changed = true;
                    }
                }
            }
            auto &in = live_in_[bi];
            for (std::size_t r = 0; r < nr; ++r) {
                bool v = use[bi][r] || (out[r] && !def[bi][r]);
                if (v != in[r]) {
                    in[r] = v;
                    changed = true;
                }
            }
        }
    }
}

bool
Liveness::crossesBlocks(Reg r) const
{
    for (std::size_t b = 0; b < live_in_.size(); ++b) {
        if (live_in_[b][r] || live_out_[b][r])
            return true;
    }
    return false;
}

} // namespace ilp
