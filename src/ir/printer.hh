/**
 * @file
 * Human-readable dumps of instructions, functions and modules, used
 * for debugging, golden tests, and the pass_pipeline example.
 */

#ifndef SUPERSYM_IR_PRINTER_HH
#define SUPERSYM_IR_PRINTER_HH

#include <string>

#include "ir/module.hh"

namespace ilp {

/** One-line rendering, e.g. "add v3 <- v1, v2" or "ld v4 <- 8(v0)". */
std::string toString(const Instr &instr);

/** Multi-line rendering of a block (label + indented instructions). */
std::string toString(const BasicBlock &block);

/** Full function listing. */
std::string toString(const Function &func);

/** Full module listing (globals, then functions). */
std::string toString(const Module &module);

} // namespace ilp

#endif // SUPERSYM_IR_PRINTER_HH
