/**
 * @file
 * Structural well-formedness checks for IR, run by tests after every
 * pass.  Catches malformed terminators, dangling block targets, bad
 * register indices, and call-graph inconsistencies.
 */

#ifndef SUPERSYM_IR_VERIFIER_HH
#define SUPERSYM_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace ilp {

/**
 * Collects problems; empty result means the IR is well formed.
 * @param module The module to verify.
 * @return Human-readable diagnostics, one per problem.
 */
std::vector<std::string> verify(const Module &module);

/** Verify one function against its owning module. */
std::vector<std::string> verify(const Module &module,
                                const Function &func);

/** Panics with the first diagnostic if verification fails. */
void verifyOrDie(const Module &module);

/** Every known SrcLoc present in `module` (sorted, deduplicated) —
 *  snapshot this on the front end's output, then check optimized code
 *  against it with verifySourceLocs. */
std::vector<SrcLoc> collectSourceLocs(const Module &module);

/**
 * Check that no instruction carries a known source location absent
 * from `allowed` (a collectSourceLocs snapshot of the unoptimized
 * module): passes may drop or copy locations, never invent them.
 * @return One diagnostic per offending instruction; empty when clean.
 */
std::vector<std::string>
verifySourceLocs(const Module &module,
                 const std::vector<SrcLoc> &allowed);

/** Panics with the first diagnostic if verifySourceLocs fails. */
void verifySourceLocsOrDie(const Module &module,
                           const std::vector<SrcLoc> &allowed);

} // namespace ilp

#endif // SUPERSYM_IR_VERIFIER_HH
