/**
 * @file
 * Structural well-formedness checks for IR, run by tests after every
 * pass.  Catches malformed terminators, dangling block targets, bad
 * register indices, and call-graph inconsistencies.
 */

#ifndef SUPERSYM_IR_VERIFIER_HH
#define SUPERSYM_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace ilp {

/**
 * Collects problems; empty result means the IR is well formed.
 * @param module The module to verify.
 * @return Human-readable diagnostics, one per problem.
 */
std::vector<std::string> verify(const Module &module);

/** Verify one function against its owning module. */
std::vector<std::string> verify(const Module &module,
                                const Function &func);

/** Panics with the first diagnostic if verification fails. */
void verifyOrDie(const Module &module);

} // namespace ilp

#endif // SUPERSYM_IR_VERIFIER_HH
