#include "ir/verifier.hh"

#include <algorithm>

#include "support/logging.hh"

namespace ilp {

namespace {

void
checkInstr(const Module &module, const Function &func,
           const BasicBlock &bb, std::size_t idx, const Instr &instr,
           std::vector<std::string> &out)
{
    auto where = [&] {
        return func.name + "/bb" + std::to_string(bb.id) + "[" +
               std::to_string(idx) + "] " + opcodeName(instr.op).data();
    };
    auto complain = [&](const std::string &what) {
        out.push_back(where() + ": " + what);
    };

    std::uint32_t reg_limit = func.allocated
        ? 0xfffffffeu // layout checked elsewhere; any value but kNoReg
        : func.numVirtRegs;

    auto check_reg = [&](Reg r, const char *role, bool required) {
        if (r == kNoReg) {
            if (required)
                complain(std::string("missing ") + role);
            return;
        }
        if (!func.allocated && r >= reg_limit)
            complain(std::string("bad ") + role + " register v" +
                     std::to_string(r));
    };

    auto check_target = [&](BlockId t, const char *role) {
        if (t < 0 || static_cast<std::size_t>(t) >= func.blocks.size())
            complain(std::string("bad ") + role + " target bb" +
                     std::to_string(t));
    };

    bool is_last = idx + 1 == bb.instrs.size();
    if (isTerminator(instr.op) && !is_last)
        complain("terminator in the middle of a block");

    switch (instr.op) {
      case Opcode::LiI:
        check_reg(instr.dst, "dst", true);
        if (!instr.hasImm)
            complain("LiI without immediate");
        break;
      case Opcode::LiF:
        check_reg(instr.dst, "dst", true);
        break;
      case Opcode::LoadW:
      case Opcode::LoadF:
        check_reg(instr.dst, "dst", true);
        check_reg(instr.src1, "base", true);
        break;
      case Opcode::StoreW:
      case Opcode::StoreF:
        check_reg(instr.src1, "base", true);
        check_reg(instr.src2, "value", true);
        break;
      case Opcode::Br:
        check_reg(instr.src1, "condition", true);
        check_target(instr.target0, "taken");
        check_target(instr.target1, "not-taken");
        break;
      case Opcode::Jmp:
        check_target(instr.target0, "jump");
        break;
      case Opcode::Call: {
        if (instr.callee < 0 ||
            static_cast<std::size_t>(instr.callee) >=
                module.functions().size()) {
            complain("bad callee f" + std::to_string(instr.callee));
            break;
        }
        const Function &callee = module.function(instr.callee);
        if (instr.args.size() != callee.paramRegs.size())
            complain("call arity " + std::to_string(instr.args.size()) +
                     " != " + std::to_string(callee.paramRegs.size()));
        for (Reg a : instr.args)
            check_reg(a, "argument", true);
        if (instr.dst != kNoReg && !callee.returnsValue)
            complain("capturing result of void function " + callee.name);
        check_reg(instr.dst, "dst", false);
        break;
      }
      case Opcode::Ret:
        if (func.returnsValue && instr.src1 == kNoReg)
            complain("value-returning function returns nothing");
        check_reg(instr.src1, "return value", false);
        break;
      default:
        if (isBinaryAlu(instr.op)) {
            check_reg(instr.dst, "dst", true);
            check_reg(instr.src1, "src1", true);
            if (!instr.hasImm)
                check_reg(instr.src2, "src2", true);
        } else if (isUnaryAlu(instr.op)) {
            check_reg(instr.dst, "dst", true);
            check_reg(instr.src1, "src1", true);
        } else {
            complain("unhandled opcode");
        }
        break;
    }
}

} // namespace

std::vector<std::string>
verify(const Module &module, const Function &func)
{
    std::vector<std::string> out;
    if (func.blocks.empty()) {
        out.push_back(func.name + ": function has no blocks");
        return out;
    }
    for (const auto &bb : func.blocks) {
        if (bb.instrs.empty() || !isTerminator(bb.instrs.back().op)) {
            out.push_back(func.name + "/bb" + std::to_string(bb.id) +
                          ": missing terminator");
        }
        for (std::size_t i = 0; i < bb.instrs.size(); ++i)
            checkInstr(module, func, bb, i, bb.instrs[i], out);
    }
    if (!func.allocated) {
        for (Reg p : func.paramRegs) {
            if (p >= func.numVirtRegs)
                out.push_back(func.name + ": bad param register v" +
                              std::to_string(p));
        }
        if (func.fpReg != kNoReg && func.fpReg >= func.numVirtRegs)
            out.push_back(func.name + ": bad fp register");
    }
    return out;
}

std::vector<std::string>
verify(const Module &module)
{
    std::vector<std::string> out;
    for (const auto &f : module.functions()) {
        auto fo = verify(module, f);
        out.insert(out.end(), fo.begin(), fo.end());
    }
    return out;
}

void
verifyOrDie(const Module &module)
{
    auto problems = verify(module);
    if (!problems.empty())
        SS_PANIC("IR verification failed: ", problems.front(),
                 " (and ", problems.size() - 1, " more)");
}

std::vector<SrcLoc>
collectSourceLocs(const Module &module)
{
    std::vector<SrcLoc> locs;
    for (const auto &func : module.functions()) {
        for (const auto &bb : func.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.loc.known())
                    locs.push_back(in.loc);
            }
        }
    }
    std::sort(locs.begin(), locs.end());
    locs.erase(std::unique(locs.begin(), locs.end()), locs.end());
    return locs;
}

std::vector<std::string>
verifySourceLocs(const Module &module,
                 const std::vector<SrcLoc> &allowed)
{
    std::vector<std::string> out;
    for (const auto &func : module.functions()) {
        for (const auto &bb : func.blocks) {
            for (const auto &in : bb.instrs) {
                if (!in.loc.known())
                    continue;
                if (!std::binary_search(allowed.begin(),
                                        allowed.end(), in.loc)) {
                    out.push_back(
                        func.name + "/bb" + std::to_string(bb.id) +
                        ": invented source location " +
                        std::to_string(in.loc.line) + ":" +
                        std::to_string(in.loc.col) + " on '" +
                        std::string(opcodeName(in.op)) + "'");
                }
            }
        }
    }
    return out;
}

void
verifySourceLocsOrDie(const Module &module,
                      const std::vector<SrcLoc> &allowed)
{
    auto problems = verifySourceLocs(module, allowed);
    if (!problems.empty())
        SS_PANIC("source-location verification failed: ",
                 problems.front(), " (and ", problems.size() - 1,
                 " more)");
}

} // namespace ilp
