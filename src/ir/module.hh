/**
 * @file
 * A Module: the unit of compilation and simulation.  Owns functions
 * and the global data segment layout.
 *
 * Globals (scalars and arrays) are assigned absolute byte addresses at
 * declaration time, starting above a reserved low page so address 0 is
 * never a valid data address.  Code materializes global addresses with
 * LiI — making address arithmetic visible as instructions, which is
 * what lets classical CSE interact with parallelism the way §4.4 of
 * the paper describes.
 */

#ifndef SUPERSYM_IR_MODULE_HH
#define SUPERSYM_IR_MODULE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hh"

namespace ilp {

/** Lowest valid global data address. */
inline constexpr std::int64_t kGlobalBase = 0x1000;

struct GlobalVar
{
    std::string name;
    std::int64_t address = 0;   ///< absolute byte address
    std::int64_t words = 1;     ///< size in words (1 for scalars)
    bool isFloat = false;
    /** Optional initializer, one entry per word (bit patterns). */
    std::vector<std::uint64_t> init;
};

class Module
{
  public:
    /** Source unit this module was compiled from ("<input>" when
     *  built programmatically); the `file` half of every SrcLoc. */
    std::string sourceName = "<input>";

    /** Create a function; returns its id. Names must be unique. */
    FuncId addFunction(const std::string &name);

    Function &function(FuncId id);
    const Function &function(FuncId id) const;
    std::vector<Function> &functions() { return funcs_; }
    const std::vector<Function> &functions() const { return funcs_; }

    /** Look up a function id by name; kNoFunc if absent. */
    FuncId findFunction(const std::string &name) const;

    /** Declare a global; returns its absolute address. */
    std::int64_t addGlobal(const std::string &name, std::int64_t words,
                           bool is_float);

    /** Set a global's initializer (word bit patterns). */
    void setGlobalInit(const std::string &name,
                       std::vector<std::uint64_t> init);

    const GlobalVar *findGlobal(const std::string &name) const;
    const std::vector<GlobalVar> &globals() const { return globals_; }

    /** One-past-the-end of the global segment (byte address). */
    std::int64_t globalEnd() const { return next_addr_; }

    /** True if `addr` falls inside some global's extent. */
    bool addressInGlobals(std::int64_t addr) const;

    /**
     * Number static instructions in layout order (function by
     * function, block by block): instr.pc becomes the profiler's key
     * for per-instruction counters.  Idempotent; called by
     * optimizeModule() after the last code-changing pass.
     * @return One past the largest assigned pc.
     */
    Pc assignPcs();

    /** One past the largest pc assignPcs() handed out (0 before). */
    Pc pcCount() const { return pc_count_; }

  private:
    std::vector<Function> funcs_;
    std::unordered_map<std::string, FuncId> func_index_;
    std::vector<GlobalVar> globals_;
    std::unordered_map<std::string, std::size_t> global_index_;
    std::int64_t next_addr_ = kGlobalBase;
    Pc pc_count_ = 0;
};

} // namespace ilp

#endif // SUPERSYM_IR_MODULE_HH
