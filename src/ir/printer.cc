#include "ir/printer.hh"

#include <sstream>

namespace ilp {

namespace {

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "-";
    return "v" + std::to_string(r);
}

} // namespace

std::string
toString(const Instr &instr)
{
    std::ostringstream os;
    os << opcodeName(instr.op);
    switch (instr.op) {
      case Opcode::LiI:
        os << " " << regName(instr.dst) << " <- #" << instr.imm;
        break;
      case Opcode::LiF:
        os << " " << regName(instr.dst) << " <- #" << instr.fimm;
        break;
      case Opcode::LoadW:
      case Opcode::LoadF:
        os << " " << regName(instr.dst) << " <- " << instr.imm << "("
           << regName(instr.src1) << ")";
        break;
      case Opcode::StoreW:
      case Opcode::StoreF:
        os << " " << instr.imm << "(" << regName(instr.src1) << ") <- "
           << regName(instr.src2);
        break;
      case Opcode::Br:
        os << " " << regName(instr.src1) << ", bb" << instr.target0
           << ", bb" << instr.target1;
        break;
      case Opcode::Jmp:
        os << " bb" << instr.target0;
        break;
      case Opcode::Call:
        if (instr.dst != kNoReg)
            os << " " << regName(instr.dst) << " <-";
        os << " f" << instr.callee << "(";
        for (std::size_t i = 0; i < instr.args.size(); ++i)
            os << (i ? ", " : "") << regName(instr.args[i]);
        os << ")";
        break;
      case Opcode::Ret:
        if (instr.src1 != kNoReg)
            os << " " << regName(instr.src1);
        break;
      default:
        // ALU forms.
        os << " " << regName(instr.dst) << " <- " << regName(instr.src1);
        if (instr.hasImm)
            os << ", #" << instr.imm;
        else if (instr.src2 != kNoReg)
            os << ", " << regName(instr.src2);
        break;
    }
    return os.str();
}

std::string
toString(const BasicBlock &block)
{
    std::ostringstream os;
    os << block.label << " (bb" << block.id << "):\n";
    for (const auto &i : block.instrs)
        os << "    " << toString(i) << "\n";
    return os.str();
}

std::string
toString(const Function &func)
{
    std::ostringstream os;
    os << "func " << func.name << " (f" << func.id << ")";
    os << " params=[";
    for (std::size_t i = 0; i < func.paramRegs.size(); ++i)
        os << (i ? ", " : "") << regName(func.paramRegs[i]);
    os << "] frame=" << func.frameBytes << "B";
    if (func.allocated)
        os << " [allocated]";
    os << "\n";
    for (const auto &bb : func.blocks)
        os << toString(bb);
    return os.str();
}

std::string
toString(const Module &module)
{
    std::ostringstream os;
    for (const auto &g : module.globals()) {
        os << "global " << g.name << " @" << g.address << " ("
           << g.words << (g.isFloat ? " fwords" : " words") << ")\n";
    }
    for (const auto &f : module.functions())
        os << toString(f);
    return os.str();
}

} // namespace ilp
