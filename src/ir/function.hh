/**
 * @file
 * Basic blocks and functions of the intermediate code.
 *
 * A Function owns a vector of BasicBlocks; BlockId is the index into
 * that vector and block 0 is the entry.  Every block ends in exactly
 * one terminator (Br/Jmp/Ret).  Block order in the vector is the
 * layout (and trace emission) order but has no fallthrough semantics.
 *
 * Storage model, mirroring the paper's compiler (§3):
 *  - Every language variable (parameter, local, global scalar) starts
 *    memory-resident: locals/params in the frame at [fp + offset],
 *    globals at absolute addresses.  Global register allocation
 *    (src/opt/regalloc) later promotes hot scalars to "home" registers.
 *  - Expression temporaries are virtual registers with short live
 *    ranges; temp register assignment maps them onto the machine's
 *    temp registers, spilling to the frame when the supply runs out.
 */

#ifndef SUPERSYM_IR_FUNCTION_HH
#define SUPERSYM_IR_FUNCTION_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instr.hh"

namespace ilp {

struct BasicBlock
{
    BlockId id = kNoBlock;
    std::string label;
    std::vector<Instr> instrs;

    /** The terminator (last instruction). Panics if malformed. */
    const Instr &terminator() const;
    Instr &terminator();

    /** Successor block ids, in (taken, fallthrough) order for Br. */
    std::vector<BlockId> successors() const;
};

/**
 * A frame slot: one word in the activation record, holding a
 * memory-resident local/param or a spill temporary.
 */
struct FrameSlot
{
    std::string name;       ///< for diagnostics and printing
    std::int64_t offset;    ///< byte offset from fp
    bool isFloat = false;
};

struct Function
{
    FuncId id = kNoFunc;
    std::string name;

    /** Virtual (or, post-allocation, physical) registers of params. */
    std::vector<Reg> paramRegs;
    std::vector<bool> paramIsFloat;
    bool returnsValue = false;
    bool returnsFloat = false;

    std::vector<BasicBlock> blocks;

    /** Number of virtual registers in use (pre-allocation). */
    std::uint32_t numVirtRegs = 0;

    /** The virtual register holding the frame pointer at entry. */
    Reg fpReg = kNoReg;

    /** Frame layout: slots for memory-resident variables and spills. */
    std::vector<FrameSlot> frameSlots;
    std::int64_t frameBytes = 0;

    /**
     * Virtual registers pinned to specific physical registers before
     * final assignment: the frame pointer and promoted "home"
     * registers (filled by allocateHomeRegisters).
     */
    std::unordered_map<Reg, Reg> pinnedRegs;

    /** True once register allocation rewrote operands to physical. */
    bool allocated = false;

    /** The register file layout used; meaningful once `allocated`. */
    RegFileLayout layout;

    /** The register holding the frame pointer in the current encoding
     *  (virtual before allocation, layout.fp() after). */
    Reg framePointer() const
    {
        return allocated ? layout.fp() : fpReg;
    }

    BasicBlock &entry() { return blocks.front(); }
    const BasicBlock &entry() const { return blocks.front(); }

    /** Append a new empty block and return its id. */
    BlockId addBlock(std::string label = "");

    /** Allocate a fresh virtual register. */
    Reg newVirtReg() { return numVirtRegs++; }

    /** Allocate a frame slot; returns its byte offset from fp. */
    std::int64_t addFrameSlot(std::string name, bool is_float,
                              std::int64_t words = 1);

    /** Total static instruction count across blocks. */
    std::size_t instrCount() const;
};

} // namespace ilp

#endif // SUPERSYM_IR_FUNCTION_HH
