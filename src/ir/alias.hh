/**
 * @file
 * Memory disambiguation for scheduling and unrolling.
 *
 * The paper's pipeline scheduler "must assume that two memory
 * locations are the same unless it can prove otherwise" (§4.4); its
 * careful-unrolling experiments additionally "analyze the stores in
 * the unrolled loop so that stores from early copies of the loop do
 * not interfere with loads in later copies."  We model that spectrum
 * with three levels:
 *
 *  - Conservative: every store conflicts with every other memory
 *    reference.
 *  - Arrays: references to provably *different named arrays* do not
 *    conflict, but anything involving a scalar home or an
 *    unidentified address stays conservative.  This is the study's
 *    default scheduler level: it reflects a compiler that knows its
 *    own array symbols while still exhibiting the paper's observation
 *    that "loads from [scalars] may appear to depend on previous
 *    stores to [array elements], because the scheduler must assume
 *    that two memory locations are the same unless it can prove
 *    otherwise" (§4.4).
 *  - Symbols: references provably to different objects (different
 *    globals, global vs. frame, different frame slots) do not
 *    conflict; references into the same array still do.
 *  - Careful: full symbolic base+displacement analysis; x[i] and
 *    x[i+1] are disjoint.  Used by careful unrolling (§4.4).
 *  - Heroic: models the paper's by-hand interprocedural alias
 *    analysis ("to do interprocedural alias analysis to determine
 *    when memory references are independent"): references are assumed
 *    independent unless they have the same symbolic base and land in
 *    the same word.  Unsound in general — exactly as trusting a
 *    hand analysis is — and validated on this suite by the checksum
 *    tests, which execute the scheduled code functionally.
 *
 * The analysis is a forward value numbering over one basic block that
 * reduces each address computation to (symbolic term, constant
 * displacement), distributing shifts/multiplications over constants so
 * that (i+1)*8 + base and i*8 + base + 8 compare equal.  Array
 * references are assumed in bounds (the standard dependence-analysis
 * assumption); the MT language has no address-of operator, so every
 * scalar's address is manifest.
 */

#ifndef SUPERSYM_IR_ALIAS_HH
#define SUPERSYM_IR_ALIAS_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"

namespace ilp {

enum class AliasLevel
{
    Conservative,
    Arrays,
    Symbols,
    Careful,
    Heroic,
};

/** Memory region an address provably lies in. */
enum class MemRegion : std::uint8_t
{
    Absolute,   ///< pure constant address (global segment)
    Frame,      ///< frame pointer + constant
    Unknown,
};

/** What we know about one memory reference's address. */
struct MemRefInfo
{
    bool isMem = false;
    MemRegion region = MemRegion::Unknown;
    /** Symbolic term id; -1 means "no symbolic part". */
    std::int32_t term = -1;
    /** Constant displacement (absolute address when term == -1). */
    std::int64_t disp = 0;
    /**
     * Object identity: >= 0 is an index into module globals; -2..-N
     * encodes a frame slot; -1 means unknown object.
     */
    std::int64_t object = -1;
    /** True if `object` names a global array (words > 1). */
    bool objectIsArray = false;
};

/**
 * Per-block address analysis.  Construct once per block, then query
 * mayAlias() for pairs of instruction indices within the block.
 */
class BlockAliasAnalysis
{
  public:
    BlockAliasAnalysis(const Module &module, const Function &func,
                       const BasicBlock &block);

    /** Address info for the instruction at `idx` in the block. */
    const MemRefInfo &refInfo(std::size_t idx) const;

    /**
     * May the two memory instructions access the same word?
     * Both indices must refer to memory instructions.
     */
    bool mayAlias(std::size_t a, std::size_t b, AliasLevel level) const;

  private:
    std::vector<MemRefInfo> refs_;
};

} // namespace ilp

#endif // SUPERSYM_IR_ALIAS_HH
