/**
 * @file
 * ssim — the command-line front door to the toolchain.
 *
 *   ssim run FILE.mt [options]     compile, simulate, report
 *   ssim ilp FILE.mt [options]     degree sweep (available parallelism)
 *   ssim profile FILE.mt [options] dynamic instruction-class mix
 *   ssim dump FILE.mt [options]    print the optimized, scheduled IR
 *   ssim suite [options]           run the built-in 8-benchmark suite
 *   ssim machines                  list predefined machine models
 *
 * Options:
 *   --machine NAME   base | ssN | spM | ssNxM | multititan | cray1 |
 *                    conflictsN          (default ss4)
 *   --level N        0..4 optimization level        (default 4)
 *   --unroll N       source-level unroll factor     (default 1)
 *   --careful        careful unrolling (reassociation + Heroic alias)
 *   --alias LEVEL    conservative|arrays|symbols|careful|heroic
 *   --temps N        expression temp registers      (default 16)
 *   --homes N        home registers                 (default 26)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "ir/printer.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace ilp;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: ssim run|ilp|profile|dump FILE.mt [options]\n"
        "       ssim suite [options]\n"
        "       ssim machines\n"
        "options: --machine NAME --level 0..4 --unroll N --careful\n"
        "         --alias conservative|arrays|symbols|careful|heroic\n"
        "         --temps N --homes N\n");
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SS_FATAL("cannot open '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

MachineConfig
parseMachine(const std::string &name)
{
    if (name == "base")
        return baseMachine();
    if (name == "multititan")
        return multiTitan();
    if (name == "cray1")
        return cray1();
    if (name.rfind("conflicts", 0) == 0)
        return superscalarWithClassConflicts(
            std::max(1, std::atoi(name.c_str() + 9)));
    if (name.rfind("ss", 0) == 0) {
        std::size_t x = name.find('x');
        if (x != std::string::npos) {
            int n = std::atoi(name.substr(2, x - 2).c_str());
            int m = std::atoi(name.substr(x + 1).c_str());
            return superpipelinedSuperscalar(std::max(1, n),
                                             std::max(1, m));
        }
        return idealSuperscalar(std::max(1, std::atoi(name.c_str() + 2)));
    }
    if (name.rfind("sp", 0) == 0)
        return superpipelined(std::max(1, std::atoi(name.c_str() + 2)));
    SS_FATAL("unknown machine '", name,
             "' (try: base ss4 sp4 ss2x2 multititan cray1 conflicts4)");
}

AliasLevel
parseAlias(const std::string &name)
{
    if (name == "conservative")
        return AliasLevel::Conservative;
    if (name == "arrays")
        return AliasLevel::Arrays;
    if (name == "symbols")
        return AliasLevel::Symbols;
    if (name == "careful")
        return AliasLevel::Careful;
    if (name == "heroic")
        return AliasLevel::Heroic;
    SS_FATAL("unknown alias level '", name, "'");
}

struct Cli
{
    std::string command;
    std::string file;
    MachineConfig machine = idealSuperscalar(4);
    CompileOptions options;
};

Cli
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Cli cli;
    cli.command = argv[1];
    cli.options.level = OptLevel::RegAlloc;
    cli.options.alias = AliasLevel::Arrays;

    int i = 2;
    if (cli.command == "run" || cli.command == "ilp" ||
        cli.command == "profile" || cli.command == "dump") {
        if (argc < 3)
            usage();
        cli.file = argv[2];
        i = 3;
    } else if (cli.command != "suite" && cli.command != "machines") {
        usage();
    }

    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--machine")
            cli.machine = parseMachine(next());
        else if (arg == "--level")
            cli.options.level = static_cast<OptLevel>(
                std::max(0, std::min(4, std::atoi(next().c_str()))));
        else if (arg == "--unroll")
            cli.options.unroll.factor =
                std::max(1, std::atoi(next().c_str()));
        else if (arg == "--careful") {
            cli.options.unroll.careful = true;
            cli.options.alias = AliasLevel::Heroic;
        } else if (arg == "--alias")
            cli.options.alias = parseAlias(next());
        else if (arg == "--temps")
            cli.options.layout.numTemp = static_cast<std::uint32_t>(
                std::max(2, std::atoi(next().c_str())));
        else if (arg == "--homes")
            cli.options.layout.numHome = static_cast<std::uint32_t>(
                std::max(0, std::atoi(next().c_str())));
        else
            usage();
    }
    return cli;
}

int
cmdRun(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    RunOutcome base = runWorkload(w, baseMachine(), cli.options);
    RunOutcome out = runWorkload(w, cli.machine, cli.options);
    std::printf("program      : %s\n", cli.file.c_str());
    std::printf("machine      : %s\n", cli.machine.name.c_str());
    std::printf("opt level    : %s\n",
                optLevelName(cli.options.level));
    std::printf("checksum     : %lld\n",
                static_cast<long long>(out.checksum));
    std::printf("instructions : %llu\n",
                static_cast<unsigned long long>(out.instructions));
    std::printf("base cycles  : %.1f\n", out.cycles);
    std::printf("instr/cycle  : %.3f\n", out.ipc());
    std::printf("speedup      : %.3f over the base machine\n",
                base.cycles / out.cycles);
    return 0;
}

int
cmdIlp(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    Study study;
    Table t("Available parallelism (ideal superscalar sweep):");
    t.setHeader({"degree", "speedup"});
    for (int d = 1; d <= 8; ++d)
        t.row()
            .cell(static_cast<long long>(d))
            .cell(study.speedup(w, idealSuperscalar(d), cli.options),
                  3);
    t.print();
    return 0;
}

int
cmdProfile(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    ClassFrequencies f = profileWorkload(w, cli.options);
    Table t("Dynamic instruction mix:");
    t.setHeader({"class", "fraction"});
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (f[c] > 0.0)
            t.row()
                .cell(std::string(
                    instrClassName(static_cast<InstrClass>(c))))
                .cell(f[c], 4);
    }
    t.print();
    std::printf("\navg degree of superpipelining: %.2f (MultiTitan), "
                "%.2f (CRAY-1)\n",
                averageDegreeOfSuperpipelining(f,
                                               multiTitan().latency),
                averageDegreeOfSuperpipelining(f, cray1().latency));
    return 0;
}

int
cmdDump(const Cli &cli)
{
    Module m = compileWorkload(readFile(cli.file), cli.machine,
                               cli.options);
    std::printf("%s", toString(m).c_str());
    return 0;
}

int
cmdSuite(const Cli &cli)
{
    Study study;
    Table t("Built-in suite on " + cli.machine.name + ":");
    t.setHeader({"benchmark", "instructions", "cycles", "instr/cycle",
                 "speedup"});
    for (const auto &w : allWorkloads()) {
        CompileOptions o = cli.options;
        o.unroll.factor =
            std::max(o.unroll.factor, w.defaultUnroll);
        RunOutcome base = runWorkload(w, baseMachine(), o);
        RunOutcome out = runWorkload(w, cli.machine, o);
        t.row()
            .cell(w.name)
            .cell(static_cast<long long>(out.instructions))
            .cell(out.cycles, 0)
            .cell(out.ipc(), 2)
            .cell(base.cycles / out.cycles, 2);
    }
    t.print();
    return 0;
}

int
cmdMachines()
{
    Table t("Predefined machine models:");
    t.setHeader({"name", "n (issue)", "m (degree)", "notes"});
    auto row = [&](const MachineConfig &m, const char *notes) {
        t.row()
            .cell(m.name)
            .cell(static_cast<long long>(m.issueWidth))
            .cell(static_cast<long long>(m.pipelineDegree))
            .cell(notes);
    };
    row(baseMachine(), "unit latencies, never stalls");
    row(idealSuperscalar(4), "ssN: N issues/cycle, no conflicts");
    row(superpipelined(4), "spM: minor cycle = 1/M base cycle");
    row(superpipelinedSuperscalar(2, 2), "ssNxM: both at once");
    row(multiTitan(), "real latencies (loads 2, FP 3)");
    row(cray1(), "real latencies (loads 11, FP ~7)");
    row(superscalarWithClassConflicts(4),
        "conflictsN: width N, one unit pool");
    row(underpipelinedHalfIssue(), "issues every other cycle");
    t.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli = parseArgs(argc, argv);
    if (cli.command == "run")
        return cmdRun(cli);
    if (cli.command == "ilp")
        return cmdIlp(cli);
    if (cli.command == "profile")
        return cmdProfile(cli);
    if (cli.command == "dump")
        return cmdDump(cli);
    if (cli.command == "suite")
        return cmdSuite(cli);
    if (cli.command == "machines")
        return cmdMachines();
    usage();
}
