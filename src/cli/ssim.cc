/**
 * @file
 * ssim — the command-line front door to the toolchain.
 *
 *   ssim run FILE.mt [options]     compile, simulate, report
 *   ssim ilp FILE.mt [options]     degree sweep (available parallelism)
 *   ssim profile FILE.mt [options] cycle profiler: per-instruction
 *                                  stall attribution mapped back to
 *                                  MT source lines (docs/profiling.md)
 *   ssim mix FILE.mt [options]     dynamic instruction-class mix
 *   ssim whatif FILE.mt [options]  analytic what-if queries from the
 *                                  dynamic dependence graph: oracle
 *                                  critical path / ILP bound, analytic
 *                                  cycles, top critical dependence
 *                                  edges (docs/whatif.md)
 *   ssim dump FILE.mt [options]    print the optimized, scheduled IR
 *   ssim suite [options]           run the built-in 8-benchmark suite
 *   ssim machines                  list predefined machine models
 *   ssim check-json FILE           validate a JSON file (exit status)
 *   ssim bench-check FILE [opts]   regression sentinel over a bench
 *                                  trajectory: newest datapoint per
 *                                  label vs a rolling baseline window
 *                                  (Mann-Whitney U + relative-median
 *                                  threshold), or --compare A B for a
 *                                  head-to-head overhead budget
 *   ssim bench-migrate FILE        rewrite a trajectory in the
 *                                  bench-v2 schema in place (legacy
 *                                  rows gain null provenance)
 *   ssim report [options]          self-contained HTML dashboard from
 *                                  the observability artifacts
 *                                  (bench trajectory, stats-json,
 *                                  metrics-json, profile-json)
 *
 * Options:
 *   --machine NAME   base | ssN | spM | ssNxM | multititan | cray1 |
 *                    conflictsN          (default ss4)
 *   --level N        0..4 optimization level        (default 4)
 *   --unroll N       source-level unroll factor     (default 1)
 *   --careful        careful unrolling (reassociation + Heroic alias)
 *   --alias LEVEL    conservative|arrays|symbols|careful|heroic
 *   --temps N        expression temp registers      (default 16)
 *   --homes N        home registers                 (default 26)
 *   --jobs N         sweep worker threads for ilp/suite
 *                    (default: SSIM_JOBS, then all cores)
 *   --trace-budget B ilp/suite: byte budget for the shared trace
 *                    cache, with optional k/m/g suffix; 0 disables
 *                    caching (default: SSIM_TRACE_BUDGET, then 2g;
 *                    see docs/parallel-sweeps.md)
 *   --keep-going     ilp/suite: a failing sweep cell is reported in
 *                    place (error code + text) while the remaining
 *                    cells still run; exit stays nonzero
 *   --prune-analytic ilp: prune-then-confirm sweep — cells the
 *                    dependence-graph predictor models exactly take
 *                    their cycles analytically; only the extremes of
 *                    the predicted ranking (plus any non-certified
 *                    cell) run the exact replay.  Output is
 *                    byte-identical to the unpruned sweep; predictor
 *                    error lands in the --stats-json meta
 *                    (docs/whatif.md)
 *   --top N          whatif: critical dependence edges shown
 *                    (default 10)
 *   --slack          profile: per-line slack / "would speed up if"
 *                    listing from the dependence graph instead of
 *                    the stall listing
 *
 * Survivability (ilp/suite; see docs/robustness.md):
 *   --cell-timeout S   cooperative per-attempt watchdog: a cell whose
 *                      simulation exceeds S seconds traps with E0410
 *                      trap-deadline-exceeded (deterministic message)
 *                      and is quarantined (deadline overruns are
 *                      permanent: the deterministic simulator would
 *                      time out again)
 *   --cell-retries N   retry transient-classed cell failures
 *                      (E0409 injected faults, E0903 memory
 *                      pressure) up to N times with exponential
 *                      backoff before quarantining
 *   --journal FILE     checkpoint every completed cell to an
 *                      append-only JSONL journal (CRC-framed lines;
 *                      a fresh sweep truncates FILE)
 *   --resume FILE      resume from a journal: verify the sweep
 *                      identity header, skip every journaled cell,
 *                      run only what is missing, and keep appending
 *                      to FILE.  Final output is byte-identical to
 *                      an uninterrupted run
 *
 * Fault injection (chaos testing): set SSIM_FAULT to a seeded plan
 * "site:kind:rate:seed[,...]" (see support/faultinject.hh); every
 * injected fault surfaces as a classified cell error, never a crash.
 *
 * Observability (see docs/observability.md):
 *   --stats            print the full stats tree after the run
 *   --stats-json FILE  write the stats tree as JSON (run/suite)
 *   --trace-events FILE  write Chrome tracing JSON: for `run`, the
 *                      compile spans + issue timeline of the single
 *                      run; for `ilp`/`suite`, the whole sweep from
 *                      the flight recorder — one timeline track per
 *                      worker thread with compile / execute / replay /
 *                      cache-wait / cell spans
 *   --trace-limit N    run: cap recorded issue events (default 100000)
 *   --metrics-json FILE  ilp/suite: write the runtime metrics
 *                      snapshot (counters, gauges, duration
 *                      histograms with p50/p90/p99) as JSON
 *   --metrics-prom FILE  ilp/suite: the same snapshot in Prometheus
 *                      text exposition format
 *   --progress         ilp/suite: live sweep progress on stderr
 *                      (cells/s, ETA, cache hit rates, utilization)
 *
 * Profiling (profile; --profile* also on run; docs/profiling.md):
 *   --profile          run: print the annotated listing after the
 *                      report (profile implies it)
 *   --profile-json FILE  write the profile as JSON (schema profile-v1)
 *   --profile-top N    hot loops / diff rows shown   (default 10)
 *   --diff A B         profile: compare machines A and B instead of
 *                      listing --machine
 *
 * Sentinel (bench-check; docs/observability.md):
 *   --window N         baseline points per label     (default 8)
 *   --min-baseline N   fewer points -> "insufficient" (default 3)
 *   --alpha A          rank-test significance level  (default 0.05)
 *   --threshold PCT    median shift that matters, %  (default 5)
 *   --compare A B      head-to-head: pooled samples of label B vs
 *                      label A instead of the trajectory sentinel
 *   --budget PCT       allowed overhead for --compare (default 2)
 *   --soft             report, but always exit 0 (CI soft guards)
 *
 * Dashboard (report):
 *   --bench FILE       bench trajectory (BENCH_*.json)
 *   --stats-in FILE    a --stats-json document (run or suite)
 *   --metrics FILE     a --metrics-json snapshot
 *   --profile-in FILE  a --profile-json document (schema profile-v1)
 *   --out FILE         output path              (default report.html)
 *   --title TEXT       page title
 *
 * Exit status (see docs/robustness.md):
 *   0  success
 *   1  compile or simulation error (malformed program, trap,
 *      failed sweep cell — even under --keep-going)
 *   2  usage error (bad flags, unknown machine, bad option value)
 */

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "core/study/journal.hh"
#include "core/study/progress.hh"
#include "core/study/sweep.hh"
#include "core/study/telemetry.hh"
#include "ir/printer.hh"
#include "sim/exec.hh"
#include "sim/trap.hh"
#include "support/bench.hh"
#include "support/buildinfo.hh"
#include "support/diag.hh"
#include "support/faultinject.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/report.hh"
#include "support/table.hh"
#include "support/trace.hh"

using namespace ilp;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: ssim run|ilp|profile|mix|whatif|dump FILE.mt "
        "[options]\n"
        "       ssim suite [options]\n"
        "       ssim machines\n"
        "       ssim check-json FILE\n"
        "       ssim bench-check FILE [--window N --min-baseline N\n"
        "                              --alpha A --threshold PCT\n"
        "                              --compare A B --budget PCT\n"
        "                              --soft]\n"
        "       ssim bench-migrate FILE\n"
        "       ssim report [--bench FILE --stats-in FILE\n"
        "                    --metrics FILE --profile-in FILE\n"
        "                    --out FILE --title TEXT --profile-top N]\n"
        "options: --machine NAME --level 0..4 --unroll N --careful\n"
        "         --alias conservative|arrays|symbols|careful|heroic\n"
        "         --temps N --homes N --jobs N --keep-going\n"
        "         --exec interp|bytecode\n"
        "         --trace-budget BYTES[k|m|g]\n"
        "         --prune-analytic --top N --slack\n"
        "         --cell-timeout SECONDS --cell-retries N\n"
        "         --journal FILE --resume FILE\n"
        "         --stats --stats-json FILE --trace-events FILE\n"
        "         --trace-limit N\n"
        "         --metrics-json FILE --metrics-prom FILE --progress\n"
        "         --profile --profile-json FILE --profile-top N\n"
        "         --diff MACHINE_A MACHINE_B\n"
        "exit status: 0 ok, 1 compile/sim error, 2 usage error\n");
    std::exit(2);
}

/** A bad flag or option value: report and exit with the usage code. */
[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "ssim: %s\n", message.c_str());
    std::exit(2);
}

/**
 * Checked integer parsing for CLI values: the whole token must be a
 * decimal integer in [lo, hi].  Anything else names the offending
 * flag and value on stderr and exits nonzero — no silent atoi()
 * clamping of garbage to a default.
 */
long
parseIntOption(const char *flag, const std::string &value, long lo,
               long hi)
{
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        errno == ERANGE || parsed < lo || parsed > hi) {
        std::fprintf(stderr,
                     "ssim: invalid value '%s' for %s (expected an "
                     "integer in [%ld, %ld])\n",
                     value.c_str(), flag, lo, hi);
        std::exit(2);
    }
    return parsed;
}

/**
 * Checked decimal parsing for CLI seconds values: the whole token
 * must be a finite non-negative decimal number.
 */
double
parseSecondsOption(const char *flag, const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        errno == ERANGE || !(parsed >= 0.0) ||
        parsed > 86400.0) {
        std::fprintf(stderr,
                     "ssim: invalid value '%s' for %s (expected "
                     "seconds in [0, 86400])\n",
                     value.c_str(), flag);
        std::exit(2);
    }
    return parsed;
}

/**
 * Checked decimal parsing for CLI rate/percent values: the whole
 * token must be a finite decimal number in [lo, hi].
 */
double
parseDoubleOption(const char *flag, const std::string &value,
                  double lo, double hi)
{
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        errno == ERANGE || !(parsed >= lo) || !(parsed <= hi)) {
        std::fprintf(stderr,
                     "ssim: invalid value '%s' for %s (expected a "
                     "number in [%g, %g])\n",
                     value.c_str(), flag, lo, hi);
        std::exit(2);
    }
    return parsed;
}

/** Checked parse of the numeric part of a machine spec (ssN, spM,
 *  ssNxM, conflictsN). */
int
parseMachineNumber(const std::string &machine, const std::string &num)
{
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(num.c_str(), &end, 10);
    if (num.empty() || end == num.c_str() || *end != '\0' ||
        errno == ERANGE || parsed < 1 || parsed > 64) {
        usageError("bad machine spec '" + machine + "': '" + num +
                   "' is not an integer in [1, 64]");
    }
    return static_cast<int>(parsed);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "ssim: error[%s]: cannot open '%s'\n",
                     errCodeId(ErrCode::IoError), path.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

MachineConfig
parseMachine(const std::string &name)
{
    if (name == "base")
        return baseMachine();
    if (name == "multititan")
        return multiTitan();
    if (name == "cray1")
        return cray1();
    if (name.rfind("conflicts", 0) == 0)
        return superscalarWithClassConflicts(
            parseMachineNumber(name, name.substr(9)));
    if (name.rfind("ss", 0) == 0) {
        std::size_t x = name.find('x');
        if (x != std::string::npos) {
            int n = parseMachineNumber(name, name.substr(2, x - 2));
            int m = parseMachineNumber(name, name.substr(x + 1));
            return superpipelinedSuperscalar(n, m);
        }
        return idealSuperscalar(parseMachineNumber(name, name.substr(2)));
    }
    if (name.rfind("sp", 0) == 0)
        return superpipelined(parseMachineNumber(name, name.substr(2)));
    usageError("unknown machine '" + name +
               "' (try: base ss4 sp4 ss2x2 multititan cray1 "
               "conflicts4)");
}

AliasLevel
parseAlias(const std::string &name)
{
    if (name == "conservative")
        return AliasLevel::Conservative;
    if (name == "arrays")
        return AliasLevel::Arrays;
    if (name == "symbols")
        return AliasLevel::Symbols;
    if (name == "careful")
        return AliasLevel::Careful;
    if (name == "heroic")
        return AliasLevel::Heroic;
    usageError("unknown alias level '" + name + "'");
}

struct Cli
{
    std::string command;
    std::string file;
    MachineConfig machine = idealSuperscalar(4);
    CompileOptions options;

    bool stats = false;
    std::string statsJsonPath;
    std::string traceEventsPath;
    std::size_t traceLimit = 100000;
    /** Runtime metrics export for ilp/suite sweeps. */
    std::string metricsJsonPath;
    std::string metricsPromPath;
    /** Live sweep progress on stderr. */
    bool progress = false;
    /** Sweep workers for ilp/suite; 0 = SSIM_JOBS, then all cores. */
    int jobs = 0;
    /** Fault-isolated sweeps: report failing cells, run the rest. */
    bool keepGoing = false;
    /** Trace-cache byte budget for ilp/suite; overrides
     *  SSIM_TRACE_BUDGET when set on the command line. */
    std::size_t traceBudget = 0;
    bool traceBudgetSet = false;

    /** Survivability policy for ilp/suite sweeps (docs/robustness.md):
     *  per-attempt watchdog budget (0 = off) and transient-error
     *  retry count. */
    double cellTimeout = 0.0;
    int cellRetries = 0;
    /** Crash-safe checkpointing: journal every completed cell here
     *  (fresh file), or resume from (and keep appending to) an
     *  existing journal. */
    std::string journalPath;
    std::string resumePath;

    CellPolicy
    cellPolicy() const
    {
        CellPolicy p;
        p.timeoutSeconds = cellTimeout;
        p.maxRetries = cellRetries;
        p.keepGoing = keepGoing;
        return p;
    }

    /** Cycle-profiler flags (docs/profiling.md). */
    bool profile = false;
    std::string profileJsonPath;
    std::size_t profileTop = 10;
    /** `ssim profile --diff A B`: machines to compare. */
    bool diffSet = false;
    MachineConfig diffA;
    MachineConfig diffB;

    /** `ssim ilp --prune-analytic`: prune-then-confirm sweep. */
    bool pruneAnalytic = false;
    /** `ssim whatif --top N`: critical edges shown. */
    std::size_t whatifTop = 10;
    /** `ssim profile --slack`: per-line slack listing. */
    bool slack = false;

    /** `ssim bench-check` knobs (docs/observability.md). */
    bench::SentinelConfig sentinel;
    bool compareSet = false;
    std::string compareA;
    std::string compareB;
    double benchBudget = 2.0; ///< --compare overhead budget, percent
    /** Report the verdict but always exit 0 (CI soft guards). */
    bool benchSoft = false;

    /** `ssim report` inputs and output. */
    std::string reportBenchPath;
    std::string reportStatsPath;
    std::string reportMetricsPath;
    std::string reportProfilePath;
    std::string reportOutPath = "report.html";
    std::string reportTitle = "supersym perf report";

    bool
    wantProfile() const
    {
        return profile || !profileJsonPath.empty();
    }

    /**
     * Telemetry derived from the flags above.  For sweeps (`sweep`
     * true), --trace-events is served by the flight recorder rather
     * than the per-run issue timeline, so it must not force stats or
     * timeline collection — traced and untraced sweeps have to stay
     * byte-identical.
     */
    RunTelemetryOptions
    telemetry(bool sweep = false) const
    {
        RunTelemetryOptions t;
        t.collectStats = stats || !statsJsonPath.empty() ||
                         (!sweep && !traceEventsPath.empty());
        if (!sweep && !traceEventsPath.empty())
            t.timelineLimit = traceLimit;
        t.collectProfile = wantProfile();
        return t;
    }
};

Cli
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Cli cli;
    cli.command = argv[1];
    cli.options.level = OptLevel::RegAlloc;
    cli.options.alias = AliasLevel::Arrays;

    int i = 2;
    if (cli.command == "run" || cli.command == "ilp" ||
        cli.command == "profile" || cli.command == "mix" ||
        cli.command == "whatif" || cli.command == "dump" ||
        cli.command == "check-json" || cli.command == "bench-check" ||
        cli.command == "bench-migrate") {
        if (argc < 3)
            usage();
        cli.file = argv[2];
        i = 3;
    } else if (cli.command != "suite" && cli.command != "machines" &&
               cli.command != "report") {
        usage();
    }

    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--machine")
            cli.machine = parseMachine(next());
        else if (arg == "--level")
            cli.options.level = static_cast<OptLevel>(
                parseIntOption("--level", next(), 0, 4));
        else if (arg == "--unroll")
            cli.options.unroll.factor = static_cast<int>(
                parseIntOption("--unroll", next(), 1, 64));
        else if (arg == "--careful") {
            cli.options.unroll.careful = true;
            cli.options.alias = AliasLevel::Heroic;
        } else if (arg == "--alias")
            cli.options.alias = parseAlias(next());
        else if (arg == "--temps")
            cli.options.layout.numTemp = static_cast<std::uint32_t>(
                parseIntOption("--temps", next(), 2, 4096));
        else if (arg == "--homes")
            cli.options.layout.numHome = static_cast<std::uint32_t>(
                parseIntOption("--homes", next(), 0, 4096));
        else if (arg == "--jobs")
            cli.jobs = static_cast<int>(
                parseIntOption("--jobs", next(), 1, 4096));
        else if (arg == "--keep-going")
            cli.keepGoing = true;
        else if (arg == "--exec") {
            const std::string value = next();
            std::optional<ExecBackend> backend =
                parseExecBackend(value);
            if (!backend)
                usageError("unknown backend '" + value +
                           "' for --exec (interp|bytecode)");
            setDefaultExecBackend(backend);
        }
        else if (arg == "--cell-timeout")
            cli.cellTimeout =
                parseSecondsOption("--cell-timeout", next());
        else if (arg == "--cell-retries")
            cli.cellRetries = static_cast<int>(
                parseIntOption("--cell-retries", next(), 0, 1000));
        else if (arg == "--journal")
            cli.journalPath = next();
        else if (arg == "--resume")
            cli.resumePath = next();
        else if (arg == "--prune-analytic")
            cli.pruneAnalytic = true;
        else if (arg == "--top")
            cli.whatifTop = static_cast<std::size_t>(
                parseIntOption("--top", next(), 1, 100000));
        else if (arg == "--slack")
            cli.slack = true;
        else if (arg == "--trace-budget") {
            const std::string value = next();
            if (!parseByteSize(value, cli.traceBudget))
                usageError("invalid value '" + value +
                           "' for --trace-budget (expected a byte "
                           "size with optional k/m/g suffix)");
            cli.traceBudgetSet = true;
        }
        else if (arg == "--profile")
            cli.profile = true;
        else if (arg == "--profile-json")
            cli.profileJsonPath = next();
        else if (arg == "--profile-top")
            cli.profileTop = static_cast<std::size_t>(parseIntOption(
                "--profile-top", next(), 1, 100000));
        else if (arg == "--diff") {
            cli.diffA = parseMachine(next());
            cli.diffB = parseMachine(next());
            cli.diffSet = true;
        }
        else if (arg == "--stats")
            cli.stats = true;
        else if (arg == "--stats-json")
            cli.statsJsonPath = next();
        else if (arg == "--trace-events")
            cli.traceEventsPath = next();
        else if (arg == "--metrics-json")
            cli.metricsJsonPath = next();
        else if (arg == "--metrics-prom")
            cli.metricsPromPath = next();
        else if (arg == "--progress")
            cli.progress = true;
        else if (arg == "--trace-limit")
            cli.traceLimit = static_cast<std::size_t>(parseIntOption(
                "--trace-limit", next(), 0, LONG_MAX));
        else if (arg == "--window")
            cli.sentinel.window = static_cast<std::size_t>(
                parseIntOption("--window", next(), 1, 100000));
        else if (arg == "--min-baseline")
            cli.sentinel.minBaseline = static_cast<std::size_t>(
                parseIntOption("--min-baseline", next(), 1, 100000));
        else if (arg == "--alpha")
            cli.sentinel.alpha =
                parseDoubleOption("--alpha", next(), 0.0, 1.0);
        else if (arg == "--threshold")
            cli.sentinel.threshold =
                parseDoubleOption("--threshold", next(), 0.0, 1000.0) /
                100.0;
        else if (arg == "--compare") {
            cli.compareA = next();
            cli.compareB = next();
            cli.compareSet = true;
        }
        else if (arg == "--budget")
            cli.benchBudget =
                parseDoubleOption("--budget", next(), 0.0, 1000.0);
        else if (arg == "--soft")
            cli.benchSoft = true;
        else if (arg == "--bench")
            cli.reportBenchPath = next();
        else if (arg == "--stats-in")
            cli.reportStatsPath = next();
        else if (arg == "--metrics")
            cli.reportMetricsPath = next();
        else if (arg == "--profile-in")
            cli.reportProfilePath = next();
        else if (arg == "--out")
            cli.reportOutPath = next();
        else if (arg == "--title")
            cli.reportTitle = next();
        else
            usage();
    }
    if (!cli.resumePath.empty() && cli.pruneAnalytic)
        usageError("--resume cannot be combined with "
                   "--prune-analytic (the pruned sweep has no "
                   "per-cell journal)");
    if (!cli.resumePath.empty() && !cli.journalPath.empty() &&
        cli.resumePath != cli.journalPath)
        usageError("--resume and --journal name different files; "
                   "--resume already appends to the journal it "
                   "resumes from");
    return cli;
}

/** Report a compile-or-simulation failure; returns exit code 1. */
int
fail(const std::string &message)
{
    std::fprintf(stderr, "ssim: %s\n", message.c_str());
    return 1;
}

/** Recursive "path  value" rendering of a stats JSON tree. */
void
printStatsTree(const Json &node, const std::string &prefix)
{
    for (const auto &[key, value] : node.asObject()) {
        std::string path = prefix.empty() ? key : prefix + "." + key;
        if (value.isObject())
            printStatsTree(value, path);
        else
            std::printf("%-48s %s\n", path.c_str(),
                        value.dump().c_str());
    }
}

/** The stats document written by --stats-json: run context plus the
 *  full snapshot. */
/** The standard provenance object for every emitted document: build
 *  info plus the machine spec hash (satellites of the profiler). */
Json
documentMeta(const MachineConfig &machine)
{
    Json meta = buildMeta();
    meta.set("machine", machine.name);
    meta.set("machine_hash", std::to_string(machine.specHash()));
    return meta;
}

Json
statsDocument(const Cli &cli, const std::string &program,
              const RunOutcome &out)
{
    Json doc = Json::object();
    doc.set("meta", documentMeta(cli.machine));
    doc.set("program", Json(program));
    doc.set("machine", Json(cli.machine.name));
    doc.set("opt_level", Json(optLevelName(cli.options.level)));
    doc.set("stats", out.stats.root);
    return doc;
}

int
cmdRun(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    RunTelemetryOptions telemetry = cli.telemetry();
    const bool want = telemetry.collectStats ||
                      telemetry.timelineLimit > 0;

    // Checked compiles: a malformed program reports every diagnostic
    // (file:line:col, stable code) and exits 1 — no fatal() abort.
    Result<Module> base_mod = compileWorkloadChecked(
        w.source, baseMachine(), cli.options, nullptr, cli.file);
    if (!base_mod.ok())
        return fail(base_mod.formatErrors());
    CompileTelemetry compile;
    Result<Module> mod = compileWorkloadChecked(
        w.source, cli.machine, cli.options, want ? &compile : nullptr,
        cli.file);
    if (!mod.ok())
        return fail(mod.formatErrors());

    RunOutcome base = runOnMachine(base_mod.value(), baseMachine());
    if (base.trapped())
        return fail(base.trap.format());
    RunOutcome out = runOnMachine(mod.value(), cli.machine, telemetry,
                                  want ? &compile : nullptr);
    if (out.trapped())
        return fail(out.trap.format());
    std::printf("program      : %s\n", cli.file.c_str());
    std::printf("machine      : %s\n", cli.machine.name.c_str());
    std::printf("opt level    : %s\n",
                optLevelName(cli.options.level));
    std::printf("checksum     : %lld\n",
                static_cast<long long>(out.checksum));
    std::printf("instructions : %llu\n",
                static_cast<unsigned long long>(out.instructions));
    std::printf("base cycles  : %.1f\n", out.cycles);
    std::printf("instr/cycle  : %.3f\n", out.ipc());
    std::printf("speedup      : %.3f over the base machine\n",
                base.cycles / out.cycles);
    if (cli.stats) {
        std::printf("\n");
        printStatsTree(out.stats.root, "");
    }
    if (!cli.statsJsonPath.empty())
        writeJsonFile(cli.statsJsonPath,
                      statsDocument(cli, cli.file, out));
    if (!cli.traceEventsPath.empty())
        writeJsonFile(cli.traceEventsPath,
                      buildTraceEvents(out, cli.machine));
    if (cli.wantProfile()) {
        prof::Profile p = prof::buildProfile(
            cli.file, cli.machine,
            prof::CodeMap::build(mod.value()), out);
        if (cli.profile)
            std::printf("\n%s",
                        prof::renderAnnotatedListing(p, w.source,
                                                     cli.profileTop)
                            .c_str());
        if (!cli.profileJsonPath.empty())
            writeJsonFile(cli.profileJsonPath, prof::toJson(p));
    }
    return 0;
}

int
cmdProfile(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    Study study(cli.jobs);
    if (cli.traceBudgetSet)
        study.traceCache().setBudget(cli.traceBudget);

    try {
        if (cli.diffSet) {
            prof::Profile a =
                study.profiledRun(w, cli.diffA, cli.options);
            prof::Profile b =
                study.profiledRun(w, cli.diffB, cli.options);
            std::printf(
                "%s", prof::renderDiff(a, b, cli.profileTop).c_str());
            if (!cli.profileJsonPath.empty()) {
                Json doc = Json::object();
                doc.set("a", prof::toJson(a));
                doc.set("b", prof::toJson(b));
                writeJsonFile(cli.profileJsonPath, doc);
            }
            return 0;
        }

        prof::Profile p =
            study.profiledRun(w, cli.machine, cli.options);
        const std::string mismatch = prof::checkReconciliation(p);
        if (!mismatch.empty())
            return fail("profile does not reconcile: " + mismatch);
        if (cli.slack) {
            // Per-line slack from the dependence graph instead of
            // the stall listing: which lines sit on the oracle
            // critical path ("would speed up if"), which have room.
            std::shared_ptr<const DepGraph> graph =
                study.dependenceGraph(w, cli.machine, cli.options);
            SlackReport slack =
                graph->slack(cli.machine, cli.profileTop);
            std::printf("%s",
                        whatif::renderSlackListing(p, slack, w.source,
                                                   cli.profileTop)
                            .c_str());
            if (!cli.profileJsonPath.empty())
                writeJsonFile(cli.profileJsonPath, prof::toJson(p));
            return 0;
        }
        std::printf("%s", prof::renderAnnotatedListing(
                              p, w.source, cli.profileTop)
                              .c_str());
        if (!cli.profileJsonPath.empty())
            writeJsonFile(cli.profileJsonPath, prof::toJson(p));
        return 0;
    } catch (const DiagException &e) {
        return fail(formatDiags(e.diags()));
    } catch (const TrapException &e) {
        return fail(e.trap().format());
    }
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    // Same temp-and-rename contract as writeJsonFile: scrapers never
    // see a torn exposition file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            SS_FATAL("cannot open '", tmp, "' for writing");
        out << text;
        out.flush();
        if (!out)
            SS_FATAL("write to '", tmp, "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        SS_FATAL("cannot rename '", tmp, "' to '", path, "'");
}

/**
 * Sweep-level observability shared by `ilp` and `suite`: a flight-
 * recorder session behind --trace-events, a live ProgressReporter
 * behind --progress, the --metrics-json / --metrics-prom exports, and
 * the metrics-vs-stats reconciliation check.  Construct before the
 * sweep; call finish() after the barrier (all workers joined).  An
 * aborted sweep (non-keep-going failure) skips finish() and writes
 * nothing, matching the other output files.
 */
class SweepObservability
{
  public:
    SweepObservability(const Cli &cli, const Study &study,
                       std::size_t totalCells)
        : cli_(cli), study_(study), expected_(totalCells)
    {
        // Metrics accumulate per process; zeroing them here makes the
        // exported snapshot (and the reconciliation check) cover
        // exactly this sweep.
        metrics::Registry::global().reset();
        if (!cli_.traceEventsPath.empty())
            trace::Recorder::instance().start();
        if (cli_.progress) {
            ProgressReporter::Config pc;
            pc.totalCells = totalCells;
            pc.jobs = study.runner().jobs();
            pc.compileCache = &study.compileCache();
            pc.traceCache = &study.traceCache();
            progress_ = std::make_unique<ProgressReporter>(pc);
        }
    }

    void
    finish()
    {
        finishImpl(nullptr);
    }

    /** Hardened-sweep variant: additionally reconciles the four
     *  survivability counters against mapHardened's totals. */
    void
    finish(const HardeningTotals &totals)
    {
        finishImpl(&totals);
    }

  private:
    void
    finishImpl(const HardeningTotals *totals)
    {
        if (progress_) {
            progress_->finish();
            progress_.reset();
        }
        if (!cli_.traceEventsPath.empty()) {
            writeJsonFile(
                cli_.traceEventsPath,
                buildSweepTraceEvents(trace::Recorder::instance().stop(),
                                      cli_.machine));
        }
        if (!cli_.metricsJsonPath.empty()) {
            Json doc = Json::object();
            doc.set("meta", documentMeta(cli_.machine));
            doc.set("metrics", metrics::Registry::global().json());
            writeJsonFile(cli_.metricsJsonPath, doc);
        }
        if (!cli_.metricsPromPath.empty()) {
            // Exposition preamble: provenance as labels, so a scraped
            // snapshot can be matched to the toolchain and machine
            // configuration that produced it.
            std::string prom;
            prom += "# HELP ssim_build_info build provenance carried "
                    "as labels\n";
            prom += "# TYPE ssim_build_info gauge\n";
            prom += std::string("ssim_build_info{version=\"") +
                    buildVersion() + "\",build=\"" + buildType() +
                    "\",machine=\"" + cli_.machine.name + "\"} 1\n";
            prom += metrics::Registry::global().prometheus();
            writeTextFile(cli_.metricsPromPath, prom);
        }
        const std::string mismatch =
            totals ? checkMetricsReconciliation(study_, expected_,
                                                *totals)
                   : checkMetricsReconciliation(study_, expected_);
        if (!mismatch.empty())
            SS_WARN("metrics do not reconcile with the stats "
                    "registry: ",
                    mismatch);
    }

    const Cli &cli_;
    const Study &study_;
    std::uint64_t expected_;
    std::unique_ptr<ProgressReporter> progress_;
};

/**
 * The crash-safe checkpoint state of one ilp/suite sweep: an
 * append-only journal writer plus whatever a --resume recovered.
 * Cells found in the journal are "skipped" (their values replay from
 * disk); the rest run and append as they complete.
 */
struct SweepJournal
{
    journal::Writer writer;
    /** Journaled cell values recovered by --resume, by cell key. */
    std::map<std::string, Json> resumed;
    /** Journal lines dropped for CRC/parse failure on load. */
    std::size_t corrupt = 0;
    bool resuming = false;

    /**
     * Open the journal named by --journal/--resume (no-op when
     * neither is given).  A fresh --journal truncates; --resume
     * loads existing cells first and verifies the sweep-identity
     * header matches `identity` byte-for-byte — a mismatched journal
     * is an error, never a silently poisoned resume.  @return false
     * with `error` filled on identity mismatch or I/O failure.
     */
    bool
    setup(const Cli &cli, const Json &identity, std::string *error)
    {
        const std::string &path =
            cli.resumePath.empty() ? cli.journalPath : cli.resumePath;
        if (path.empty())
            return true;
        bool need_header = true;
        if (!cli.resumePath.empty()) {
            resuming = true;
            journal::LoadResult lr = journal::load(path);
            // A missing journal is a legal resume (first run of a
            // retry loop): everything runs, the journal is created.
            if (lr.ok) {
                if (!lr.identity.isNull() &&
                    lr.identity.dump() != identity.dump()) {
                    *error = "journal '" + path +
                             "' was written by a different sweep "
                             "(command, program, options, or machine "
                             "changed); refusing to resume";
                    return false;
                }
                need_header = lr.identity.isNull();
                resumed = std::move(lr.cells);
                corrupt = lr.corrupt;
                if (corrupt > 0)
                    SS_WARN("journal '", path, "': dropped ", corrupt,
                            " corrupt record(s); those cells re-run");
            }
        } else {
            // A fresh --journal replaces any stale file so the
            // header that follows is the file's single identity.
            std::remove(path.c_str());
        }
        if (!writer.open(path, error))
            return false;
        if (need_header)
            writer.writeHeader(identity);
        return true;
    }
};

/** Survivability accounting for the sweep's stats-json meta block:
 *  cell totals plus (when resuming) the skipped/replayed split. */
template <typename T>
Json
sweepCellsMeta(const std::vector<CellOutcome<T>> &cells,
               const HardeningTotals &totals)
{
    std::uint64_t failed = 0;
    for (const CellOutcome<T> &c : cells)
        if (!c.ok())
            ++failed;
    Json m = Json::object();
    m.set("total", Json(static_cast<std::uint64_t>(cells.size())));
    m.set("failed", Json(failed));
    m.set("retries", Json(totals.retries));
    m.set("timeouts", Json(totals.timeouts));
    m.set("quarantined", Json(totals.quarantined));
    m.set("degraded", Json(totals.degraded));
    return m;
}

Json
sweepResumeMeta(std::size_t skipped, std::size_t replayed)
{
    Json r = Json::object();
    r.set("skipped", Json(static_cast<std::uint64_t>(skipped)));
    r.set("replayed", Json(static_cast<std::uint64_t>(replayed)));
    return r;
}

int
cmdIlp(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    // One cell per degree; the study's compile cache shares the base
    // compile, its trace cache shares the functional executions, and
    // their future-based memos keep the sweep race-free.
    Study study(cli.jobs);
    if (cli.traceBudgetSet)
        study.traceCache().setBudget(cli.traceBudget);

    std::vector<CellOutcome<double>> cells;
    HardeningTotals totals;
    SweepJournal sj;
    std::size_t ran = 0;
    Json prune;
    bool pruned = false;
    if (cli.pruneAnalytic) {
        // Prune-then-confirm: analytic prediction per degree, exact
        // replay only for the confirmation sample.  Certified
        // predictions equal the issue engine cycle-for-cycle, so the
        // table below is byte-identical to the unpruned sweep.
        SweepObservability obs(cli, study, 8);
        whatif::PruneOutcome po;
        try {
            po = whatif::prunedIlpSweep(study, w, cli.options, 8);
        } catch (const DiagException &e) {
            return fail(formatDiags(e.diags()));
        } catch (const TrapException &e) {
            return fail(e.trap().format());
        }
        obs.finish();
        cells.resize(po.cells.size());
        for (std::size_t i = 0; i < po.cells.size(); ++i)
            cells[i].value = po.cells[i].speedup;
        prune = whatif::pruneMeta(po);
        pruned = true;
    } else {
        constexpr std::size_t kDegrees = 8;
        // Stable cell keys (compile key + machine-spec hash): pure
        // functions of the sweep spec, so a resumed process derives
        // the same keys and matches them against the journal.
        std::vector<std::string> keys(kDegrees);
        for (std::size_t i = 0; i < kDegrees; ++i) {
            const MachineConfig m =
                idealSuperscalar(static_cast<int>(i) + 1);
            keys[i] = CompileCache::key(w, m, cli.options) + "|mh" +
                      std::to_string(m.specHash());
        }
        Json identity = Json::object();
        identity.set("command", Json("ilp"));
        identity.set("program", Json(cli.file));
        identity.set("source_crc",
                     Json(static_cast<std::uint64_t>(
                         journal::crc32(w.source))));
        identity.set("fingerprint",
                     Json(Study::fingerprint(w, cli.options)));
        identity.set("cells",
                     Json(static_cast<std::uint64_t>(kDegrees)));
        std::string jerr;
        if (!sj.setup(cli, identity, &jerr))
            return fail(jerr);

        cells.resize(kDegrees);
        std::vector<std::size_t> todo;
        for (std::size_t i = 0; i < kDegrees; ++i) {
            auto it = sj.resumed.find(keys[i]);
            const Json *v = it != sj.resumed.end()
                                ? it->second.find("speedup")
                                : nullptr;
            if (v && v->isNumber())
                cells[i].value = v->asNumber();
            else
                todo.push_back(i);
        }
        ran = todo.size();

        auto cell = [&](std::size_t j) {
            const std::size_t i = todo[j];
            const double speedup = study.speedup(
                w, idealSuperscalar(static_cast<int>(i) + 1),
                cli.options);
            // Checkpoint at the success point, on the worker thread:
            // a kill after this line costs nothing on resume.
            if (sj.writer.isOpen()) {
                Json value = Json::object();
                value.set("speedup", Json(speedup));
                sj.writer.writeCell(keys[i], value);
            }
            return speedup;
        };

        SweepObservability obs(cli, study, todo.size());
        HardenedSweep<double> hs;
        if (cli.keepGoing) {
            // Fault-isolated sweep: a failing degree is recorded as
            // a structured CellError while the other degrees still
            // run; transient failures retry, permanent ones are
            // quarantined.
            hs = study.runner().mapHardened<double>(
                todo.size(), cli.cellPolicy(), cell);
        } else {
            try {
                hs = study.runner().mapHardened<double>(
                    todo.size(), cli.cellPolicy(), cell);
            } catch (...) {
                return fail(currentCellError().message);
            }
        }
        for (std::size_t j = 0; j < todo.size(); ++j)
            cells[todo[j]] = hs.cells[j];
        totals = hs.totals;
        obs.finish(totals);
        sj.writer.close();
    }

    Table t("Available parallelism (ideal superscalar sweep):");
    t.setHeader({"degree", "speedup"});
    for (int d = 1; d <= 8; ++d) {
        const CellOutcome<double> &c =
            cells[static_cast<std::size_t>(d - 1)];
        t.row().cell(static_cast<long long>(d));
        if (c.ok())
            t.cell(c.value, 3);
        else
            t.cell("error[" + std::string(errCodeId(c.error.code)) +
                   "]");
    }
    t.print();

    if (!cli.statsJsonPath.empty()) {
        Json degrees = Json::array();
        for (int d = 1; d <= 8; ++d) {
            const CellOutcome<double> &c =
                cells[static_cast<std::size_t>(d - 1)];
            Json entry = Json::object();
            entry.set("degree", d);
            if (c.ok()) {
                entry.set("speedup", c.value);
            } else {
                Json err = Json::object();
                err.set("code",
                        Json(std::string(errCodeId(c.error.code))));
                err.set("message", Json(c.error.message));
                entry.set("error", std::move(err));
            }
            degrees.push(std::move(entry));
        }
        Json doc = Json::object();
        Json meta = documentMeta(cli.machine);
        if (pruned)
            meta.set("prune", std::move(prune));
        else {
            meta.set("cells", sweepCellsMeta(cells, totals));
            if (sj.resuming)
                meta.set("resume",
                         sweepResumeMeta(cells.size() - ran, ran));
        }
        doc.set("meta", std::move(meta));
        doc.set("program", Json(cli.file));
        doc.set("degrees", std::move(degrees));
        writeJsonFile(cli.statsJsonPath, doc);
    }

    int status = 0;
    for (int d = 1; d <= 8; ++d) {
        const CellOutcome<double> &c =
            cells[static_cast<std::size_t>(d - 1)];
        if (!c.ok())
            status = fail("degree " + std::to_string(d) + ": " +
                          c.error.message);
    }
    return status;
}

int
cmdWhatIf(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    Study study(cli.jobs);
    if (cli.traceBudgetSet)
        study.traceCache().setBudget(cli.traceBudget);
    try {
        whatif::Report r = whatif::analyze(
            study, w, cli.machine, cli.options, cli.whatifTop);
        std::printf("%s", whatif::render(r).c_str());
        if (!cli.statsJsonPath.empty())
            writeJsonFile(cli.statsJsonPath, whatif::toJson(r));
        return 0;
    } catch (const DiagException &e) {
        return fail(formatDiags(e.diags()));
    } catch (const TrapException &e) {
        return fail(e.trap().format());
    }
}

int
cmdMix(const Cli &cli)
{
    Workload w{cli.file, "user program", readFile(cli.file), 0, false,
               1};
    ClassFrequencies f = profileWorkload(w, cli.options);
    Table t("Dynamic instruction mix:");
    t.setHeader({"class", "fraction"});
    for (std::size_t c = 0; c < kNumInstrClasses; ++c) {
        if (f[c] > 0.0)
            t.row()
                .cell(std::string(
                    instrClassName(static_cast<InstrClass>(c))))
                .cell(f[c], 4);
    }
    t.print();
    std::printf("\navg degree of superpipelining: %.2f (MultiTitan), "
                "%.2f (CRAY-1)\n",
                averageDegreeOfSuperpipelining(f,
                                               multiTitan().latency),
                averageDegreeOfSuperpipelining(f, cray1().latency));
    return 0;
}

int
cmdDump(const Cli &cli)
{
    Result<Module> m = compileWorkloadChecked(
        readFile(cli.file), cli.machine, cli.options, nullptr,
        cli.file);
    if (!m.ok())
        return fail(m.formatErrors());
    std::printf("%s", toString(m.value()).c_str());
    return 0;
}

int
cmdSuite(const Cli &cli)
{
    Table t("Built-in suite on " + cli.machine.name + ":");
    t.setHeader({"benchmark", "instructions", "cycles", "instr/cycle",
                 "speedup"});
    Json benchmarks = Json::array();
    const bool want_json = !cli.statsJsonPath.empty();
    RunTelemetryOptions telemetry = cli.telemetry(/*sweep=*/true);

    // One cell per benchmark (base run + machine run); table rows,
    // stats dumps, and the JSON document are assembled serially from
    // the index-ordered results after the barrier, so the output is
    // byte-identical at any --jobs.  Runs go through the study so
    // compiles and functional executions are shared across cells.
    struct SuiteCell
    {
        RunOutcome base;
        RunOutcome out;
    };
    const auto &suite = allWorkloads();
    Study study(cli.jobs);
    if (cli.traceBudgetSet)
        study.traceCache().setBudget(cli.traceBudget);

    // Cell keys and journal identity, as in cmdIlp.  The identity
    // carries the stats flag because journaled cell records only
    // contain a stats tree when the sweep collected one — resuming
    // with a different telemetry shape must not mix records.
    std::vector<std::string> keys(suite.size());
    auto cellOptions = [&](std::size_t i) {
        CompileOptions o = cli.options;
        o.unroll.factor =
            std::max(o.unroll.factor, suite[i].defaultUnroll);
        return o;
    };
    for (std::size_t i = 0; i < suite.size(); ++i)
        keys[i] = CompileCache::key(suite[i], cli.machine,
                                    cellOptions(i)) +
                  "|mh" + std::to_string(cli.machine.specHash());
    Json identity = Json::object();
    identity.set("command", Json("suite"));
    identity.set("machine", Json(cli.machine.name));
    identity.set("machine_hash",
                 Json(std::to_string(cli.machine.specHash())));
    identity.set("fingerprint",
                 Json(Study::fingerprint(suite[0], cli.options)));
    identity.set("stats", Json(telemetry.collectStats));
    identity.set("cells",
                 Json(static_cast<std::uint64_t>(suite.size())));
    SweepJournal sj;
    std::string jerr;
    if (!sj.setup(cli, identity, &jerr))
        return fail(jerr);

    std::vector<CellOutcome<SuiteCell>> cells(suite.size());
    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto it = sj.resumed.find(keys[i]);
        if (it == sj.resumed.end()) {
            todo.push_back(i);
            continue;
        }
        const Json &v = it->second;
        const Json *instr = v.find("instructions");
        const Json *cyc = v.find("cycles");
        const Json *base = v.find("base_cycles");
        const Json *stats = v.find("stats");
        if (!instr || !instr->isNumber() || !cyc ||
            !cyc->isNumber() || !base || !base->isNumber() ||
            (telemetry.collectStats && !stats)) {
            todo.push_back(i); // malformed record: re-run the cell
            continue;
        }
        SuiteCell &c = cells[i].value;
        c.out.instructions =
            static_cast<std::uint64_t>(instr->asNumber());
        c.out.cycles = cyc->asNumber();
        c.base.cycles = base->asNumber();
        if (stats)
            c.out.stats.root = *stats;
    }
    const std::size_t ran = todo.size();

    auto cell = [&](std::size_t j) {
        const std::size_t i = todo[j];
        const Workload &w = suite[i];
        SuiteCell c;
        c.base = study.timedRun(w, baseMachine(), cellOptions(i));
        c.out = study.timedRun(w, cli.machine, cellOptions(i),
                               telemetry);
        if (c.base.trapped())
            throw TrapException(c.base.trap);
        if (c.out.trapped())
            throw TrapException(c.out.trap);
        if (sj.writer.isOpen()) {
            Json value = Json::object();
            value.set("instructions", Json(c.out.instructions));
            value.set("cycles", Json(c.out.cycles));
            value.set("base_cycles", Json(c.base.cycles));
            if (telemetry.collectStats)
                value.set("stats", c.out.stats.root);
            sj.writer.writeCell(keys[i], value);
        }
        return c;
    };

    SweepObservability obs(cli, study, todo.size());
    HardenedSweep<SuiteCell> hs;
    if (cli.keepGoing) {
        hs = study.runner().mapHardened<SuiteCell>(
            todo.size(), cli.cellPolicy(), cell);
    } else {
        try {
            hs = study.runner().mapHardened<SuiteCell>(
                todo.size(), cli.cellPolicy(), cell);
        } catch (...) {
            return fail(currentCellError().message);
        }
    }
    for (std::size_t j = 0; j < todo.size(); ++j)
        cells[todo[j]] = std::move(hs.cells[j]);
    obs.finish(hs.totals);
    sj.writer.close();

    int status = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &w = suite[i];
        const CellOutcome<SuiteCell> &c = cells[i];
        if (!c.ok()) {
            t.row()
                .cell(w.name)
                .cell("error[" +
                      std::string(errCodeId(c.error.code)) + "]")
                .cell("-")
                .cell("-")
                .cell("-");
            status = fail(w.name + ": " + c.error.message);
            if (want_json) {
                Json entry = Json::object();
                entry.set("name", Json(w.name));
                Json err = Json::object();
                err.set("code",
                        Json(std::string(errCodeId(c.error.code))));
                err.set("message", Json(c.error.message));
                entry.set("error", std::move(err));
                benchmarks.push(std::move(entry));
            }
            continue;
        }
        const RunOutcome &out = c.value.out;
        t.row()
            .cell(w.name)
            .cell(static_cast<long long>(out.instructions))
            .cell(out.cycles, 0)
            .cell(out.ipc(), 2)
            .cell(c.value.base.cycles / out.cycles, 2);
        if (cli.stats) {
            std::printf("--- %s ---\n", w.name.c_str());
            printStatsTree(out.stats.root, "");
        }
        if (want_json) {
            Json entry = Json::object();
            entry.set("name", Json(w.name));
            entry.set("stats", out.stats.root);
            benchmarks.push(std::move(entry));
        }
    }
    t.print();
    if (want_json) {
        Json doc = Json::object();
        Json meta = documentMeta(cli.machine);
        meta.set("cells", sweepCellsMeta(cells, hs.totals));
        if (sj.resuming)
            meta.set("resume",
                     sweepResumeMeta(cells.size() - ran, ran));
        doc.set("meta", std::move(meta));
        doc.set("machine", Json(cli.machine.name));
        doc.set("opt_level", Json(optLevelName(cli.options.level)));
        doc.set("benchmarks", std::move(benchmarks));
        writeJsonFile(cli.statsJsonPath, doc);
    }
    return status;
}

int
cmdCheckJson(const Cli &cli)
{
    Json doc;
    std::string error;
    if (!Json::tryParse(readFile(cli.file), doc, &error))
        return fail(cli.file + ": " + error);
    std::printf("%s: valid JSON (%s, %zu top-level %s)\n",
                cli.file.c_str(),
                doc.isObject()  ? "object"
                : doc.isArray() ? "array"
                                : "value",
                doc.size(),
                doc.isObject() ? "keys" : "elements");
    return 0;
}

int
cmdBenchCheck(const Cli &cli)
{
    // Soft mode is the CI guard contract inherited from the old awk
    // threshold: report everything, never fail the build — including
    // on a missing or short trajectory (first run of a fresh repo).
    auto soften = [&](const std::string &message) {
        std::fprintf(stderr, "ssim: bench-check (soft): %s\n",
                     message.c_str());
        return 0;
    };
    bench::Trajectory traj;
    std::string error;
    if (!bench::loadTrajectory(cli.file, &traj, &error))
        return cli.benchSoft ? soften(error) : fail(error);

    if (cli.compareSet) {
        bench::CompareResult r;
        if (!bench::compareLabels(traj, cli.compareA, cli.compareB,
                                  cli.benchBudget, &r, &error))
            return cli.benchSoft ? soften(error) : fail(error);
        std::printf("%s",
                    bench::renderCompare(r, cli.benchBudget).c_str());
        if (r.withinBudget)
            return 0;
        return cli.benchSoft
                   ? soften("'" + cli.compareB + "' exceeds the " +
                            cli.compareA + " budget")
                   : 1;
    }

    const std::vector<bench::LabelVerdict> rows =
        bench::sentinelCheck(traj, cli.sentinel);
    if (rows.empty())
        return cli.benchSoft
                   ? soften("no benchmark datapoints in '" + cli.file +
                            "'")
                   : fail("no benchmark datapoints in '" + cli.file +
                          "'");
    std::printf("%s",
                bench::renderVerdictTable(rows, cli.sentinel).c_str());
    if (!bench::anyRegression(rows))
        return 0;
    return cli.benchSoft ? soften("regression detected") : 1;
}

int
cmdBenchMigrate(const Cli &cli)
{
    std::string error;
    std::size_t migrated = 0;
    if (!bench::migrateTrajectory(cli.file, &error, &migrated))
        return fail(error);
    std::printf("%s: %zu row(s) rewritten in the %s schema\n",
                cli.file.c_str(), migrated, bench::kSchemaV2);
    return 0;
}

int
cmdReport(const Cli &cli)
{
    report::ReportInputs inputs;
    inputs.sentinel = cli.sentinel;
    inputs.profileTop = cli.profileTop;
    inputs.title = cli.reportTitle;

    bench::Trajectory traj;
    std::string error;
    if (!cli.reportBenchPath.empty()) {
        if (!bench::loadTrajectory(cli.reportBenchPath, &traj, &error))
            return fail(error);
        inputs.bench = &traj;
    }
    auto loadDoc = [&](const std::string &path, Json &doc) {
        if (!Json::tryParse(readFile(path), doc, &error)) {
            std::fprintf(stderr, "ssim: %s: %s\n", path.c_str(),
                         error.c_str());
            std::exit(1);
        }
    };
    Json stats;
    Json metricsDoc;
    Json profileDoc;
    if (!cli.reportStatsPath.empty()) {
        loadDoc(cli.reportStatsPath, stats);
        inputs.stats = &stats;
    }
    if (!cli.reportMetricsPath.empty()) {
        loadDoc(cli.reportMetricsPath, metricsDoc);
        inputs.metrics = &metricsDoc;
    }
    if (!cli.reportProfilePath.empty()) {
        loadDoc(cli.reportProfilePath, profileDoc);
        inputs.profile = &profileDoc;
    }
    writeTextFile(cli.reportOutPath, report::renderHtml(inputs));
    std::printf("wrote %s\n", cli.reportOutPath.c_str());
    return 0;
}

int
cmdMachines()
{
    Table t("Predefined machine models:");
    t.setHeader({"name", "n (issue)", "m (degree)", "notes"});
    auto row = [&](const MachineConfig &m, const char *notes) {
        t.row()
            .cell(m.name)
            .cell(static_cast<long long>(m.issueWidth))
            .cell(static_cast<long long>(m.pipelineDegree))
            .cell(notes);
    };
    row(baseMachine(), "unit latencies, never stalls");
    row(idealSuperscalar(4), "ssN: N issues/cycle, no conflicts");
    row(superpipelined(4), "spM: minor cycle = 1/M base cycle");
    row(superpipelinedSuperscalar(2, 2), "ssNxM: both at once");
    row(multiTitan(), "real latencies (loads 2, FP 3)");
    row(cray1(), "real latencies (loads 11, FP ~7)");
    row(superscalarWithClassConflicts(4),
        "conflictsN: width N, one unit pool");
    row(underpipelinedHalfIssue(), "issues every other cycle");
    t.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Arm chaos injection from $SSIM_FAULT before any sweep machinery
    // runs; with the variable unset every site visit is one relaxed
    // atomic load.
    fault::configureFromEnv();
    Cli cli = parseArgs(argc, argv);
    if (cli.command == "run")
        return cmdRun(cli);
    if (cli.command == "ilp")
        return cmdIlp(cli);
    if (cli.command == "profile")
        return cmdProfile(cli);
    if (cli.command == "mix")
        return cmdMix(cli);
    if (cli.command == "whatif")
        return cmdWhatIf(cli);
    if (cli.command == "dump")
        return cmdDump(cli);
    if (cli.command == "suite")
        return cmdSuite(cli);
    if (cli.command == "machines")
        return cmdMachines();
    if (cli.command == "check-json")
        return cmdCheckJson(cli);
    if (cli.command == "bench-check")
        return cmdBenchCheck(cli);
    if (cli.command == "bench-migrate")
        return cmdBenchMigrate(cli);
    if (cli.command == "report")
        return cmdReport(cli);
    usage();
}
