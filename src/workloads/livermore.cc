#include "workloads/sources.hh"

namespace ilp {

/**
 * livermore: the first 14 Livermore Fortran kernels, double
 * precision, not unrolled (the paper's default; Figure 4-6 unrolls
 * them mechanically).  Each kernel keeps its classic dependence
 * structure — in particular kernels 5, 6, and 11 are first-order
 * recurrences, the loops the paper notes "benefit little from
 * unrolling".
 */
const char *
livermoreSource()
{
    return R"MT(
// livermore -- kernels 1..14, n ~ 90, multiple passes.
var real x[1024];
var real y[1024];
var real z[1024];
var real u[1024];
var real v[1024];
var real w[1024];
var real px[512];
var real cx[512];
var real vx[256];
var real xx[256];
var real grd[256];
var int ix[256];
var int ir[256];
var real q;
var real r;
var real t;
var int seed;
var real result_fp;

func rndf() : real {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return real(seed % 20000) / 20000.0;
}

func initData() {
    var int i;
    for (i = 0; i < 1024; i = i + 1) {
        x[i] = rndf();
        y[i] = rndf();
        z[i] = rndf();
        u[i] = rndf();
        v[i] = rndf();
        w[i] = rndf();
    }
    for (i = 0; i < 512; i = i + 1) {
        px[i] = rndf();
        cx[i] = rndf();
    }
    for (i = 0; i < 256; i = i + 1) {
        vx[i] = rndf() * 64.0;
        xx[i] = rndf() * 64.0;
        grd[i] = real(i) + 0.5;
        ix[i] = seed % 64;
        ir[i] = (seed / 64) % 64;
    }
    q = 0.5;
    r = 0.25;
    t = 0.125;
}

// K1: hydro fragment.
func kernel1(int n) : real {
    var int k;
    for (k = 0; k < n; k = k + 1) {
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }
    return x[0] + x[n - 1];
}

// K2: ICCG excerpt (incomplete Cholesky, inner reduction).
func kernel2(int n) : real {
    var int k;
    var int ipntp;
    var int ipnt;
    var int ii;
    var int i;
    ii = n;
    ipntp = 0;
    while (ii > 1) {
        ipnt = ipntp;
        ipntp = ipntp + ii;
        ii = ii / 2;
        i = ipntp;
        for (k = ipnt + 1; k < ipntp; k = k + 2) {
            i = i + 1;
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
        }
    }
    return x[ipntp];
}

// K3: inner product.
func kernel3(int n) : real {
    var int k;
    var real s;
    s = 0.0;
    for (k = 0; k < n; k = k + 1) {
        s = s + z[k] * x[k];
    }
    return s;
}

// K4: banded linear equations (simplified band update).
func kernel4(int n) : real {
    var int k;
    var int j;
    var real s;
    for (j = 5; j < n; j = j + 5) {
        s = 0.0;
        for (k = 0; k < j; k = k + 1) {
            s = s + y[k] * x[j - k];
        }
        w[j] = w[j] - s * r;
    }
    return w[n - 1];
}

// K5: tridiagonal elimination, below diagonal (a recurrence).
func kernel5(int n) : real {
    var int i;
    for (i = 1; i < n; i = i + 1) {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
    return x[n - 1];
}

// K6: general linear recurrence equations.
func kernel6(int n) : real {
    var int i;
    var int k;
    var real s;
    for (i = 1; i < n; i = i + 1) {
        s = 0.0;
        for (k = 0; k < i; k = k + 1) {
            s = s + z[i * 16 % 512 + k % 16] * x[i - k - 1];
        }
        w[i] = w[i] + s * t;
    }
    return w[n - 1];
}

// K7: equation of state fragment.
func kernel7(int n) : real {
    var int k;
    for (k = 0; k < n; k = k + 1) {
        x[k] = u[k] + r * (z[k] + r * y[k])
             + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
             + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }
    return x[n - 1];
}

// K8: ADI integration (simplified two-sweep update).
func kernel8(int n) : real {
    var int k;
    for (k = 1; k < n - 1; k = k + 1) {
        v[k] = v[k] + q * (u[k - 1] + u[k + 1] - 2.0 * u[k]);
    }
    for (k = 1; k < n - 1; k = k + 1) {
        u[k] = u[k] + q * (v[k - 1] + v[k + 1] - 2.0 * v[k]);
    }
    return u[n / 2];
}

// K9: numerical integration predictors.
func kernel9(int n) : real {
    var int i;
    for (i = 0; i < n; i = i + 1) {
        px[i] = cx[i] + r * (px[i] + t * (cx[i] * 2.5
               + px[(i + 7) % 512] * 1.25))
               + q * px[(i + 3) % 512];
    }
    return px[0];
}

// K10: numerical differentiation predictors.
func kernel10(int n) : real {
    var int i;
    var real d1;
    var real d2;
    for (i = 4; i < n; i = i + 1) {
        d1 = cx[i] - cx[i - 1];
        d2 = d1 - (cx[i - 1] - cx[i - 2]);
        px[i] = px[i] + d1 * r + d2 * t
              + (cx[i - 2] - cx[i - 3]) * q;
    }
    return px[n - 1];
}

// K11: first sum, a running-total recurrence.
func kernel11(int n) : real {
    var int k;
    for (k = 1; k < n; k = k + 1) {
        x[k] = x[k - 1] + y[k];
    }
    return x[n - 1];
}

// K12: first difference.
func kernel12(int n) : real {
    var int k;
    for (k = 0; k < n; k = k + 1) {
        x[k] = y[k + 1] - y[k];
    }
    return x[n - 1];
}

// K13: 2-D particle in cell (simplified: gather/scatter + update).
func kernel13(int n) : real {
    var int ip;
    var int i1;
    var int i2;
    for (ip = 0; ip < n; ip = ip + 1) {
        i1 = ix[ip] % 64;
        i2 = ir[ip] % 64;
        vx[ip] = vx[ip] + grd[i1] - grd[i2];
        xx[ip] = xx[ip] + vx[ip] * t;
        ix[ip] = (i1 + int(xx[ip])) % 64;
        if (ix[ip] < 0) {
            ix[ip] = ix[ip] + 64;
        }
    }
    return vx[n - 1] + xx[n - 1];
}

// K14: 1-D particle in cell (simplified).
func kernel14(int n) : real {
    var int k;
    var int i;
    for (k = 0; k < n; k = k + 1) {
        i = int(vx[k]) % 256;
        if (i < 0) {
            i = i + 256;
        }
        grd[i % 256] = grd[i % 256] + xx[k] * q;
        vx[k] = vx[k] + cx[k % 512] * r;
    }
    return grd[0] + vx[n - 1];
}

func main() : int {
    var int pass;
    var real check;
    var int n;
    n = 90;
    check = 0.0;
    seed = 777771;
    initData();
    for (pass = 0; pass < 12; pass = pass + 1) {
        check = check + kernel1(n);
        check = check + kernel2(64);
        check = check + kernel3(n);
        check = check + kernel4(n);
        check = check + kernel5(n);
        check = check + kernel6(48);
        check = check + kernel7(n);
        check = check + kernel8(n);
        check = check + kernel9(n);
        check = check + kernel10(n);
        check = check + kernel11(n);
        check = check + kernel12(n);
        check = check + kernel13(n);
        check = check + kernel14(n);
    }
    result_fp = check;
    return int(check * 4096.0);
}
)MT";
}

} // namespace ilp
