#include "workloads/sources.hh"

namespace ilp {

/**
 * met: stands in for Metronome, the board-level timing verifier.  A
 * random combinational netlist is built as arrays (two inputs and a
 * delay per gate, explicit fanout lists), and an event-driven
 * worklist propagates arrival times; afterwards input arrival times
 * are perturbed and the propagation re-runs incrementally.  Dynamic
 * profile: pointer-style array chasing, a work queue, max/compare
 * logic — event-driven simulator code.
 */
const char *
metSource()
{
    return R"MT(
// met -- event-driven arrival-time propagation on a random DAG.
var int gin1[2048];
var int gin2[2048];
var int gdelay[2048];
var int arrival[2048];
// Fanout adjacency: head index per gate, then linked by fnext.
var int fhead[2048];
var int fnext[4096];
var int fdst[4096];
var int nfan;
// FIFO worklist with an in-queue flag.
var int queue[60000];
var int inq[2048];
var int seed;
var real result_fp;

func rnd(int m) : int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}

func addFanout(int src, int dst) {
    fdst[nfan] = dst;
    fnext[nfan] = fhead[src];
    fhead[src] = nfan;
    nfan = nfan + 1;
}

func buildCircuit(int ngates, int nin) {
    var int g;
    nfan = 0;
    for (g = 0; g < ngates; g = g + 1) {
        fhead[g] = -1;
        arrival[g] = 0;
        inq[g] = 0;
    }
    for (g = nin; g < ngates; g = g + 1) {
        gin1[g] = rnd(g);
        gin2[g] = rnd(g);
        gdelay[g] = 1 + rnd(9);
        addFanout(gin1[g], g);
        addFanout(gin2[g], g);
    }
}

// Worklist propagation; returns number of events processed.
func propagate(int ngates, int nin) : int {
    var int head;
    var int tail;
    var int g;
    var int e;
    var int na;
    var int a1;
    var int a2;
    var int events;
    head = 0;
    tail = 0;
    events = 0;
    for (g = nin; g < ngates; g = g + 1) {
        queue[tail] = g;
        inq[g] = 1;
        tail = tail + 1;
    }
    while (head < tail && tail < 59000) {
        g = queue[head];
        head = head + 1;
        inq[g] = 0;
        events = events + 1;
        a1 = arrival[gin1[g]];
        a2 = arrival[gin2[g]];
        if (a2 > a1) {
            na = a2 + gdelay[g];
        } else {
            na = a1 + gdelay[g];
        }
        if (na != arrival[g]) {
            arrival[g] = na;
            e = fhead[g];
            while (e >= 0) {
                if (inq[fdst[e]] == 0) {
                    queue[tail] = fdst[e];
                    inq[fdst[e]] = 1;
                    tail = tail + 1;
                }
                e = fnext[e];
            }
        }
    }
    return events;
}

func main() : int {
    var int ngates;
    var int nin;
    var int trial;
    var int g;
    var int check;
    var int events;
    ngates = 1600;
    nin = 64;
    seed = 20011;
    check = 0;
    buildCircuit(ngates, nin);
    for (trial = 0; trial < 10; trial = trial + 1) {
        // Perturb the primary input arrival times.
        for (g = 0; g < nin; g = g + 1) {
            arrival[g] = rnd(20);
        }
        events = propagate(ngates, nin);
        check = (check * 31 + events) % 1000000007;
        for (g = ngates - 8; g < ngates; g = g + 1) {
            check = (check * 31 + arrival[g]) % 1000000007;
        }
    }
    result_fp = real(check);
    return check;
}
)MT";
}

} // namespace ilp
