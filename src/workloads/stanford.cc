#include "workloads/sources.hh"

namespace ilp {

/**
 * stanford: the Hennessy benchmark collection from Stanford ("puzzle,
 * tower, queens, etc." per §3).  Implemented components: Perm
 * (recursive permutations), Towers (of Hanoi), Queens (8-queens),
 * Intmm (integer matrix multiply), Mm (real matrix multiply), Bubble
 * (bubblesort), Quick (recursive quicksort), and Trees (binary tree
 * insertion/search over array-encoded nodes).
 */
const char *
stanfordSource()
{
    return R"MT(
// stanford -- Hennessy's collection.
var int permarr[16];
var int permcount;
var int moves;
// 8-queens state.
var int qa[16];
var int qb[32];
var int qc[32];
var int qx[16];
var int qcount;
// Matrices, 20x20 flattened.
var int ima[400];
var int imb[400];
var int imr[400];
var real rma[400];
var real rmb[400];
var real rmr[400];
// Sorting.
var int sortarr[1000];
// Binary tree: node i has key tkey[i], children tl[i]/tr[i].
var int tkey[2048];
var int tl[2048];
var int tr[2048];
var int tn;
var int seed;
var real result_fp;

func rnd(int m) : int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}

// ---- Perm ----
func swap(int i, int j) {
    var int t;
    t = permarr[i];
    permarr[i] = permarr[j];
    permarr[j] = t;
}

func permute(int n) {
    var int i;
    permcount = permcount + 1;
    if (n > 1) {
        permute(n - 1);
        for (i = 0; i < n - 1; i = i + 1) {
            swap(i, n - 1);
            permute(n - 1);
            swap(i, n - 1);
        }
    }
}

func permRun() : int {
    var int i;
    for (i = 0; i < 7; i = i + 1) {
        permarr[i] = i;
    }
    permcount = 0;
    permute(7);
    return permcount;
}

// ---- Towers ----
func hanoi(int n, int from, int to, int via) {
    if (n > 0) {
        hanoi(n - 1, from, via, to);
        moves = moves + 1;
        hanoi(n - 1, via, to, from);
    }
}

func towersRun() : int {
    moves = 0;
    hanoi(12, 0, 2, 1);
    return moves;
}

// ---- Queens ----
func tryQueen(int col, int n) {
    var int row;
    for (row = 0; row < n; row = row + 1) {
        if (qa[row] == 0 && qb[row + col] == 0
            && qc[row - col + n - 1] == 0) {
            qa[row] = 1;
            qb[row + col] = 1;
            qc[row - col + n - 1] = 1;
            qx[col] = row;
            if (col + 1 == n) {
                qcount = qcount + 1;
            } else {
                tryQueen(col + 1, n);
            }
            qa[row] = 0;
            qb[row + col] = 0;
            qc[row - col + n - 1] = 0;
        }
    }
}

func queensRun() : int {
    var int i;
    for (i = 0; i < 16; i = i + 1) {
        qa[i] = 0;
        qx[i] = 0;
    }
    for (i = 0; i < 32; i = i + 1) {
        qb[i] = 0;
        qc[i] = 0;
    }
    qcount = 0;
    tryQueen(0, 8);
    return qcount;
}

// ---- Intmm ----
func intmmRun() : int {
    var int i;
    var int j;
    var int k;
    var int s;
    for (i = 0; i < 400; i = i + 1) {
        ima[i] = rnd(100) - 50;
        imb[i] = rnd(100) - 50;
    }
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            s = 0;
            for (k = 0; k < 20; k = k + 1) {
                s = s + ima[i * 20 + k] * imb[k * 20 + j];
            }
            imr[i * 20 + j] = s;
        }
    }
    return imr[0] + imr[210] + imr[399];
}

// ---- Mm (real) ----
func mmRun() : real {
    var int i;
    var int j;
    var int k;
    var real s;
    for (i = 0; i < 400; i = i + 1) {
        rma[i] = real(rnd(1000)) / 1000.0 - 0.5;
        rmb[i] = real(rnd(1000)) / 1000.0 - 0.5;
    }
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            s = 0.0;
            for (k = 0; k < 20; k = k + 1) {
                s = s + rma[i * 20 + k] * rmb[k * 20 + j];
            }
            rmr[i * 20 + j] = s;
        }
    }
    return rmr[0] + rmr[210] + rmr[399];
}

// ---- Bubble ----
func bubbleRun() : int {
    var int i;
    var int j;
    var int t;
    var int n;
    n = 250;
    for (i = 0; i < n; i = i + 1) {
        sortarr[i] = rnd(100000);
    }
    for (i = 0; i < n - 1; i = i + 1) {
        for (j = 0; j < n - 1 - i; j = j + 1) {
            if (sortarr[j] > sortarr[j + 1]) {
                t = sortarr[j];
                sortarr[j] = sortarr[j + 1];
                sortarr[j + 1] = t;
            }
        }
    }
    return sortarr[0] + sortarr[n / 2] + sortarr[n - 1];
}

// ---- Quick ----
func quicksort(int lo, int hi) {
    var int i;
    var int j;
    var int p;
    var int t;
    i = lo;
    j = hi;
    p = sortarr[(lo + hi) / 2];
    while (i <= j) {
        while (sortarr[i] < p) {
            i = i + 1;
        }
        while (sortarr[j] > p) {
            j = j - 1;
        }
        if (i <= j) {
            t = sortarr[i];
            sortarr[i] = sortarr[j];
            sortarr[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    if (lo < j) {
        quicksort(lo, j);
    }
    if (i < hi) {
        quicksort(i, hi);
    }
}

func quickRun() : int {
    var int i;
    var int n;
    n = 800;
    for (i = 0; i < n; i = i + 1) {
        sortarr[i] = rnd(100000);
    }
    quicksort(0, n - 1);
    return sortarr[0] + sortarr[n / 2] + sortarr[n - 1];
}

// ---- Trees ----
func treeInsert(int key) {
    var int cur;
    var int done;
    tkey[tn] = key;
    tl[tn] = -1;
    tr[tn] = -1;
    if (tn == 0) {
        tn = 1;
        return;
    }
    cur = 0;
    done = 0;
    while (done == 0) {
        if (key < tkey[cur]) {
            if (tl[cur] < 0) {
                tl[cur] = tn;
                done = 1;
            } else {
                cur = tl[cur];
            }
        } else {
            if (tr[cur] < 0) {
                tr[cur] = tn;
                done = 1;
            } else {
                cur = tr[cur];
            }
        }
    }
    tn = tn + 1;
}

func treeSearch(int key) : int {
    var int cur;
    var int depth;
    cur = 0;
    depth = 0;
    while (cur >= 0 && depth < 64) {
        if (tkey[cur] == key) {
            return depth;
        }
        if (key < tkey[cur]) {
            cur = tl[cur];
        } else {
            cur = tr[cur];
        }
        depth = depth + 1;
    }
    return -1;
}

func treesRun() : int {
    var int i;
    var int hits;
    var int k;
    tn = 0;
    for (i = 0; i < 1500; i = i + 1) {
        treeInsert(rnd(1000000));
    }
    hits = 0;
    for (i = 0; i < 1500; i = i + 1) {
        k = treeSearch(rnd(1000000));
        if (k >= 0) {
            hits = hits + k;
        }
    }
    return tn + hits;
}

func main() : int {
    var int check;
    var real fcheck;
    seed = 74755;
    check = 0;
    check = (check * 31 + permRun()) % 1000000007;
    check = (check * 31 + towersRun()) % 1000000007;
    check = (check * 31 + queensRun()) % 1000000007;
    check = (check * 31 + intmmRun()) % 1000000007;
    fcheck = mmRun();
    check = (check * 31 + int(fcheck * 1024.0)) % 1000000007;
    check = (check * 31 + bubbleRun()) % 1000000007;
    check = (check * 31 + quickRun()) % 1000000007;
    check = (check * 31 + treesRun()) % 1000000007;
    result_fp = real(check) + fcheck;
    return check;
}
)MT";
}

} // namespace ilp
