#include "workloads/workloads.hh"

#include "support/logging.hh"
#include "workloads/sources.hh"

namespace ilp {

const std::vector<Workload> &
allWorkloads()
{
    // Expected checksums are the reference interpreter's outputs at
    // OptLevel::None; tests/workloads_test.cc asserts every
    // optimization level reproduces them bit-for-bit.
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> w;
        w.push_back({"ccom",
                     "recursive-descent expression compiler + "
                     "stack-code evaluator",
                     ccomSource(), 721446570, false, 1});
        w.push_back({"grr",
                     "Lee wavefront PC-board router on a 64x64 grid",
                     grrSource(), 351841626, false, 1});
        w.push_back({"linpack",
                     "double-precision dgefa/dgesl, n=32 "
                     "(inner loops unrolled 4x by default)",
                     linpackSource(), -716049, true, 4});
        w.push_back({"livermore",
                     "the first 14 Livermore loops, double precision, "
                     "not unrolled",
                     livermoreSource(), 723059883845817728, true, 1});
        w.push_back({"met",
                     "event-driven gate arrival-time verifier "
                     "(Metronome analogue)",
                     metSource(), 320861011, false, 1});
        w.push_back({"stanford",
                     "Hennessy's collection: perm, towers, queens, "
                     "intmm, mm, bubble, quick, trees",
                     stanfordSource(), 393352647, true, 1});
        w.push_back({"whet",
                     "Whetstone with in-language polynomial math "
                     "kernels",
                     whetSource(), 1041909, true, 1});
        w.push_back({"yacc",
                     "table-driven SLR parser over generated "
                     "expression sentences",
                     yaccSource(), 57245071, false, 1});
        return w;
    }();
    return suite;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    SS_FATAL("unknown workload '", name, "'");
}

} // namespace ilp
