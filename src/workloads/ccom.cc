#include "workloads/sources.hh"

namespace ilp {

/**
 * ccom: stands in for the paper's C compiler front end.  A random
 * expression generator produces token streams; a recursive-descent
 * parser compiles them to stack code; a stack machine evaluates the
 * code.  Dynamic profile: integer ALU, array/table traffic, heavy
 * branching, real recursion — the "slightly parallel" regime.
 */
const char *
ccomSource()
{
    return R"MT(
// ccom -- recursive-descent expression compiler + stack evaluator.
// Token kinds: 0 number, 1 '+', 2 '-', 3 '*', 4 '(', 5 ')', 6 end.
var int toks[30000];
var int tvals[30000];
var int ntoks;
var int pos;
// Stack code: op 0 push-literal, 1 add, 2 sub, 3 mul-mod.
var int code[60000];
var int cargs[60000];
var int ncode;
var int stack[4000];
var int seed;
var real result_fp;

func rnd(int m) : int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}

func emitTok(int kind, int val) {
    if (ntoks < 29990) {
        toks[ntoks] = kind;
        tvals[ntoks] = val;
        ntoks = ntoks + 1;
    }
}

func genFactor(int depth) {
    if (depth <= 0 || rnd(100) < 65) {
        emitTok(0, rnd(1000));
    } else {
        emitTok(4, 0);
        genExpr(depth - 1);
        emitTok(5, 0);
    }
}

func genTerm(int depth) {
    genFactor(depth);
    while (rnd(100) < 35 && ntoks < 25000) {
        emitTok(3, 0);
        genFactor(depth);
    }
}

func genExpr(int depth) {
    genTerm(depth);
    while (rnd(100) < 45 && ntoks < 25000) {
        if (rnd(2) == 0) {
            emitTok(1, 0);
        } else {
            emitTok(2, 0);
        }
        genTerm(depth);
    }
}

func emitCode(int op, int a) {
    code[ncode] = op;
    cargs[ncode] = a;
    ncode = ncode + 1;
}

func parseFactor() {
    if (toks[pos] == 0) {
        emitCode(0, tvals[pos]);
        pos = pos + 1;
    } else {
        pos = pos + 1;     // '('
        parseExpr();
        pos = pos + 1;     // ')'
    }
}

func parseTerm() {
    parseFactor();
    while (toks[pos] == 3) {
        pos = pos + 1;
        parseFactor();
        emitCode(3, 0);
    }
}

func parseExpr() {
    var int op;
    parseTerm();
    while (toks[pos] == 1 || toks[pos] == 2) {
        op = toks[pos];
        pos = pos + 1;
        parseTerm();
        emitCode(op, 0);
    }
}

func evalCode() : int {
    var int sp;
    var int i;
    var int a;
    var int b;
    var int op;
    sp = 0;
    for (i = 0; i < ncode; i = i + 1) {
        op = code[i];
        if (op == 0) {
            stack[sp] = cargs[i];
            sp = sp + 1;
        } else {
            b = stack[sp - 1];
            a = stack[sp - 2];
            sp = sp - 1;
            if (op == 1) {
                stack[sp - 1] = a + b;
            } else {
                if (op == 2) {
                    stack[sp - 1] = a - b;
                } else {
                    stack[sp - 1] = (a * b) % 65536;
                }
            }
        }
    }
    return stack[0];
}

func main() : int {
    var int iter;
    var int check;
    var int v;
    seed = 123457;
    check = 0;
    for (iter = 0; iter < 160; iter = iter + 1) {
        ntoks = 0;
        pos = 0;
        ncode = 0;
        genExpr(5);
        emitTok(6, 0);
        parseExpr();
        v = evalCode();
        check = (check * 31 + v + ncode) % 1000000007;
    }
    result_fp = real(check);
    return check;
}
)MT";
}

} // namespace ilp
