#include "workloads/sources.hh"

namespace ilp {

/**
 * grr: stands in for the paper's PC board router.  A Lee-style
 * breadth-first wavefront router on a 64x64 grid with random
 * obstacles: expand a wave from source to target, backtrace the path,
 * and commit it as new obstacles for subsequent nets.  Dynamic
 * profile: queue and grid array traffic, short dependent chains,
 * dense branching.
 */
const char *
grrSource()
{
    return R"MT(
// grr -- Lee wavefront maze router, 64x64 grid.
var int grid[4096];     // 0 free, 1 blocked
var int dist[4096];
var int queue[20000];
var int seed;
var real result_fp;

func rnd(int m) : int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}

// BFS wave from src; returns path length to dst or -1.
func route(int src, int dst) : int {
    var int head;
    var int tail;
    var int i;
    var int c;
    var int d;
    var int row;
    var int col;
    for (i = 0; i < 4096; i = i + 1) {
        dist[i] = 0 - 1;
    }
    head = 0;
    tail = 0;
    queue[tail] = src;
    tail = tail + 1;
    dist[src] = 0;
    while (head < tail) {
        c = queue[head];
        head = head + 1;
        if (c == dst) {
            return dist[c];
        }
        d = dist[c] + 1;
        row = c / 64;
        col = c % 64;
        if (col > 0 && grid[c - 1] == 0 && dist[c - 1] < 0) {
            dist[c - 1] = d;
            queue[tail] = c - 1;
            tail = tail + 1;
        }
        if (col < 63 && grid[c + 1] == 0 && dist[c + 1] < 0) {
            dist[c + 1] = d;
            queue[tail] = c + 1;
            tail = tail + 1;
        }
        if (row > 0 && grid[c - 64] == 0 && dist[c - 64] < 0) {
            dist[c - 64] = d;
            queue[tail] = c - 64;
            tail = tail + 1;
        }
        if (row < 63 && grid[c + 64] == 0 && dist[c + 64] < 0) {
            dist[c + 64] = d;
            queue[tail] = c + 64;
            tail = tail + 1;
        }
        if (tail > 19000) {
            return 0 - 1;
        }
    }
    return 0 - 1;
}

// Walk back from dst along decreasing distance, blocking the path.
func backtrace(int src, int dst) : int {
    var int c;
    var int want;
    var int row;
    var int col;
    var int next;
    var int cells;
    c = dst;
    cells = 0;
    while (c != src && cells < 4096) {
        grid[c] = 1;
        cells = cells + 1;
        want = dist[c] - 1;
        row = c / 64;
        col = c % 64;
        next = c;
        if (col > 0 && dist[c - 1] == want) {
            next = c - 1;
        } else {
            if (col < 63 && dist[c + 1] == want) {
                next = c + 1;
            } else {
                if (row > 0 && dist[c - 64] == want) {
                    next = c - 64;
                } else {
                    if (row < 63 && dist[c + 64] == want) {
                        next = c + 64;
                    }
                }
            }
        }
        if (next == c) {
            return cells;
        }
        c = next;
    }
    grid[src] = 1;
    return cells;
}

func main() : int {
    var int i;
    var int net;
    var int src;
    var int dst;
    var int len;
    var int check;
    var int routed;
    seed = 424243;
    check = 0;
    routed = 0;
    // Sprinkle obstacles over ~18% of the board.
    for (i = 0; i < 4096; i = i + 1) {
        if (rnd(100) < 18) {
            grid[i] = 1;
        } else {
            grid[i] = 0;
        }
    }
    for (net = 0; net < 24; net = net + 1) {
        src = rnd(4096);
        dst = rnd(4096);
        if (grid[src] == 0 && grid[dst] == 0 && src != dst) {
            len = route(src, dst);
            if (len > 0) {
                routed = routed + 1;
                check = (check * 31 + len + backtrace(src, dst))
                        % 1000000007;
            }
        }
    }
    check = (check * 31 + routed) % 1000000007;
    result_fp = real(check);
    return check;
}
)MT";
}

} // namespace ilp
