#include "workloads/sources.hh"

namespace ilp {

/**
 * linpack: double-precision LU factorization and solve (dgefa/dgesl)
 * on a 64x64 system, column-major in a flat array, with daxpy and
 * idamax inner kernels.  The paper runs the official Linpack whose
 * inner loops are unrolled 4x; here the daxpy loop is written rolled
 * and the study harness applies the mechanized 4x unroll by default
 * (Workload::defaultUnroll), and sweeps other factors for Fig 4-6.
 */
const char *
linpackSource()
{
    return R"MT(
// linpack -- dgefa/dgesl, n=64, column-major a[col*n + row].
var real a[4096];
var real b[64];
var real x[64];
var int ipvt[64];
var int seed;
var real result_fp;

func rndf() : real {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return real(seed % 20000) / 10000.0 - 1.0;
}

// y[yoff+i] += t * x[xoff+i]  for i in [lo,hi)  (the daxpy kernel)
func daxpy(int lo, int hi, real t, int xoff, int yoff) {
    var int i;
    for (i = lo; i < hi; i = i + 1) {
        a[yoff + i] = a[yoff + i] + t * a[xoff + i];
    }
}

// index of max |a[off+i]| for i in [lo,hi)
func idamax(int lo, int hi, int off) : int {
    var int i;
    var int im;
    var real vm;
    var real v;
    im = lo;
    vm = a[off + lo];
    if (vm < 0.0) {
        vm = -vm;
    }
    for (i = lo + 1; i < hi; i = i + 1) {
        v = a[off + i];
        if (v < 0.0) {
            v = -v;
        }
        if (v > vm) {
            vm = v;
            im = i;
        }
    }
    return im;
}

// LU factorization with partial pivoting; returns 0 on success.
func dgefa() : int {
    var int n;
    var int k;
    var int j;
    var int p;
    var real t;
    var real pivot;
    var int kcol;
    var int jcol;
    n = 64;
    for (k = 0; k < n - 1; k = k + 1) {
        kcol = k * n;
        p = idamax(k, n, kcol);
        ipvt[k] = p;
        pivot = a[kcol + p];
        if (pivot == 0.0) {
            return 1;
        }
        // Swap pivot row element in column k.
        if (p != k) {
            t = a[kcol + p];
            a[kcol + p] = a[kcol + k];
            a[kcol + k] = t;
        }
        // Scale the multipliers.
        t = -1.0 / a[kcol + k];
        j = k + 1;
        while (j < n) {
            a[kcol + j] = a[kcol + j] * t;
            j = j + 1;
        }
        // Eliminate: column updates via daxpy.
        for (j = k + 1; j < n; j = j + 1) {
            jcol = j * n;
            t = a[jcol + p];
            if (p != k) {
                a[jcol + p] = a[jcol + k];
                a[jcol + k] = t;
            }
            daxpy(k + 1, n, t, kcol, jcol);
        }
    }
    ipvt[n - 1] = n - 1;
    return 0;
}

// Solve L U x = b using the factors (forward + back substitution).
func dgesl() {
    var int n;
    var int k;
    var int i;
    var int p;
    var real t;
    n = 64;
    for (i = 0; i < n; i = i + 1) {
        x[i] = b[i];
    }
    // Forward.
    for (k = 0; k < n - 1; k = k + 1) {
        p = ipvt[k];
        t = x[p];
        if (p != k) {
            x[p] = x[k];
            x[k] = t;
        }
        for (i = k + 1; i < n; i = i + 1) {
            x[i] = x[i] + t * a[k * 64 + i];
        }
    }
    // Back substitution.
    k = n - 1;
    while (k >= 0) {
        x[k] = x[k] / a[k * 64 + k];
        t = -x[k];
        for (i = 0; i < k; i = i + 1) {
            x[i] = x[i] + t * a[k * 64 + i];
        }
        k = k - 1;
    }
}

func main() : int {
    var int rep;
    var int i;
    var int j;
    var real sum;
    var real check;
    var int r;
    check = 0.0;
    seed = 987651;
    for (rep = 0; rep < 2; rep = rep + 1) {
        // Fresh well-conditioned-ish random matrix and rhs.
        for (j = 0; j < 64; j = j + 1) {
            for (i = 0; i < 64; i = i + 1) {
                a[j * 64 + i] = rndf();
                if (i == j) {
                    a[j * 64 + i] = a[j * 64 + i] + 8.0;
                }
            }
            b[j] = rndf();
        }
        r = dgefa();
        if (r == 0) {
            dgesl();
            sum = 0.0;
            for (i = 0; i < 64; i = i + 1) {
                sum = sum + x[i];
            }
            check = check + sum;
        }
    }
    result_fp = check;
    return int(check * 1048576.0);
}
)MT";
}

} // namespace ilp
