#include "workloads/sources.hh"

namespace ilp {

/**
 * yacc: stands in for the Unix parser generator's generated-parser
 * workload — a table-driven SLR shift/reduce parser for the textbook
 * expression grammar
 *
 *   E -> E + T | T ;  T -> T * F | F ;  F -> ( E ) | id
 *
 * with the standard 12-state ACTION/GOTO tables encoded as data, a
 * random sentence generator, and semantic evaluation on reduce.
 * Dynamic profile: table lookups, stack pushes/pops, branch-dense
 * dispatch — the least instruction-level parallelism in the suite,
 * exactly as the paper reports for yacc.
 */
const char *
yaccSource()
{
    return R"MT(
// yacc -- table-driven SLR(1) parser for E -> E+T | T, ...
// Terminals: 0 id, 1 '+', 2 '*', 3 '(', 4 ')', 5 '$'.
// ACTION encoding: 0 error, 100+s shift to s, 200+p reduce by p,
// 999 accept.  Productions: 1 E->E+T  2 E->T  3 T->T*F  4 T->F
// 5 F->(E)  6 F->id.
var int action[72] = {
    105,   0,   0, 104,   0,   0,    // state 0
      0, 106,   0,   0,   0, 999,    // state 1
      0, 202, 107,   0, 202, 202,    // state 2
      0, 204, 204,   0, 204, 204,    // state 3
    105,   0,   0, 104,   0,   0,    // state 4
      0, 206, 206,   0, 206, 206,    // state 5
    105,   0,   0, 104,   0,   0,    // state 6
    105,   0,   0, 104,   0,   0,    // state 7
      0, 106,   0,   0, 111,   0,    // state 8
      0, 201, 107,   0, 201, 201,    // state 9
      0, 203, 203,   0, 203, 203,    // state 10
      0, 205, 205,   0, 205, 205     // state 11
};
// GOTO[state*3 + nt], nt: 0 E, 1 T, 2 F; -1 = none.
var int goton[36] = {
     1,  2,  3,
    -1, -1, -1,
    -1, -1, -1,
    -1, -1, -1,
     8,  2,  3,
    -1, -1, -1,
    -1,  9,  3,
    -1, -1, 10,
    -1, -1, -1,
    -1, -1, -1,
    -1, -1, -1,
    -1, -1, -1
};
// Production lengths and left-hand sides (nt index).
var int prodlen[7] = { 0, 3, 1, 3, 1, 3, 1 };
var int prodlhs[7] = { 0, 0, 0, 1, 1, 2, 2 };

var int toks[20000];
var int tvals[20000];
var int ntoks;
var int sstack[512];
var int vstack[512];
var int seed;
var real result_fp;

func rnd(int m) : int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}

func emitTok(int kind, int val) {
    if (ntoks < 19990) {
        toks[ntoks] = kind;
        tvals[ntoks] = val;
        ntoks = ntoks + 1;
    }
}

// Random sentence generation from the grammar.
func genF(int depth) {
    if (depth <= 0 || rnd(100) < 70) {
        emitTok(0, rnd(1000));
    } else {
        emitTok(3, 0);
        genE(depth - 1);
        emitTok(4, 0);
    }
}

func genT(int depth) {
    genF(depth);
    while (rnd(100) < 30 && ntoks < 18000) {
        emitTok(2, 0);
        genF(depth);
    }
}

func genE(int depth) {
    genT(depth);
    while (rnd(100) < 40 && ntoks < 18000) {
        emitTok(1, 0);
        genT(depth);
    }
}

// The LR driver: parse toks[0..ntoks), returning the value of the
// accepted expression (or -1 on error).
func parse() : int {
    var int sp;
    var int pos;
    var int state;
    var int tok;
    var int act;
    var int p;
    var int len;
    var int val;
    var int g;
    sp = 0;
    sstack[0] = 0;
    vstack[0] = 0;
    pos = 0;
    while (1 == 1) {
        state = sstack[sp];
        tok = toks[pos];
        act = action[state * 6 + tok];
        if (act == 999) {
            return vstack[sp];
        }
        if (act >= 200) {
            // Reduce.
            p = act - 200;
            len = prodlen[p];
            // Semantic action.
            if (p == 1) {
                val = (vstack[sp - 2] + vstack[sp]) % 1000003;
            } else {
                if (p == 3) {
                    val = (vstack[sp - 2] * vstack[sp]) % 1000003;
                } else {
                    if (p == 5) {
                        val = vstack[sp - 1];
                    } else {
                        val = vstack[sp];
                    }
                }
            }
            sp = sp - len;
            g = goton[sstack[sp] * 3 + prodlhs[p]];
            if (g < 0) {
                return -1;
            }
            sp = sp + 1;
            sstack[sp] = g;
            vstack[sp] = val;
        } else {
            if (act >= 100) {
                // Shift.
                sp = sp + 1;
                sstack[sp] = act - 100;
                vstack[sp] = tvals[pos];
                pos = pos + 1;
            } else {
                return -1;
            }
        }
    }
    return -1;
}

func main() : int {
    var int iter;
    var int check;
    var int v;
    seed = 55555;
    check = 0;
    for (iter = 0; iter < 260; iter = iter + 1) {
        ntoks = 0;
        genE(5);
        emitTok(5, 0);
        v = parse();
        check = (check * 31 + v + ntoks) % 1000000007;
    }
    result_fp = real(check);
    return check;
}
)MT";
}

} // namespace ilp
