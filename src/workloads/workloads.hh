/**
 * @file
 * The benchmark suite of Section 3, rewritten in the MT language.
 *
 * The paper's eight benchmarks (all Modula-2 except yacc):
 *   ccom      - their C compiler front end
 *   grr       - a PC board router
 *   linpack   - double-precision Linpack, inner loops unrolled 4x
 *   livermore - the first 14 Livermore loops, not unrolled
 *   met       - Metronome, a board-level timing verifier
 *   stanford  - Hennessy's Stanford collection (puzzle, tower, queens…)
 *   whet      - Whetstones
 *   yacc      - the Unix parser generator
 *
 * Each is rebuilt here as a kernel-level analogue with the same
 * dynamic character (see DESIGN.md §1 "Substitutions"): ccom is a
 * recursive-descent expression compiler plus stack-code evaluator,
 * grr a Lee-style wavefront maze router, met an event-driven gate
 * arrival-time verifier, yacc a table-driven shift/reduce parser, and
 * the numeric three are direct transliterations of the classic
 * kernels.
 *
 * Every program defines `func main() : int` returning an integer
 * checksum, and stores a floating checksum in global `result_fp`
 * where meaningful (used with tolerance when reassociation legally
 * perturbs FP results).
 */

#ifndef SUPERSYM_WORKLOADS_WORKLOADS_HH
#define SUPERSYM_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ilp {

struct Workload
{
    std::string name;
    std::string description;
    /** MT program text. */
    std::string source;
    /**
     * Expected main() checksum under every Figure 4-8 level
     * (optimization must not change results).  Filled from the
     * reference interpreter; guarded by tests/workloads_test.cc.
     */
    std::int64_t expected = 0;
    /**
     * True if the benchmark has floating-point accumulations whose
     * checksum legally changes under careful-unrolling reassociation.
     */
    bool fpSensitive = false;
    /** Default source-level unroll factor, matching the paper
     *  ("linpack ... unrolled 4x unless noted otherwise"). */
    int defaultUnroll = 1;
};

/** The eight benchmarks, in the paper's order. */
const std::vector<Workload> &allWorkloads();

/** Look up one benchmark; fatal() if unknown. */
const Workload &workloadByName(const std::string &name);

} // namespace ilp

#endif // SUPERSYM_WORKLOADS_WORKLOADS_HH
