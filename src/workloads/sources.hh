/**
 * @file
 * MT source text of each benchmark (one translation unit per
 * benchmark; see workloads.hh for the catalogue).
 */

#ifndef SUPERSYM_WORKLOADS_SOURCES_HH
#define SUPERSYM_WORKLOADS_SOURCES_HH

namespace ilp {

const char *ccomSource();
const char *grrSource();
const char *linpackSource();
const char *livermoreSource();
const char *metSource();
const char *stanfordSource();
const char *whetSource();
const char *yaccSource();

} // namespace ilp

#endif // SUPERSYM_WORKLOADS_SOURCES_HH
