#include "workloads/sources.hh"

namespace ilp {

/**
 * whet: Whetstone.  The classic module structure — array-element
 * arithmetic, conditional jumps, integer arithmetic, "trig" and
 * "standard function" modules, procedure-call module — with the
 * transcendental library replaced by in-language polynomial
 * approximations and a Newton square root (so every FP operation is
 * visible to the compiler and simulator, and the call-heavy profile
 * of the original is preserved).
 */
const char *
whetSource()
{
    return R"MT(
// whet -- Whetstone with in-language math kernels.
var real e1[8];
var real gt;
var real gt1;
var real gt2;
var int gj;
var real result_fp;

// sin(x) ~ x - x^3/6 + x^5/120 - x^7/5040, |x| small.
func psin(real x) : real {
    var real x2;
    x2 = x * x;
    return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0
                * (1.0 - x2 / 42.0)));
}

func pcos(real x) : real {
    var real x2;
    x2 = x * x;
    return 1.0 - x2 / 2.0 * (1.0 - x2 / 12.0 * (1.0 - x2 / 30.0));
}

// atan via the |x|<=1 series, range-reduced with
// atan(x) = pi/2 - atan(1/x) for |x| > 1.
func patanSmall(real x) : real {
    var real x2;
    x2 = x * x;
    return x * (1.0 - x2 / 3.0 + x2 * x2 / 5.0
                - x2 * x2 * x2 / 7.0 + x2 * x2 * x2 * x2 / 9.0);
}

func patan(real x) : real {
    var real s;
    s = 1.0;
    if (x < 0.0) {
        x = -x;
        s = -1.0;
    }
    if (x > 1.0) {
        return s * (1.5707963268 - patanSmall(1.0 / x));
    }
    return s * patanSmall(x);
}

func pexp(real x) : real {
    return 1.0 + x * (1.0 + x / 2.0 * (1.0 + x / 3.0
                      * (1.0 + x / 4.0 * (1.0 + x / 5.0))));
}

func plog(real x) : real {
    var real y;
    var real y2;
    y = (x - 1.0) / (x + 1.0);
    y2 = y * y;
    return 2.0 * y * (1.0 + y2 / 3.0 + y2 * y2 / 5.0
                      + y2 * y2 * y2 / 7.0);
}

func psqrt(real x) : real {
    var real g;
    var int i;
    if (x <= 0.0) {
        return 0.0;
    }
    g = x;
    if (g > 1.0) {
        g = g / 2.0;
    }
    for (i = 0; i < 5; i = i + 1) {
        g = 0.5 * (g + x / g);
    }
    return g;
}

// Module 8 procedure: the classic p3.
func p3(real x, real y) : real {
    var real xt;
    var real yt;
    xt = gt * (x + y);
    yt = gt * (xt + y);
    return (xt + yt) / gt2;
}

// Module 6 procedure: pa on the e1 array.
func pa(int off) {
    var int j;
    j = 0;
    while (j < 6) {
        e1[off + 0] = (e1[off + 0] + e1[off + 1]
                      + e1[off + 2] - e1[off + 3]) * gt;
        e1[off + 1] = (e1[off + 0] + e1[off + 1]
                      - e1[off + 2] + e1[off + 3]) * gt;
        e1[off + 2] = (e1[off + 0] - e1[off + 1]
                      + e1[off + 2] + e1[off + 3]) * gt;
        e1[off + 3] = (0.0 - e1[off + 0] + e1[off + 1]
                      + e1[off + 2] + e1[off + 3]) / gt2;
        j = j + 1;
    }
}

func main() : int {
    var int n1; var int n2; var int n3; var int n4;
    var int n6; var int n7; var int n8; var int n10; var int n11;
    var int i;
    var int ix;
    var real x;
    var real y;
    var real z;
    var real x1; var real x2; var real x3; var real x4;
    var real check;

    gt = 0.499975;
    gt1 = 0.50025;
    gt2 = 2.0;
    // Loop counts, scaled from the classic weights.
    n1 = 120; n2 = 840; n3 = 600; n4 = 2000;
    n6 = 600; n7 = 320; n8 = 700; n10 = 0; n11 = 600;
    check = 0.0;

    // Module 1: simple identifiers.
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 0; i < n1; i = i + 1) {
        x1 = (x1 + x2 + x3 - x4) * gt;
        x2 = (x1 + x2 - x3 + x4) * gt;
        x3 = (x1 - x2 + x3 + x4) * gt;
        x4 = (0.0 - x1 + x2 + x3 + x4) * gt;
    }
    check = check + x1 + x2 + x3 + x4;

    // Module 2: array elements.
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < n2; i = i + 1) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * gt;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * gt;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * gt;
        e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) * gt;
    }
    check = check + e1[0] + e1[1] + e1[2] + e1[3];

    // Module 3: array as parameter (procedure on the global array).
    for (i = 0; i < n3; i = i + 1) {
        pa(0);
    }
    check = check + e1[0] + e1[3];

    // Module 4: conditional jumps.
    gj = 1;
    for (i = 0; i < n4; i = i + 1) {
        if (gj == 1) {
            gj = 2;
        } else {
            gj = 3;
        }
        if (gj > 2) {
            gj = 0;
        } else {
            gj = 1;
        }
        if (gj < 1) {
            gj = 1;
        } else {
            gj = 0;
        }
    }
    check = check + real(gj);

    // Module 6: integer arithmetic.
    gj = 1;
    ix = 2;
    for (i = 0; i < n6; i = i + 1) {
        gj = gj * (ix - gj) * (3 - ix + gj) % 1024;
        if (gj < 0) {
            gj = 0 - gj;
        }
        ix = (ix + gj + 7) % 97 + 1;
        e1[gj % 4] = real(gj + ix);
    }
    check = check + real(ix + gj);

    // Module 7: "trig" functions.
    x = 0.5;
    y = 0.5;
    for (i = 0; i < n7; i = i + 1) {
        x = gt * patan(gt2 * psin(x) * pcos(x)
            / (pcos(x + y) + pcos(x - y) - 1.0));
        y = gt * patan(gt2 * psin(y) * pcos(y)
            / (pcos(x + y) + pcos(x - y) - 1.0));
    }
    check = check + x + y;

    // Module 8: procedure calls.
    x = 1.0;
    y = 1.0;
    z = 1.0;
    for (i = 0; i < n8; i = i + 1) {
        z = p3(x, y);
    }
    check = check + z;

    // Module 11: standard functions.
    x = 0.75;
    for (i = 0; i < n11; i = i + 1) {
        x = psqrt(pexp(plog(x) / gt1));
    }
    check = check + x;

    result_fp = check;
    return int(check * 65536.0);
}
)MT";
}

} // namespace ilp
