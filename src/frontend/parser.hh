/**
 * @file
 * Recursive-descent parser for the MT language.
 *
 * Grammar sketch (see tests/frontend/parser_test.cc for examples):
 *
 *   program    := (globalDecl | funcDecl)*
 *   globalDecl := "var" type IDENT ("[" INT "]")? ("=" init)? ";"
 *   funcDecl   := "func" IDENT "(" params? ")" (":" type)? block
 *   stmt       := localDecl | assign | if | while | for | return
 *               | break | continue | block | exprStmt
 *   for        := "for" "(" IDENT "=" expr ";" expr ";"
 *                 IDENT "=" expr ")" stmt
 *   expr       := precedence climbing over || && | ^ & == != < <= > >=
 *                 << >> + - * / % with C-like binding; unary - !;
 *                 int(e) / real(e) casts.
 *
 * Arrays may only be declared at global scope (Modula-2 style data
 * layout; simplifies the frame model — see DESIGN.md).
 *
 * Syntax errors are recorded as structured diagnostics and the parser
 * re-synchronizes at statement boundaries, so one compile reports
 * multiple independent errors.  parseProgramChecked() is the
 * recoverable entry point; parseProgram() keeps the historical
 * fatal()-on-error contract for the CLI edge.
 */

#ifndef SUPERSYM_FRONTEND_PARSER_HH
#define SUPERSYM_FRONTEND_PARSER_HH

#include <string>

#include "frontend/ast.hh"
#include "support/diag.hh"

namespace ilp {

/**
 * Parse a whole program, reporting all syntax errors.  On any error
 * the Result is a failure carrying every diagnostic collected before
 * the parser gave up (at most the DiagEngine error limit).
 *
 * @param source Program text.
 * @param unit   Name used in diagnostics.
 */
Result<Program> parseProgramChecked(const std::string &source,
                                    const std::string &unit = "<input>");

/**
 * Parse a whole program.  Syntax errors are reported via fatal()
 * (FatalError in throw-mode) with line/column info.  Thin wrapper
 * over parseProgramChecked() for callers that cannot recover.
 *
 * @param source Program text.
 * @param unit   Name used in diagnostics.
 */
Program parseProgram(const std::string &source,
                     const std::string &unit = "<input>");

} // namespace ilp

#endif // SUPERSYM_FRONTEND_PARSER_HH
