#include "frontend/ast.hh"

#include "support/logging.hh"

namespace ilp {

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->intValue = intValue;
    e->realValue = realValue;
    e->name = name;
    e->binOp = binOp;
    e->unOp = unOp;
    e->castTo = castTo;
    e->line = line;
    e->col = col;
    if (lhs)
        e->lhs = lhs->clone();
    if (rhs)
        e->rhs = rhs->clone();
    e->args.reserve(args.size());
    for (const auto &a : args)
        e->args.push_back(a->clone());
    return e;
}

ExprPtr
Expr::intLit(std::int64_t v)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::IntLit;
    e->intValue = v;
    return e;
}

ExprPtr
Expr::realLit(double v)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::RealLit;
    e->realValue = v;
    return e;
}

ExprPtr
Expr::var(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Var;
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::index(std::string name, ExprPtr idx)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Index;
    e->name = std::move(name);
    e->lhs = std::move(idx);
    return e;
}

ExprPtr
Expr::unary(UnOp op, ExprPtr inner)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->unOp = op;
    e->lhs = std::move(inner);
    return e;
}

ExprPtr
Expr::binary(BinOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->binOp = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
}

ExprPtr
Expr::call(std::string name, std::vector<ExprPtr> args)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Call;
    e->name = std::move(name);
    e->args = std::move(args);
    return e;
}

ExprPtr
Expr::cast(MtType to, ExprPtr inner)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Cast;
    e->castTo = to;
    e->lhs = std::move(inner);
    return e;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->declType = declType;
    s->name = name;
    s->line = line;
    s->col = col;
    if (indexExpr)
        s->indexExpr = indexExpr->clone();
    if (value)
        s->value = value->clone();
    if (cond)
        s->cond = cond->clone();
    if (thenStmt)
        s->thenStmt = thenStmt->clone();
    if (elseStmt)
        s->elseStmt = elseStmt->clone();
    if (initExpr)
        s->initExpr = initExpr->clone();
    if (stepExpr)
        s->stepExpr = stepExpr->clone();
    s->body.reserve(body.size());
    for (const auto &b : body)
        s->body.push_back(b->clone());
    return s;
}

StmtPtr
Stmt::varDecl(MtType type, std::string name, ExprPtr init)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::VarDecl;
    s->declType = type;
    s->name = std::move(name);
    s->value = std::move(init);
    return s;
}

StmtPtr
Stmt::assign(std::string name, ExprPtr index, ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->name = std::move(name);
    s->indexExpr = std::move(index);
    s->value = std::move(value);
    return s;
}

StmtPtr
Stmt::ifStmt(ExprPtr cond, StmtPtr then_s, StmtPtr else_s)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::If;
    s->cond = std::move(cond);
    s->thenStmt = std::move(then_s);
    s->elseStmt = std::move(else_s);
    return s;
}

StmtPtr
Stmt::whileStmt(ExprPtr cond, StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::While;
    s->cond = std::move(cond);
    s->elseStmt = std::move(body);
    return s;
}

StmtPtr
Stmt::forStmt(std::string var, ExprPtr init, ExprPtr cond, ExprPtr step,
              StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::For;
    s->name = std::move(var);
    s->initExpr = std::move(init);
    s->cond = std::move(cond);
    s->stepExpr = std::move(step);
    s->elseStmt = std::move(body);
    return s;
}

StmtPtr
Stmt::block(std::vector<StmtPtr> stmts)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Block;
    s->body = std::move(stmts);
    return s;
}

StmtPtr
Stmt::returnStmt(ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Return;
    s->value = std::move(value);
    return s;
}

StmtPtr
Stmt::exprStmt(ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::ExprStmt;
    s->value = std::move(value);
    return s;
}

StmtPtr
Stmt::breakStmt()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Break;
    return s;
}

StmtPtr
Stmt::continueStmt()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Continue;
    return s;
}

ExprPtr
substituteVar(ExprPtr e, const std::string &name, const Expr &replacement)
{
    if (!e)
        return nullptr;
    if (e->kind == ExprKind::Var && e->name == name)
        return replacement.clone();
    if (e->lhs)
        e->lhs = substituteVar(std::move(e->lhs), name, replacement);
    if (e->rhs)
        e->rhs = substituteVar(std::move(e->rhs), name, replacement);
    for (auto &a : e->args)
        a = substituteVar(std::move(a), name, replacement);
    return e;
}

StmtPtr
substituteVarStmt(StmtPtr s, const std::string &name,
                  const Expr &replacement)
{
    if (!s)
        return nullptr;
    SS_ASSERT(!(s->kind == StmtKind::Assign && s->name == name &&
                !s->indexExpr),
              "substituteVarStmt: target variable '", name,
              "' is assigned inside the region");
    s->indexExpr = substituteVar(std::move(s->indexExpr), name,
                                 replacement);
    s->value = substituteVar(std::move(s->value), name, replacement);
    s->cond = substituteVar(std::move(s->cond), name, replacement);
    s->initExpr = substituteVar(std::move(s->initExpr), name,
                                replacement);
    s->stepExpr = substituteVar(std::move(s->stepExpr), name,
                                replacement);
    s->thenStmt = substituteVarStmt(std::move(s->thenStmt), name,
                                    replacement);
    s->elseStmt = substituteVarStmt(std::move(s->elseStmt), name,
                                    replacement);
    for (auto &b : s->body)
        b = substituteVarStmt(std::move(b), name, replacement);
    return s;
}

} // namespace ilp
