/**
 * @file
 * Abstract syntax of the MT language.
 *
 * Expression and statement nodes are closed variant hierarchies with
 * deep clone() (the unroller duplicates loop bodies) and a visitor-free
 * kind() dispatch, keeping the tree cheap to pattern-match.
 */

#ifndef SUPERSYM_FRONTEND_AST_HH
#define SUPERSYM_FRONTEND_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ilp {

enum class MtType : std::uint8_t { Int, Real };

// ---------------------------------------------------------------- Expr

enum class ExprKind : std::uint8_t
{
    IntLit, RealLit, Var, Index, Unary, Binary, Call, Cast,
};

/** Binary operators, in source-level terms. */
enum class BinOp : std::uint8_t
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    LogAnd, LogOr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

enum class UnOp : std::uint8_t { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    ExprKind kind;
    // IntLit / RealLit.
    std::int64_t intValue = 0;
    double realValue = 0.0;
    // Var / Index / Call: the referenced name.
    std::string name;
    // Unary/Binary/Cast operands; Index: index in lhs; Call: args.
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
    BinOp binOp = BinOp::Add;
    UnOp unOp = UnOp::Neg;
    MtType castTo = MtType::Int;
    int line = 0;
    int col = 0;

    ExprPtr clone() const;

    static ExprPtr intLit(std::int64_t v);
    static ExprPtr realLit(double v);
    static ExprPtr var(std::string name);
    static ExprPtr index(std::string name, ExprPtr idx);
    static ExprPtr unary(UnOp op, ExprPtr e);
    static ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r);
    static ExprPtr call(std::string name, std::vector<ExprPtr> args);
    static ExprPtr cast(MtType to, ExprPtr e);
};

// ---------------------------------------------------------------- Stmt

enum class StmtKind : std::uint8_t
{
    VarDecl, Assign, If, While, For, Block, Return, ExprStmt,
    Break, Continue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    StmtKind kind;
    // VarDecl: type/name/init(lhs may be null).
    MtType declType = MtType::Int;
    std::string name;      ///< VarDecl name; Assign/For target variable
    // Assign: lhs optional index expr (null for scalar), rhs value.
    ExprPtr indexExpr;     ///< non-null for array element assignment
    ExprPtr value;         ///< Assign rhs / Return value / ExprStmt expr
    // If/While/For.
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt;      ///< also While/For body
    // For: name = initExpr; cond; name = stepExpr.
    ExprPtr initExpr;
    ExprPtr stepExpr;
    // Block.
    std::vector<StmtPtr> body;
    int line = 0;
    int col = 0;

    StmtPtr clone() const;

    static StmtPtr varDecl(MtType type, std::string name, ExprPtr init);
    static StmtPtr assign(std::string name, ExprPtr index, ExprPtr value);
    static StmtPtr ifStmt(ExprPtr cond, StmtPtr then_s, StmtPtr else_s);
    static StmtPtr whileStmt(ExprPtr cond, StmtPtr body);
    static StmtPtr forStmt(std::string var, ExprPtr init, ExprPtr cond,
                           ExprPtr step, StmtPtr body);
    static StmtPtr block(std::vector<StmtPtr> stmts);
    static StmtPtr returnStmt(ExprPtr value);
    static StmtPtr exprStmt(ExprPtr value);
    static StmtPtr breakStmt();
    static StmtPtr continueStmt();
};

// ------------------------------------------------------------ Toplevel

struct GlobalDecl
{
    MtType type = MtType::Int;
    std::string name;
    std::int64_t arraySize = 0;  ///< 0 for scalars
    /** Constant initializers (ints or reals per `type`). */
    std::vector<double> realInit;
    std::vector<std::int64_t> intInit;
    int line = 0;
};

struct Param
{
    MtType type;
    std::string name;
};

struct FuncDecl
{
    std::string name;
    std::vector<Param> params;
    bool hasReturn = false;
    MtType returnType = MtType::Int;
    StmtPtr body;
    int line = 0;
};

struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> funcs;
};

/**
 * Walk an expression tree bottom-up, replacing every occurrence of
 * scalar variable `name` with a clone of `replacement`.
 */
ExprPtr substituteVar(ExprPtr e, const std::string &name,
                      const Expr &replacement);

/** Statement-level variant of substituteVar (skips redeclarations —
 *  MT has no shadowing inside a function, enforced by codegen). */
StmtPtr substituteVarStmt(StmtPtr s, const std::string &name,
                          const Expr &replacement);

} // namespace ilp

#endif // SUPERSYM_FRONTEND_AST_HH
