#include "frontend/codegen.hh"

#include <bit>
#include <unordered_map>

#include "ir/builder.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/** Thrown on a semantic error; aborts codegen for one function. */
struct CodegenRecovery
{
};

struct Value
{
    Reg reg = kNoReg;
    MtType type = MtType::Int;
};

struct LocalInfo
{
    MtType type = MtType::Int;
    std::int64_t frameOffset = 0;
};

class FuncCodegen
{
  public:
    FuncCodegen(Module &module, const Program &program,
                const FuncDecl &decl, Function &func,
                DiagEngine &diags, const std::string &unit)
        : module_(module), program_(program), decl_(decl), func_(func),
          b_(func), diags_(diags), unit_(unit)
    {
    }

    void
    run()
    {
        func_.fpReg = func_.newVirtReg();
        func_.returnsValue = decl_.hasReturn;
        func_.returnsFloat =
            decl_.hasReturn && decl_.returnType == MtType::Real;

        // Parameters: fresh virtual registers, stored to frame slots
        // at entry so the body sees ordinary memory-resident locals.
        for (const auto &p : decl_.params) {
            declareLocal(p.name, p.type, decl_.line);
            Reg r = func_.newVirtReg();
            func_.paramRegs.push_back(r);
            func_.paramIsFloat.push_back(p.type == MtType::Real);
            const LocalInfo &info = locals_.at(p.name);
            b_.store(p.type == MtType::Real ? Opcode::StoreF
                                            : Opcode::StoreW,
                     func_.fpReg, info.frameOffset, r);
        }

        genStmt(*decl_.body);

        if (!b_.blockTerminated()) {
            if (decl_.hasReturn) {
                // Structurally-unreachable or fell-off-the-end return.
                Reg zero = decl_.returnType == MtType::Real
                               ? b_.lif(0.0)
                               : b_.li(0);
                b_.ret(zero);
            } else {
                b_.ret();
            }
        }
    }

  private:
    [[noreturn]] void
    error(ErrCode code, int line, const std::string &msg) const
    {
        diags_.error(code, SourceLoc{unit_, line, 0},
                     "in '" + decl_.name + "': " + msg);
        throw CodegenRecovery{};
    }

    void
    declareLocal(const std::string &name, MtType type, int line)
    {
        if (locals_.count(name))
            error(ErrCode::SemaRedeclaration, line,
                  "redeclaration of '" + name + "'");
        if (module_.findGlobal(name))
            error(ErrCode::SemaRedeclaration, line,
                  "'" + name + "' shadows a global");
        LocalInfo info;
        info.type = type;
        info.frameOffset =
            func_.addFrameSlot(name, type == MtType::Real);
        locals_.emplace(name, info);
    }

    Value
    widen(Value v, MtType want, int line)
    {
        if (v.type == want)
            return v;
        if (v.type == MtType::Int && want == MtType::Real)
            return {b_.unary(Opcode::CvtIF, v.reg), MtType::Real};
        error(ErrCode::SemaTypeMismatch, line,
              "cannot implicitly convert real to int (use int(...))");
    }

    /** Pick the common type of a binary op and widen both sides. */
    MtType
    unify(Value &l, Value &r, int line)
    {
        if (l.type == r.type)
            return l.type;
        l = widen(l, MtType::Real, line);
        r = widen(r, MtType::Real, line);
        return MtType::Real;
    }

    // ------------------------------------------------- expressions

    Value
    genExpr(const Expr &e)
    {
        // Source-position bookkeeping: instructions lowered from this
        // expression carry its position (falling back to the
        // innermost enclosing statement's when the parser stamped
        // none).
        if (e.line > 0)
            b_.setLoc(SrcLoc{e.line, e.col});
        switch (e.kind) {
          case ExprKind::IntLit:
            return {b_.li(e.intValue), MtType::Int};
          case ExprKind::RealLit:
            return {b_.lif(e.realValue), MtType::Real};
          case ExprKind::Var:
            return genVarRead(e);
          case ExprKind::Index:
            return genIndexRead(e);
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Call:
            return genCall(e, /*wants_value=*/true);
          case ExprKind::Cast: {
            Value v = genExpr(*e.lhs);
            if (v.type == e.castTo)
                return v;
            if (e.castTo == MtType::Real)
                return {b_.unary(Opcode::CvtIF, v.reg), MtType::Real};
            return {b_.unary(Opcode::CvtFI, v.reg), MtType::Int};
          }
        }
        SS_PANIC("unhandled expression kind");
    }

    Value
    genVarRead(const Expr &e)
    {
        auto it = locals_.find(e.name);
        if (it != locals_.end()) {
            const LocalInfo &info = it->second;
            Opcode op = info.type == MtType::Real ? Opcode::LoadF
                                                  : Opcode::LoadW;
            return {b_.load(op, func_.fpReg, info.frameOffset),
                    info.type};
        }
        const GlobalVar *g = module_.findGlobal(e.name);
        if (!g)
            error(ErrCode::SemaUndefined, e.line,
                  "undefined variable '" + e.name + "'");
        if (g->words != 1)
            error(ErrCode::SemaTypeMismatch, e.line,
                  "array '" + e.name + "' used as scalar");
        Reg addr = b_.li(g->address);
        Opcode op = g->isFloat ? Opcode::LoadF : Opcode::LoadW;
        return {b_.load(op, addr, 0),
                g->isFloat ? MtType::Real : MtType::Int};
    }

    /** Compute the address register for array element name[idx]. */
    std::pair<Reg, MtType>
    genElemAddr(const Expr &e)
    {
        const GlobalVar *g = module_.findGlobal(e.name);
        if (!g) {
            if (locals_.count(e.name))
                error(ErrCode::SemaTypeMismatch, e.line,
                      "scalar '" + e.name + "' is not an array");
            error(ErrCode::SemaUndefined, e.line,
                  "undefined array '" + e.name + "'");
        }
        Value idx = genExpr(*e.lhs);
        if (idx.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, e.line,
                  "array index must be int");
        Reg scaled = b_.binaryImm(Opcode::ShlI, idx.reg, 3);
        Reg addr = b_.binaryImm(Opcode::AddI, scaled, g->address);
        return {addr, g->isFloat ? MtType::Real : MtType::Int};
    }

    Value
    genIndexRead(const Expr &e)
    {
        auto [addr, type] = genElemAddr(e);
        Opcode op =
            type == MtType::Real ? Opcode::LoadF : Opcode::LoadW;
        return {b_.load(op, addr, 0), type};
    }

    Value
    genUnary(const Expr &e)
    {
        if (e.unOp == UnOp::Not) {
            Value v = genExpr(*e.lhs);
            if (v.type != MtType::Int)
                error(ErrCode::SemaTypeMismatch, e.line,
                      "'!' needs an int operand");
            return {b_.binaryImm(Opcode::CmpEqI, v.reg, 0), MtType::Int};
        }
        // Negation.
        Value v = genExpr(*e.lhs);
        if (v.type == MtType::Real)
            return {b_.unary(Opcode::NegF, v.reg), MtType::Real};
        Reg zero = b_.li(0);
        return {b_.binary(Opcode::SubI, zero, v.reg), MtType::Int};
    }

    Value
    genBinary(const Expr &e)
    {
        if (e.binOp == BinOp::LogAnd || e.binOp == BinOp::LogOr)
            return genShortCircuit(e);

        Value l = genExpr(*e.lhs);
        Value r = genExpr(*e.rhs);

        auto int_only = [&](const char *what) {
            if (l.type != MtType::Int || r.type != MtType::Int)
                error(ErrCode::SemaTypeMismatch, e.line,
                      std::string(what) + " needs int operands");
        };

        switch (e.binOp) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div: {
            MtType t = unify(l, r, e.line);
            Opcode op;
            if (t == MtType::Real) {
                switch (e.binOp) {
                  case BinOp::Add: op = Opcode::AddF; break;
                  case BinOp::Sub: op = Opcode::SubF; break;
                  case BinOp::Mul: op = Opcode::MulF; break;
                  default: op = Opcode::DivF; break;
                }
            } else {
                switch (e.binOp) {
                  case BinOp::Add: op = Opcode::AddI; break;
                  case BinOp::Sub: op = Opcode::SubI; break;
                  case BinOp::Mul: op = Opcode::MulI; break;
                  default: op = Opcode::DivI; break;
                }
            }
            return {b_.binary(op, l.reg, r.reg), t};
          }
          case BinOp::Rem:
            int_only("'%'");
            return {b_.binary(Opcode::RemI, l.reg, r.reg), MtType::Int};
          case BinOp::And:
            int_only("'&'");
            return {b_.binary(Opcode::AndI, l.reg, r.reg), MtType::Int};
          case BinOp::Or:
            int_only("'|'");
            return {b_.binary(Opcode::OrI, l.reg, r.reg), MtType::Int};
          case BinOp::Xor:
            int_only("'^'");
            return {b_.binary(Opcode::XorI, l.reg, r.reg), MtType::Int};
          case BinOp::Shl:
            int_only("'<<'");
            return {b_.binary(Opcode::ShlI, l.reg, r.reg), MtType::Int};
          case BinOp::Shr:
            int_only("'>>'");
            return {b_.binary(Opcode::ShrAI, l.reg, r.reg),
                    MtType::Int};
          case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
          case BinOp::Le: case BinOp::Gt: case BinOp::Ge: {
            MtType t = unify(l, r, e.line);
            Opcode op;
            if (t == MtType::Real) {
                switch (e.binOp) {
                  case BinOp::Eq: op = Opcode::CmpEqF; break;
                  case BinOp::Ne: op = Opcode::CmpNeF; break;
                  case BinOp::Lt: op = Opcode::CmpLtF; break;
                  case BinOp::Le: op = Opcode::CmpLeF; break;
                  case BinOp::Gt: op = Opcode::CmpGtF; break;
                  default: op = Opcode::CmpGeF; break;
                }
            } else {
                switch (e.binOp) {
                  case BinOp::Eq: op = Opcode::CmpEqI; break;
                  case BinOp::Ne: op = Opcode::CmpNeI; break;
                  case BinOp::Lt: op = Opcode::CmpLtI; break;
                  case BinOp::Le: op = Opcode::CmpLeI; break;
                  case BinOp::Gt: op = Opcode::CmpGtI; break;
                  default: op = Opcode::CmpGeI; break;
                }
            }
            return {b_.binary(op, l.reg, r.reg), MtType::Int};
          }
          default:
            SS_PANIC("unhandled binary operator");
        }
    }

    Value
    genShortCircuit(const Expr &e)
    {
        // Result register written on both paths (0/1 normalized).
        Reg result = func_.newVirtReg();
        BlockId eval_rhs = b_.makeBlock("sc.rhs");
        BlockId short_bb = b_.makeBlock("sc.short");
        BlockId join = b_.makeBlock("sc.join");

        Value l = genExpr(*e.lhs);
        if (l.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, e.line,
                  "logical operator needs int operands");
        if (e.binOp == BinOp::LogAnd)
            b_.br(l.reg, eval_rhs, short_bb);
        else
            b_.br(l.reg, short_bb, eval_rhs);

        b_.setBlock(eval_rhs);
        Value r = genExpr(*e.rhs);
        if (r.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, e.line,
                  "logical operator needs int operands");
        Reg norm = b_.binaryImm(Opcode::CmpNeI, r.reg, 0);
        b_.emit(Instr::unary(Opcode::MovI, result, norm));
        b_.jmp(join);

        b_.setBlock(short_bb);
        b_.emit(Instr::li(result, e.binOp == BinOp::LogAnd ? 0 : 1));
        b_.jmp(join);

        b_.setBlock(join);
        return {result, MtType::Int};
    }

    Value
    genCall(const Expr &e, bool wants_value)
    {
        FuncId callee_id = module_.findFunction(e.name);
        if (callee_id == kNoFunc)
            error(ErrCode::SemaUndefined, e.line,
                  "call to undefined function '" + e.name + "'");
        const FuncDecl *callee_decl = nullptr;
        for (const auto &f : program_.funcs) {
            if (f.name == e.name) {
                callee_decl = &f;
                break;
            }
        }
        SS_ASSERT(callee_decl, "function table out of sync");
        if (e.args.size() != callee_decl->params.size())
            error(ErrCode::SemaBadCall, e.line,
                  "call to '" + e.name + "' with " +
                      std::to_string(e.args.size()) +
                      " args, expected " +
                      std::to_string(callee_decl->params.size()));
        if (wants_value && !callee_decl->hasReturn)
            error(ErrCode::SemaBadCall, e.line,
                  "void function '" + e.name + "' used as a value");

        std::vector<Reg> args;
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            Value v = genExpr(*e.args[i]);
            v = widen(v, callee_decl->params[i].type, e.line);
            args.push_back(v.reg);
        }
        Reg dst = b_.call(callee_id, std::move(args),
                          wants_value && callee_decl->hasReturn);
        return {dst, callee_decl->hasReturn ? callee_decl->returnType
                                            : MtType::Int};
    }

    // -------------------------------------------------- statements

    void
    genStmt(const Stmt &s)
    {
        if (s.line > 0)
            b_.setLoc(SrcLoc{s.line, s.col});
        switch (s.kind) {
          case StmtKind::Block:
            for (const auto &sub : s.body) {
                if (b_.blockTerminated())
                    break; // unreachable tail of the block
                genStmt(*sub);
            }
            break;
          case StmtKind::VarDecl: {
            declareLocal(s.name, s.declType, s.line);
            if (s.value) {
                Value v = genExpr(*s.value);
                v = widen(v, s.declType, s.line);
                const LocalInfo &info = locals_.at(s.name);
                b_.store(s.declType == MtType::Real ? Opcode::StoreF
                                                    : Opcode::StoreW,
                         func_.fpReg, info.frameOffset, v.reg);
            }
            break;
          }
          case StmtKind::Assign:
            genAssign(s);
            break;
          case StmtKind::If:
            genIf(s);
            break;
          case StmtKind::While:
            genWhile(s);
            break;
          case StmtKind::For:
            genFor(s);
            break;
          case StmtKind::Return: {
            if (decl_.hasReturn) {
                if (!s.value)
                    error(ErrCode::SemaBadReturn, s.line,
                          "missing return value");
                Value v = genExpr(*s.value);
                v = widen(v, decl_.returnType, s.line);
                b_.ret(v.reg);
            } else {
                if (s.value)
                    error(ErrCode::SemaBadReturn, s.line,
                          "void function returns a value");
                b_.ret();
            }
            break;
          }
          case StmtKind::ExprStmt: {
            const Expr &e = *s.value;
            if (e.kind == ExprKind::Call) {
                genCall(e, /*wants_value=*/false);
            } else {
                genExpr(e); // evaluated for nothing; DCE will clean
            }
            break;
          }
          case StmtKind::Break:
            if (break_targets_.empty())
                error(ErrCode::SemaBreakOutsideLoop, s.line,
                      "'break' outside a loop");
            b_.jmp(break_targets_.back());
            break;
          case StmtKind::Continue:
            if (continue_targets_.empty())
                error(ErrCode::SemaBreakOutsideLoop, s.line,
                      "'continue' outside a loop");
            b_.jmp(continue_targets_.back());
            break;
        }
    }

    void
    genAssign(const Stmt &s)
    {
        if (s.indexExpr) {
            // Array element.  Note evaluation order: rhs first, like
            // the paper's compiler (stores schedule late anyway).
            const GlobalVar *g = module_.findGlobal(s.name);
            if (!g)
                error(ErrCode::SemaUndefined, s.line,
                      "undefined array '" + s.name + "'");
            Value v = genExpr(*s.value);
            v = widen(v, g->isFloat ? MtType::Real : MtType::Int,
                      s.line);
            Value idx = genExpr(*s.indexExpr);
            if (idx.type != MtType::Int)
                error(ErrCode::SemaTypeMismatch, s.line,
                      "array index must be int");
            Reg scaled = b_.binaryImm(Opcode::ShlI, idx.reg, 3);
            Reg addr = b_.binaryImm(Opcode::AddI, scaled, g->address);
            b_.store(g->isFloat ? Opcode::StoreF : Opcode::StoreW,
                     addr, 0, v.reg);
            return;
        }

        auto it = locals_.find(s.name);
        if (it != locals_.end()) {
            const LocalInfo &info = it->second;
            Value v = genExpr(*s.value);
            v = widen(v, info.type, s.line);
            b_.store(info.type == MtType::Real ? Opcode::StoreF
                                               : Opcode::StoreW,
                     func_.fpReg, info.frameOffset, v.reg);
            return;
        }
        const GlobalVar *g = module_.findGlobal(s.name);
        if (!g)
            error(ErrCode::SemaUndefined, s.line,
                  "assignment to undefined variable '" + s.name + "'");
        if (g->words != 1)
            error(ErrCode::SemaTypeMismatch, s.line,
                  "array '" + s.name + "' assigned as scalar");
        Value v = genExpr(*s.value);
        v = widen(v, g->isFloat ? MtType::Real : MtType::Int, s.line);
        Reg addr = b_.li(g->address);
        b_.store(g->isFloat ? Opcode::StoreF : Opcode::StoreW, addr, 0,
                 v.reg);
    }

    void
    genIf(const Stmt &s)
    {
        BlockId then_bb = b_.makeBlock("if.then");
        BlockId else_bb =
            s.elseStmt ? b_.makeBlock("if.else") : kNoBlock;
        BlockId join = b_.makeBlock("if.join");

        Value c = genExpr(*s.cond);
        if (c.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, s.line,
                  "condition must be int");
        b_.br(c.reg, then_bb, s.elseStmt ? else_bb : join);

        b_.setBlock(then_bb);
        genStmt(*s.thenStmt);
        if (!b_.blockTerminated())
            b_.jmp(join);

        if (s.elseStmt) {
            b_.setBlock(else_bb);
            genStmt(*s.elseStmt);
            if (!b_.blockTerminated())
                b_.jmp(join);
        }
        b_.setBlock(join);
    }

    /** Does this statement subtree contain a continue? */
    static bool
    hasContinue(const Stmt &s)
    {
        if (s.kind == StmtKind::Continue)
            return true;
        // Nested loops capture their own continues.
        if (s.kind == StmtKind::While || s.kind == StmtKind::For)
            return false;
        if (s.thenStmt && hasContinue(*s.thenStmt))
            return true;
        if (s.elseStmt && hasContinue(*s.elseStmt))
            return true;
        for (const auto &sub : s.body) {
            if (hasContinue(*sub))
                return true;
        }
        return false;
    }

    /**
     * Loops are rotated into bottom-test form (guard + do/while), the
     * shape the paper's compiler produces: one block per iteration,
     * so the pipeline scheduler sees the whole loop body, the
     * induction update, and the exit test together.
     */
    void
    genWhile(const Stmt &s)
    {
        BlockId body = b_.makeBlock("while.body");
        BlockId exit = b_.makeBlock("while.exit");

        // Guard: evaluate the condition once before entering.
        Value c = genExpr(*s.cond);
        if (c.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, s.line,
                  "condition must be int");
        b_.br(c.reg, body, exit);

        bool needs_latch = hasContinue(*s.elseStmt);
        BlockId latch = needs_latch ? b_.makeBlock("while.latch")
                                    : kNoBlock;

        break_targets_.push_back(exit);
        continue_targets_.push_back(needs_latch ? latch : kNoBlock);
        b_.setBlock(body);
        genStmt(*s.elseStmt);
        bool body_open = !b_.blockTerminated();
        if (needs_latch) {
            if (body_open)
                b_.jmp(latch);
            b_.setBlock(latch);
            Value c2 = genExpr(*s.cond);
            b_.br(c2.reg, body, exit);
        } else if (body_open) {
            // Bottom test inline: the loop iterates in one block.
            Value c2 = genExpr(*s.cond);
            b_.br(c2.reg, body, exit);
        }
        break_targets_.pop_back();
        continue_targets_.pop_back();

        b_.setBlock(exit);
    }

    void
    genFor(const Stmt &s)
    {
        // for (i = init; cond; i = step) body
        // Lowered with a dedicated step block so `continue` works.
        auto it = locals_.find(s.name);
        if (it == locals_.end())
            error(ErrCode::SemaBadLoopVariable, s.line,
                  "loop variable '" + s.name +
                      "' must be a declared local");
        if (it->second.type != MtType::Int)
            error(ErrCode::SemaBadLoopVariable, s.line,
                  "loop variable must be int");

        Stmt init;
        init.kind = StmtKind::Assign;
        init.name = s.name;
        init.value = s.initExpr->clone();
        init.line = s.line;
        genAssign(init);

        BlockId body = b_.makeBlock("for.body");
        BlockId exit = b_.makeBlock("for.exit");

        // Rotated form: guard, then a bottom-tested body that also
        // carries the induction update (see genWhile).
        Value c = genExpr(*s.cond);
        if (c.type != MtType::Int)
            error(ErrCode::SemaTypeMismatch, s.line,
                  "condition must be int");
        b_.br(c.reg, body, exit);

        bool needs_latch = hasContinue(*s.elseStmt);
        BlockId latch =
            needs_latch ? b_.makeBlock("for.latch") : kNoBlock;

        auto emit_step_and_test = [&]() {
            Stmt step_assign;
            step_assign.kind = StmtKind::Assign;
            step_assign.name = s.name;
            step_assign.value = s.stepExpr->clone();
            step_assign.line = s.line;
            genAssign(step_assign);
            Value c2 = genExpr(*s.cond);
            b_.br(c2.reg, body, exit);
        };

        break_targets_.push_back(exit);
        continue_targets_.push_back(needs_latch ? latch : kNoBlock);
        b_.setBlock(body);
        genStmt(*s.elseStmt);
        bool body_open = !b_.blockTerminated();
        if (needs_latch) {
            if (body_open)
                b_.jmp(latch);
            b_.setBlock(latch);
            emit_step_and_test();
        } else if (body_open) {
            emit_step_and_test();
        }
        break_targets_.pop_back();
        continue_targets_.pop_back();

        b_.setBlock(exit);
    }

    Module &module_;
    const Program &program_;
    const FuncDecl &decl_;
    Function &func_;
    IrBuilder b_;
    DiagEngine &diags_;
    const std::string &unit_;
    std::unordered_map<std::string, LocalInfo> locals_;
    std::vector<BlockId> break_targets_;
    std::vector<BlockId> continue_targets_;
};

} // namespace

Result<Module>
generateIrChecked(const Program &program, const std::string &unit)
{
    DiagEngine diags;
    Module module;

    for (const auto &g : program.globals) {
        std::int64_t words = g.arraySize == 0 ? 1 : g.arraySize;
        module.addGlobal(g.name, words, g.type == MtType::Real);
        if (!g.intInit.empty()) {
            std::vector<std::uint64_t> init;
            std::size_t n = g.type == MtType::Real ? g.realInit.size()
                                                   : g.intInit.size();
            init.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                if (g.type == MtType::Real)
                    init.push_back(std::bit_cast<std::uint64_t>(
                        g.realInit[i]));
                else
                    init.push_back(std::bit_cast<std::uint64_t>(
                        g.intInit[i]));
            }
            module.setGlobalInit(g.name, std::move(init));
        }
    }

    // Declare all functions first so forward calls resolve.
    for (const auto &f : program.funcs)
        module.addFunction(f.name);

    for (const auto &f : program.funcs) {
        Function &func = module.function(module.findFunction(f.name));
        FuncCodegen cg(module, program, f, func, diags, unit);
        try {
            cg.run();
        } catch (const CodegenRecovery &) {
            // This function's IR is abandoned (the failed Result
            // discards the module); keep checking the others so one
            // compile reports independent errors across functions.
        }
    }
    if (diags.hasErrors())
        return Result<Module>::failure(diags.takeDiags());
    return Result<Module>::success(std::move(module),
                                   diags.takeDiags());
}

Module
generateIr(const Program &program)
{
    Result<Module> r = generateIrChecked(program);
    if (!r.ok())
        SS_FATAL(r.formatErrors());
    return r.take();
}

} // namespace ilp
