#include "frontend/lexer.hh"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace ilp {

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::IntLit: return "integer literal";
      case Tok::RealLit: return "real literal";
      case Tok::Ident: return "identifier";
      case Tok::KwVar: return "'var'";
      case Tok::KwFunc: return "'func'";
      case Tok::KwInt: return "'int'";
      case Tok::KwReal: return "'real'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semicolon: return "';'";
      case Tok::Colon: return "':'";
      case Tok::Assign: return "'='";
      case Tok::PipePipe: return "'||'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Amp: return "'&'";
      case Tok::EqEq: return "'=='";
      case Tok::BangEq: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Bang: return "'!'";
      case Tok::Eof: return "end of input";
    }
    return "?";
}

Lexer::Lexer(std::string source, DiagEngine &diags, std::string unit)
    : src_(std::move(source)), diags_(diags), unit_(std::move(unit))
{
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    while (true) {
        Token t = next();
        bool done = t.kind == Tok::Eof;
        out.push_back(std::move(t));
        if (done)
            break;
    }
    return out;
}

bool
Lexer::atEnd() const
{
    return pos_ >= src_.size();
}

char
Lexer::peek(int ahead) const
{
    std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void
Lexer::error(ErrCode code, int line, int col, std::string what) const
{
    diags_.error(code, SourceLoc{unit_, line, col}, std::move(what));
}

void
Lexer::skipWhitespaceAndComments()
{
    while (!atEnd()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            int start_line = line_;
            int start_col = col_;
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd()) {
                // Recover by treating the comment as running to EOF.
                error(ErrCode::LexUnterminatedComment, start_line,
                      start_col, "unterminated comment");
                return;
            }
            advance();
            advance();
        } else {
            break;
        }
    }
}

Token
Lexer::next()
{
    static const std::unordered_map<std::string, Tok> keywords = {
        {"var", Tok::KwVar},       {"func", Tok::KwFunc},
        {"int", Tok::KwInt},       {"real", Tok::KwReal},
        {"if", Tok::KwIf},         {"else", Tok::KwElse},
        {"while", Tok::KwWhile},   {"for", Tok::KwFor},
        {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
        {"continue", Tok::KwContinue},
    };

  restart:
    skipWhitespaceAndComments();

    Token t;
    t.line = line_;
    t.col = col_;
    if (atEnd()) {
        t.kind = Tok::Eof;
        return t;
    }

    char c = advance();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string name(1, c);
        while (!atEnd() && (std::isalnum(static_cast<unsigned char>(
                                peek())) ||
                            peek() == '_'))
            name.push_back(advance());
        auto kw = keywords.find(name);
        if (kw != keywords.end()) {
            t.kind = kw->second;
        } else {
            t.kind = Tok::Ident;
            t.text = std::move(name);
        }
        return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num(1, c);
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
            num.push_back(advance());
        bool is_real = false;
        if (!atEnd() && peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(peek(1)))) {
            is_real = true;
            num.push_back(advance());
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                num.push_back(advance());
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            char sign = peek(1);
            if (std::isdigit(static_cast<unsigned char>(sign)) ||
                ((sign == '+' || sign == '-') &&
                 std::isdigit(static_cast<unsigned char>(peek(2))))) {
                is_real = true;
                num.push_back(advance());
                if (peek() == '+' || peek() == '-')
                    num.push_back(advance());
                while (!atEnd() &&
                       std::isdigit(static_cast<unsigned char>(peek())))
                    num.push_back(advance());
            }
        }
        if (is_real) {
            t.kind = Tok::RealLit;
            try {
                t.realValue = std::stod(num);
            } catch (const std::out_of_range &) {
                error(ErrCode::LexRealLiteralOutOfRange, t.line, t.col,
                      "real literal '" + num + "' out of range");
                t.realValue = 0.0;
            }
        } else {
            t.kind = Tok::IntLit;
            try {
                t.intValue = std::stoll(num);
            } catch (const std::out_of_range &) {
                error(ErrCode::LexIntLiteralOutOfRange, t.line, t.col,
                      "integer literal '" + num + "' out of range");
                t.intValue = 0;
            }
        }
        return t;
    }

    auto two = [&](char second, Tok yes, Tok no) {
        if (!atEnd() && peek() == second) {
            advance();
            t.kind = yes;
        } else {
            t.kind = no;
        }
    };

    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case '{': t.kind = Tok::LBrace; break;
      case '}': t.kind = Tok::RBrace; break;
      case '[': t.kind = Tok::LBracket; break;
      case ']': t.kind = Tok::RBracket; break;
      case ',': t.kind = Tok::Comma; break;
      case ';': t.kind = Tok::Semicolon; break;
      case ':': t.kind = Tok::Colon; break;
      case '+': t.kind = Tok::Plus; break;
      case '-': t.kind = Tok::Minus; break;
      case '*': t.kind = Tok::Star; break;
      case '/': t.kind = Tok::Slash; break;
      case '%': t.kind = Tok::Percent; break;
      case '^': t.kind = Tok::Caret; break;
      case '=': two('=', Tok::EqEq, Tok::Assign); break;
      case '!': two('=', Tok::BangEq, Tok::Bang); break;
      case '<':
        if (peek() == '<') {
            advance();
            t.kind = Tok::Shl;
        } else {
            two('=', Tok::Le, Tok::Lt);
        }
        break;
      case '>':
        if (peek() == '>') {
            advance();
            t.kind = Tok::Shr;
        } else {
            two('=', Tok::Ge, Tok::Gt);
        }
        break;
      case '|': two('|', Tok::PipePipe, Tok::Pipe); break;
      case '&': two('&', Tok::AmpAmp, Tok::Amp); break;
      case '.':
        // '.' only appears inside a real literal; a lone one is the
        // classic "5." typo.
        error(ErrCode::LexStrayDot, t.line, t.col,
              "stray '.' (real literals need a digit on both sides)");
        goto restart;
      default:
        // Report once, skip the offending character, and keep lexing
        // so a single stray byte costs one diagnostic.
        error(ErrCode::LexUnexpectedChar, t.line, t.col,
              std::string("unexpected character '") + c + "'");
        goto restart;
    }
    return t;
}

} // namespace ilp
