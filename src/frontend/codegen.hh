/**
 * @file
 * Code generation: MT AST -> IR module.
 *
 * Storage model (matches the paper's pre-register-allocation world):
 * every variable is memory-resident — locals and parameters in frame
 * slots addressed off the frame pointer, global scalars and arrays at
 * absolute addresses materialized with LiI.  All computation flows
 * through fresh virtual temporaries.  Global register allocation and
 * temp assignment happen later, in src/opt.
 *
 * Semantic rules enforced here (user errors -> diagnostics):
 *  - names are unique within a function; no shadowing of globals
 *  - arrays are global-only and indexed by int expressions
 *  - int widens to real implicitly; real -> int needs an explicit cast
 *  - calls match arity; void functions cannot be used as values
 *
 * A semantic error aborts code generation for the offending function
 * but the remaining functions are still checked, so one compile can
 * report independent errors across functions.
 */

#ifndef SUPERSYM_FRONTEND_CODEGEN_HH
#define SUPERSYM_FRONTEND_CODEGEN_HH

#include "frontend/ast.hh"
#include "ir/module.hh"
#include "support/diag.hh"

namespace ilp {

/**
 * Generate IR for a whole program, reporting semantic errors as
 * diagnostics (one recovery point per function).
 *
 * @param unit Name used in diagnostics.
 */
Result<Module> generateIrChecked(const Program &program,
                                 const std::string &unit = "<input>");

/** Generate IR for a whole program; semantic errors are fatal(). */
Module generateIr(const Program &program);

} // namespace ilp

#endif // SUPERSYM_FRONTEND_CODEGEN_HH
