#include "frontend/parser.hh"

#include <vector>

#include "frontend/lexer.hh"
#include "support/logging.hh"

namespace ilp {

namespace {

/** Thrown after recording a syntax error; caught at the nearest
 *  statement or top-level recovery point. */
struct ParseRecovery
{
};

/** Thrown when the error limit is reached; unwinds the whole parse. */
struct ParseBail
{
};

class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagEngine &diags,
           std::string unit)
        : toks_(std::move(tokens)), diags_(diags),
          unit_(std::move(unit))
    {
    }

    Program
    parse()
    {
        Program prog;
        while (!at(Tok::Eof)) {
            std::size_t before = pos_;
            try {
                if (at(Tok::KwVar))
                    prog.globals.push_back(parseGlobal());
                else if (at(Tok::KwFunc))
                    prog.funcs.push_back(parseFunc());
                else
                    error(ErrCode::ParseBadTopLevel,
                          "expected 'var' or 'func' at top level");
            } catch (const ParseBail &) {
                break;
            } catch (const ParseRecovery &) {
                if (pos_ == before)
                    advance(); // guarantee progress
                syncTopLevel();
            }
        }
        return prog;
    }

  private:
    const Token &peek(int ahead = 0) const
    {
        std::size_t p = pos_ + static_cast<std::size_t>(ahead);
        return p < toks_.size() ? toks_[p] : toks_.back();
    }

    bool at(Tok k) const { return peek().kind == k; }

    const Token &
    advance()
    {
        const Token &t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    accept(Tok k)
    {
        if (at(k)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok k, const char *what)
    {
        if (!at(k))
            error(ErrCode::ParseUnexpectedToken,
                  std::string("expected ") + tokName(k) + " (" + what +
                      "), got " + tokName(peek().kind));
        return advance();
    }

    [[noreturn]] void
    error(ErrCode code, const std::string &msg)
    {
        SourceLoc loc{unit_, peek().line, peek().col};
        diags_.error(code, loc, msg);
        if (diags_.atErrorLimit()) {
            diags_.report(Diag{Severity::Note,
                               ErrCode::ParseTooManyErrors,
                               "too many errors; giving up", loc});
            throw ParseBail{};
        }
        throw ParseRecovery{};
    }

    /** Skip to the start of the next statement: past the next ';',
     *  or up to (not past) a '}', EOF, or a statement keyword. */
    void
    syncStmt()
    {
        while (!at(Tok::Eof)) {
            switch (peek().kind) {
              case Tok::Semicolon:
                advance();
                return;
              case Tok::RBrace:
              case Tok::KwVar:
              case Tok::KwIf:
              case Tok::KwWhile:
              case Tok::KwFor:
              case Tok::KwReturn:
              case Tok::KwBreak:
              case Tok::KwContinue:
                return;
              default:
                advance();
            }
        }
    }

    /** Skip to the next 'var' or 'func' at brace depth zero. */
    void
    syncTopLevel()
    {
        int depth = 0;
        while (!at(Tok::Eof)) {
            Tok k = peek().kind;
            if (k == Tok::LBrace) {
                ++depth;
            } else if (k == Tok::RBrace) {
                depth = depth > 0 ? depth - 1 : 0;
            } else if (depth == 0 &&
                       (k == Tok::KwVar || k == Tok::KwFunc)) {
                return;
            }
            advance();
        }
    }

    MtType
    parseType()
    {
        if (accept(Tok::KwInt))
            return MtType::Int;
        if (accept(Tok::KwReal))
            return MtType::Real;
        error(ErrCode::ParseUnexpectedToken,
              "expected 'int' or 'real'");
    }

    GlobalDecl
    parseGlobal()
    {
        GlobalDecl g;
        g.line = peek().line;
        expect(Tok::KwVar, "global declaration");
        g.type = parseType();
        g.name = expect(Tok::Ident, "global name").text;
        if (accept(Tok::LBracket)) {
            g.arraySize =
                expect(Tok::IntLit, "array size").intValue;
            if (g.arraySize <= 0)
                error(ErrCode::ParseBadArraySize,
                      "array size must be positive");
            expect(Tok::RBracket, "array size");
        }
        if (accept(Tok::Assign))
            parseInitializer(g);
        expect(Tok::Semicolon, "global declaration");
        return g;
    }

    void
    parseInitializer(GlobalDecl &g)
    {
        auto one = [&]() {
            bool neg = accept(Tok::Minus);
            if (at(Tok::IntLit)) {
                std::int64_t v = advance().intValue;
                if (neg)
                    v = -v;
                g.intInit.push_back(v);
                g.realInit.push_back(static_cast<double>(v));
            } else if (at(Tok::RealLit)) {
                double v = advance().realValue;
                if (neg)
                    v = -v;
                g.realInit.push_back(v);
                g.intInit.push_back(static_cast<std::int64_t>(v));
            } else {
                error(ErrCode::ParseBadInitializer,
                      "expected literal initializer");
            }
        };
        if (accept(Tok::LBrace)) {
            if (!at(Tok::RBrace)) {
                one();
                while (accept(Tok::Comma))
                    one();
            }
            expect(Tok::RBrace, "initializer list");
            if (g.arraySize == 0)
                error(ErrCode::ParseBadInitializer,
                      "brace initializer on scalar");
            if (static_cast<std::int64_t>(g.intInit.size()) > g.arraySize)
                error(ErrCode::ParseBadInitializer,
                      "too many initializers");
        } else {
            one();
            if (g.arraySize != 0)
                error(ErrCode::ParseBadInitializer,
                      "scalar initializer on array");
        }
    }

    FuncDecl
    parseFunc()
    {
        FuncDecl f;
        f.line = peek().line;
        expect(Tok::KwFunc, "function");
        f.name = expect(Tok::Ident, "function name").text;
        expect(Tok::LParen, "parameter list");
        if (!at(Tok::RParen)) {
            do {
                Param p;
                p.type = parseType();
                p.name = expect(Tok::Ident, "parameter name").text;
                f.params.push_back(std::move(p));
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "parameter list");
        if (accept(Tok::Colon)) {
            f.hasReturn = true;
            f.returnType = parseType();
        }
        f.body = parseBlock();
        return f;
    }

    StmtPtr
    parseBlock()
    {
        expect(Tok::LBrace, "block");
        std::vector<StmtPtr> stmts;
        while (!at(Tok::RBrace) && !at(Tok::Eof)) {
            std::size_t before = pos_;
            try {
                stmts.push_back(parseStmt());
            } catch (const ParseRecovery &) {
                if (pos_ == before)
                    advance(); // guarantee progress
                syncStmt();
            }
        }
        expect(Tok::RBrace, "block");
        return Stmt::block(std::move(stmts));
    }

    StmtPtr
    parseStmt()
    {
        int line = peek().line;
        int col = peek().col;
        StmtPtr s;
        switch (peek().kind) {
          case Tok::KwVar:
            s = parseLocalDecl();
            break;
          case Tok::KwIf:
            s = parseIf();
            break;
          case Tok::KwWhile:
            s = parseWhile();
            break;
          case Tok::KwFor:
            s = parseFor();
            break;
          case Tok::KwReturn:
            advance();
            if (at(Tok::Semicolon)) {
                s = Stmt::returnStmt(nullptr);
            } else {
                s = Stmt::returnStmt(parseExpr());
            }
            expect(Tok::Semicolon, "return");
            break;
          case Tok::KwBreak:
            advance();
            expect(Tok::Semicolon, "break");
            s = Stmt::breakStmt();
            break;
          case Tok::KwContinue:
            advance();
            expect(Tok::Semicolon, "continue");
            s = Stmt::continueStmt();
            break;
          case Tok::LBrace:
            s = parseBlock();
            break;
          default:
            s = parseAssignOrExpr();
            break;
        }
        s->line = line;
        s->col = col;
        return s;
    }

    StmtPtr
    parseLocalDecl()
    {
        expect(Tok::KwVar, "declaration");
        MtType type = parseType();
        const std::string name =
            expect(Tok::Ident, "variable name").text;
        if (at(Tok::LBracket))
            error(ErrCode::ParseLocalArray,
                  "arrays may only be declared at global scope");
        ExprPtr init;
        if (accept(Tok::Assign))
            init = parseExpr();
        expect(Tok::Semicolon, "declaration");
        return Stmt::varDecl(type, name, std::move(init));
    }

    StmtPtr
    parseIf()
    {
        expect(Tok::KwIf, "if");
        expect(Tok::LParen, "if condition");
        ExprPtr cond = parseExpr();
        expect(Tok::RParen, "if condition");
        StmtPtr then_s = parseStmt();
        StmtPtr else_s;
        if (accept(Tok::KwElse))
            else_s = parseStmt();
        return Stmt::ifStmt(std::move(cond), std::move(then_s),
                            std::move(else_s));
    }

    StmtPtr
    parseWhile()
    {
        expect(Tok::KwWhile, "while");
        expect(Tok::LParen, "while condition");
        ExprPtr cond = parseExpr();
        expect(Tok::RParen, "while condition");
        StmtPtr body = parseStmt();
        return Stmt::whileStmt(std::move(cond), std::move(body));
    }

    StmtPtr
    parseFor()
    {
        expect(Tok::KwFor, "for");
        expect(Tok::LParen, "for header");
        const std::string var = expect(Tok::Ident, "loop variable").text;
        expect(Tok::Assign, "loop initialization");
        ExprPtr init = parseExpr();
        expect(Tok::Semicolon, "for header");
        ExprPtr cond = parseExpr();
        expect(Tok::Semicolon, "for header");
        const std::string var2 =
            expect(Tok::Ident, "loop step variable").text;
        if (var2 != var)
            error(ErrCode::ParseForStepVariable,
                  "for-step must assign the loop variable '" + var +
                      "'");
        expect(Tok::Assign, "loop step");
        ExprPtr step = parseExpr();
        expect(Tok::RParen, "for header");
        StmtPtr body = parseStmt();
        return Stmt::forStmt(var, std::move(init), std::move(cond),
                             std::move(step), std::move(body));
    }

    StmtPtr
    parseAssignOrExpr()
    {
        // Lookahead: IDENT ('=' | '[' ... ']' '=') means assignment.
        if (at(Tok::Ident)) {
            if (peek(1).kind == Tok::Assign) {
                std::string name = advance().text;
                advance(); // '='
                ExprPtr value = parseExpr();
                expect(Tok::Semicolon, "assignment");
                return Stmt::assign(std::move(name), nullptr,
                                    std::move(value));
            }
            if (peek(1).kind == Tok::LBracket) {
                // Could be `a[i] = e;` or an expression statement
                // starting with an index read; scan for the matching
                // bracket and check for '='.
                std::size_t p = pos_ + 2;
                int depth = 1;
                while (p < toks_.size() && depth > 0) {
                    if (toks_[p].kind == Tok::LBracket)
                        ++depth;
                    else if (toks_[p].kind == Tok::RBracket)
                        --depth;
                    ++p;
                }
                if (p < toks_.size() && toks_[p].kind == Tok::Assign) {
                    std::string name = advance().text;
                    advance(); // '['
                    ExprPtr idx = parseExpr();
                    expect(Tok::RBracket, "array subscript");
                    expect(Tok::Assign, "array assignment");
                    ExprPtr value = parseExpr();
                    expect(Tok::Semicolon, "assignment");
                    return Stmt::assign(std::move(name), std::move(idx),
                                        std::move(value));
                }
            }
        }
        ExprPtr e = parseExpr();
        expect(Tok::Semicolon, "expression statement");
        return Stmt::exprStmt(std::move(e));
    }

    // ---- Expressions: precedence climbing -----------------------

    ExprPtr
    parseExpr()
    {
        return parseLogOr();
    }

    ExprPtr
    parseLogOr()
    {
        ExprPtr e = parseLogAnd();
        while (accept(Tok::PipePipe))
            e = Expr::binary(BinOp::LogOr, std::move(e), parseLogAnd());
        return e;
    }

    ExprPtr
    parseLogAnd()
    {
        ExprPtr e = parseBitOr();
        while (accept(Tok::AmpAmp))
            e = Expr::binary(BinOp::LogAnd, std::move(e), parseBitOr());
        return e;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (accept(Tok::Pipe))
            e = Expr::binary(BinOp::Or, std::move(e), parseBitXor());
        return e;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (accept(Tok::Caret))
            e = Expr::binary(BinOp::Xor, std::move(e), parseBitAnd());
        return e;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr e = parseEquality();
        while (accept(Tok::Amp))
            e = Expr::binary(BinOp::And, std::move(e), parseEquality());
        return e;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr e = parseRelational();
        while (true) {
            if (accept(Tok::EqEq))
                e = Expr::binary(BinOp::Eq, std::move(e),
                                 parseRelational());
            else if (accept(Tok::BangEq))
                e = Expr::binary(BinOp::Ne, std::move(e),
                                 parseRelational());
            else
                break;
        }
        return e;
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr e = parseShift();
        while (true) {
            if (accept(Tok::Lt))
                e = Expr::binary(BinOp::Lt, std::move(e), parseShift());
            else if (accept(Tok::Le))
                e = Expr::binary(BinOp::Le, std::move(e), parseShift());
            else if (accept(Tok::Gt))
                e = Expr::binary(BinOp::Gt, std::move(e), parseShift());
            else if (accept(Tok::Ge))
                e = Expr::binary(BinOp::Ge, std::move(e), parseShift());
            else
                break;
        }
        return e;
    }

    ExprPtr
    parseShift()
    {
        ExprPtr e = parseAdditive();
        while (true) {
            if (accept(Tok::Shl))
                e = Expr::binary(BinOp::Shl, std::move(e),
                                 parseAdditive());
            else if (accept(Tok::Shr))
                e = Expr::binary(BinOp::Shr, std::move(e),
                                 parseAdditive());
            else
                break;
        }
        return e;
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        while (true) {
            if (accept(Tok::Plus))
                e = Expr::binary(BinOp::Add, std::move(e),
                                 parseMultiplicative());
            else if (accept(Tok::Minus))
                e = Expr::binary(BinOp::Sub, std::move(e),
                                 parseMultiplicative());
            else
                break;
        }
        return e;
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr e = parseUnary();
        while (true) {
            if (accept(Tok::Star))
                e = Expr::binary(BinOp::Mul, std::move(e), parseUnary());
            else if (accept(Tok::Slash))
                e = Expr::binary(BinOp::Div, std::move(e), parseUnary());
            else if (accept(Tok::Percent))
                e = Expr::binary(BinOp::Rem, std::move(e), parseUnary());
            else
                break;
        }
        return e;
    }

    ExprPtr
    parseUnary()
    {
        if (accept(Tok::Minus))
            return Expr::unary(UnOp::Neg, parseUnary());
        if (accept(Tok::Bang))
            return Expr::unary(UnOp::Not, parseUnary());
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        int line = peek().line;
        int col = peek().col;
        ExprPtr e;
        if (at(Tok::IntLit)) {
            e = Expr::intLit(advance().intValue);
        } else if (at(Tok::RealLit)) {
            e = Expr::realLit(advance().realValue);
        } else if (accept(Tok::LParen)) {
            e = parseExpr();
            expect(Tok::RParen, "parenthesized expression");
        } else if (at(Tok::KwInt) || at(Tok::KwReal)) {
            MtType to = parseType();
            expect(Tok::LParen, "cast");
            e = Expr::cast(to, parseExpr());
            expect(Tok::RParen, "cast");
        } else if (at(Tok::Ident)) {
            std::string name = advance().text;
            if (accept(Tok::LParen)) {
                std::vector<ExprPtr> args;
                if (!at(Tok::RParen)) {
                    args.push_back(parseExpr());
                    while (accept(Tok::Comma))
                        args.push_back(parseExpr());
                }
                expect(Tok::RParen, "call");
                e = Expr::call(std::move(name), std::move(args));
            } else if (accept(Tok::LBracket)) {
                ExprPtr idx = parseExpr();
                expect(Tok::RBracket, "array subscript");
                e = Expr::index(std::move(name), std::move(idx));
            } else {
                e = Expr::var(std::move(name));
            }
        } else {
            error(ErrCode::ParseUnexpectedToken,
                  "expected expression, got " + tokName(peek().kind));
        }
        e->line = line;
        e->col = col;
        return e;
    }

    std::vector<Token> toks_;
    DiagEngine &diags_;
    std::string unit_;
    std::size_t pos_ = 0;
};

} // namespace

Result<Program>
parseProgramChecked(const std::string &source, const std::string &unit)
{
    DiagEngine diags;
    Lexer lexer(source, diags, unit);
    Parser parser(lexer.lexAll(), diags, unit);
    Program prog = parser.parse();
    if (diags.hasErrors())
        return Result<Program>::failure(diags.takeDiags());
    return Result<Program>::success(std::move(prog),
                                    diags.takeDiags());
}

Program
parseProgram(const std::string &source, const std::string &unit)
{
    Result<Program> r = parseProgramChecked(source, unit);
    if (!r.ok())
        SS_FATAL(r.formatErrors());
    return r.take();
}

} // namespace ilp
