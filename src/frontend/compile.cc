#include "frontend/compile.hh"

#include "frontend/codegen.hh"
#include "frontend/parser.hh"
#include "ir/verifier.hh"

namespace ilp {

Module
compileToIr(const std::string &source, const UnrollOptions &unroll,
            const std::string &unit)
{
    Program program = parseProgram(source, unit);
    if (unroll.factor > 1)
        unrollProgram(program, unroll);
    Module module = generateIr(program);
    verifyOrDie(module);
    return module;
}

} // namespace ilp
