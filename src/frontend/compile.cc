#include "frontend/compile.hh"

#include "frontend/codegen.hh"
#include "frontend/parser.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace ilp {

Result<Module>
compileToIrChecked(const std::string &source,
                   const UnrollOptions &unroll, const std::string &unit)
{
    Result<Program> parsed = [&] {
        trace::ScopedSpan span("frontend.parse", "compile");
        if (span.armed())
            span.detail(unit);
        return parseProgramChecked(source, unit);
    }();
    if (!parsed.ok())
        return Result<Module>::failure(parsed.takeDiags());
    Program program = parsed.take();
    if (unroll.factor > 1) {
        trace::ScopedSpan span("frontend.unroll", "compile");
        if (span.armed())
            span.detail(unit);
        unrollProgram(program, unroll);
    }
    trace::ScopedSpan span("frontend.lower", "compile");
    if (span.armed())
        span.detail(unit);
    Result<Module> lowered = generateIrChecked(program, unit);
    if (lowered.ok()) {
        lowered.value().sourceName = unit;
        verifyOrDie(lowered.value());
    }
    return lowered;
}

Module
compileToIr(const std::string &source, const UnrollOptions &unroll,
            const std::string &unit)
{
    Result<Module> r = compileToIrChecked(source, unroll, unit);
    if (!r.ok())
        SS_FATAL(r.formatErrors());
    return r.take();
}

} // namespace ilp
