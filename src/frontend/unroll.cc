#include "frontend/unroll.hh"

#include <set>
#include <unordered_map>

#include "support/logging.hh"

namespace ilp {

namespace {

// ----------------------------------------------------------- helpers

void
collectAssigned(const Stmt &s, std::set<std::string> &out)
{
    switch (s.kind) {
      case StmtKind::Assign:
        if (!s.indexExpr)
            out.insert(s.name);
        break;
      case StmtKind::VarDecl:
        out.insert(s.name);
        break;
      case StmtKind::For:
        out.insert(s.name);
        break;
      default:
        break;
    }
    if (s.thenStmt)
        collectAssigned(*s.thenStmt, out);
    if (s.elseStmt)
        collectAssigned(*s.elseStmt, out);
    for (const auto &b : s.body)
        collectAssigned(*b, out);
}

bool
exprReferences(const Expr &e, const std::string &name)
{
    if ((e.kind == ExprKind::Var || e.kind == ExprKind::Index ||
         e.kind == ExprKind::Call) &&
        e.name == name)
        return true;
    if (e.lhs && exprReferences(*e.lhs, name))
        return true;
    if (e.rhs && exprReferences(*e.rhs, name))
        return true;
    for (const auto &a : e.args) {
        if (exprReferences(*a, name))
            return true;
    }
    return false;
}

bool
exprHasCall(const Expr &e)
{
    if (e.kind == ExprKind::Call)
        return true;
    if (e.lhs && exprHasCall(*e.lhs))
        return true;
    if (e.rhs && exprHasCall(*e.rhs))
        return true;
    for (const auto &a : e.args) {
        if (exprHasCall(*a))
            return true;
    }
    return false;
}

bool
exprHasArrayOrGlobalRead(const Expr &e, const Program &prog)
{
    if (e.kind == ExprKind::Index)
        return true;
    if (e.kind == ExprKind::Var) {
        for (const auto &g : prog.globals) {
            if (g.name == e.name)
                return true;
        }
    }
    if (e.lhs && exprHasArrayOrGlobalRead(*e.lhs, prog))
        return true;
    if (e.rhs && exprHasArrayOrGlobalRead(*e.rhs, prog))
        return true;
    for (const auto &a : e.args) {
        if (exprHasArrayOrGlobalRead(*a, prog))
            return true;
    }
    return false;
}

bool
stmtHasCall(const Stmt &s)
{
    auto check = [](const ExprPtr &e) { return e && exprHasCall(*e); };
    if (check(s.indexExpr) || check(s.value) || check(s.cond) ||
        check(s.initExpr) || check(s.stepExpr))
        return true;
    if (s.thenStmt && stmtHasCall(*s.thenStmt))
        return true;
    if (s.elseStmt && stmtHasCall(*s.elseStmt))
        return true;
    for (const auto &b : s.body) {
        if (stmtHasCall(*b))
            return true;
    }
    return false;
}

bool
stmtHas(const Stmt &s, StmtKind kind)
{
    if (s.kind == kind)
        return true;
    if (s.thenStmt && stmtHas(*s.thenStmt, kind))
        return true;
    if (s.elseStmt && stmtHas(*s.elseStmt, kind))
        return true;
    for (const auto &b : s.body) {
        if (stmtHas(*b, kind))
            return true;
    }
    return false;
}

bool
stmtReferences(const Stmt &s, const std::string &name)
{
    auto check = [&](const ExprPtr &e) {
        return e && exprReferences(*e, name);
    };
    if (s.name == name &&
        (s.kind == StmtKind::Assign || s.kind == StmtKind::VarDecl ||
         s.kind == StmtKind::For))
        return true;
    if (check(s.indexExpr) || check(s.value) || check(s.cond) ||
        check(s.initExpr) || check(s.stepExpr))
        return true;
    if (s.thenStmt && stmtReferences(*s.thenStmt, name))
        return true;
    if (s.elseStmt && stmtReferences(*s.elseStmt, name))
        return true;
    for (const auto &b : s.body) {
        if (stmtReferences(*b, name))
            return true;
    }
    return false;
}

/** Rename every reference to scalar `from` (reads and writes). */
void renameScalarStmt(Stmt &s, const std::string &from,
                      const std::string &to);

void
renameScalarExpr(Expr &e, const std::string &from, const std::string &to)
{
    if (e.kind == ExprKind::Var && e.name == from)
        e.name = to;
    if (e.lhs)
        renameScalarExpr(*e.lhs, from, to);
    if (e.rhs)
        renameScalarExpr(*e.rhs, from, to);
    for (auto &a : e.args)
        renameScalarExpr(*a, from, to);
}

void
renameScalarStmt(Stmt &s, const std::string &from, const std::string &to)
{
    if ((s.kind == StmtKind::Assign && !s.indexExpr &&
         s.name == from) ||
        (s.kind == StmtKind::VarDecl && s.name == from) ||
        (s.kind == StmtKind::For && s.name == from))
        s.name = to;
    auto fix = [&](ExprPtr &e) {
        if (e)
            renameScalarExpr(*e, from, to);
    };
    fix(s.indexExpr);
    fix(s.value);
    fix(s.cond);
    fix(s.initExpr);
    fix(s.stepExpr);
    if (s.thenStmt)
        renameScalarStmt(*s.thenStmt, from, to);
    if (s.elseStmt)
        renameScalarStmt(*s.elseStmt, from, to);
    for (auto &b : s.body)
        renameScalarStmt(*b, from, to);
}

void
collectDecls(const Stmt &s, std::vector<std::string> &out)
{
    if (s.kind == StmtKind::VarDecl)
        out.push_back(s.name);
    if (s.thenStmt)
        collectDecls(*s.thenStmt, out);
    if (s.elseStmt)
        collectDecls(*s.elseStmt, out);
    for (const auto &b : s.body)
        collectDecls(*b, out);
}

/** Scalar type lookup: function locals/params then globals. */
class TypeResolver
{
  public:
    TypeResolver(const Program &prog, const FuncDecl &func)
    {
        for (const auto &g : prog.globals) {
            if (g.arraySize == 0)
                types_[g.name] = g.type;
        }
        for (const auto &p : func.params)
            types_[p.name] = p.type;
        if (func.body)
            walk(*func.body);
    }

    bool
    lookup(const std::string &name, MtType &out) const
    {
        auto it = types_.find(name);
        if (it == types_.end())
            return false;
        out = it->second;
        return true;
    }

  private:
    void
    walk(const Stmt &s)
    {
        if (s.kind == StmtKind::VarDecl)
            types_[s.name] = s.declType;
        if (s.thenStmt)
            walk(*s.thenStmt);
        if (s.elseStmt)
            walk(*s.elseStmt);
        for (const auto &b : s.body)
            walk(*b);
    }

    std::unordered_map<std::string, MtType> types_;
};

// ------------------------------------------------------- eligibility

struct LoopShape
{
    std::string var;
    BinOp condOp = BinOp::Lt;   ///< Lt or Le
    const Expr *bound = nullptr;
    std::int64_t step = 0;
};

bool
matchLoop(const Program &prog, const Stmt &loop, LoopShape &shape)
{
    if (loop.kind != StmtKind::For)
        return false;
    shape.var = loop.name;

    // Condition: var < bound or var <= bound.
    const Expr &cond = *loop.cond;
    if (cond.kind != ExprKind::Binary ||
        (cond.binOp != BinOp::Lt && cond.binOp != BinOp::Le))
        return false;
    if (cond.lhs->kind != ExprKind::Var || cond.lhs->name != shape.var)
        return false;
    shape.condOp = cond.binOp;
    shape.bound = cond.rhs.get();

    // Step: var = var + c, c a positive int literal.
    const Expr &step = *loop.stepExpr;
    if (step.kind != ExprKind::Binary || step.binOp != BinOp::Add)
        return false;
    const Expr *lhs = step.lhs.get();
    const Expr *rhs = step.rhs.get();
    if (lhs->kind != ExprKind::Var && rhs->kind == ExprKind::Var)
        std::swap(lhs, rhs);
    if (lhs->kind != ExprKind::Var || lhs->name != shape.var)
        return false;
    if (rhs->kind != ExprKind::IntLit || rhs->intValue <= 0)
        return false;
    shape.step = rhs->intValue;

    const Stmt &body = *loop.elseStmt;
    if (stmtHas(body, StmtKind::Break) ||
        stmtHas(body, StmtKind::Continue) ||
        stmtHas(body, StmtKind::Return))
        return false;

    std::set<std::string> assigned;
    collectAssigned(body, assigned);
    if (assigned.count(shape.var))
        return false;

    // The bound must be invariant: no calls or array reads inside it,
    // no variables the body assigns, and if it reads globals the body
    // must not call out (a callee could change them).
    if (exprHasCall(*shape.bound))
        return false;
    for (const auto &name : assigned) {
        if (exprReferences(*shape.bound, name))
            return false;
    }
    if (exprHasArrayOrGlobalRead(*shape.bound, prog) &&
        stmtHasCall(body))
        return false;

    return true;
}

// ------------------------------------------------ reduction analysis

struct Reduction
{
    Stmt *stmt = nullptr;       ///< the `v = v op e` statement
    std::string var;
    BinOp op = BinOp::Add;      ///< Add or Mul
    MtType type = MtType::Real;
};

/**
 * Find reassociable reductions: top-level statements of the body block
 * of the form `v = v + e` / `v = v * e` where v is a scalar that the
 * body references nowhere else.
 */
std::vector<Reduction>
findReductions(Stmt &body, const TypeResolver &types)
{
    std::vector<Reduction> out;
    if (body.kind != StmtKind::Block)
        return out;
    for (auto &sp : body.body) {
        Stmt &s = *sp;
        if (s.kind != StmtKind::Assign || s.indexExpr)
            continue;
        const Expr &v = *s.value;
        if (v.kind != ExprKind::Binary ||
            (v.binOp != BinOp::Add && v.binOp != BinOp::Mul))
            continue;
        const Expr *acc = v.lhs.get();
        const Expr *term = v.rhs.get();
        if (!(acc->kind == ExprKind::Var && acc->name == s.name)) {
            std::swap(acc, term);
            if (!(acc->kind == ExprKind::Var && acc->name == s.name))
                continue;
        }
        if (exprReferences(*term, s.name))
            continue;
        MtType type;
        if (!types.lookup(s.name, type))
            continue;

        Reduction r;
        r.stmt = &s;
        r.var = s.name;
        r.op = v.binOp;
        r.type = type;
        out.push_back(r);
    }

    // Reject reductions whose variable is referenced elsewhere in the
    // body (another statement reads or writes it).
    std::vector<Reduction> kept;
    for (const auto &r : out) {
        int refs = 0;
        bool elsewhere = false;
        for (auto &sp : body.body) {
            if (sp.get() == r.stmt) {
                ++refs;
                continue;
            }
            if (stmtReferences(*sp, r.var))
                elsewhere = true;
        }
        int same_var = 0;
        for (const auto &other : out) {
            if (other.var == r.var)
                ++same_var;
        }
        if (!elsewhere && refs == 1 && same_var == 1)
            kept.push_back(r);
    }
    return kept;
}

// -------------------------------------------------------- the unroll

class Unroller
{
  public:
    Unroller(const Program &prog, FuncDecl &func,
             const UnrollOptions &opts)
        : prog_(prog), opts_(opts), types_(prog, func)
    {
    }

    int
    run(FuncDecl &func)
    {
        return walk(func.body);
    }

  private:
    /** Recurse; returns number of loops unrolled under `sp`. */
    int
    walk(StmtPtr &sp)
    {
        if (!sp)
            return 0;
        Stmt &s = *sp;
        int n = 0;
        // Innermost-first: recurse into children before matching.
        n += walk(s.thenStmt);
        n += walk(s.elseStmt);
        for (auto &b : s.body)
            n += walk(b);

        if (s.kind == StmtKind::For && n == 0 &&
            !stmtHas(*s.elseStmt, StmtKind::For) &&
            !stmtHas(*s.elseStmt, StmtKind::While)) {
            LoopShape shape;
            if (matchLoop(prog_, s, shape)) {
                sp = rewrite(s, shape);
                return 1;
            }
        }
        return n;
    }

    std::string
    uniqueName(const std::string &base)
    {
        return base + "__u" + std::to_string(counter_++);
    }

    /** Clone the body, renaming its local declarations with `tag`. */
    StmtPtr
    cloneBodyRenamed(const Stmt &body, const std::string &tag)
    {
        StmtPtr copy = body.clone();
        std::vector<std::string> decls;
        collectDecls(*copy, decls);
        for (const auto &d : decls)
            renameScalarStmt(*copy, d, d + tag);
        return copy;
    }

    StmtPtr
    rewrite(Stmt &loop, const LoopShape &shape)
    {
        const int u = opts_.factor;
        SS_ASSERT(u >= 1, "unroll factor must be >= 1");
        const std::int64_t c = shape.step;
        Stmt &body = *loop.elseStmt;

        std::vector<StmtPtr> result;

        // Careful mode: split reductions into per-copy partials.
        std::vector<Reduction> reductions;
        if (opts_.careful && u > 1)
            reductions = findReductions(body, types_);

        struct Partial
        {
            std::string var;
            std::vector<std::string> partials;
            BinOp op;
            MtType type;
        };
        std::vector<Partial> partials;
        for (const auto &r : reductions) {
            Partial p;
            p.var = r.var;
            p.op = r.op;
            p.type = r.type;
            for (int k = 1; k < u; ++k) {
                std::string name = uniqueName(r.var + "__p");
                p.partials.push_back(name);
                ExprPtr ident =
                    r.type == MtType::Real
                        ? Expr::realLit(r.op == BinOp::Add ? 0.0 : 1.0)
                        : Expr::intLit(r.op == BinOp::Add ? 0 : 1);
                result.push_back(Stmt::varDecl(r.type, name,
                                               std::move(ident)));
            }
            partials.push_back(std::move(p));
        }

        // i = init;
        result.push_back(
            Stmt::assign(shape.var, nullptr, loop.initExpr->clone()));

        // Main loop guard: i + (u-1)*c </<= bound.
        ExprPtr guard_lhs =
            u > 1 ? Expr::binary(BinOp::Add, Expr::var(shape.var),
                                 Expr::intLit((u - 1) * c))
                  : Expr::var(shape.var);
        ExprPtr guard = Expr::binary(shape.condOp, std::move(guard_lhs),
                                     shape.bound->clone());

        std::vector<StmtPtr> main_body;
        if (opts_.careful) {
            for (int k = 0; k < u; ++k) {
                StmtPtr copy =
                    cloneBodyRenamed(body, "__c" + std::to_string(k));
                if (k > 0) {
                    // Substitute i -> (i + k*c) in this copy.
                    ExprPtr repl = Expr::binary(
                        BinOp::Add, Expr::var(shape.var),
                        Expr::intLit(k * c));
                    copy = substituteVarStmt(std::move(copy), shape.var,
                                             *repl);
                    // Retarget reductions at the per-copy partials.
                    for (const auto &p : partials)
                        renameScalarStmt(*copy, p.var,
                                         p.partials[k - 1]);
                }
                main_body.push_back(std::move(copy));
            }
            // Single induction update: i = i + u*c.
            main_body.push_back(Stmt::assign(
                shape.var, nullptr,
                Expr::binary(BinOp::Add, Expr::var(shape.var),
                             Expr::intLit(u * c))));
        } else {
            // Naive: copy; i = i + c; copy; ... ; i = i + c.
            for (int k = 0; k < u; ++k) {
                main_body.push_back(
                    cloneBodyRenamed(body, "__c" + std::to_string(k)));
                main_body.push_back(Stmt::assign(
                    shape.var, nullptr,
                    Expr::binary(BinOp::Add, Expr::var(shape.var),
                                 Expr::intLit(c))));
            }
        }
        result.push_back(Stmt::whileStmt(
            std::move(guard), Stmt::block(std::move(main_body))));

        // Remainder loop: while (i cond bound) { body; i = i + c; }
        std::vector<StmtPtr> rem_body;
        rem_body.push_back(cloneBodyRenamed(body, "__r"));
        rem_body.push_back(Stmt::assign(
            shape.var, nullptr,
            Expr::binary(BinOp::Add, Expr::var(shape.var),
                         Expr::intLit(c))));
        ExprPtr rem_guard = Expr::binary(
            shape.condOp, Expr::var(shape.var), shape.bound->clone());
        result.push_back(Stmt::whileStmt(
            std::move(rem_guard), Stmt::block(std::move(rem_body))));

        // Combine partials back into the accumulators, as a balanced
        // tree: v = (v + p1) + (p2 + p3) ...
        for (const auto &p : partials) {
            std::vector<ExprPtr> terms;
            terms.push_back(Expr::var(p.var));
            for (const auto &name : p.partials)
                terms.push_back(Expr::var(name));
            while (terms.size() > 1) {
                std::vector<ExprPtr> next;
                for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
                    next.push_back(Expr::binary(p.op,
                                                std::move(terms[i]),
                                                std::move(terms[i + 1])));
                }
                if (terms.size() % 2)
                    next.push_back(std::move(terms.back()));
                terms = std::move(next);
            }
            result.push_back(
                Stmt::assign(p.var, nullptr, std::move(terms[0])));
        }

        return Stmt::block(std::move(result));
    }

    const Program &prog_;
    const UnrollOptions &opts_;
    TypeResolver types_;
    int counter_ = 0;
};

} // namespace

int
unrollFunction(const Program &program, FuncDecl &func,
               const UnrollOptions &options)
{
    if (options.factor <= 1 && !options.careful)
        return 0;
    if (options.factor <= 1)
        return 0;
    Unroller unroller(program, func, options);
    return unroller.run(func);
}

int
unrollProgram(Program &program, const UnrollOptions &options)
{
    int n = 0;
    for (auto &f : program.funcs)
        n += unrollFunction(program, f, options);
    return n;
}

} // namespace ilp
