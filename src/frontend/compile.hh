/**
 * @file
 * Front-end driver: MT source text -> IR module, with optional
 * source-level loop unrolling in between.
 */

#ifndef SUPERSYM_FRONTEND_COMPILE_HH
#define SUPERSYM_FRONTEND_COMPILE_HH

#include <string>

#include "frontend/unroll.hh"
#include "ir/module.hh"
#include "support/diag.hh"

namespace ilp {

/**
 * Parse, optionally unroll, and lower a program, reporting syntax
 * and semantic errors as diagnostics instead of exiting.  The IR
 * verifier still panics on a successful compile that produced bad IR
 * — that is a supersym bug, not a user error.
 *
 * @param source  MT program text.
 * @param unroll  Loop unrolling applied before lowering.
 * @param unit    Name used in diagnostics.
 */
Result<Module> compileToIrChecked(const std::string &source,
                                  const UnrollOptions &unroll = {},
                                  const std::string &unit = "<input>");

/**
 * Parse, optionally unroll, and lower a program.  Errors are fatal();
 * thin wrapper over compileToIrChecked() for the CLI edge and tests.
 */
Module compileToIr(const std::string &source,
                   const UnrollOptions &unroll = {},
                   const std::string &unit = "<input>");

} // namespace ilp

#endif // SUPERSYM_FRONTEND_COMPILE_HH
