/**
 * @file
 * Front-end driver: MT source text -> IR module, with optional
 * source-level loop unrolling in between.
 */

#ifndef SUPERSYM_FRONTEND_COMPILE_HH
#define SUPERSYM_FRONTEND_COMPILE_HH

#include <string>

#include "frontend/unroll.hh"
#include "ir/module.hh"

namespace ilp {

/**
 * Parse, optionally unroll, and lower a program.
 *
 * @param source  MT program text.
 * @param unroll  Loop unrolling applied before lowering.
 * @param unit    Name used in diagnostics.
 */
Module compileToIr(const std::string &source,
                   const UnrollOptions &unroll = {},
                   const std::string &unit = "<input>");

} // namespace ilp

#endif // SUPERSYM_FRONTEND_COMPILE_HH
