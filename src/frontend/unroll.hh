/**
 * @file
 * Source-level loop unrolling, naive and careful (§4.4, Figure 4-6).
 *
 * The paper unrolled Linpack and Livermore inner loops by hand, two
 * ways:
 *
 *  - "Naive unrolling consists simply of duplicating the loop body
 *    inside the loop, and allowing the normal code optimizer and
 *    scheduler to remove redundant computations and to re-order the
 *    instructions" — we duplicate the body textually, with the real
 *    induction-variable increment between copies (so the copies are
 *    chained through i, the "sequential framework" the paper
 *    describes).
 *
 *  - "In careful unrolling, we reassociate long strings of additions
 *    or multiplications to maximize the parallelism, and we analyze
 *    the stores in the unrolled loop so that stores from early copies
 *    of the loop do not interfere with loads in later copies." — we
 *    substitute i+k*c into copy k (no serial chain), split reduction
 *    accumulators into per-copy partial sums combined in a balanced
 *    tree after the loop, and the caller schedules with
 *    AliasLevel::Careful.
 *
 * Mechanized here instead of by hand; the transformation is the same.
 *
 * Eligibility: innermost `for (i = e0; i </<= B; i = i + c)` loops
 * with a positive constant step, no break/continue, no assignment to
 * the loop variable in the body, and a bound B that the body provably
 * does not change (B references only scalars not assigned in the body;
 * if B reads a global, the body must not call functions).
 */

#ifndef SUPERSYM_FRONTEND_UNROLL_HH
#define SUPERSYM_FRONTEND_UNROLL_HH

#include "frontend/ast.hh"

namespace ilp {

struct UnrollOptions
{
    /** Copies of the body per iteration of the transformed loop. */
    int factor = 1;
    /** Careful mode (see file comment). */
    bool careful = false;
};

/**
 * Unroll all eligible innermost for-loops in the program, in place.
 * @return Number of loops unrolled.
 */
int unrollProgram(Program &program, const UnrollOptions &options);

/** Unroll eligible innermost for-loops of one function, in place. */
int unrollFunction(const Program &program, FuncDecl &func,
                   const UnrollOptions &options);

} // namespace ilp

#endif // SUPERSYM_FRONTEND_UNROLL_HH
