/**
 * @file
 * Tokens of the MT language — the small imperative language the study
 * benchmarks are written in (standing in for the paper's Modula-2; see
 * DESIGN.md §1 "Substitutions").
 */

#ifndef SUPERSYM_FRONTEND_TOKEN_HH
#define SUPERSYM_FRONTEND_TOKEN_HH

#include <cstdint>
#include <string>

namespace ilp {

enum class Tok : std::uint8_t
{
    // Literals and names.
    IntLit, RealLit, Ident,
    // Keywords.
    KwVar, KwFunc, KwInt, KwReal, KwIf, KwElse, KwWhile, KwFor,
    KwReturn, KwBreak, KwContinue,
    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon, Colon,
    // Operators.
    Assign,                                  // =
    PipePipe, AmpAmp,                        // || &&
    Pipe, Caret, Amp,                        // | ^ &
    EqEq, BangEq, Lt, Le, Gt, Ge,            // == != < <= > >=
    Shl, Shr,                                // << >>
    Plus, Minus, Star, Slash, Percent,       // + - * / %
    Bang,                                    // !
    Eof,
};

struct Token
{
    Tok kind = Tok::Eof;
    std::string text;          ///< identifier spelling
    std::int64_t intValue = 0;
    double realValue = 0.0;
    int line = 0;
    int col = 0;
};

/** Printable name of a token kind, for diagnostics. */
std::string tokName(Tok kind);

} // namespace ilp

#endif // SUPERSYM_FRONTEND_TOKEN_HH
