/**
 * @file
 * Hand-written lexer for the MT language.  Supports // and C-style
 * comments.  Malformed input is reported to the DiagEngine with
 * line/column and the lexer recovers (skips the offending character
 * or treats an unterminated comment as end of input) so one bad byte
 * yields one diagnostic, not a dead process.
 */

#ifndef SUPERSYM_FRONTEND_LEXER_HH
#define SUPERSYM_FRONTEND_LEXER_HH

#include <string>
#include <vector>

#include "frontend/token.hh"
#include "support/diag.hh"

namespace ilp {

class Lexer
{
  public:
    /** @param source The whole program text.
     *  @param diags  Sink for lexical errors (recovery continues).
     *  @param unit   Name used in diagnostics. */
    Lexer(std::string source, DiagEngine &diags,
          std::string unit = "<input>");

    /** Lex the whole input; the last token is always Eof.  Errors
     *  land in the DiagEngine; the returned stream contains only
     *  well-formed tokens. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool atEnd() const;
    void skipWhitespaceAndComments();
    void error(ErrCode code, int line, int col,
               std::string what) const;

    std::string src_;
    DiagEngine &diags_;
    std::string unit_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace ilp

#endif // SUPERSYM_FRONTEND_LEXER_HH
