/**
 * @file
 * Hand-written lexer for the MT language.  Supports // and C-style
 * comments; reports malformed input via fatal() with line/column.
 */

#ifndef SUPERSYM_FRONTEND_LEXER_HH
#define SUPERSYM_FRONTEND_LEXER_HH

#include <string>
#include <vector>

#include "frontend/token.hh"

namespace ilp {

class Lexer
{
  public:
    /** @param source The whole program text.
     *  @param unit   Name used in diagnostics. */
    explicit Lexer(std::string source, std::string unit = "<input>");

    /** Lex the whole input; the last token is always Eof. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool atEnd() const;
    void skipWhitespaceAndComments();
    [[noreturn]] void error(const std::string &what) const;

    std::string src_;
    std::string unit_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace ilp

#endif // SUPERSYM_FRONTEND_LEXER_HH
