#include "support/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "support/buildinfo.hh"

namespace ilp::report {

namespace {

std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&':
            out += "&amp;";
            break;
        case '<':
            out += "&lt;";
            break;
        case '>':
            out += "&gt;";
            break;
        case '"':
            out += "&quot;";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

/** "Nice" tick step covering range/count (1, 2, 5 x 10^k). */
double
niceStep(double range, int count)
{
    if (range <= 0.0 || count <= 0)
        return 1.0;
    const double raw = range / count;
    const double mag = std::pow(10.0, std::floor(std::log10(raw)));
    const double norm = raw / mag;
    double step = 10.0;
    if (norm <= 1.0)
        step = 1.0;
    else if (norm <= 2.0)
        step = 2.0;
    else if (norm <= 5.0)
        step = 5.0;
    return step * mag;
}

// ------------------------------------------------- bench trend chart

/**
 * One label's trajectory as an inline SVG: value polyline over point
 * index, bootstrap-CI band where points carry one, native <title>
 * tooltips per point.  Single series, so the chart needs no legend —
 * the figure caption names it.
 */
std::string
trendSvg(const std::vector<const bench::Point *> &pts)
{
    const double w = 600.0;
    const double h = 170.0;
    const double left = 64.0;
    const double right = 10.0;
    const double top = 10.0;
    const double bottom = 24.0;
    const double pw = w - left - right;
    const double ph = h - top - bottom;
    const std::size_t n = pts.size();

    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (const bench::Point *p : pts) {
        double plo = p->value;
        double phi = p->value;
        if (p->summary.isObject()) {
            if (const Json *v = p->summary.find("ci_lo"))
                if (v->isNumber())
                    plo = std::min(plo, v->asNumber());
            if (const Json *v = p->summary.find("ci_hi"))
                if (v->isNumber())
                    phi = std::max(phi, v->asNumber());
        }
        lo = first ? plo : std::min(lo, plo);
        hi = first ? phi : std::max(hi, phi);
        first = false;
    }
    if (hi <= lo) {
        const double pad = lo == 0.0 ? 1.0 : std::fabs(lo) * 0.05;
        lo -= pad;
        hi += pad;
    } else {
        const double pad = (hi - lo) * 0.08;
        lo -= pad;
        hi += pad;
    }

    auto x = [&](std::size_t i) {
        return n <= 1 ? left + pw / 2.0
                      : left + pw * static_cast<double>(i) /
                            static_cast<double>(n - 1);
    };
    auto y = [&](double v) {
        return top + ph * (1.0 - (v - lo) / (hi - lo));
    };

    std::string svg;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
                  "height=\"%.0f\" role=\"img\">",
                  w, h, w, h);
    svg += buf;

    // Recessive grid + y tick labels on nice steps.
    const double step = niceStep(hi - lo, 4);
    for (double tick = std::ceil(lo / step) * step; tick <= hi;
         tick += step) {
        std::snprintf(buf, sizeof(buf),
                      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                      "y2=\"%.1f\" class=\"grid\"/>"
                      "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" "
                      "text-anchor=\"end\">%s</text>",
                      left, y(tick), w - right, y(tick), left - 6.0,
                      y(tick) + 3.5, fmt(tick).c_str());
        svg += buf;
    }
    // x tick labels: point indices, thinned to ~6.
    const std::size_t every = n > 6 ? (n + 5) / 6 : 1;
    for (std::size_t i = 0; i < n; i += every) {
        std::snprintf(buf, sizeof(buf),
                      "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" "
                      "text-anchor=\"middle\">%zu</text>",
                      x(i), h - 8.0, i);
        svg += buf;
    }

    // Bootstrap CI band (where any point carries a summary).
    std::string band_up;
    std::string band_down;
    bool has_band = false;
    for (std::size_t i = 0; i < n; ++i) {
        double plo = pts[i]->value;
        double phi = pts[i]->value;
        if (pts[i]->summary.isObject()) {
            if (const Json *v = pts[i]->summary.find("ci_lo"))
                if (v->isNumber())
                    plo = v->asNumber();
            if (const Json *v = pts[i]->summary.find("ci_hi"))
                if (v->isNumber())
                    phi = v->asNumber();
            if (phi > plo)
                has_band = true;
        }
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x(i), y(phi));
        band_up += buf;
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x(i), y(plo));
        band_down = buf + band_down;
    }
    if (has_band && n > 1) {
        svg += "<polygon class=\"band\" points=\"" + band_up +
               band_down + "\"/>";
    }

    // The trend line and per-point markers with native tooltips.
    std::string line_points;
    for (std::size_t i = 0; i < n; ++i) {
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x(i),
                      y(pts[i]->value));
        line_points += buf;
    }
    if (n > 1)
        svg += "<polyline class=\"line\" points=\"" + line_points +
               "\"/>";
    for (std::size_t i = 0; i < n; ++i) {
        std::string tip = "#" + std::to_string(i) + ": " +
                          fmt(pts[i]->value) + " " + pts[i]->unit;
        if (pts[i]->meta.isObject()) {
            if (const Json *v = pts[i]->meta.find("version"))
                if (v->isString())
                    tip += " @ " + v->asString();
            if (const Json *v = pts[i]->meta.find("timestamp_utc"))
                if (v->isString())
                    tip += " (" + v->asString() + ")";
        }
        std::snprintf(buf, sizeof(buf),
                      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%s\" "
                      "class=\"pt\"><title>%s</title></circle>",
                      x(i), y(pts[i]->value),
                      i + 1 == n ? "4.5" : "3", esc(tip).c_str());
        svg += buf;
    }
    svg += "</svg>";
    return svg;
}

/** Horizontal bar list (single measure over categories: one hue). */
std::string
barList(const std::vector<std::pair<std::string, double>> &items,
        bool asPercent)
{
    double max = 0.0;
    for (const auto &[label, v] : items)
        max = std::max(max, v);
    std::string html = "<div class=\"bars\">";
    for (const auto &[label, v] : items) {
        const double frac = max > 0.0 ? v / max : 0.0;
        html += "<div class=\"bar-row\"><span class=\"bar-label\">" +
                esc(label) + "</span><span class=\"bar-track\">" +
                "<span class=\"bar-fill\" style=\"width:" +
                fmtFixed(frac * 100.0, 2) + "%\"></span></span>" +
                "<span class=\"bar-value\">" +
                (asPercent ? fmtFixed(v * 100.0, 1) + "%" : fmt(v)) +
                "</span></div>";
    }
    html += "</div>";
    return html;
}

std::string
verdictChip(bench::Verdict v)
{
    const char *cls = "chip-neutral";
    switch (v) {
    case bench::Verdict::Ok:
        cls = "chip-good";
        break;
    case bench::Verdict::Regressed:
        cls = "chip-critical";
        break;
    case bench::Verdict::Improved:
        cls = "chip-good";
        break;
    case bench::Verdict::Insufficient:
        cls = "chip-neutral";
        break;
    }
    return std::string("<span class=\"chip ") + cls + "\">" +
           bench::verdictName(v) + "</span>";
}

// ------------------------------------------------------ section html

std::string
benchSection(const ReportInputs &in)
{
    const bench::Trajectory &traj = *in.bench;

    // Group points by label, first-appearance order, values only.
    std::vector<
        std::pair<std::string, std::vector<const bench::Point *>>>
        groups;
    for (const bench::Point &p : traj.points) {
        if (!p.hasValue)
            continue;
        bool found = false;
        for (auto &[label, pts] : groups) {
            if (label == p.label) {
                pts.push_back(&p);
                found = true;
                break;
            }
        }
        if (!found)
            groups.push_back({p.label, {&p}});
    }
    if (groups.empty())
        return "";

    std::string html = "<section><h2>Bench trajectory</h2>";

    const std::vector<bench::LabelVerdict> verdicts =
        bench::sentinelCheck(traj, in.sentinel);
    if (!verdicts.empty()) {
        char caption[160];
        std::snprintf(caption, sizeof(caption),
                      "Sentinel: newest point vs rolling baseline "
                      "(window %zu, threshold %.1f%%, alpha %.2f)",
                      in.sentinel.window,
                      in.sentinel.threshold * 100.0,
                      in.sentinel.alpha);
        html += std::string("<p class=\"note\">") + caption + "</p>";
        html += "<table><thead><tr><th>label</th><th>unit</th>"
                "<th class=\"num\">baseline</th>"
                "<th class=\"num\">latest</th>"
                "<th class=\"num\">worse</th>"
                "<th class=\"num\">p (MWU)</th>"
                "<th class=\"num\">pts</th><th>verdict</th></tr>"
                "</thead><tbody>";
        for (const bench::LabelVerdict &v : verdicts) {
            html += "<tr><td>" + esc(v.label) + "</td><td>" +
                    esc(v.unit.empty() ? "-" : v.unit) + "</td>";
            if (v.verdict == bench::Verdict::Insufficient) {
                html += "<td class=\"num\">-</td><td class=\"num\">" +
                        fmt(v.latestMedian) +
                        "</td><td class=\"num\">-</td>"
                        "<td class=\"num\">-</td>";
            } else {
                html += "<td class=\"num\">" + fmt(v.baselineMedian) +
                        "</td><td class=\"num\">" +
                        fmt(v.latestMedian) +
                        "</td><td class=\"num\">" +
                        fmtFixed(v.worsePct * 100.0, 2) +
                        "%</td><td class=\"num\">" +
                        (v.tested ? fmtFixed(v.p, 4)
                                  : std::string("-")) +
                        "</td>";
            }
            html += "<td class=\"num\">" +
                    std::to_string(v.baselinePoints) + "</td><td>" +
                    verdictChip(v.verdict) +
                    (v.note.empty() ? ""
                                    : " <span class=\"note\">" +
                                          esc(v.note) + "</span>") +
                    "</td></tr>";
        }
        html += "</tbody></table>";
    }

    html += "<div class=\"grid\">";
    for (const auto &[label, pts] : groups) {
        html += "<figure><figcaption>" + esc(label) +
                " <span class=\"note\">(" +
                esc(pts.back()->unit.empty() ? "value"
                                             : pts.back()->unit) +
                ", " + std::to_string(pts.size()) +
                " points)</span></figcaption>";
        html += trendSvg(pts);
        // The table view of the same data (accessibility fallback).
        html += "<details><summary>data</summary><table><thead><tr>"
                "<th class=\"num\">#</th><th class=\"num\">median</th>"
                "<th class=\"num\">ci lo</th><th class=\"num\">ci hi"
                "</th><th class=\"num\">n</th><th>version</th>"
                "<th>timestamp (UTC)</th></tr></thead><tbody>";
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const bench::Point &p = *pts[i];
            std::string ci_lo = "-";
            std::string ci_hi = "-";
            std::string reps = std::to_string(p.samples.size());
            if (p.summary.isObject()) {
                if (const Json *v = p.summary.find("ci_lo"))
                    if (v->isNumber())
                        ci_lo = fmt(v->asNumber());
                if (const Json *v = p.summary.find("ci_hi"))
                    if (v->isNumber())
                        ci_hi = fmt(v->asNumber());
            }
            std::string version = "-";
            std::string stamp = "-";
            if (p.meta.isObject()) {
                if (const Json *v = p.meta.find("version"))
                    if (v->isString())
                        version = v->asString();
                if (const Json *v = p.meta.find("timestamp_utc"))
                    if (v->isString())
                        stamp = v->asString();
            }
            html += "<tr><td class=\"num\">" + std::to_string(i) +
                    "</td><td class=\"num\">" + fmt(p.value) +
                    "</td><td class=\"num\">" + ci_lo +
                    "</td><td class=\"num\">" + ci_hi +
                    "</td><td class=\"num\">" + reps + "</td><td>" +
                    esc(version) + "</td><td>" + esc(stamp) +
                    "</td></tr>";
        }
        html += "</tbody></table></details></figure>";
    }
    html += "</div></section>";
    return html;
}

/** Stall-breakdown + dynamic-mix charts for one stats tree. */
std::string
statsCharts(const std::string &name, const Json &stats)
{
    std::string html;
    std::vector<std::pair<std::string, double>> stalls;
    if (const Json *node = stats.at("issue.stall")) {
        if (node->isObject())
            for (const auto &[cause, v] : node->asObject())
                if (v.isNumber())
                    stalls.push_back({cause, v.asNumber()});
    }
    std::vector<std::pair<std::string, double>> mix;
    if (const Json *node = stats.at("mix.fractions")) {
        if (node->isObject())
            for (const auto &[cls, v] : node->asObject())
                if (v.isNumber() && v.asNumber() > 0.0)
                    mix.push_back({cls, v.asNumber()});
    }
    if (stalls.empty() && mix.empty())
        return html;
    html += "<figure><figcaption>" + esc(name) + "</figcaption>";
    if (!stalls.empty()) {
        html += "<h4>stall slots by cause</h4>";
        html += barList(stalls, false);
    }
    if (!mix.empty()) {
        html += "<h4>dynamic instruction mix</h4>";
        html += barList(mix, true);
    }
    html += "</figure>";
    return html;
}

std::string
statsSection(const Json &doc)
{
    std::string body;
    if (const Json *benchmarks = doc.find("benchmarks")) {
        // Suite-shaped: one chart pair per benchmark.
        if (benchmarks->isArray()) {
            for (const Json &entry : benchmarks->asArray()) {
                const Json *name = entry.find("name");
                const Json *stats = entry.find("stats");
                if (name && name->isString() && stats)
                    body += statsCharts(name->asString(), *stats);
            }
        }
    } else if (const Json *stats = doc.find("stats")) {
        const Json *program = doc.find("program");
        body += statsCharts(program && program->isString()
                                ? program->asString()
                                : "run",
                            *stats);
    }
    if (body.empty())
        return "";
    return "<section><h2>Stall breakdown &amp; dynamic mix</h2>"
           "<div class=\"grid\">" +
           body + "</div></section>";
}

std::string
metricsSection(const Json &doc)
{
    const Json *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        return "";
    std::string rows;
    std::vector<std::pair<std::string, double>> p99bars;
    for (const auto &[name, entry] : metrics->asObject()) {
        const Json *type = entry.find("type");
        const Json *value = entry.find("value");
        if (!type || !type->isString() || !value)
            continue;
        if (type->asString() != "summary" || !value->isObject())
            continue;
        auto num = [&](const char *key) {
            const Json *v = value->find(key);
            return (v && v->isNumber()) ? v->asNumber() : 0.0;
        };
        rows += "<tr><td>" + esc(name) + "</td><td class=\"num\">" +
                fmt(num("count")) + "</td><td class=\"num\">" +
                fmt(num("sum")) + "</td><td class=\"num\">" +
                fmt(num("p50")) + "</td><td class=\"num\">" +
                fmt(num("p90")) + "</td><td class=\"num\">" +
                fmt(num("p99")) + "</td></tr>";
        p99bars.push_back({name, num("p99")});
    }
    if (rows.empty())
        return "";
    std::string html =
        "<section><h2>Runtime metrics: duration histograms</h2>"
        "<table><thead><tr><th>histogram</th>"
        "<th class=\"num\">count</th><th class=\"num\">sum</th>"
        "<th class=\"num\">p50</th><th class=\"num\">p90</th>"
        "<th class=\"num\">p99</th></tr></thead><tbody>" +
        rows + "</tbody></table>";
    html += "<h4>p99 (seconds)</h4>";
    html += barList(p99bars, false);
    html += "</section>";
    return html;
}

std::string
profileSection(const Json &doc, std::size_t top)
{
    const Json *lines = doc.find("lines");
    if (!lines || !lines->isArray())
        return "";

    struct Line
    {
        std::uint64_t line = 0;
        double issued = 0.0;
        double stalls = 0.0;
        double slots = 0.0;
        std::string dominant;
    };
    std::vector<Line> rows;
    double slot_total = 0.0;
    for (const Json &entry : lines->asArray()) {
        Line l;
        if (const Json *v = entry.find("line"))
            if (v->isNumber())
                l.line = static_cast<std::uint64_t>(v->asNumber());
        if (const Json *v = entry.find("issued"))
            if (v->isNumber())
                l.issued = v->asNumber();
        if (const Json *v = entry.find("slot_total"))
            if (v->isNumber())
                l.slots = v->asNumber();
        if (const Json *stalls = entry.find("stall_slots")) {
            if (stalls->isObject()) {
                double best = 0.0;
                for (const auto &[cause, v] : stalls->asObject()) {
                    if (!v.isNumber())
                        continue;
                    l.stalls += v.asNumber();
                    if (v.asNumber() > best) {
                        best = v.asNumber();
                        l.dominant = cause;
                    }
                }
            }
        }
        slot_total += l.slots;
        rows.push_back(std::move(l));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Line &a, const Line &b) {
                         return a.slots > b.slots;
                     });
    if (rows.size() > top)
        rows.resize(top);

    std::string name = "profile";
    if (const Json *meta = doc.find("meta")) {
        if (const Json *w = meta->find("workload"))
            if (w->isString())
                name = w->asString();
        if (const Json *m = meta->find("machine"))
            if (m->isString())
                name += " on " + m->asString();
    }
    std::string html = "<section><h2>Profiler: hottest lines</h2>"
                       "<p class=\"note\">" +
                       esc(name) + "</p>"
                       "<table><thead><tr><th class=\"num\">line</th>"
                       "<th class=\"num\">issued</th>"
                       "<th class=\"num\">stall slots</th>"
                       "<th class=\"num\">% of slots</th>"
                       "<th>dominant cause</th></tr></thead><tbody>";
    for (const Line &l : rows) {
        html += "<tr><td class=\"num\">" + std::to_string(l.line) +
                "</td><td class=\"num\">" + fmt(l.issued) +
                "</td><td class=\"num\">" + fmt(l.stalls) +
                "</td><td class=\"num\">" +
                fmtFixed(slot_total > 0.0
                             ? 100.0 * l.slots / slot_total
                             : 0.0,
                         1) +
                "%</td><td>" +
                esc(l.stalls > 0.0 ? l.dominant : "-") +
                "</td></tr>";
    }
    html += "</tbody></table></section>";
    return html;
}

/** Palette: the validated reference palette from the data-viz
 *  method — single-series blue, status colors never reused as
 *  series, light and dark both selected (not auto-flipped). */
const char *kStyle = R"(
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px 32px; font: 14px/1.5 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e3e2de; --series-1: #2a78d6; --band: rgba(42,120,214,.16);
  --good: #0ca30c; --critical: #d03b3b; --neutral: #52514e;
}
@media (prefers-color-scheme: dark) {
  body {
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #33332f; --series-1: #3987e5;
    --band: rgba(57,135,229,.22);
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h4 { font-size: 12px; margin: 10px 0 4px; color: var(--text-secondary);
     font-weight: 600; }
.meta, .note { color: var(--text-secondary); font-size: 12px; }
section { margin-bottom: 8px; }
.grid { display: flex; flex-wrap: wrap; gap: 18px; }
figure { margin: 0; padding: 12px; background: var(--surface-1);
         border: 1px solid var(--grid); border-radius: 8px; }
figcaption { font-weight: 600; margin-bottom: 6px; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .tick { fill: var(--text-secondary); font-size: 10px; }
svg .line { fill: none; stroke: var(--series-1); stroke-width: 2;
            stroke-linejoin: round; }
svg .band { fill: var(--band); stroke: none; }
svg .pt { fill: var(--series-1); stroke: var(--surface-1);
          stroke-width: 2; }
table { border-collapse: collapse; margin: 8px 0; font-size: 13px; }
th, td { padding: 3px 10px; text-align: left;
         border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
th.num, td.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
.chip { font-weight: 600; }
.chip::before { content: "\25CF\00A0"; }
.chip-good { color: var(--good); }
.chip-critical { color: var(--critical); }
.chip-neutral { color: var(--neutral); }
.bars { display: grid; gap: 3px; min-width: 420px; }
.bar-row { display: grid;
           grid-template-columns: 110px 1fr 70px; gap: 8px;
           align-items: center; }
.bar-label { color: var(--text-secondary); font-size: 12px;
             text-align: right; }
.bar-track { background: var(--surface-2); border-radius: 4px;
             height: 14px; display: block; }
.bar-fill { background: var(--series-1); border-radius: 4px;
            height: 14px; display: block; }
.bar-value { font-size: 12px; font-variant-numeric: tabular-nums; }
details summary { cursor: pointer; color: var(--text-secondary);
                  font-size: 12px; }
)";

} // namespace

std::string
renderHtml(const ReportInputs &inputs)
{
    std::string html = "<!doctype html>\n<html lang=\"en\">\n<head>\n"
                       "<meta charset=\"utf-8\">\n"
                       "<meta name=\"viewport\" content=\"width="
                       "device-width, initial-scale=1\">\n<title>" +
                       esc(inputs.title) + "</title>\n<style>" +
                       kStyle + "</style>\n</head>\n<body>\n";
    html += "<header><h1>" + esc(inputs.title) + "</h1>";
    html += "<div class=\"meta\">generated by supersym " +
            esc(buildVersion()) + " (" + esc(buildType()) + ")";
    if (inputs.bench && inputs.bench->legacyRows > 0)
        html += " &middot; " +
                std::to_string(inputs.bench->legacyRows) +
                " legacy v1 rows normalized";
    html += "</div></header>\n";

    bool any = false;
    if (inputs.bench) {
        const std::string s = benchSection(inputs);
        any = any || !s.empty();
        html += s;
    }
    if (inputs.stats) {
        const std::string s = statsSection(*inputs.stats);
        any = any || !s.empty();
        html += s;
    }
    if (inputs.metrics) {
        const std::string s = metricsSection(*inputs.metrics);
        any = any || !s.empty();
        html += s;
    }
    if (inputs.profile) {
        const std::string s =
            profileSection(*inputs.profile, inputs.profileTop);
        any = any || !s.empty();
        html += s;
    }
    if (!any)
        html += "<p class=\"note\">no renderable artifacts were "
                "provided — pass --bench, --stats, --metrics, or "
                "--profile.</p>";
    html += "</body>\n</html>\n";
    return html;
}

} // namespace ilp::report
