#include "support/trace.hh"

#ifndef SSIM_NO_FLIGHT_RECORDER

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace ilp::trace {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kNoTrack = 0xffffffffu;

/**
 * Per-thread span storage.  Owned jointly by the recording thread
 * (thread_local shared_ptr) and the recorder's registry, so a worker
 * thread may exit before the session is drained without losing its
 * spans.  Only its owning thread writes to it while a session runs;
 * the drain happens after workers join (happens-before via join).
 */
struct ThreadBuffer
{
    std::vector<Span> spans;
    std::uint32_t track = kNoTrack;
    std::string label;
    std::uint64_t session = 0;
};

struct RecorderState
{
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> session{0};
    Clock::time_point epoch;
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

RecorderState &
state()
{
    static RecorderState s;
    return s;
}

thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
thread_local ScopedSpan *tls_current_span = nullptr;

/** The calling thread's buffer for the current session, registering
 *  (and resetting a stale one) on first use. */
ThreadBuffer &
ensureBuffer()
{
    RecorderState &s = state();
    const std::uint64_t session =
        s.session.load(std::memory_order_acquire);
    if (!tls_buffer || tls_buffer->session != session) {
        if (!tls_buffer)
            tls_buffer = std::make_shared<ThreadBuffer>();
        tls_buffer->spans.clear();
        tls_buffer->track = kNoTrack;
        tls_buffer->label.clear();
        tls_buffer->session = session;
        std::lock_guard<std::mutex> lock(s.mu);
        s.buffers.push_back(tls_buffer);
    }
    return *tls_buffer;
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

std::int64_t
epochNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               state().epoch.time_since_epoch())
        .count();
}

} // namespace

bool
active()
{
    return state().active.load(std::memory_order_relaxed);
}

void
annotateCurrentSpan(const std::string &detail)
{
    if (tls_current_span)
        tls_current_span->detail(detail);
}

void
setThreadTrack(std::uint32_t track, const std::string &label)
{
    if (!active())
        return;
    ThreadBuffer &buf = ensureBuffer();
    buf.track = track;
    buf.label = label;
}

// ----------------------------------------------------------- ScopedSpan

ScopedSpan::ScopedSpan(const char *name, const char *cat)
{
    if (!active())
        return;
    armed_ = true;
    name_ = name;
    cat_ = cat;
    startNs_ = nowNs();
    parent_ = tls_current_span;
    tls_current_span = this;
}

ScopedSpan::~ScopedSpan()
{
    if (!armed_)
        return;
    tls_current_span = parent_;
    if (!active())
        return; // session ended mid-span; drop it
    const std::int64_t endNs = nowNs();
    ThreadBuffer &buf = ensureBuffer();
    Span s;
    s.name = name_;
    s.cat = cat_;
    s.detail = std::move(detail_);
    s.startUs = static_cast<double>(startNs_ - epochNs()) / 1000.0;
    s.durUs = static_cast<double>(endNs - startNs_) / 1000.0;
    buf.spans.push_back(std::move(s));
}

void
ScopedSpan::detail(const std::string &d)
{
    if (!armed_)
        return;
    if (detail_.empty()) {
        detail_ = d;
    } else {
        detail_ += ' ';
        detail_ += d;
    }
}

// ------------------------------------------------------------- Recorder

Recorder &
Recorder::instance()
{
    static Recorder r;
    return r;
}

void
Recorder::start()
{
    RecorderState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.buffers.clear();
    }
    s.epoch = Clock::now();
    s.session.fetch_add(1, std::memory_order_release);
    s.active.store(true, std::memory_order_release);
}

Recording
Recorder::stop()
{
    RecorderState &s = state();
    s.active.store(false, std::memory_order_release);

    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        buffers.swap(s.buffers);
    }

    Recording rec;
    // Labelled tracks keep their worker ids; unlabelled threads get
    // tracks after the highest labelled one, in registration order.
    std::uint32_t next_track = 0;
    for (const auto &buf : buffers) {
        if (buf->track != kNoTrack && buf->track + 1 > next_track)
            next_track = buf->track + 1;
    }
    for (const auto &buf : buffers) {
        std::uint32_t track = buf->track;
        std::string label = buf->label;
        if (track == kNoTrack) {
            track = next_track++;
            label = "thread " + std::to_string(track);
        }
        rec.tracks.emplace_back(track, std::move(label));
        for (const Span &span : buf->spans) {
            rec.spans.push_back(span);
            rec.spans.back().track = track;
        }
    }
    std::sort(rec.tracks.begin(), rec.tracks.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    // Duplicate track ids (the same worker slot across several
    // SweepRunner::run calls) collapse to one metadata entry.
    rec.tracks.erase(
        std::unique(rec.tracks.begin(), rec.tracks.end(),
                    [](const auto &a, const auto &b) {
                        return a.first == b.first;
                    }),
        rec.tracks.end());
    std::stable_sort(rec.spans.begin(), rec.spans.end(),
                     [](const Span &a, const Span &b) {
                         if (a.track != b.track)
                             return a.track < b.track;
                         if (a.startUs != b.startUs)
                             return a.startUs < b.startUs;
                         return a.durUs > b.durUs;
                     });
    return rec;
}

} // namespace ilp::trace

#endif // SSIM_NO_FLIGHT_RECORDER
