#include "support/faultinject.hh"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include <unistd.h>

#include "support/diag.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace ilp::fault {

namespace {

enum class Kind
{
    Alloc,
    Trap,
    Evict,
    Exit,
};

struct Rule
{
    std::string site; ///< Injection point name, or "*".
    Kind kind = Kind::Trap;
    /** Firing threshold: draw < threshold fires.  Precomputed from
     *  the rate so the hot path is one integer compare. */
    std::uint64_t threshold = 0;
    std::uint64_t seed = 0;
    /** Per-rule draw counter — the deterministic index stream. */
    std::atomic<std::uint64_t> draws{0};
};

struct Plan
{
    std::vector<std::unique_ptr<Rule>> rules;
};

std::atomic<bool> armed{false};
std::atomic<std::uint64_t> injected{0};

std::mutex &
planMutex()
{
    static std::mutex mu;
    return mu;
}

std::shared_ptr<Plan> &
planSlot()
{
    static std::shared_ptr<Plan> plan;
    return plan;
}

std::shared_ptr<Plan>
currentPlan()
{
    std::lock_guard<std::mutex> lock(planMutex());
    return planSlot();
}

metrics::Counter &
injectedTotal()
{
    static metrics::Counter &c = metrics::Registry::global().counter(
        "ssim_faults_injected_total",
        "Faults fired by the SSIM_FAULT injection registry.");
    return c;
}

/** splitmix64: the standard 64-bit finalizing mixer — every input
 *  bit avalanches, so (seed ^ site ^ index) streams are effectively
 *  independent uniform draws. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
siteHash(const char *site)
{
    // FNV-1a, matching the repo's other string hashes.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char *p = site; *p; ++p)
        h = (h ^ static_cast<unsigned char>(*p)) *
            0x100000001b3ull;
    return h;
}

bool
siteMatches(const Rule &rule, const char *site)
{
    return rule.site == "*" || rule.site == site;
}

/** One deterministic draw; true when the rule fires at this index. */
bool
drawFires(Rule &rule, const char *site)
{
    const std::uint64_t idx =
        rule.draws.fetch_add(1, std::memory_order_relaxed);
    if (rule.kind == Kind::Exit)
        return idx == rule.seed;
    if (rule.threshold == 0)
        return false;
    return mix64(rule.seed ^ siteHash(site) ^ idx) < rule.threshold;
}

void
countInjection()
{
    injected.fetch_add(1, std::memory_order_relaxed);
    injectedTotal().inc();
}

bool
parseRule(const std::string &text, Rule &out)
{
    // site:kind:rate:seed — site never contains ':'.
    std::vector<std::string> f;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            f.push_back(text.substr(start));
            break;
        }
        f.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
    if (f.size() != 4 || f[0].empty())
        return false;
    out.site = f[0];

    if (f[1] == "alloc")
        out.kind = Kind::Alloc;
    else if (f[1] == "trap")
        out.kind = Kind::Trap;
    else if (f[1] == "evict")
        out.kind = Kind::Evict;
    else if (f[1] == "exit")
        out.kind = Kind::Exit;
    else
        return false;

    char *end = nullptr;
    const double rate = std::strtod(f[2].c_str(), &end);
    if (!end || *end != '\0' || !(rate >= 0.0) || rate > 1.0)
        return false;
    out.threshold =
        rate >= 1.0 ? ~0ull
                    : static_cast<std::uint64_t>(
                          rate * 18446744073709551616.0 /* 2^64 */);

    end = nullptr;
    const unsigned long long seed =
        std::strtoull(f[3].c_str(), &end, 10);
    if (!end || *end != '\0' || f[3].empty())
        return false;
    out.seed = seed;
    return true;
}

} // namespace

bool
enabled()
{
    return armed.load(std::memory_order_relaxed);
}

bool
configure(const std::string &spec)
{
    auto plan = std::make_shared<Plan>();
    bool ok = true;
    std::size_t start = 0;
    while (ok && start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string piece = spec.substr(start, comma - start);
        if (!piece.empty()) {
            auto rule = std::make_unique<Rule>();
            if (parseRule(piece, *rule))
                plan->rules.push_back(std::move(rule));
            else
                ok = false;
        }
        start = comma + 1;
    }
    if (!ok)
        plan->rules.clear();

    {
        std::lock_guard<std::mutex> lock(planMutex());
        planSlot() = plan->rules.empty() ? nullptr : plan;
        armed.store(planSlot() != nullptr,
                    std::memory_order_relaxed);
    }
    return ok;
}

void
reset()
{
    std::lock_guard<std::mutex> lock(planMutex());
    planSlot() = nullptr;
    armed.store(false, std::memory_order_relaxed);
    injected.store(0, std::memory_order_relaxed);
}

std::uint64_t
injectedCount()
{
    return injected.load(std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const char *env = std::getenv("SSIM_FAULT");
    if (!env || !*env)
        return;
    if (!configure(env)) {
        SS_WARN("SSIM_FAULT='", env,
                "' is not a site:kind:rate:seed fault plan; fault "
                "injection disabled");
    }
}

void
maybeInject(const char *site)
{
    if (!enabled())
        return;
    std::shared_ptr<Plan> plan = currentPlan();
    if (!plan)
        return;
    for (const auto &rule : plan->rules) {
        if (rule->kind == Kind::Evict || !siteMatches(*rule, site))
            continue;
        if (!drawFires(*rule, site))
            continue;
        countInjection();
        switch (rule->kind) {
          case Kind::Alloc:
            throw std::bad_alloc();
          case Kind::Trap:
            throw DiagException(
                Diag{Severity::Error, ErrCode::TrapTransientFault,
                     std::string("injected transient fault at ") +
                         site,
                     {}});
          case Kind::Exit:
            // The kill-mid-sweep scenario: die abruptly, no unwind,
            // exactly as a crashed or OOM-killed worker would.
            ::_exit(137);
          case Kind::Evict:
            break; // unreachable
        }
    }
}

bool
shouldEvict(const char *site)
{
    if (!enabled())
        return false;
    std::shared_ptr<Plan> plan = currentPlan();
    if (!plan)
        return false;
    for (const auto &rule : plan->rules) {
        if (rule->kind != Kind::Evict || !siteMatches(*rule, site))
            continue;
        if (drawFires(*rule, site)) {
            countInjection();
            return true;
        }
    }
    return false;
}

} // namespace ilp::fault
