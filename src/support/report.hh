/**
 * @file
 * `ssim report` — a zero-dependency, self-contained HTML dashboard
 * over the observability artifacts the toolchain already writes:
 *
 *   - the bench-v2 perf trajectory (per-label trend lines with the
 *     bootstrap CI band, plus the regression sentinel's verdicts),
 *   - stall breakdown and dynamic instruction mix from a --stats-json
 *     document (run- or suite-shaped),
 *   - runtime-metrics duration histograms (p50/p90/p99) from a
 *     --metrics-json snapshot,
 *   - the profiler's hottest source lines from a profile-v1 document.
 *
 * The output is ONE file: inline CSS and SVG, no script, no external
 * fetches — open it from a CI artifact listing and it just renders.
 * Every section is optional; absent inputs are skipped.  Rendering is
 * deterministic for identical inputs (no wall-clock reads), so CI can
 * byte-compare reports across reruns.
 */

#ifndef SUPERSYM_SUPPORT_REPORT_HH
#define SUPERSYM_SUPPORT_REPORT_HH

#include <string>

#include "support/bench.hh"
#include "support/json.hh"

namespace ilp::report {

struct ReportInputs
{
    /** Loaded bench trajectory; nullptr to skip the perf section. */
    const bench::Trajectory *bench = nullptr;
    /** Sentinel configuration for the verdict table. */
    bench::SentinelConfig sentinel;
    /** --stats-json document (run or suite shape); nullptr to skip. */
    const Json *stats = nullptr;
    /** --metrics-json document; nullptr to skip. */
    const Json *metrics = nullptr;
    /** profile-v1 document; nullptr to skip. */
    const Json *profile = nullptr;
    /** Hot lines shown from the profile. */
    std::size_t profileTop = 10;
    std::string title = "supersym perf report";
};

/** Render the dashboard as a complete HTML document. */
std::string renderHtml(const ReportInputs &inputs);

} // namespace ilp::report

#endif // SUPERSYM_SUPPORT_REPORT_HH
