#include "support/bench.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "support/buildinfo.hh"
#include "support/table.hh"

namespace ilp::bench {

namespace {

/** splitmix64 finalizing mixer: the bootstrap's deterministic PRNG
 *  (same generator the fault-injection registry uses). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

double
medianOfSorted(const std::vector<double> &sorted)
{
    const std::size_t n = sorted.size();
    if (n == 0)
        return 0.0;
    if (n % 2 == 1)
        return sorted[n / 2];
    return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

/** Standard normal survival via erfc: P(Z > z). */
double
normalSf(double z)
{
    return 0.5 * std::erfc(z / std::sqrt(2.0));
}

std::string
formatValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
formatPct(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", fraction * 100.0);
    return buf;
}

std::string
formatP(double p)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", p);
    return buf;
}

} // namespace

// --------------------------------------------------- robust summaries

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return medianOfSorted(values);
}

SampleSummary
summarize(const std::vector<double> &samples, int bootstrapIterations,
          std::uint64_t seed)
{
    SampleSummary s;
    s.n = samples.size();
    if (samples.empty())
        return s;

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    s.mean = sum / static_cast<double>(s.n);
    s.median = medianOfSorted(sorted);

    std::vector<double> deviations(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        deviations[i] = std::fabs(sorted[i] - s.median);
    std::sort(deviations.begin(), deviations.end());
    s.mad = medianOfSorted(deviations);

    // Seeded bootstrap on the median: resample n-with-replacement
    // `bootstrapIterations` times, take the 2.5/97.5 percentiles of
    // the resampled medians.  Every draw is a pure function of
    // (seed, iteration, slot), so the CI is reproducible.
    if (bootstrapIterations > 0) {
        std::vector<double> medians;
        medians.reserve(static_cast<std::size_t>(bootstrapIterations));
        std::vector<double> resample(sorted.size());
        for (int it = 0; it < bootstrapIterations; ++it) {
            for (std::size_t j = 0; j < sorted.size(); ++j) {
                const std::uint64_t draw = splitmix64(
                    seed ^ (static_cast<std::uint64_t>(it) << 32) ^
                    static_cast<std::uint64_t>(j));
                resample[j] = sorted[draw % sorted.size()];
            }
            std::sort(resample.begin(), resample.end());
            medians.push_back(medianOfSorted(resample));
        }
        std::sort(medians.begin(), medians.end());
        const std::size_t hi_rank = static_cast<std::size_t>(
            std::floor(0.975 * static_cast<double>(medians.size() - 1) +
                       0.5));
        const std::size_t lo_rank = static_cast<std::size_t>(
            std::floor(0.025 * static_cast<double>(medians.size() - 1) +
                       0.5));
        s.ciLo = medians[lo_rank];
        s.ciHi = medians[hi_rank];
    } else {
        s.ciLo = s.median;
        s.ciHi = s.median;
    }
    return s;
}

RankTest
mannWhitney(const std::vector<double> &a, const std::vector<double> &b)
{
    RankTest t;
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0 || m == 0)
        return t;

    // Rank the pooled sample, averaging ranks within tie groups.
    struct Tagged
    {
        double value;
        bool fromA;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(n + m);
    for (double v : a)
        pooled.push_back({v, true});
    for (double v : b)
        pooled.push_back({v, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged &x, const Tagged &y) {
                  return x.value < y.value;
              });

    double rankSumA = 0.0;
    double tieTerm = 0.0; // sum of t^3 - t over tie groups
    std::size_t i = 0;
    while (i < pooled.size()) {
        std::size_t j = i;
        while (j < pooled.size() &&
               pooled[j].value == pooled[i].value)
            ++j;
        const double groupSize = static_cast<double>(j - i);
        // Average 1-based rank of positions [i, j).
        const double avgRank =
            (static_cast<double>(i + 1) + static_cast<double>(j)) /
            2.0;
        for (std::size_t k = i; k < j; ++k)
            if (pooled[k].fromA)
                rankSumA += avgRank;
        tieTerm += groupSize * groupSize * groupSize - groupSize;
        i = j;
    }

    const double dn = static_cast<double>(n);
    const double dm = static_cast<double>(m);
    const double total = dn + dm;
    t.u = rankSumA - dn * (dn + 1.0) / 2.0;

    const double meanU = dn * dm / 2.0;
    double varU = dn * dm * (total + 1.0) / 12.0;
    if (total > 1.0)
        varU -= dn * dm * tieTerm / (12.0 * total * (total - 1.0));
    if (varU <= 0.0) {
        // Every observation tied: the ranks carry no information.
        t.p = 1.0;
        return t;
    }

    // Continuity-corrected normal deviate, two-sided.
    double num = t.u - meanU;
    if (num > 0.5)
        num -= 0.5;
    else if (num < -0.5)
        num += 0.5;
    else
        num = 0.0;
    t.z = num / std::sqrt(varU);
    t.p = 2.0 * normalSf(std::fabs(t.z));
    if (t.p > 1.0)
        t.p = 1.0;
    t.usable = true;
    return t;
}

// ------------------------------------------------- trajectory schema

std::uint64_t
hostHash()
{
    // FNV-1a over whatever host identity is portably available.
    std::string id;
#if defined(__unix__) || defined(__APPLE__)
    struct utsname u;
    if (::uname(&u) == 0) {
        id += u.nodename;
        id += '|';
        id += u.machine;
        id += '|';
        id += u.sysname;
    }
    id += '|';
    id += std::to_string(::sysconf(_SC_NPROCESSORS_ONLN));
#else
    id = "unknown-host";
#endif
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : id) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
utcTimestamp()
{
    if (const char *fixed = std::getenv("SSIM_BENCH_TIME_UTC"))
        if (*fixed)
            return fixed;
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(__unix__) || defined(__APPLE__)
    gmtime_r(&now, &tm);
#else
    tm = *std::gmtime(&now);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

Json
pointMeta()
{
    Json meta = buildMeta();
    meta.set("host_hash", std::to_string(hostHash()));
    meta.set("timestamp_utc", utcTimestamp());
    return meta;
}

namespace {

Json
summaryToJson(const SampleSummary &s)
{
    Json j = Json::object();
    j.set("n", Json(static_cast<std::uint64_t>(s.n)));
    j.set("mean", Json(s.mean));
    j.set("median", Json(s.median));
    j.set("mad", Json(s.mad));
    j.set("ci_lo", Json(s.ciLo));
    j.set("ci_hi", Json(s.ciHi));
    j.set("min", Json(s.min));
    j.set("max", Json(s.max));
    return j;
}

} // namespace

Json
makePoint(const std::string &artifact, const std::string &label,
          const std::string &unit, const std::string &direction,
          const std::vector<double> &samples, Json config, Json stats)
{
    const SampleSummary s = summarize(samples);
    Json row = Json::object();
    row.set("schema", Json(kSchemaV2));
    row.set("artifact", Json(artifact));
    row.set("label", Json(label));
    row.set("meta", pointMeta());
    row.set("config", std::move(config));
    row.set("unit", Json(unit));
    row.set("direction", Json(direction));
    row.set("value", Json(s.median));
    Json arr = Json::array();
    for (double v : samples)
        arr.push(Json(v));
    row.set("samples", std::move(arr));
    row.set("summary", summaryToJson(s));
    if (!stats.isNull())
        row.set("stats", std::move(stats));
    return row;
}

Json
makeStatsPoint(const std::string &artifact, const std::string &label,
               Json stats)
{
    Json row = Json::object();
    row.set("schema", Json(kSchemaV2));
    row.set("artifact", Json(artifact));
    row.set("label", Json(label));
    row.set("meta", pointMeta());
    row.set("stats", std::move(stats));
    return row;
}

namespace {

/** Extract the headline value of a v1 row from its stats.throughput
 *  group: a rate when one is nonzero, wall seconds otherwise. */
void
extractLegacyValue(const Json &stats, Point &p)
{
    if (const Json *v = stats.at("throughput.instr_per_s")) {
        if (v->isNumber() && v->asNumber() > 0.0) {
            p.unit = "instr_per_s";
            p.direction = "higher";
            p.value = v->asNumber();
            p.hasValue = true;
            return;
        }
    }
    if (const Json *v = stats.at("throughput.cells_per_s")) {
        if (v->isNumber() && v->asNumber() > 0.0) {
            p.unit = "cells_per_s";
            p.direction = "higher";
            p.value = v->asNumber();
            p.hasValue = true;
            return;
        }
    }
    if (const Json *v = stats.at("throughput.wall_s")) {
        if (v->isNumber() && v->asNumber() > 0.0) {
            p.unit = "wall_s";
            p.direction = "lower";
            p.value = v->asNumber();
            p.hasValue = true;
        }
    }
}

} // namespace

Point
parsePoint(const Json &row)
{
    Point p;
    auto str = [&](const char *key) -> std::string {
        const Json *v = row.find(key);
        return (v && v->isString()) ? v->asString() : std::string();
    };
    p.artifact = str("artifact");
    p.label = str("label");
    p.schema = str("schema");
    if (const Json *stats = row.find("stats"))
        p.stats = *stats;

    if (p.schema != kSchemaV2) {
        // v1 row: {artifact, label, stats}.  Normalize.
        p.schema = kSchemaV1;
        extractLegacyValue(p.stats, p);
        if (p.hasValue)
            p.samples.push_back(p.value);
        return p;
    }

    p.unit = str("unit");
    p.direction = str("direction");
    if (const Json *v = row.find("value")) {
        if (v->isNumber()) {
            p.value = v->asNumber();
            p.hasValue = true;
        }
    }
    if (const Json *samples = row.find("samples")) {
        if (samples->isArray())
            for (const Json &s : samples->asArray())
                if (s.isNumber())
                    p.samples.push_back(s.asNumber());
    }
    if (p.samples.empty() && p.hasValue)
        p.samples.push_back(p.value);
    if (const Json *meta = row.find("meta"))
        p.meta = *meta;
    if (const Json *config = row.find("config"))
        p.config = *config;
    if (const Json *summary = row.find("summary"))
        p.summary = *summary;
    return p;
}

Json
pointToJson(const Point &point, bool nullProvenance)
{
    Json row = Json::object();
    row.set("schema", Json(kSchemaV2));
    row.set("artifact", Json(point.artifact));
    row.set("label", Json(point.label));
    if (nullProvenance || point.meta.isNull()) {
        // Historical rows: the provenance keys exist (one shape for
        // every consumer) but record nothing.
        Json meta = Json::object();
        meta.set("generator", Json("supersym"));
        meta.set("version", Json(nullptr));
        meta.set("build", Json(nullptr));
        meta.set("host_hash", Json(nullptr));
        meta.set("timestamp_utc", Json(nullptr));
        row.set("meta", std::move(meta));
    } else {
        row.set("meta", point.meta);
    }
    if (!point.config.isNull())
        row.set("config", point.config);
    if (!point.unit.empty())
        row.set("unit", Json(point.unit));
    if (!point.direction.empty())
        row.set("direction", Json(point.direction));
    if (point.hasValue) {
        row.set("value", Json(point.value));
        Json arr = Json::array();
        for (double v : point.samples)
            arr.push(Json(v));
        row.set("samples", std::move(arr));
        row.set("summary", point.summary.isNull()
                               ? summaryToJson(summarize(point.samples))
                               : point.summary);
    }
    if (!point.stats.isNull())
        row.set("stats", point.stats);
    return row;
}

bool
loadTrajectory(const std::string &path, Trajectory *out,
               std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    Json doc;
    std::string parse_error;
    if (!Json::tryParse(ss.str(), doc, &parse_error)) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    if (!doc.isArray()) {
        if (error)
            *error = path + ": trajectory is not a JSON array";
        return false;
    }
    out->points.clear();
    out->legacyRows = 0;
    for (const Json &row : doc.asArray()) {
        if (!row.isObject())
            continue;
        Point p = parsePoint(row);
        if (p.schema == kSchemaV1)
            ++out->legacyRows;
        out->points.push_back(std::move(p));
    }
    return true;
}

namespace {

/** Write `doc` to `path` via temp + atomic rename. */
bool
writeAtomic(const std::string &path, const Json &doc,
            std::string *error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot write '" + tmp + "'";
            return false;
        }
        out << doc.dump(2) << "\n";
        out.flush();
        if (!out) {
            if (error)
                *error = "write to '" + tmp + "' failed";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename '" + tmp + "' to '" + path + "'";
        return false;
    }
    return true;
}

/** RAII advisory file lock on `path`.lock (no-op off unix). */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
    {
#if defined(__unix__) || defined(__APPLE__)
        const std::string lock_path = path + ".lock";
        fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
        if (fd_ >= 0)
            ::flock(fd_, LOCK_EX);
#else
        (void)path;
#endif
    }
    ~FileLock()
    {
#if defined(__unix__) || defined(__APPLE__)
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
#endif
    }
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd_ = -1;
};

} // namespace

bool
appendPoint(const std::string &path, const Json &row,
            std::string *error)
{
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    FileLock file_lock(path);

    Json doc = Json::array();
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            const std::string text = ss.str();
            Json parsed;
            std::string parse_error;
            if (text.empty()) {
                // fresh file: start a new array
            } else if (Json::tryParse(text, parsed, &parse_error) &&
                       parsed.isArray()) {
                doc = std::move(parsed);
            } else {
                const std::string bak = path + ".bak";
                std::rename(path.c_str(), bak.c_str());
                std::fprintf(stderr,
                             "warning: bench trajectory %s unreadable"
                             " (%s); preserved as %s, starting "
                             "fresh\n",
                             path.c_str(),
                             parse_error.empty() ? "not a JSON array"
                                                 : parse_error.c_str(),
                             bak.c_str());
            }
        }
    }
    doc.push(row);
    return writeAtomic(path, doc, error);
}

bool
migrateTrajectory(const std::string &path, std::string *error,
                  std::size_t *migrated)
{
    Trajectory traj;
    if (!loadTrajectory(path, &traj, error))
        return false;
    Json doc = Json::array();
    std::size_t converted = 0;
    for (const Point &p : traj.points) {
        const bool legacy = p.schema == kSchemaV1;
        if (legacy)
            ++converted;
        // A legacy row's single extracted sample is synthetic — keep
        // the headline value but do not fabricate a summary of one
        // "repetition" beyond what pointToJson derives.
        doc.push(pointToJson(p, legacy));
    }
    if (migrated)
        *migrated = converted;
    FileLock file_lock(path);
    return writeAtomic(path, doc, error);
}

// ----------------------------------- sample recorder (bench main)

namespace {

struct LabelSamples
{
    std::string label;
    std::string unit;
    std::string direction;
    std::vector<double> values;
    std::vector<std::uint64_t> iterations;
};

std::mutex recorder_mu;

std::vector<LabelSamples> &
recorderState()
{
    static std::vector<LabelSamples> state;
    return state;
}

} // namespace

void
recordSample(const std::string &label, const std::string &unit,
             const std::string &direction, double value,
             std::uint64_t iterations)
{
    std::lock_guard<std::mutex> lock(recorder_mu);
    std::vector<LabelSamples> &state = recorderState();
    for (LabelSamples &s : state) {
        if (s.label == label) {
            s.values.push_back(value);
            s.iterations.push_back(iterations);
            return;
        }
    }
    state.push_back({label, unit, direction, {value}, {iterations}});
}

void
flushSamples(const std::string &artifact, const std::string &path)
{
    std::vector<LabelSamples> state;
    {
        std::lock_guard<std::mutex> lock(recorder_mu);
        state.swap(recorderState());
    }
    for (const LabelSamples &s : state) {
        // Calibration runs (google-benchmark sizing the iteration
        // count) report fewer inner iterations than the settled
        // repetitions; treat them as warmup and drop them.
        std::uint64_t max_iters = 0;
        for (std::uint64_t it : s.iterations)
            max_iters = std::max(max_iters, it);
        std::vector<double> kept;
        std::size_t warmup = 0;
        for (std::size_t i = 0; i < s.values.size(); ++i) {
            if (s.iterations[i] * 2 >= max_iters)
                kept.push_back(s.values[i]);
            else
                ++warmup;
        }
        if (kept.empty())
            continue;
        Json config = Json::object();
        config.set("repetitions",
                   Json(static_cast<std::uint64_t>(kept.size())));
        config.set("warmup_dropped",
                   Json(static_cast<std::uint64_t>(warmup)));
        config.set("iterations", Json(max_iters));
        Json bootstrap = Json::object();
        bootstrap.set("iterations", Json(kBootstrapIterations));
        bootstrap.set("seed", Json(kBootstrapSeed));
        config.set("bootstrap", std::move(bootstrap));
        std::string error;
        if (!appendPoint(path,
                         makePoint(artifact, s.label, s.unit,
                                   s.direction, kept,
                                   std::move(config)),
                         &error)) {
            std::fprintf(stderr,
                         "warning: cannot append bench datapoint "
                         "for %s: %s\n",
                         s.label.c_str(), error.c_str());
        }
    }
}

// ----------------------------------------------------------- sentinel

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
    case Verdict::Ok:
        return "ok";
    case Verdict::Regressed:
        return "REGRESSED";
    case Verdict::Improved:
        return "improved";
    case Verdict::Insufficient:
        return "insufficient";
    }
    return "?";
}

namespace {

/** Positive = worse, direction-aware relative median shift. */
double
worseShift(const std::string &direction, double baseline,
           double latest)
{
    if (baseline == 0.0)
        return 0.0;
    const double shift = (latest - baseline) / baseline;
    return direction == "lower" ? shift : -shift;
}

} // namespace

std::vector<LabelVerdict>
sentinelCheck(const Trajectory &trajectory,
              const SentinelConfig &config)
{
    // Group point indices by label, preserving first appearance.
    std::vector<std::pair<std::string, std::vector<std::size_t>>>
        groups;
    for (std::size_t i = 0; i < trajectory.points.size(); ++i) {
        const Point &p = trajectory.points[i];
        if (!p.hasValue)
            continue; // pure stats snapshots carry no perf scalar
        bool found = false;
        for (auto &[label, indices] : groups) {
            if (label == p.label) {
                indices.push_back(i);
                found = true;
                break;
            }
        }
        if (!found)
            groups.push_back({p.label, {i}});
    }

    std::vector<LabelVerdict> rows;
    rows.reserve(groups.size());
    for (const auto &[label, indices] : groups) {
        const Point &latest = trajectory.points[indices.back()];
        LabelVerdict v;
        v.label = label;
        v.unit = latest.unit;
        v.latestSamples = latest.samples.size();
        v.latestMedian = median(latest.samples);

        const std::size_t history = indices.size() - 1;
        const std::size_t take = std::min(history, config.window);
        v.baselinePoints = take;
        if (take < config.minBaseline) {
            v.verdict = Verdict::Insufficient;
            v.note = "need " + std::to_string(config.minBaseline) +
                     " baseline points, have " + std::to_string(take);
            rows.push_back(std::move(v));
            continue;
        }

        std::vector<double> baseline;
        for (std::size_t k = history - take; k < history; ++k) {
            const Point &p = trajectory.points[indices[k]];
            baseline.insert(baseline.end(), p.samples.begin(),
                            p.samples.end());
        }
        v.baselineSamples = baseline.size();
        v.baselineMedian = median(baseline);
        v.worsePct = worseShift(latest.direction, v.baselineMedian,
                                v.latestMedian);

        const RankTest test = mannWhitney(latest.samples, baseline);
        v.p = test.p;
        // The normal approximation has no power below a handful of
        // samples per side; there the median threshold alone decides
        // (a v1-era trajectory of single-value points still gates).
        const bool enough = test.usable &&
                            latest.samples.size() >= 3 &&
                            baseline.size() >= 3;
        v.tested = enough;
        const bool significant = !enough || test.p < config.alpha;
        if (!enough)
            v.note = "median-only (too few samples for rank test)";

        if (v.worsePct > config.threshold && significant)
            v.verdict = Verdict::Regressed;
        else if (v.worsePct < -config.threshold && significant)
            v.verdict = Verdict::Improved;
        else
            v.verdict = Verdict::Ok;
        rows.push_back(std::move(v));
    }
    return rows;
}

std::string
renderVerdictTable(const std::vector<LabelVerdict> &rows,
                   const SentinelConfig &config)
{
    char title[160];
    std::snprintf(title, sizeof(title),
                  "bench sentinel: newest point vs rolling baseline "
                  "(window %zu, threshold %.1f%%, alpha %.2f)",
                  config.window, config.threshold * 100.0,
                  config.alpha);
    Table t(title);
    t.setHeader({"label", "unit", "baseline", "latest", "worse",
                 "p(MWU)", "pts", "verdict"});
    for (const LabelVerdict &v : rows) {
        Table &r = t.row();
        r.cell(v.label).cell(v.unit.empty() ? "-" : v.unit);
        if (v.verdict == Verdict::Insufficient) {
            r.cell("-").cell(formatValue(v.latestMedian)).cell("-");
            r.cell("-");
        } else {
            r.cell(formatValue(v.baselineMedian));
            r.cell(formatValue(v.latestMedian));
            r.cell(formatPct(v.worsePct));
            r.cell(v.tested ? formatP(v.p) : "-");
        }
        r.cell(v.baselinePoints);
        std::string verdict = verdictName(v.verdict);
        if (!v.note.empty())
            verdict += "  (" + v.note + ")";
        r.cell(verdict);
    }
    return t.render();
}

bool
anyRegression(const std::vector<LabelVerdict> &rows)
{
    for (const LabelVerdict &v : rows)
        if (v.verdict == Verdict::Regressed)
            return true;
    return false;
}

bool
compareLabels(const Trajectory &trajectory, const std::string &labelA,
              const std::string &labelB, double budgetPct,
              CompareResult *out, std::string *error)
{
    CompareResult r;
    r.labelA = labelA;
    r.labelB = labelB;
    std::vector<double> a;
    std::vector<double> b;
    std::string direction = "higher";
    for (const Point &p : trajectory.points) {
        if (!p.hasValue)
            continue;
        if (p.label == labelA) {
            a.insert(a.end(), p.samples.begin(), p.samples.end());
            r.unit = p.unit;
            direction = p.direction;
        } else if (p.label == labelB) {
            b.insert(b.end(), p.samples.begin(), p.samples.end());
        }
    }
    if (a.empty() || b.empty()) {
        if (error)
            *error = "label '" + (a.empty() ? labelA : labelB) +
                     "' has no samples in the trajectory";
        return false;
    }
    r.samplesA = a.size();
    r.samplesB = b.size();
    r.medianA = median(a);
    r.medianB = median(b);
    r.overheadPct =
        worseShift(direction, r.medianA, r.medianB) * 100.0;
    r.p = mannWhitney(b, a).p;
    r.withinBudget = r.overheadPct <= budgetPct;
    *out = r;
    return true;
}

std::string
renderCompare(const CompareResult &r, double budgetPct)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s%s vs %s: %+.2f%% overhead %s the %.1f%% budget\n"
        "  %s median %s, %s median %s [%s], p(MWU) %s "
        "(%zu vs %zu samples)\n",
        r.withinBudget ? "" : "WARNING: ", r.labelB.c_str(),
        r.labelA.c_str(), r.overheadPct,
        r.withinBudget ? "within" : "EXCEEDS", budgetPct,
        r.labelA.c_str(),
        formatValue(r.medianA).c_str(), r.labelB.c_str(),
        formatValue(r.medianB).c_str(),
        r.unit.empty() ? "-" : r.unit.c_str(),
        formatP(r.p).c_str(), r.samplesB, r.samplesA);
    return buf;
}

} // namespace ilp::bench
