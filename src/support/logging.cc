#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace ilp {

namespace {

std::atomic<bool> throws{false};
std::atomic<std::size_t> warnings{0};

/** Active SS_DEBUG channels; `debug_any` short-circuits the common
 *  all-disabled case to one atomic load per query. */
std::mutex debug_mutex;
std::unordered_set<std::string> debug_flags;
bool debug_all = false;
std::atomic<bool> debug_any{false};
std::atomic<bool> debug_initialized{false};

void
parseDebugFlags(const std::string &csv)
{
    debug_flags.clear();
    debug_all = false;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        std::string flag = csv.substr(
            pos,
            comma == std::string::npos ? std::string::npos
                                       : comma - pos);
        if (!flag.empty()) {
            if (flag == "all")
                debug_all = true;
            debug_flags.insert(flag);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    debug_any.store(debug_all || !debug_flags.empty());
}

} // namespace

void
setDebugFlags(const std::string &csv)
{
    std::lock_guard<std::mutex> lock(debug_mutex);
    parseDebugFlags(csv);
    debug_initialized.store(true);
}

bool
debugFlagEnabled(const char *flag)
{
    if (!debug_initialized.load()) {
        std::lock_guard<std::mutex> lock(debug_mutex);
        if (!debug_initialized.load()) {
            const char *env = std::getenv("SSIM_DEBUG");
            parseDebugFlags(env ? env : "");
            debug_initialized.store(true);
        }
    }
    if (!debug_any.load())
        return false;
    std::lock_guard<std::mutex> lock(debug_mutex);
    return debug_all || debug_flags.count(flag) > 0;
}

void
setLoggingThrows(bool enable)
{
    throws.store(enable);
}

bool
loggingThrows()
{
    return throws.load();
}

std::size_t
warnCount()
{
    return warnings.load();
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = detail::concat("panic: ", msg, " @ ", file, ":", line);
    if (loggingThrows())
        throw FatalError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = detail::concat("fatal: ", msg, " @ ", file, ":", line);
    if (loggingThrows())
        throw FatalError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warnings.fetch_add(1);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const char *flag, const std::string &msg)
{
    std::fprintf(stderr, "debug[%s]: %s\n", flag, msg.c_str());
}

} // namespace detail
} // namespace ilp
