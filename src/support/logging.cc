#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ilp {

namespace {

std::atomic<bool> throws{false};
std::atomic<std::size_t> warnings{0};

} // namespace

void
setLoggingThrows(bool enable)
{
    throws.store(enable);
}

bool
loggingThrows()
{
    return throws.load();
}

std::size_t
warnCount()
{
    return warnings.load();
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = detail::concat("panic: ", msg, " @ ", file, ":", line);
    if (loggingThrows())
        throw FatalError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = detail::concat("fatal: ", msg, " @ ", file, ":", line);
    if (loggingThrows())
        throw FatalError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warnings.fetch_add(1);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace ilp
