/**
 * @file
 * ilp::stats — a hierarchical named-statistics registry, in the spirit
 * of gem5's stats framework (the same lineage as support/logging.hh).
 *
 * A Registry owns a tree of Groups; a Group owns named stats:
 *
 *  - Scalar       a settable double (elapsed cycles, fill rates);
 *  - Counter      a monotonically increasing integer;
 *  - Distribution an integer-keyed histogram with optional fixed-width
 *                 binning (issue width per cycle, block sizes);
 *  - Formula      a derived value computed at dump time from a
 *                 callable (IPC = instructions / cycles).
 *
 * dump() renders an aligned text table; json() produces the
 * machine-readable form consumed by `ssim --stats-json` and the bench
 * trajectory.  A StatsSnapshot is the frozen JSON tree of one run plus
 * dotted-path lookup helpers; RunOutcome carries one.
 *
 * Overhead discipline: hot simulator loops keep their own raw counters
 * and *export* into a Group at snapshot time, so instrumentation costs
 * nothing per event.  For stats updated inline, Registry::setEnabled
 * (false) turns add/inc/sample into a single predictable branch — the
 * zero-overhead-when-disabled contract.
 */

#ifndef SUPERSYM_SUPPORT_STATS_HH
#define SUPERSYM_SUPPORT_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "support/json.hh"

namespace ilp::stats {

class Group;
class Registry;

/** Common identity for every registered statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc, const bool *enabled)
        : name_(std::move(name)), desc_(std::move(desc)),
          enabled_(enabled)
    {
    }
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Value as JSON (numbers for scalars, an object for
     *  distributions). */
    virtual Json json() const = 0;
    /** One-line value rendering for the text dump. */
    virtual std::string display() const = 0;

  protected:
    bool enabled() const { return *enabled_; }

  private:
    std::string name_;
    std::string desc_;
    const bool *enabled_;
};

class Scalar : public Stat
{
  public:
    using Stat::Stat;
    void set(double v)
    {
        if (enabled())
            value_ = v;
    }
    void add(double v)
    {
        if (enabled())
            value_ += v;
    }
    double value() const { return value_; }
    Json json() const override { return Json(value_); }
    std::string display() const override;

  private:
    double value_ = 0.0;
};

class Counter : public Stat
{
  public:
    using Stat::Stat;
    void inc(std::uint64_t n = 1)
    {
        if (enabled())
            value_ += n;
    }
    std::uint64_t value() const { return value_; }
    Json json() const override { return Json(value_); }
    std::string display() const override;

  private:
    std::uint64_t value_ = 0;
};

/**
 * Integer-keyed histogram.  Keys are floored to multiples of
 * `bucketWidth`; width 1 keeps exact keys.
 */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc,
                 const bool *enabled, std::int64_t bucketWidth = 1);

    void sample(std::int64_t key, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    std::int64_t min() const { return min_; }
    std::int64_t max() const { return max_; }
    std::int64_t bucketWidth() const { return bucket_width_; }
    const std::map<std::int64_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

    Json json() const override;
    std::string display() const override;

  private:
    std::int64_t bucket_width_;
    std::map<std::int64_t, std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
};

/** Derived value, evaluated lazily at dump/snapshot time. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc, const bool *enabled,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc), enabled),
          fn_(std::move(fn))
    {
    }
    double value() const { return fn_(); }
    Json json() const override { return Json(value()); }
    std::string display() const override;

  private:
    std::function<double()> fn_;
};

/**
 * A named node in the stats tree.  Children (groups and stats) are
 * created on first request and live for the registry's lifetime, so
 * returned references stay valid.  Re-requesting a name returns the
 * existing entity; requesting it as a different kind panics.
 */
class Group
{
  public:
    const std::string &name() const { return name_; }

    Group &group(const std::string &name,
                 const std::string &desc = "");
    Scalar &scalar(const std::string &name,
                   const std::string &desc = "");
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "",
                               std::int64_t bucketWidth = 1);
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);

    /** JSON object of this group's stats and child groups. */
    Json json() const;

    /** Append "path.name  value  # desc" rows to `os`. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    friend class Registry;
    Group(std::string name, std::string desc, const bool *enabled)
        : name_(std::move(name)), desc_(std::move(desc)),
          enabled_(enabled)
    {
    }

    Stat *findStat(const std::string &name) const;

    std::string name_;
    std::string desc_;
    const bool *enabled_;
    /** Insertion-ordered children. */
    std::vector<std::unique_ptr<Stat>> stats_;
    std::vector<std::unique_ptr<Group>> groups_;
};

/**
 * The frozen stats of one run: a JSON tree plus lookup sugar.
 * Copyable and cheap enough to ride along in RunOutcome.
 */
struct StatsSnapshot
{
    Json root;

    bool empty() const { return !root.isObject() || root.size() == 0; }

    /** Numeric lookup by dotted path; `fallback` when absent. */
    double number(const std::string &dotted,
                  double fallback = 0.0) const;

    /** Node lookup by dotted path; nullptr when absent. */
    const Json *at(const std::string &dotted) const
    {
        return root.isObject() ? root.at(dotted) : nullptr;
    }
};

/** The root of a stats tree. */
class Registry
{
  public:
    explicit Registry(bool enabled = true);

    /** When disabled, every inline update is a no-op. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    Group &root() { return *root_; }
    const Group &root() const { return *root_; }

    /** Shorthand for root().group(name, desc). */
    Group &group(const std::string &name, const std::string &desc = "")
    {
        return root_->group(name, desc);
    }

    /** Freeze the current values (formulas evaluated now). */
    StatsSnapshot snapshot() const { return StatsSnapshot{json()}; }

    Json json() const { return root_->json(); }
    void dump(std::ostream &os) const { root_->dump(os); }

  private:
    bool enabled_;
    std::unique_ptr<Group> root_;
};

} // namespace ilp::stats

#endif // SUPERSYM_SUPPORT_STATS_HH
