#include "support/diag.hh"

namespace ilp {

const char *
errCodeId(ErrCode code)
{
    switch (code) {
      case ErrCode::None: return "E0000";

      case ErrCode::LexUnexpectedChar: return "E0101";
      case ErrCode::LexUnterminatedComment: return "E0102";
      case ErrCode::LexIntLiteralOutOfRange: return "E0103";
      case ErrCode::LexRealLiteralOutOfRange: return "E0104";
      case ErrCode::LexStrayDot: return "E0105";

      case ErrCode::ParseUnexpectedToken: return "E0201";
      case ErrCode::ParseBadTopLevel: return "E0202";
      case ErrCode::ParseBadArraySize: return "E0203";
      case ErrCode::ParseBadInitializer: return "E0204";
      case ErrCode::ParseLocalArray: return "E0205";
      case ErrCode::ParseForStepVariable: return "E0206";
      case ErrCode::ParseTooManyErrors: return "E0207";

      case ErrCode::SemaRedeclaration: return "E0301";
      case ErrCode::SemaUndefined: return "E0302";
      case ErrCode::SemaTypeMismatch: return "E0303";
      case ErrCode::SemaBadCall: return "E0304";
      case ErrCode::SemaBreakOutsideLoop: return "E0305";
      case ErrCode::SemaBadLoopVariable: return "E0306";
      case ErrCode::SemaBadReturn: return "E0307";

      case ErrCode::TrapDivideByZero: return "E0401";
      case ErrCode::TrapOutOfBoundsMemory: return "E0402";
      case ErrCode::TrapMisalignedMemory: return "E0403";
      case ErrCode::TrapBadJump: return "E0404";
      case ErrCode::TrapFuelExhausted: return "E0405";
      case ErrCode::TrapStackOverflow: return "E0406";
      case ErrCode::TrapCallDepthExceeded: return "E0407";
      case ErrCode::TrapNoEntry: return "E0408";
      case ErrCode::TrapTransientFault: return "E0409";
      case ErrCode::TrapDeadlineExceeded: return "E0410";

      case ErrCode::OptTempRegsExhausted: return "E0501";

      case ErrCode::IoError: return "E0901";
      case ErrCode::JsonParseError: return "E0902";
      case ErrCode::ResourceExhausted: return "E0903";
      case ErrCode::Internal: return "E0999";
    }
    return "E????";
}

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::None: return "none";

      case ErrCode::LexUnexpectedChar: return "lex-unexpected-char";
      case ErrCode::LexUnterminatedComment:
        return "lex-unterminated-comment";
      case ErrCode::LexIntLiteralOutOfRange:
        return "lex-int-literal-out-of-range";
      case ErrCode::LexRealLiteralOutOfRange:
        return "lex-real-literal-out-of-range";
      case ErrCode::LexStrayDot: return "lex-stray-dot";

      case ErrCode::ParseUnexpectedToken:
        return "parse-unexpected-token";
      case ErrCode::ParseBadTopLevel: return "parse-bad-top-level";
      case ErrCode::ParseBadArraySize: return "parse-bad-array-size";
      case ErrCode::ParseBadInitializer:
        return "parse-bad-initializer";
      case ErrCode::ParseLocalArray: return "parse-local-array";
      case ErrCode::ParseForStepVariable:
        return "parse-for-step-variable";
      case ErrCode::ParseTooManyErrors: return "parse-too-many-errors";

      case ErrCode::SemaRedeclaration: return "sema-redeclaration";
      case ErrCode::SemaUndefined: return "sema-undefined";
      case ErrCode::SemaTypeMismatch: return "sema-type-mismatch";
      case ErrCode::SemaBadCall: return "sema-bad-call";
      case ErrCode::SemaBreakOutsideLoop:
        return "sema-break-outside-loop";
      case ErrCode::SemaBadLoopVariable:
        return "sema-bad-loop-variable";
      case ErrCode::SemaBadReturn: return "sema-bad-return";

      case ErrCode::TrapDivideByZero: return "trap-divide-by-zero";
      case ErrCode::TrapOutOfBoundsMemory:
        return "trap-out-of-bounds-memory";
      case ErrCode::TrapMisalignedMemory:
        return "trap-misaligned-memory";
      case ErrCode::TrapBadJump: return "trap-bad-jump";
      case ErrCode::TrapFuelExhausted: return "trap-fuel-exhausted";
      case ErrCode::TrapStackOverflow: return "trap-stack-overflow";
      case ErrCode::TrapCallDepthExceeded:
        return "trap-call-depth-exceeded";
      case ErrCode::TrapNoEntry: return "trap-no-entry";
      case ErrCode::TrapTransientFault: return "trap-transient-fault";
      case ErrCode::TrapDeadlineExceeded:
        return "trap-deadline-exceeded";

      case ErrCode::OptTempRegsExhausted:
        return "opt-temp-regs-exhausted";

      case ErrCode::IoError: return "io-error";
      case ErrCode::JsonParseError: return "json-parse-error";
      case ErrCode::ResourceExhausted: return "resource-exhausted";
      case ErrCode::Internal: return "internal";
    }
    return "unknown";
}

bool
errCodeTransient(ErrCode code)
{
    switch (code) {
      case ErrCode::TrapTransientFault:
      case ErrCode::ResourceExhausted:
        return true;
      default:
        return false;
    }
}

std::string
SourceLoc::str() const
{
    std::string out = unit.empty() ? "<input>" : unit;
    if (line > 0) {
        out += ':';
        out += std::to_string(line);
        if (col > 0) {
            out += ':';
            out += std::to_string(col);
        }
    }
    return out;
}

std::string
Diag::format() const
{
    const char *sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    std::string out = loc.str();
    out += ": ";
    out += sev;
    out += '[';
    out += errCodeId(code);
    out += "]: ";
    out += message;
    return out;
}

void
DiagEngine::report(Diag d)
{
    if (d.severity == Severity::Error)
        ++errors_;
    diags_.push_back(std::move(d));
}

void
DiagEngine::error(ErrCode code, SourceLoc loc, std::string message)
{
    report(Diag{Severity::Error, code, std::move(message),
                std::move(loc)});
}

void
DiagEngine::warning(ErrCode code, SourceLoc loc, std::string message)
{
    report(Diag{Severity::Warning, code, std::move(message),
                std::move(loc)});
}

std::string
DiagEngine::formatAll() const
{
    return formatDiags(diags_);
}

std::string
formatDiags(const std::vector<Diag> &diags)
{
    std::string out;
    for (const Diag &d : diags) {
        if (!out.empty())
            out += '\n';
        out += d.format();
    }
    return out;
}

ErrCode
firstErrorCode(const std::vector<Diag> &diags)
{
    for (const Diag &d : diags) {
        if (d.severity == Severity::Error)
            return d.code;
    }
    return ErrCode::None;
}

namespace {

std::string
firstErrorLine(const std::vector<Diag> &diags)
{
    for (const Diag &d : diags) {
        if (d.severity == Severity::Error)
            return d.format();
    }
    return diags.empty() ? std::string("unspecified failure")
                         : diags.front().format();
}

} // namespace

DiagException::DiagException(std::vector<Diag> diags)
    : std::runtime_error(firstErrorLine(diags)),
      diags_(std::move(diags))
{
}

DiagException::DiagException(Diag diag)
    : std::runtime_error(diag.format()), diags_({std::move(diag)})
{
}

} // namespace ilp
