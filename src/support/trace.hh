/**
 * @file
 * ilp::trace — the span flight recorder: low-overhead wall-clock
 * tracing of the whole pipeline (compile, functional execution,
 * timing replay, cache waits, sweep cells), exported as Chrome
 * tracing JSON with one timeline track per worker thread.
 *
 * Design rules, in order:
 *
 *  1. **No lock on the hot path.**  Spans are appended to a
 *     thread-local buffer; the only mutex is taken once per thread
 *     per recording session (registration) and once at drain time.
 *     Recording threads must be joined before Recorder::stop() —
 *     SweepRunner guarantees this by construction.
 *  2. **Zero cost when off.**  With no session active, constructing a
 *     ScopedSpan is a single relaxed atomic load and a branch: no
 *     clock read, no allocation.  Configuring with
 *     -DSSIM_DISABLE_FLIGHT_RECORDER=ON compiles the recorder out
 *     entirely (every call site collapses to nothing).
 *  3. **Never perturb results.**  Spans observe wall time only; they
 *     touch no simulator state, so traced and untraced sweeps produce
 *     byte-identical simulation output (enforced by check.sh).
 *
 * Span names are static strings (categories too); the optional
 * `detail` annotation is the only per-span allocation and is built
 * only while a session is active.  Worker tracks are labelled by
 * SweepRunner ("worker 0" is the calling thread), so a sweep's trace
 * shows exactly where every worker spent its wall-clock time —
 * compiling, executing, replaying, or parked on another worker's
 * cache future.
 */

#ifndef SUPERSYM_SUPPORT_TRACE_HH
#define SUPERSYM_SUPPORT_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ilp::trace {

/** One completed span, in microseconds since the session epoch. */
struct Span
{
    const char *name = "";
    const char *cat = "";
    /** Optional dynamic annotation (cell index, workload, E-code). */
    std::string detail;
    double startUs = 0.0;
    double durUs = 0.0;
    /** Timeline track (worker id for sweep threads). */
    std::uint32_t track = 0;
};

/** Everything one recording session captured. */
struct Recording
{
    /** Spans sorted by (track, start, longest-first). */
    std::vector<Span> spans;
    /** track id -> label ("worker 3"), sorted by track. */
    std::vector<std::pair<std::uint32_t, std::string>> tracks;
};

#ifndef SSIM_NO_FLIGHT_RECORDER

/** Is a recording session active?  One relaxed load. */
bool active();

/**
 * Append `detail` to the innermost active span on this thread (a
 * no-op when no span or no session is active).  Lets keep-going
 * sweeps stamp a trapped cell's E-code onto the cell span instead of
 * truncating the worker timeline.
 */
void annotateCurrentSpan(const std::string &detail);

/**
 * Bind the current thread to a timeline track.  SweepRunner labels
 * its pool "worker 0" (the calling thread) through "worker N-1";
 * unlabelled threads get tracks after the labelled ones at drain.
 */
void setThreadTrack(std::uint32_t track, const std::string &label);

/**
 * RAII span.  Construct with *static* name/category strings; the
 * span is recorded (on this thread's buffer) when the scope exits.
 * When no session is active, construction and destruction are a
 * branch each.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *cat);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Recording?  Guard any work done only to build `detail`. */
    bool armed() const { return armed_; }
    /** Attach/append a dynamic annotation. */
    void detail(const std::string &d);

  private:
    friend void annotateCurrentSpan(const std::string &);

    const char *name_ = "";
    const char *cat_ = "";
    std::string detail_;
    std::int64_t startNs_ = 0;
    ScopedSpan *parent_ = nullptr;
    bool armed_ = false;
};

/** The process-wide recorder. */
class Recorder
{
  public:
    static Recorder &instance();

    /** Begin a session: clears prior buffers, sets the epoch, and
     *  arms ScopedSpan.  Restarting an active session is allowed. */
    void start();

    /**
     * End the session and drain every thread buffer.  All recording
     * threads must have been joined (SweepRunner does); spans from a
     * thread still inside a ScopedSpan are dropped.
     */
    Recording stop();

  private:
    Recorder() = default;
};

#else // SSIM_NO_FLIGHT_RECORDER: every call site compiles to nothing.

inline bool active() { return false; }
inline void annotateCurrentSpan(const std::string &) {}
inline void setThreadTrack(std::uint32_t, const std::string &) {}

class ScopedSpan
{
  public:
    ScopedSpan(const char *, const char *) {}
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    bool armed() const { return false; }
    void detail(const std::string &) {}
};

class Recorder
{
  public:
    static Recorder &instance()
    {
        static Recorder r;
        return r;
    }
    void start() {}
    Recording stop() { return {}; }

  private:
    Recorder() = default;
};

#endif // SSIM_NO_FLIGHT_RECORDER

} // namespace ilp::trace

#endif // SUPERSYM_SUPPORT_TRACE_HH
