#include "support/statistics.hh"

#include <cmath>

#include "support/logging.hh"

namespace ilp {

double
harmonicMean(const std::vector<double> &values)
{
    SS_ASSERT(!values.empty(), "harmonicMean of empty vector");
    double denom = 0.0;
    for (double v : values) {
        SS_ASSERT(v > 0.0, "harmonicMean requires positive values");
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    SS_ASSERT(!values.empty(), "arithmeticMean of empty vector");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    SS_ASSERT(!values.empty(), "geometricMean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        SS_ASSERT(v > 0.0, "geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
RunningStat::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

double
RunningStat::mean() const
{
    SS_ASSERT(count_ > 0, "mean of empty RunningStat");
    return sum_ / static_cast<double>(count_);
}

double
RunningStat::min() const
{
    SS_ASSERT(count_ > 0, "min of empty RunningStat");
    return min_;
}

double
RunningStat::max() const
{
    SS_ASSERT(count_ > 0, "max of empty RunningStat");
    return max_;
}

void
Histogram::add(std::int64_t key, std::uint64_t weight)
{
    buckets_[key] += weight;
    total_ += weight;
}

double
Histogram::mean() const
{
    SS_ASSERT(total_ > 0, "mean of empty Histogram");
    double acc = 0.0;
    for (const auto &[k, w] : buckets_)
        acc += static_cast<double>(k) * static_cast<double>(w);
    return acc / static_cast<double>(total_);
}

} // namespace ilp
