/**
 * @file
 * A minimal JSON document model with a writer and a strict parser.
 *
 * Exists so the observability layer (support/stats.hh, the ssim
 * `--stats-json` / `--trace-events` outputs, and the bench stats
 * trajectory) can emit and *re-validate* structured telemetry without
 * an external dependency.  The parser accepts exactly RFC 8259 JSON
 * (no comments, no trailing commas) and reports malformed input
 * through fatal() so tests can observe failures via FatalError.
 *
 * Numbers are stored as doubles; integral values round-trip exactly up
 * to 2^53, which covers every counter the simulator produces in
 * practice (the fuel limit caps runs at 2e9 instructions).  RFC 8259
 * has no representation for inf/NaN, so a non-finite double becomes
 * JSON null at construction time — the in-memory document always
 * matches what dump() will emit, and equality/round-trip behave.
 */

#ifndef SUPERSYM_SUPPORT_JSON_HH
#define SUPERSYM_SUPPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ilp {

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    /** Key order is preserved (insertion order) for readable dumps. */
    using Object = std::vector<std::pair<std::string, Json>>;
    using Array = std::vector<Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    /** A non-finite double has no JSON form; it becomes null. */
    Json(double d)
        : kind_(std::isfinite(d) ? Kind::Number : Kind::Null),
          num_(std::isfinite(d) ? d : 0.0)
    {
    }
    Json(int v) : kind_(Kind::Number), num_(v) {}
    Json(std::int64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Json(std::uint64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed access; panics on a kind mismatch (internal misuse). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Append to an array (panics unless this is an array). */
    Json &push(Json v);

    /** Set a key on an object (panics unless this is an object);
     *  an existing key is overwritten in place. */
    Json &set(const std::string &key, Json v);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /**
     * Dotted-path lookup through nested objects ("issue.stall.raw");
     * nullptr when any component is missing.
     */
    const Json *at(const std::string &dotted) const;

    std::size_t size() const;

    /**
     * Serialize.  indent < 0 gives the compact one-line form;
     * indent >= 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse a complete JSON document; fatal() on malformed input. */
    static Json parse(const std::string &text);

    /**
     * Non-fatal parse: true and fill `out` on success; false on
     * malformed input, leaving `out` untouched and describing the
     * problem in `error` when given.  For callers (trajectory
     * readers, validators) that must survive corrupt files.
     */
    static bool tryParse(const std::string &text, Json &out,
                         std::string *error = nullptr);

    /** Structural equality (number comparison is exact). */
    bool operator==(const Json &other) const;

  private:
    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace ilp

#endif // SUPERSYM_SUPPORT_JSON_HH
