#include "support/buildinfo.hh"

#ifndef SS_BUILD_VERSION
#define SS_BUILD_VERSION "unknown"
#endif
#ifndef SS_BUILD_TYPE
#define SS_BUILD_TYPE "unknown"
#endif

namespace ilp {

const char *
buildVersion()
{
    return SS_BUILD_VERSION;
}

const char *
buildType()
{
    return SS_BUILD_TYPE;
}

Json
buildMeta()
{
    Json meta = Json::object();
    meta.set("generator", "supersym");
    meta.set("version", buildVersion());
    meta.set("build", buildType());
    return meta;
}

} // namespace ilp
