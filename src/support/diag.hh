/**
 * @file
 * Structured, recoverable diagnostics.
 *
 * The original error story was gem5-style: user errors call fatal()
 * and the process exits.  That is fine for a one-shot CLI but fatal
 * for the sweep engine, where one malformed MT program or trapping
 * cell must not take down the other few thousand cells.  This file is
 * the containment layer:
 *
 *  - Diag           one diagnostic: severity, a *stable* error code,
 *                   a message, and a file:line:col source location.
 *  - DiagEngine     collects diagnostics during a phase (the lexer,
 *                   parser and codegen all report here), with an
 *                   error limit so pathological inputs cannot produce
 *                   unbounded output.
 *  - Result<T>      value-or-diagnostics return type for checked
 *                   entry points (parseProgramChecked,
 *                   compileToIrChecked, compileWorkloadChecked).
 *  - DiagException  the exception form, for crossing layers that
 *                   cannot return Result (CompileCache futures, sweep
 *                   cells).  Carries the full diagnostic list.
 *
 * fatal() remains, but only as a thin wrapper at the CLI edge: the
 * legacy unchecked entry points format the collected diagnostics and
 * hand them to SS_FATAL.  Library code below the CLI never exits.
 *
 * Error codes are stable strings ("E0201"), grouped by layer:
 *   E01xx lexical   E02xx parse     E03xx semantic/codegen
 *   E04xx traps     E05xx compile limits   E09xx generic
 * They appear in diagnostics, sweep cell errors, and JSON output;
 * tests and downstream tooling key on them, so codes are append-only.
 */

#ifndef SUPERSYM_SUPPORT_DIAG_HH
#define SUPERSYM_SUPPORT_DIAG_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ilp {

enum class Severity
{
    Note,
    Warning,
    Error,
};

/** Stable error codes; see the header comment for the numbering. */
enum class ErrCode
{
    None = 0,

    // Lexical (E01xx).
    LexUnexpectedChar,
    LexUnterminatedComment,
    LexIntLiteralOutOfRange,
    LexRealLiteralOutOfRange,
    LexStrayDot,

    // Parse (E02xx).
    ParseUnexpectedToken,
    ParseBadTopLevel,
    ParseBadArraySize,
    ParseBadInitializer,
    ParseLocalArray,
    ParseForStepVariable,
    ParseTooManyErrors,

    // Semantic / codegen (E03xx).
    SemaRedeclaration,
    SemaUndefined,
    SemaTypeMismatch,
    SemaBadCall,
    SemaBreakOutsideLoop,
    SemaBadLoopVariable,
    SemaBadReturn,

    // Simulator traps (E04xx).
    TrapDivideByZero,
    TrapOutOfBoundsMemory,
    TrapMisalignedMemory,
    TrapBadJump,
    TrapFuelExhausted,
    TrapStackOverflow,
    TrapCallDepthExceeded,
    TrapNoEntry,
    TrapTransientFault,
    TrapDeadlineExceeded,

    // Compile-environment limits (E05xx).
    OptTempRegsExhausted,

    // Generic (E09xx).
    IoError,
    JsonParseError,
    ResourceExhausted,
    Internal,
};

/** The stable wire id, e.g. "E0201". */
const char *errCodeId(ErrCode code);

/** A short kebab-case name, e.g. "parse-unexpected-token". */
const char *errCodeName(ErrCode code);

/**
 * Transient errors are environmental — a resource shortage or an
 * injected/worker fault that a retry of the *same* deterministic
 * computation may not hit again.  Everything else (malformed input,
 * genuine simulator traps, deadline expiry of a deterministic run) is
 * permanent: retrying reproduces it exactly, so hardened sweeps
 * quarantine instead of retrying.
 */
bool errCodeTransient(ErrCode code);

/** A source position; line/col are 1-based, 0 means "unknown". */
struct SourceLoc
{
    std::string unit; ///< File or unit name ("<input>" by default).
    int line = 0;
    int col = 0;

    /** "unit:line:col", omitting trailing unknown components. */
    std::string str() const;
};

/** One diagnostic. */
struct Diag
{
    Severity severity = Severity::Error;
    ErrCode code = ErrCode::None;
    std::string message;
    SourceLoc loc;

    /** "unit:line:col: error[E0201]: message" */
    std::string format() const;
};

/**
 * Collects diagnostics during a frontend phase.  Cheap to construct;
 * one engine per checked compile.  Reporting never throws — callers
 * that need to abort (the parser's recovery machinery) check
 * atErrorLimit() and unwind themselves.
 */
class DiagEngine
{
  public:
    /** @param error_limit Errors after which clients should stop
     *  (a ParseTooManyErrors note is appended when reached). */
    explicit DiagEngine(std::size_t error_limit = 25)
        : error_limit_(error_limit)
    {
    }

    void report(Diag d);
    void error(ErrCode code, SourceLoc loc, std::string message);
    void warning(ErrCode code, SourceLoc loc, std::string message);

    bool hasErrors() const { return errors_ > 0; }
    std::size_t errorCount() const { return errors_; }
    bool atErrorLimit() const { return errors_ >= error_limit_; }

    const std::vector<Diag> &diags() const { return diags_; }
    std::vector<Diag> takeDiags() { return std::move(diags_); }

    /** All diagnostics, one formatted line each, '\n'-separated. */
    std::string formatAll() const;

  private:
    std::vector<Diag> diags_;
    std::size_t errors_ = 0;
    std::size_t error_limit_;
};

/** Render a diagnostic list, one formatted line each. */
std::string formatDiags(const std::vector<Diag> &diags);

/** First error code in a list (ErrCode::None if there is none). */
ErrCode firstErrorCode(const std::vector<Diag> &diags);

/**
 * Exception form of a diagnostic list, for layers that propagate
 * errors through futures or sweep cells rather than Result<T>.
 * what() is the formatted first error.
 */
class DiagException : public std::runtime_error
{
  public:
    explicit DiagException(std::vector<Diag> diags);
    explicit DiagException(Diag diag);

    const std::vector<Diag> &diags() const { return diags_; }
    ErrCode code() const { return firstErrorCode(diags_); }

  private:
    std::vector<Diag> diags_;
};

/**
 * Value-or-diagnostics result of a checked operation.  A failed
 * Result always carries at least one Error-severity diagnostic; a
 * successful one may still carry warnings.
 */
template <typename T>
class Result
{
  public:
    static Result
    success(T value, std::vector<Diag> diags = {})
    {
        Result r;
        r.value_ = std::move(value);
        r.diags_ = std::move(diags);
        return r;
    }

    static Result
    failure(std::vector<Diag> diags)
    {
        Result r;
        if (diags.empty()) {
            diags.push_back(Diag{Severity::Error, ErrCode::Internal,
                                 "unspecified failure", {}});
        }
        r.diags_ = std::move(diags);
        return r;
    }

    bool ok() const { return value_.has_value(); }

    T &value() & { return *value_; }
    const T &value() const & { return *value_; }
    /** Move the value out (ok() must hold). */
    T take() { return std::move(*value_); }

    const std::vector<Diag> &diags() const { return diags_; }
    std::vector<Diag> takeDiags() { return std::move(diags_); }

    /** First error code ("" section of a success: ErrCode::None). */
    ErrCode code() const { return firstErrorCode(diags_); }

    /** Formatted diagnostics, one per line. */
    std::string formatErrors() const { return formatDiags(diags_); }

    /** Throw the failure as a DiagException (ok() must not hold). */
    [[noreturn]] void
    raise() const
    {
        throw DiagException(diags_);
    }

  private:
    Result() = default;

    std::optional<T> value_;
    std::vector<Diag> diags_;
};

} // namespace ilp

#endif // SUPERSYM_SUPPORT_DIAG_HH
