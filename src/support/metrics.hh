/**
 * @file
 * ilp::metrics — process-wide runtime metrics for the pipeline layer
 * (sweeps, caches, compile/execute/replay phases): counters, gauges,
 * and bounded-error streaming histograms with quantile queries.
 *
 * How this differs from ilp::stats: a stats Registry is built per
 * *run* and frozen into the RunOutcome snapshot, so it must be
 * byte-deterministic across job counts; metrics are *operational*
 * process totals (how many cells ran, how long compiles took, cache
 * hit rates) that accumulate across every Study in the process and
 * are exported on demand — the `ssim --metrics-json` /
 * Prometheus-exposition surface that ssimd will serve over the wire.
 * Where the two overlap (cache hit counters, cell counts) they are
 * two independent accounting paths over the same events, and a
 * test-enforced invariant keeps them reconciled exactly — the PALMED
 * lesson that measurement layers need their own validation story.
 *
 * Concurrency: every update is a relaxed atomic; no locks anywhere on
 * the update path.  Registration (find-or-create by name) takes a
 * mutex but is meant to happen once per call site via a static
 * reference.  Registry::setEnabled(false) turns every update into a
 * single predictable branch.
 *
 * Histograms are log-linear (HDR-style): each power of two is split
 * into kSubBuckets linear sub-buckets, bounding the relative error of
 * any quantile estimate by 1/kSubBuckets (~3.1%) while keeping
 * observe() to a handful of integer ops and one relaxed increment.
 */

#ifndef SUPERSYM_SUPPORT_METRICS_HH
#define SUPERSYM_SUPPORT_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace ilp::metrics {

class Registry;

/** Common identity for every registered metric. */
class Metric
{
  public:
    Metric(std::string name, std::string help,
           const std::atomic<bool> *enabled)
        : name_(std::move(name)), help_(std::move(help)),
          enabled_(enabled)
    {
    }
    virtual ~Metric() = default;

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

    /** Prometheus TYPE keyword: "counter", "gauge", "summary". */
    virtual const char *type() const = 0;
    /** Value as JSON (number, or an object for histograms). */
    virtual Json json() const = 0;
    /** Append Prometheus exposition lines (no HELP/TYPE header). */
    virtual void exposition(std::string &out) const = 0;
    /** Zero the value, keeping the registration (for tests). */
    virtual void reset() = 0;

  protected:
    bool enabled() const
    {
        return enabled_->load(std::memory_order_relaxed);
    }

  private:
    std::string name_;
    std::string help_;
    const std::atomic<bool> *enabled_;
};

/** Monotonic event count.  inc() is one relaxed fetch_add. */
class Counter : public Metric
{
  public:
    using Metric::Metric;

    void inc(std::uint64_t n = 1)
    {
        if (enabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const char *type() const override { return "counter"; }
    Json json() const override { return Json(value()); }
    void exposition(std::string &out) const override;
    void reset() override { value_.store(0); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (bytes held, utilization). */
class Gauge : public Metric
{
  public:
    using Metric::Metric;

    void set(double v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const char *type() const override { return "gauge"; }
    Json json() const override { return Json(value()); }
    void exposition(std::string &out) const override;
    void reset() override { value_.store(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Bounded-error streaming histogram over non-negative doubles.
 * observe() maps the value to one of a fixed set of log-linear
 * buckets (no allocation, one relaxed increment); quantile(q)
 * returns the geometric midpoint of the bucket holding the q-th
 * sample, which is within a factor of (1 + 1/kSubBuckets) of the
 * exact order statistic.
 */
class Histogram : public Metric
{
  public:
    /** Linear sub-buckets per power of two; bounds relative error. */
    static constexpr int kSubBuckets = 32;
    /** Binary exponents covered: [-kExpRange, +kExpRange).  Values
     *  outside clamp to the edge buckets (1e-12s .. 1e12 for spans —
     *  far beyond anything the pipeline produces). */
    static constexpr int kExpRange = 40;
    /** Bucket 0 holds zero and negative observations. */
    static constexpr int kNumBuckets = 2 * kExpRange * kSubBuckets + 1;

    Histogram(std::string name, std::string help,
              const std::atomic<bool> *enabled);

    void observe(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /**
     * Estimate of the q-th quantile (q in [0, 1]) of everything
     * observed so far; 0 when empty.  Relative error is bounded by
     * the bucket width (1/kSubBuckets).
     */
    double quantile(double q) const;

    const char *type() const override { return "summary"; }
    Json json() const override;
    void exposition(std::string &out) const override;
    void reset() override;

    /**
     * Fold another histogram's observations into this one (bucket-wise
     * sum; identical bucketing makes this exact — quantile error after
     * a merge is no worse than either input's).  Used to combine
     * per-shard histograms into one process view.  Not atomic as a
     * whole: concurrent observes on either side land in one or the
     * other, never lost.
     */
    void merge(const Histogram &other);

    /** Bucket index for a value; exposed for tests. */
    static int bucketIndex(double v);
    /** Representative (geometric midpoint) value of a bucket. */
    static double bucketValue(int index);

  private:
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The process-wide metric registry.  Metrics are created on first
 * request and live forever; returned references are stable, so call
 * sites cache them in a static and pay only the atomic update per
 * event.  Requesting an existing name as a different kind panics.
 */
class Registry
{
  public:
    /** The global registry (what the CLI exports). */
    static Registry &global();

    explicit Registry(bool enabled = true) : enabled_(enabled) {}

    /** When disabled, every inc/set/observe is a no-op branch. */
    void setEnabled(bool enabled) { enabled_.store(enabled); }
    bool enabled() const { return enabled_.load(); }

    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::string &help = "");

    /** Snapshot as a JSON object: name -> {type, help, value...}. */
    Json json() const;

    /**
     * Prometheus text exposition format (version 0.0.4): HELP/TYPE
     * comments plus one sample line per value, histograms as
     * summaries with p50/p90/p99 quantile labels.
     */
    std::string prometheus() const;

    /** Zero every registered metric (tests; keeps registrations so
     *  cached references stay valid). */
    void reset();

  private:
    Metric *find(const std::string &name) const;

    template <typename T>
    T &getOrCreate(const std::string &name, const std::string &help);

    std::atomic<bool> enabled_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Metric>> metrics_;
};

/**
 * RAII wall-clock timer feeding a histogram in seconds.  Costs two
 * steady_clock reads when the registry is enabled, one branch when
 * not.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Registry &registry, Histogram &h)
        : hist_(registry.enabled() ? &h : nullptr)
    {
        if (hist_)
            t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (hist_) {
            hist_->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count());
        }
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *hist_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace ilp::metrics

#endif // SUPERSYM_SUPPORT_METRICS_HH
