#include "support/stats.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace ilp::stats {

namespace {

std::string
fmtDouble(double v)
{
    char buf[48];
    double r = v < 0 ? -v : v;
    // Counters and cycle totals print as integers; rates keep 6
    // significant digits.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        r < 9.0e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
Scalar::display() const
{
    return fmtDouble(value_);
}

std::string
Counter::display() const
{
    return fmtDouble(static_cast<double>(value_));
}

std::string
Formula::display() const
{
    return fmtDouble(value());
}

Distribution::Distribution(std::string name, std::string desc,
                           const bool *enabled,
                           std::int64_t bucketWidth)
    : Stat(std::move(name), std::move(desc), enabled),
      bucket_width_(bucketWidth)
{
    SS_ASSERT(bucketWidth >= 1, "Distribution bucket width must be >= 1");
}

void
Distribution::sample(std::int64_t key, std::uint64_t weight)
{
    if (!enabled() || weight == 0)
        return;
    // Floor-divide so negative keys bin consistently.
    std::int64_t q = key / bucket_width_;
    if (key % bucket_width_ != 0 && key < 0)
        --q;
    buckets_[q * bucket_width_] += weight;
    if (count_ == 0) {
        min_ = key;
        max_ = key;
    } else {
        min_ = std::min(min_, key);
        max_ = std::max(max_, key);
    }
    count_ += weight;
    sum_ += static_cast<double>(key) * static_cast<double>(weight);
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Json
Distribution::json() const
{
    Json j = Json::object();
    j.set("count", Json(count_));
    j.set("sum", Json(sum_));
    j.set("mean", Json(mean()));
    j.set("min", Json(min_));
    j.set("max", Json(max_));
    j.set("bucket_width", Json(bucket_width_));
    Json buckets = Json::object();
    for (const auto &[k, v] : buckets_)
        buckets.set(std::to_string(k), Json(v));
    j.set("buckets", std::move(buckets));
    return j;
}

std::string
Distribution::display() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.3f min=%lld max=%lld",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<long long>(min_),
                  static_cast<long long>(max_));
    return buf;
}

// -------------------------------------------------------------- Group

Stat *
Group::findStat(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

Group &
Group::group(const std::string &name, const std::string &desc)
{
    for (const auto &g : groups_) {
        if (g->name() == name)
            return *g;
    }
    SS_ASSERT(!findStat(name), "stats: '", name,
              "' already registered as a stat, not a group");
    groups_.emplace_back(new Group(name, desc, enabled_));
    return *groups_.back();
}

template <typename T, typename... Args>
static T &
getOrCreate(std::vector<std::unique_ptr<Stat>> &stats,
            const std::string &name, Args &&...args)
{
    for (const auto &s : stats) {
        if (s->name() == name) {
            T *typed = dynamic_cast<T *>(s.get());
            SS_ASSERT(typed, "stats: '", name,
                      "' re-requested as a different stat kind");
            return *typed;
        }
    }
    stats.emplace_back(new T(name, std::forward<Args>(args)...));
    return static_cast<T &>(*stats.back());
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    return getOrCreate<Scalar>(stats_, name, desc, enabled_);
}

Counter &
Group::counter(const std::string &name, const std::string &desc)
{
    return getOrCreate<Counter>(stats_, name, desc, enabled_);
}

Distribution &
Group::distribution(const std::string &name, const std::string &desc,
                    std::int64_t bucketWidth)
{
    return getOrCreate<Distribution>(stats_, name, desc, enabled_,
                                     bucketWidth);
}

Formula &
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    return getOrCreate<Formula>(stats_, name, desc, enabled_,
                                std::move(fn));
}

Json
Group::json() const
{
    Json j = Json::object();
    for (const auto &s : stats_)
        j.set(s->name(), s->json());
    for (const auto &g : groups_)
        j.set(g->name(), g->json());
    return j;
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &s : stats_) {
        std::string path = prefix + s->name();
        os << path;
        if (path.size() < 40)
            os << std::string(40 - path.size(), ' ');
        os << ' ' << s->display();
        if (!s->desc().empty())
            os << "   # " << s->desc();
        os << '\n';
    }
    for (const auto &g : groups_)
        g->dump(os, prefix + g->name() + ".");
}

// ----------------------------------------------------------- Registry

Registry::Registry(bool enabled)
    : enabled_(enabled), root_(new Group("", "", &enabled_))
{
}

double
StatsSnapshot::number(const std::string &dotted, double fallback) const
{
    const Json *j = at(dotted);
    return j && j->isNumber() ? j->asNumber() : fallback;
}

} // namespace ilp::stats
