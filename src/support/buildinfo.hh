/**
 * @file
 * Build provenance for emitted artifacts.
 *
 * Every machine-readable document the toolchain writes (--stats-json,
 * profile JSON, trace-event files) carries a `meta` object naming the
 * build that produced it, so archived results stay comparable: a diff
 * between two profile files that disagree on `meta.version` is telling
 * you about two toolchains, not two machines.
 */

#ifndef SUPERSYM_SUPPORT_BUILDINFO_HH
#define SUPERSYM_SUPPORT_BUILDINFO_HH

#include <string>

#include "support/json.hh"

namespace ilp {

/** `git describe --always --dirty` at configure time ("unknown" when
 *  built outside a git checkout). */
const char *buildVersion();

/** CMAKE_BUILD_TYPE at configure time ("unknown" when unset). */
const char *buildType();

/**
 * The standard provenance object: {"generator", "version", "build"}
 * plus any caller-added keys.  Attach as the document's "meta" key.
 */
Json buildMeta();

} // namespace ilp

#endif // SUPERSYM_SUPPORT_BUILDINFO_HH
