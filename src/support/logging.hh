/**
 * @file
 * Status and error reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated: a supersym bug.
 *            Aborts (can dump core).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad machine description, malformed source).  Exits(1).
 * warn()   — something is modelled approximately; keep going.
 * inform() — plain status output.
 * SS_DEBUG(flag, ...) — developer tracing on a named channel, enabled
 *            at runtime via the SSIM_DEBUG environment variable
 *            (comma-separated channels, e.g. SSIM_DEBUG=issue,cache;
 *            "all" enables everything) or setDebugFlags().
 *
 * All of them accept printf-free, iostream-free formatting via a small
 * variadic string builder so call sites stay terse.
 */

#ifndef SUPERSYM_SUPPORT_LOGGING_HH
#define SUPERSYM_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace ilp {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Implementation hooks; they live in logging.cc so tests can observe. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const char *flag, const std::string &msg);

} // namespace detail

/**
 * Exception thrown by fatal() and panic() when throw-mode is enabled
 * (used by the test suite so death paths are testable in-process).
 */
struct FatalError : std::runtime_error
{
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/**
 * When true, panic()/fatal() throw FatalError instead of terminating.
 * Tests flip this on; library code never does.
 */
void setLoggingThrows(bool enable);
bool loggingThrows();

/** Count of warnings emitted so far (tests assert on deltas). */
std::size_t warnCount();

/**
 * Replace the active debug-channel set ("issue,cache", "all", or ""
 * for none).  The set is otherwise initialized lazily from the
 * SSIM_DEBUG environment variable on first query.
 */
void setDebugFlags(const std::string &csv);

/** Is the named SS_DEBUG channel enabled? */
bool debugFlagEnabled(const char *flag);

} // namespace ilp

#define SS_PANIC(...) \
    ::ilp::detail::panicImpl(__FILE__, __LINE__, \
                             ::ilp::detail::concat(__VA_ARGS__))

#define SS_FATAL(...) \
    ::ilp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ilp::detail::concat(__VA_ARGS__))

#define SS_WARN(...) \
    ::ilp::detail::warnImpl(::ilp::detail::concat(__VA_ARGS__))

#define SS_INFORM(...) \
    ::ilp::detail::informImpl(::ilp::detail::concat(__VA_ARGS__))

/**
 * Developer tracing on channel `flag` (a string literal).  The message
 * is built only when the channel is enabled, so disabled channels cost
 * one predicate call.
 */
#define SS_DEBUG(flag, ...) \
    do { \
        if (::ilp::debugFlagEnabled(flag)) { \
            ::ilp::detail::debugImpl( \
                flag, ::ilp::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Assert an internal invariant; compiled in all build types. */
#define SS_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SS_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // SUPERSYM_SUPPORT_LOGGING_HH
