/**
 * @file
 * A small fixed-column text table printer used by the benchmark
 * harness to emit the paper's tables and figure series as aligned rows.
 */

#ifndef SUPERSYM_SUPPORT_TABLE_HH
#define SUPERSYM_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace ilp {

/**
 * Accumulates rows of string cells and renders them with per-column
 * widths, a header rule, and an optional title.  Numeric convenience
 * overloads format doubles with a fixed precision.
 */
class Table
{
  public:
    /** @param title Rendered above the table; empty to omit. */
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Begin a new row. */
    Table &row();

    /** Append one cell to the current row. */
    Table &cell(const std::string &text);
    Table &cell(const char *text);
    Table &cell(double value, int precision = 2);
    Table &cell(long long value);
    Table &cell(int value) { return cell(static_cast<long long>(value)); }
    Table &cell(std::size_t value)
    {
        return cell(static_cast<long long>(value));
    }

    /** Number of data rows so far. */
    std::size_t rows() const { return body_.size(); }

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> body_;
};

/** Format a double with fixed precision (helper shared with Table). */
std::string formatFixed(double value, int precision);

} // namespace ilp

#endif // SUPERSYM_SUPPORT_TABLE_HH
