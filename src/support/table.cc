#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/logging.hh"

namespace ilp {

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

Table &
Table::row()
{
    body_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    SS_ASSERT(!body_.empty(), "cell() before row()");
    body_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : body_)
        widen(r);

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << "  ";
            os << cells[i];
            // Pad all but the last column.
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cells[i].size(), ' ');
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : body_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
}

} // namespace ilp
