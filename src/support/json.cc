#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace ilp {

bool
Json::asBool() const
{
    SS_ASSERT(kind_ == Kind::Bool, "Json: not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    SS_ASSERT(kind_ == Kind::Number, "Json: not a number");
    return num_;
}

const std::string &
Json::asString() const
{
    SS_ASSERT(kind_ == Kind::String, "Json: not a string");
    return str_;
}

const Json::Array &
Json::asArray() const
{
    SS_ASSERT(kind_ == Kind::Array, "Json: not an array");
    return arr_;
}

const Json::Object &
Json::asObject() const
{
    SS_ASSERT(kind_ == Kind::Object, "Json: not an object");
    return obj_;
}

Json &
Json::push(Json v)
{
    SS_ASSERT(kind_ == Kind::Array, "Json::push on a non-array");
    arr_.push_back(std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    SS_ASSERT(kind_ == Kind::Object, "Json::set on a non-object");
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json *
Json::at(const std::string &dotted) const
{
    const Json *cur = this;
    std::size_t pos = 0;
    while (pos <= dotted.size()) {
        std::size_t dot = dotted.find('.', pos);
        std::string key = dotted.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        cur = cur->find(key);
        if (!cur)
            return nullptr;
        if (dot == std::string::npos)
            return cur;
        pos = dot + 1;
    }
    return nullptr;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

namespace {

void
writeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    double r = std::floor(v);
    if (r == v && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        writeNumber(out, num_);
        break;
      case Kind::String:
        writeString(out, str_);
        break;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            arr_[i].write(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            writeString(out, obj_[i].first);
            out += indent >= 0 ? ": " : ":";
            obj_[i].second.write(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

// ------------------------------------------------------------- parser

namespace {

/** Internal parse failure; surfaced as fatal() by parse() and as a
 *  false return by tryParse(). */
struct ParseError
{
    std::string message;
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing data after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw ParseError{detail::concat("JSON parse error at offset ",
                                        pos_, ": ", what)};
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Json(nullptr);
          default:
            return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json out = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = string();
            skipWs();
            expect(':');
            out.set(key, value());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                return out;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    array()
    {
        expect('[');
        Json out = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.push(value());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                return out;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two separate 3-byte units —
                // our telemetry never emits them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("malformed number");
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::size_t used = 0;
        double v = 0.0;
        const std::string tok = text_.substr(start, pos_ - start);
        try {
            v = std::stod(tok, &used);
        } catch (...) {
            fail("malformed number");
        }
        if (used != tok.size())
            fail("malformed number");
        return Json(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    try {
        Parser p(text);
        return p.document();
    } catch (const ParseError &e) {
        SS_FATAL(e.message);
    }
}

bool
Json::tryParse(const std::string &text, Json &out, std::string *error)
{
    try {
        Parser p(text);
        out = p.document();
        return true;
    } catch (const ParseError &e) {
        if (error)
            *error = e.message;
        return false;
    }
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::Number: return num_ == other.num_;
      case Kind::String: return str_ == other.str_;
      case Kind::Array: return arr_ == other.arr_;
      case Kind::Object: return obj_ == other.obj_;
    }
    return false;
}

} // namespace ilp
