/**
 * @file
 * Bench harness v2: robust summary statistics, the versioned
 * `bench-v2` perf-trajectory schema, and the statistical regression
 * sentinel behind `ssim bench-check`.
 *
 * Why this layer exists: BENCH_*.json datapoints used to be bare
 * {artifact, label, stats} rows with no provenance and the only
 * regression gate was a single-sample 2% threshold — exactly the
 * "wrong data without doing anything obviously wrong" trap.  v2
 * datapoints carry per-repetition samples, robust summaries (median,
 * MAD, bootstrap CI on the median), and a provenance block (git
 * describe, build type, host hash, UTC timestamp), and the sentinel
 * compares the newest point per label against a rolling baseline
 * window with a Mann-Whitney U rank test plus a relative-median
 * threshold — noise cannot flip the verdict with one lucky sample,
 * and a real shift cannot hide behind a loose mean.
 *
 * Everything here is deterministic given its inputs: the bootstrap is
 * seeded (splitmix64), verdict tables render byte-stably, and the
 * only wall-clock read is the timestamp stamped into new datapoints
 * (overridable via SSIM_BENCH_TIME_UTC for reproducible tests).
 *
 * The v2 row shape (one JSON object per appended datapoint):
 *
 *   { "schema": "bench-v2", "artifact": ..., "label": ...,
 *     "meta": {generator, version, build, host_hash, timestamp_utc},
 *     "config": {repetitions, warmup_dropped, iterations, bootstrap},
 *     "unit": "instr_per_s", "direction": "higher", "value": <median>,
 *     "samples": [...], "summary": {n, mean, median, mad, ci_lo,
 *                                   ci_hi, min, max},
 *     "stats": {...} }            // optional full snapshot payload
 *
 * v1 rows ({artifact, label, stats}) still load: the loader extracts
 * a headline value from stats.throughput and normalizes them to
 * points with null provenance (see docs/observability.md).
 */

#ifndef SUPERSYM_SUPPORT_BENCH_HH
#define SUPERSYM_SUPPORT_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hh"

namespace ilp::bench {

// ------------------------------------------------ robust summaries

/** Bootstrap resamples used for the CI on the median. */
inline constexpr int kBootstrapIterations = 200;
/** Fixed bootstrap seed: summaries are reproducible by default. */
inline constexpr std::uint64_t kBootstrapSeed = 0x5eed5eedULL;

/** Median of `values` (by value; the copy is sorted).  0 on empty. */
double median(std::vector<double> values);

/**
 * Robust summary of one repetition set: median, MAD (median absolute
 * deviation, the robust spread), and a seeded-bootstrap 95% CI on
 * the median.  Deterministic for a given (samples, iterations, seed).
 */
struct SampleSummary
{
    std::size_t n = 0;
    double mean = 0.0;
    double median = 0.0;
    double mad = 0.0;
    double ciLo = 0.0; ///< bootstrap 2.5th percentile of the median
    double ciHi = 0.0; ///< bootstrap 97.5th percentile of the median
    double min = 0.0;
    double max = 0.0;
};

SampleSummary summarize(const std::vector<double> &samples,
                        int bootstrapIterations = kBootstrapIterations,
                        std::uint64_t seed = kBootstrapSeed);

/**
 * Two-sided Mann-Whitney U rank test: are samples `a` and `b` drawn
 * from the same distribution?  Normal approximation with tie
 * correction and continuity correction — adequate from a handful of
 * samples up; `usable` is false when either side is empty or every
 * value is tied (no rank information), in which case p is 1.
 */
struct RankTest
{
    double u = 0.0; ///< U statistic for `a`
    double z = 0.0; ///< normal deviate
    double p = 1.0; ///< two-sided p-value
    bool usable = false;
};

RankTest mannWhitney(const std::vector<double> &a,
                     const std::vector<double> &b);

// ---------------------------------------------- trajectory schema

inline constexpr const char *kSchemaV2 = "bench-v2";
inline constexpr const char *kSchemaV1 = "bench-v1";

/**
 * One loaded trajectory datapoint, normalized: v1 rows surface here
 * with schema "bench-v1", null meta/config/summary, and a headline
 * value extracted from stats.throughput (instr_per_s, then
 * cells_per_s, then wall_s).
 */
struct Point
{
    std::string schema;
    std::string artifact;
    std::string label;
    std::string unit;      ///< e.g. "instr_per_s", "wall_s"
    std::string direction; ///< "higher" or "lower" is better
    bool hasValue = false;
    double value = 0.0;            ///< headline scalar (the median)
    std::vector<double> samples;   ///< per-repetition values
    Json meta;    ///< provenance block (null for v1 rows)
    Json config;  ///< run configuration (null for v1 rows)
    Json summary; ///< robust summary (null for v1 rows)
    Json stats;   ///< optional stats-snapshot payload
};

/** Host identity hash (uname + core count), stamped into meta so
 *  trajectories mixing machines are diffable. */
std::uint64_t hostHash();

/** ISO-8601 UTC timestamp; SSIM_BENCH_TIME_UTC overrides for tests. */
std::string utcTimestamp();

/** The v2 provenance block: generator, version (git describe), build
 *  type, host hash, UTC timestamp. */
Json pointMeta();

/**
 * Build a v2 datapoint from per-repetition samples.  `value` is the
 * sample median; `summary` is computed with the default seeded
 * bootstrap.  `config` and `stats` may be null.
 */
Json makePoint(const std::string &artifact, const std::string &label,
               const std::string &unit, const std::string &direction,
               const std::vector<double> &samples, Json config,
               Json stats = Json());

/** Build a v2 datapoint that carries only a stats-snapshot payload
 *  (the figure binaries' trajectory entries). */
Json makeStatsPoint(const std::string &artifact,
                    const std::string &label, Json stats);

/** Parse one trajectory row (v1 or v2) into a normalized Point. */
Point parsePoint(const Json &row);

/** Serialize a Point as a v2 row.  When `nullProvenance` is set the
 *  meta block is emitted with null fields (historical rows migrated
 *  from v1 have no recorded provenance). */
Json pointToJson(const Point &point, bool nullProvenance = false);

/** A loaded trajectory, points in file (append) order. */
struct Trajectory
{
    std::vector<Point> points;
    std::size_t legacyRows = 0; ///< rows that loaded via the v1 path
};

/** Load a trajectory file (a JSON array of v1/v2 rows).  False with
 *  `error` filled on unreadable file or malformed JSON. */
bool loadTrajectory(const std::string &path, Trajectory *out,
                    std::string *error);

/**
 * Append one datapoint to the trajectory at `path`, creating it as a
 * fresh array when missing.  Concurrency-safe: a process-local mutex
 * covers threads, an advisory flock() on `path+".lock"` covers
 * parallel processes, and the file is replaced via temp + atomic
 * rename.  An unparsable existing file is preserved as `path+".bak"`
 * and the trajectory restarts (appends must never fail the bench).
 */
bool appendPoint(const std::string &path, const Json &row,
                 std::string *error);

/**
 * Rewrite the trajectory at `path` with every row in the v2 schema,
 * in place (temp + atomic rename).  v1 rows gain null provenance
 * fields; v2 rows pass through byte-for-byte semantically.  Returns
 * false with `error` filled on I/O or parse failure; `migrated`
 * (optional) receives the number of rows converted.
 */
bool migrateTrajectory(const std::string &path, std::string *error,
                       std::size_t *migrated = nullptr);

// ----------------------------------- sample recorder (bench main)

/**
 * Accumulate one per-repetition sample for `label`.  Benchmark
 * binaries call this once per timed run; flushSamples() then folds
 * every label's samples into a single v2 datapoint.  `iterations`
 * is the benchmark's inner-iteration count for the run — runs with
 * fewer than half the label's maximum count are treated as warmup
 * (google-benchmark's calibration runs) and dropped at flush time.
 */
void recordSample(const std::string &label, const std::string &unit,
                  const std::string &direction, double value,
                  std::uint64_t iterations);

/**
 * Append one v2 datapoint per recorded label (in first-record order)
 * to the trajectory at `path`, then clear the recorder.  No-op when
 * nothing was recorded.  Append failures warn on stderr but never
 * fail the bench.
 */
void flushSamples(const std::string &artifact,
                  const std::string &path);

// ------------------------------------------------------- sentinel

struct SentinelConfig
{
    std::size_t window = 8;      ///< baseline points per label
    std::size_t minBaseline = 3; ///< fewer -> insufficient data
    double alpha = 0.05;         ///< rank-test significance level
    double threshold = 0.05;     ///< relative-median delta that matters
};

enum class Verdict
{
    Ok,           ///< within threshold, or shift not significant
    Regressed,    ///< significantly worse than baseline
    Improved,     ///< significantly better than baseline
    Insufficient, ///< not enough baseline points to judge
};

const char *verdictName(Verdict verdict);

/** Per-label sentinel outcome (one row of the verdict table). */
struct LabelVerdict
{
    std::string label;
    std::string unit;
    Verdict verdict = Verdict::Insufficient;
    std::size_t baselinePoints = 0;
    std::size_t baselineSamples = 0;
    std::size_t latestSamples = 0;
    double baselineMedian = 0.0;
    double latestMedian = 0.0;
    /** Relative shift, positive = worse (direction-aware). */
    double worsePct = 0.0;
    double p = 1.0;      ///< two-sided Mann-Whitney p-value
    bool tested = false; ///< rank test had enough samples to matter
    std::string note;
};

/**
 * Judge the newest datapoint of every label against its rolling
 * baseline window (the preceding `window` points, samples pooled).
 * A label regresses when its worse-direction median shift exceeds
 * `threshold` AND the rank test rejects at `alpha` (when enough
 * samples exist for the test to have power; otherwise the median
 * threshold alone decides, flagged in the note).  Labels whose
 * points carry no numeric value (pure stats snapshots) are skipped.
 * Output order follows first appearance in the trajectory.
 */
std::vector<LabelVerdict> sentinelCheck(const Trajectory &trajectory,
                                        const SentinelConfig &config);

/** Render the verdict table (byte-stable for identical input). */
std::string renderVerdictTable(const std::vector<LabelVerdict> &rows,
                               const SentinelConfig &config);

bool anyRegression(const std::vector<LabelVerdict> &rows);

/** Head-to-head comparison of two labels in one trajectory (the
 *  tracing-overhead / bytecode-speed guards): pooled samples, median
 *  overhead of `labelB` relative to `labelA`, rank-test p-value. */
struct CompareResult
{
    std::string labelA;
    std::string labelB;
    std::string unit;
    std::size_t samplesA = 0;
    std::size_t samplesB = 0;
    double medianA = 0.0;
    double medianB = 0.0;
    /** Relative cost of B vs A, positive = B worse (direction-aware). */
    double overheadPct = 0.0;
    double p = 1.0;
    bool withinBudget = false;
};

/** False with `error` filled when either label is missing or has no
 *  samples.  `budgetPct` is the allowed overhead in percent. */
bool compareLabels(const Trajectory &trajectory,
                   const std::string &labelA, const std::string &labelB,
                   double budgetPct, CompareResult *out,
                   std::string *error);

/** Render the comparison verdict (byte-stable, one paragraph). */
std::string renderCompare(const CompareResult &r, double budgetPct);

} // namespace ilp::bench

#endif // SUPERSYM_SUPPORT_BENCH_HH
