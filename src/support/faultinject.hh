/**
 * @file
 * ilp::fault — seeded, deterministic fault injection for sweep
 * survivability testing.
 *
 * A fault plan is a comma-separated list of rules,
 *
 *     SSIM_FAULT=site:kind:rate:seed[,site:kind:rate:seed...]
 *
 * where
 *   site   names an injection point threaded through the pipeline
 *          ("compile", "execute", "cell", "interp", "depgraph",
 *          "tracecache.insert", "tracecache.evict"), or "*" to match
 *          every site of the rule's kind;
 *   kind   is what happens when the rule fires:
 *            alloc   throw std::bad_alloc (memory pressure) — the
 *                    containment layer maps it to E0903;
 *            trap    throw TrapException with E0409
 *                    trap-transient-fault (a transient worker fault);
 *            evict   force a cache eviction decision (only consulted
 *                    by the caches via shouldEvict());
 *            exit    _exit(137) the process at the draw whose index
 *                    equals the rule's seed field (kill-mid-sweep);
 *   rate   is the firing probability in [0, 1] ("0.01" = 1%);
 *   seed   is a uint64 mixed into every draw (for "exit": the draw
 *          index that kills the process).
 *
 * Determinism: each site keeps an atomic draw counter; draw i of site
 * s under seed k fires iff splitmix64(k ^ hash(s) ^ i) < rate * 2^64.
 * The *sequence* of draws at a site depends on sweep execution order,
 * so cross-thread firing patterns vary with --jobs — what is
 * deterministic is the decision for a given (site, seed, index)
 * triple, which makes single-threaded tests exactly reproducible and
 * multi-threaded chaos runs statistically controlled.
 *
 * The disabled fast path (no SSIM_FAULT, no configure()) is one
 * relaxed atomic load per site visit.  Every injected fault is
 * counted in the ssim_faults_injected_total metric.
 */

#ifndef SUPERSYM_SUPPORT_FAULTINJECT_HH
#define SUPERSYM_SUPPORT_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace ilp::fault {

/** True when at least one rule is armed (one relaxed load). */
bool enabled();

/**
 * Visit an injection site: evaluates every armed "alloc"/"trap"/
 * "exit" rule matching @p site and throws (or exits) if one fires.
 * No-op when injection is disabled.  The containment guarantee is
 * that everything thrown here is an exception the sweep layer
 * already classifies: std::bad_alloc -> E0903, TrapException(E0409).
 */
void maybeInject(const char *site);

/**
 * Consult "evict" rules for @p site.  Returns true when a forced
 * eviction should happen; never throws.  Caches call this where they
 * already know how to evict.
 */
bool shouldEvict(const char *site);

/**
 * (Re)arm injection from a plan string; replaces any existing plan.
 * Returns false (and disarms) when the spec is malformed.  Passing
 * an empty string disarms.  Tests use this instead of the
 * environment variable.
 */
bool configure(const std::string &spec);

/** Disarm all rules and zero the draw counters. */
void reset();

/** Total faults injected so far (mirrors the metric; for tests). */
std::uint64_t injectedCount();

/** Arm from $SSIM_FAULT if set; called once from the CLI edge. */
void configureFromEnv();

} // namespace ilp::fault

#endif // SUPERSYM_SUPPORT_FAULTINJECT_HH
