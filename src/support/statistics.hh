/**
 * @file
 * Small statistics helpers used across the study: means (arithmetic,
 * harmonic, geometric) and a streaming scalar/histogram accumulator.
 *
 * The paper reports the harmonic mean of per-benchmark speedups
 * (Section 4.3 plots a "single curve for the harmonic mean of all
 * eight benchmarks"), so harmonicMean() is the headline aggregator.
 */

#ifndef SUPERSYM_SUPPORT_STATISTICS_HH
#define SUPERSYM_SUPPORT_STATISTICS_HH

#include <cstdint>
#include <map>
#include <vector>

namespace ilp {

/** Harmonic mean of strictly positive values. Panics on empty input. */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean. Panics on empty input. */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean of strictly positive values. Panics on empty input. */
double geometricMean(const std::vector<double> &values);

/**
 * Streaming accumulator for a scalar sample: count, sum, min, max.
 */
class RunningStat
{
  public:
    void add(double v);
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Integer-keyed histogram (e.g. instructions issued per cycle).
 */
class Histogram
{
  public:
    void add(std::int64_t key, std::uint64_t weight = 1);
    std::uint64_t total() const { return total_; }
    /** Weighted mean of the keys. */
    double mean() const;
    const std::map<std::int64_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

} // namespace ilp

#endif // SUPERSYM_SUPPORT_STATISTICS_HH
