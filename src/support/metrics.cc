#include "support/metrics.hh"

#include <cmath>

#include "support/logging.hh"

namespace ilp::metrics {

namespace {

/** Render a double the way the JSON writer does: integral values
 *  without a fraction, everything else with enough digits. */
std::string
renderNumber(double v)
{
    return Json(v).dump();
}

void
sampleLine(std::string &out, const std::string &name,
           const std::string &labels, double value)
{
    out += name;
    out += labels;
    out += ' ';
    out += renderNumber(value);
    out += '\n';
}

} // namespace

// ------------------------------------------------------------ Counter

void
Counter::exposition(std::string &out) const
{
    sampleLine(out, name(), "", static_cast<double>(value()));
}

// -------------------------------------------------------------- Gauge

void
Gauge::exposition(std::string &out) const
{
    sampleLine(out, name(), "", value());
}

// ---------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::string help,
                     const std::atomic<bool> *enabled)
    : Metric(std::move(name), std::move(help), enabled),
      buckets_(kNumBuckets)
{
}

int
Histogram::bucketIndex(double v)
{
    if (!(v > 0.0) || !std::isfinite(v))
        return 0; // zero, negative, and NaN all land in the floor
    int exp = 0;
    const double frac = std::frexp(v, &exp); // v = frac * 2^exp
    if (exp < -kExpRange)
        return 1;
    if (exp >= kExpRange)
        return kNumBuckets - 1;
    // frac is in [0.5, 1): spread it over kSubBuckets linear slots.
    int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    return 1 + (exp + kExpRange) * kSubBuckets + sub;
}

double
Histogram::bucketValue(int index)
{
    if (index <= 0)
        return 0.0;
    const int linear = index - 1;
    const int exp = linear / kSubBuckets - kExpRange;
    const int sub = linear % kSubBuckets;
    // Midpoint of the sub-bucket [0.5 + s/2k, 0.5 + (s+1)/2k) * 2^exp.
    const double frac = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
    return std::ldexp(frac, exp);
}

void
Histogram::observe(double v)
{
    if (!enabled())
        return;
    buckets_[static_cast<std::size_t>(bucketIndex(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(std::isfinite(v) ? v : 0.0,
                   std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-th order statistic (nearest-rank definition).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
        if (seen >= rank)
            return bucketValue(i);
    }
    return bucketValue(kNumBuckets - 1);
}

Json
Histogram::json() const
{
    Json o = Json::object();
    o.set("count", Json(count()));
    o.set("sum", Json(sum()));
    o.set("p50", Json(quantile(0.50)));
    o.set("p90", Json(quantile(0.90)));
    o.set("p99", Json(quantile(0.99)));
    return o;
}

void
Histogram::exposition(std::string &out) const
{
    sampleLine(out, name(), "{quantile=\"0.5\"}", quantile(0.50));
    sampleLine(out, name(), "{quantile=\"0.9\"}", quantile(0.90));
    sampleLine(out, name(), "{quantile=\"0.99\"}", quantile(0.99));
    sampleLine(out, name() + "_sum", "", sum());
    sampleLine(out, name() + "_count", "",
               static_cast<double>(count()));
}

void
Histogram::merge(const Histogram &other)
{
    std::uint64_t observations = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t n =
            other.buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
        if (n == 0)
            continue;
        buckets_[static_cast<std::size_t>(i)].fetch_add(
            n, std::memory_order_relaxed);
        observations += n;
    }
    // Mirror the other side's count/sum totals, not its count_ field:
    // a concurrent observe() on `other` between the bucket pass and
    // here must not make count_ disagree with the bucket sums.
    count_.fetch_add(observations, std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0);
    count_.store(0);
    sum_.store(0.0);
}

// ------------------------------------------------------------ Registry

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Metric *
Registry::find(const std::string &name) const
{
    for (const auto &m : metrics_) {
        if (m->name() == name)
            return m.get();
    }
    return nullptr;
}

template <typename T>
T &
Registry::getOrCreate(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Metric *existing = find(name)) {
        T *typed = dynamic_cast<T *>(existing);
        SS_ASSERT(typed, "metric '", name,
                  "' already registered as a different kind");
        return *typed;
    }
    auto created = std::make_unique<T>(name, help, &enabled_);
    T &ref = *created;
    metrics_.push_back(std::move(created));
    return ref;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    return getOrCreate<Counter>(name, help);
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    return getOrCreate<Gauge>(name, help);
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help)
{
    return getOrCreate<Histogram>(name, help);
}

Json
Registry::json() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Json root = Json::object();
    for (const auto &m : metrics_) {
        Json entry = Json::object();
        entry.set("type", Json(m->type()));
        entry.set("help", Json(m->help()));
        entry.set("value", m->json());
        root.set(m->name(), std::move(entry));
    }
    return root;
}

std::string
Registry::prometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto &m : metrics_) {
        if (!m->help().empty()) {
            out += "# HELP ";
            out += m->name();
            out += ' ';
            out += m->help();
            out += '\n';
        }
        out += "# TYPE ";
        out += m->name();
        out += ' ';
        out += m->type();
        out += '\n';
        m->exposition(out);
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &m : metrics_)
        m->reset();
}

} // namespace ilp::metrics
