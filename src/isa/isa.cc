#include "isa/isa.hh"

#include "support/logging.hh"

namespace ilp {

namespace {

struct OpInfo
{
    std::string_view name;
    InstrClass cls;
};

constexpr std::array<OpInfo, kNumOpcodes> op_info = [] {
    std::array<OpInfo, kNumOpcodes> t{};
    auto set = [&t](Opcode op, std::string_view name, InstrClass cls) {
        t[static_cast<std::size_t>(op)] = OpInfo{name, cls};
    };
    set(Opcode::AddI, "add", InstrClass::IntAdd);
    set(Opcode::SubI, "sub", InstrClass::IntAdd);
    set(Opcode::MulI, "mul", InstrClass::IntMul);
    set(Opcode::DivI, "div", InstrClass::IntDiv);
    set(Opcode::RemI, "rem", InstrClass::IntDiv);
    set(Opcode::CmpEqI, "cmpeq", InstrClass::IntAdd);
    set(Opcode::CmpNeI, "cmpne", InstrClass::IntAdd);
    set(Opcode::CmpLtI, "cmplt", InstrClass::IntAdd);
    set(Opcode::CmpLeI, "cmple", InstrClass::IntAdd);
    set(Opcode::CmpGtI, "cmpgt", InstrClass::IntAdd);
    set(Opcode::CmpGeI, "cmpge", InstrClass::IntAdd);
    set(Opcode::AndI, "and", InstrClass::Logical);
    set(Opcode::OrI, "or", InstrClass::Logical);
    set(Opcode::XorI, "xor", InstrClass::Logical);
    set(Opcode::NotI, "not", InstrClass::Logical);
    set(Opcode::ShlI, "shl", InstrClass::Shift);
    set(Opcode::ShrAI, "shra", InstrClass::Shift);
    set(Opcode::ShrLI, "shrl", InstrClass::Shift);
    set(Opcode::MovI, "mov", InstrClass::Move);
    set(Opcode::LiI, "li", InstrClass::Move);
    set(Opcode::MovF, "fmov", InstrClass::Move);
    set(Opcode::LiF, "fli", InstrClass::Move);
    set(Opcode::LoadW, "ld", InstrClass::Load);
    set(Opcode::StoreW, "st", InstrClass::Store);
    set(Opcode::LoadF, "fld", InstrClass::Load);
    set(Opcode::StoreF, "fst", InstrClass::Store);
    set(Opcode::AddF, "fadd", InstrClass::FPAdd);
    set(Opcode::SubF, "fsub", InstrClass::FPAdd);
    set(Opcode::NegF, "fneg", InstrClass::FPAdd);
    set(Opcode::CmpEqF, "fcmpeq", InstrClass::FPAdd);
    set(Opcode::CmpNeF, "fcmpne", InstrClass::FPAdd);
    set(Opcode::CmpLtF, "fcmplt", InstrClass::FPAdd);
    set(Opcode::CmpLeF, "fcmple", InstrClass::FPAdd);
    set(Opcode::CmpGtF, "fcmpgt", InstrClass::FPAdd);
    set(Opcode::CmpGeF, "fcmpge", InstrClass::FPAdd);
    set(Opcode::MulF, "fmul", InstrClass::FPMul);
    set(Opcode::DivF, "fdiv", InstrClass::FPDiv);
    set(Opcode::AbsF, "fabs", InstrClass::FPAdd);
    set(Opcode::CvtIF, "cvtif", InstrClass::FPCvt);
    set(Opcode::CvtFI, "cvtfi", InstrClass::FPCvt);
    set(Opcode::Br, "br", InstrClass::Branch);
    set(Opcode::Jmp, "jmp", InstrClass::Jump);
    set(Opcode::Call, "call", InstrClass::Branch);
    set(Opcode::Ret, "ret", InstrClass::Branch);
    return t;
}();

constexpr std::array<std::string_view, kNumInstrClasses> class_names = {
    "add/sub", "mul", "div", "logical", "shift", "move", "load",
    "store", "branch", "jump", "fpadd", "fpmul", "fpdiv", "fpcvt",
};

} // namespace

std::string_view
instrClassName(InstrClass cls)
{
    SS_ASSERT(cls < InstrClass::NumClasses, "bad instruction class");
    return class_names[static_cast<std::size_t>(cls)];
}

InstrClass
opcodeClass(Opcode op)
{
    SS_ASSERT(op < Opcode::NumOpcodes, "bad opcode");
    return op_info[static_cast<std::size_t>(op)].cls;
}

std::string_view
opcodeName(Opcode op)
{
    SS_ASSERT(op < Opcode::NumOpcodes, "bad opcode");
    return op_info[static_cast<std::size_t>(op)].name;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LoadW || op == Opcode::LoadF;
}

bool
isStore(Opcode op)
{
    return op == Opcode::StoreW || op == Opcode::StoreF;
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Ret;
}

bool
producesFloat(Opcode op)
{
    switch (op) {
      case Opcode::MovF:
      case Opcode::LiF:
      case Opcode::LoadF:
      case Opcode::AddF:
      case Opcode::SubF:
      case Opcode::NegF:
      case Opcode::AbsF:
      case Opcode::MulF:
      case Opcode::DivF:
      case Opcode::CvtIF:
        return true;
      default:
        return false;
    }
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::AddI: case Opcode::SubI: case Opcode::MulI:
      case Opcode::DivI: case Opcode::RemI:
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
      case Opcode::AndI: case Opcode::OrI: case Opcode::XorI:
      case Opcode::ShlI: case Opcode::ShrAI: case Opcode::ShrLI:
      case Opcode::AddF: case Opcode::SubF: case Opcode::MulF:
      case Opcode::DivF:
      case Opcode::CmpEqF: case Opcode::CmpNeF: case Opcode::CmpLtF:
      case Opcode::CmpLeF: case Opcode::CmpGtF: case Opcode::CmpGeF:
        return true;
      default:
        return false;
    }
}

bool
isUnaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::NotI: case Opcode::NegF: case Opcode::AbsF:
      case Opcode::CvtIF: case Opcode::CvtFI:
      case Opcode::MovI: case Opcode::MovF:
        return true;
      default:
        return false;
    }
}

bool
isCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEqI: case Opcode::CmpNeI: case Opcode::CmpLtI:
      case Opcode::CmpLeI: case Opcode::CmpGtI: case Opcode::CmpGeI:
      case Opcode::CmpEqF: case Opcode::CmpNeF: case Opcode::CmpLtF:
      case Opcode::CmpLeF: case Opcode::CmpGtF: case Opcode::CmpGeF:
        return true;
      default:
        return false;
    }
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::AddI: case Opcode::MulI:
      case Opcode::AndI: case Opcode::OrI: case Opcode::XorI:
      case Opcode::AddF: case Opcode::MulF:
      case Opcode::CmpEqI: case Opcode::CmpNeI:
      case Opcode::CmpEqF: case Opcode::CmpNeF:
        return true;
      default:
        return false;
    }
}

bool
isReassociable(Opcode op)
{
    switch (op) {
      case Opcode::AddI: case Opcode::MulI:
      case Opcode::AddF: case Opcode::MulF:
        return true;
      default:
        return false;
    }
}

} // namespace ilp
