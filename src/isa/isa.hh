/**
 * @file
 * The target instruction set: a MultiTitan-like load/store RISC.
 *
 * Following Section 3 of Jouppi & Wall (1989), "we group the MultiTitan
 * operations into fourteen classes, selected so that operations in a
 * given class are likely to have identical pipeline behavior in any
 * machine."  Every opcode below maps to exactly one InstrClass; machine
 * descriptions (src/core/machine) assign operation latencies and
 * functional units per class, never per opcode.
 *
 * The machine is word-addressed in spirit: every scalar (integer or
 * IEEE double) occupies one 8-byte word, and addresses are byte
 * addresses that are always word-aligned.
 */

#ifndef SUPERSYM_ISA_ISA_HH
#define SUPERSYM_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace ilp {

/** Bytes per machine word (both int and double are one word). */
inline constexpr std::int64_t kWordBytes = 8;

/**
 * The fourteen instruction classes of the study.  Kept in a fixed
 * order so machine descriptions can be dense arrays indexed by class.
 */
enum class InstrClass : std::uint8_t
{
    IntAdd,     ///< integer add/subtract/compare (the "add/sub" class)
    IntMul,     ///< integer multiply
    IntDiv,     ///< integer divide/remainder (not a "simple" operation)
    Logical,    ///< and/or/xor/not
    Shift,      ///< shifts
    Move,       ///< register moves and immediate materialization
    Load,       ///< single-word load (integer or FP)
    Store,      ///< single-word store (integer or FP)
    Branch,     ///< conditional branches, calls, returns
    Jump,       ///< unconditional jumps
    FPAdd,      ///< FP add/subtract/compare/negate
    FPMul,      ///< FP multiply
    FPDiv,      ///< FP divide (not a "simple" operation)
    FPCvt,      ///< int<->FP conversions
    NumClasses
};

/** Number of instruction classes as a constant for array sizing. */
inline constexpr std::size_t kNumInstrClasses =
    static_cast<std::size_t>(InstrClass::NumClasses);

/** Short mnemonic for an instruction class ("add", "load", ...). */
std::string_view instrClassName(InstrClass cls);

/**
 * Opcodes of the intermediate/target code.  Three-address register
 * form; the second source of ALU opcodes may instead be an immediate.
 */
enum class Opcode : std::uint8_t
{
    // Integer arithmetic (class IntAdd unless noted).
    AddI, SubI,
    MulI,                       // class IntMul
    DivI, RemI,                 // class IntDiv
    // Integer compares produce 0/1 (class IntAdd).
    CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
    // Logical (class Logical).
    AndI, OrI, XorI, NotI,
    // Shifts (class Shift).
    ShlI, ShrAI, ShrLI,
    // Moves / immediates (class Move).
    MovI, LiI,
    MovF, LiF,
    // Memory (classes Load / Store).  Load: dst <- [src1 + imm].
    // Store: [src1 + imm] <- src2.
    LoadW, StoreW,
    LoadF, StoreF,
    // FP arithmetic.
    AddF, SubF, NegF,           // class FPAdd
    CmpEqF, CmpNeF, CmpLtF, CmpLeF, CmpGtF, CmpGeF, // class FPAdd
    MulF,                       // class FPMul
    DivF,                       // class FPDiv
    AbsF,                       // class FPAdd
    // Conversions (class FPCvt).
    CvtIF,                      // int -> double
    CvtFI,                      // double -> int (truncating)
    // Control (classes Branch / Jump).
    Br,                         // branch if src1 != 0
    Jmp,
    Call,
    Ret,
    NumOpcodes
};

/** Number of opcodes as a constant for array sizing. */
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** The instruction class an opcode belongs to. */
InstrClass opcodeClass(Opcode op);

/** Assembly-style mnemonic ("add", "ld", "br", ...). */
std::string_view opcodeName(Opcode op);

/** True for LoadW/LoadF. */
bool isLoad(Opcode op);
/** True for StoreW/StoreF. */
bool isStore(Opcode op);
/** True for any memory-referencing opcode. */
inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }
/** True for Br/Jmp/Ret (block terminators). Call is not a terminator. */
bool isTerminator(Opcode op);
/** True if the opcode's result (and FP sources) are double-typed. */
bool producesFloat(Opcode op);
/** True for two-register-source ALU/FP computational opcodes. */
bool isBinaryAlu(Opcode op);
/** True for single-register-source computational opcodes. */
bool isUnaryAlu(Opcode op);
/** True for the six integer or six FP compare opcodes. */
bool isCompare(Opcode op);

/**
 * Commutativity (a op b == b op a) — used by local CSE and
 * reassociation.
 */
bool isCommutative(Opcode op);

/**
 * Associativity under the study's "careful unrolling" rules: the paper
 * reassociates "long strings of additions or multiplications" (§4.4),
 * deliberately using operator associativity knowledge even for FP.
 */
bool isReassociable(Opcode op);

/**
 * Register identifiers.  Virtual registers are dense indices assigned
 * by the IR builder; physical registers are assigned by register
 * allocation.  kNoReg marks an absent operand.
 */
using Reg = std::uint32_t;
inline constexpr Reg kNoReg = 0xffffffffu;

/**
 * Identifies a static instruction of the *final* machine code: the
 * index of the instruction in module layout order (function by
 * function, block by block), assigned by Module::assignPcs() after
 * the last code-changing pass.  The profiler keys every per-
 * instruction counter by this id; kNoPc marks instructions that never
 * went through pc assignment (hand-built modules, pre-opt IR).
 */
using Pc = std::uint32_t;
inline constexpr Pc kNoPc = 0xffffffffu;

/**
 * Physical register file layout after allocation (Section 3: "Our
 * compiler divides the register set into two disjoint parts", temps
 * for short-term expressions vs. home locations for variables).
 *
 * Physical indices: [0, numTemp) are expression temporaries,
 * [numTemp, numTemp + numHome) are variable home registers, and
 * the last two are the frame pointer and the global pointer.
 */
struct RegFileLayout
{
    std::uint32_t numTemp = 16;  ///< expression temporaries
    std::uint32_t numHome = 26;  ///< variable home registers

    std::uint32_t total() const { return numTemp + numHome + 2; }
    Reg tempReg(std::uint32_t i) const { return i; }
    Reg homeReg(std::uint32_t i) const { return numTemp + i; }
    /** Frame pointer: base of the current activation record. */
    Reg fp() const { return numTemp + numHome; }
    /** Global pointer: base of the global data segment (always 0). */
    Reg gp() const { return numTemp + numHome + 1; }
    bool isTemp(Reg r) const { return r < numTemp; }
    bool isHome(Reg r) const
    {
        return r >= numTemp && r < numTemp + numHome;
    }
};

} // namespace ilp

#endif // SUPERSYM_ISA_ISA_HH
