/**
 * Figure 4-1 "Supersymmetry": harmonic-mean speedup over the eight
 * benchmarks for ideal superscalar and superpipelined machines of
 * degree 1..8.  Expected shape: both curves rise and flatten near the
 * suite's available parallelism (~2); the superscalar curve leads by
 * under ~10%, and the gap narrows with increasing degree (§4.1).
 */

#include "bench/common.hh"

using namespace ilp;

int
main()
{
    bench::banner("Figure 4-1",
                  "speedup vs degree, superscalar vs superpipelined");

    // harmonicSpeedup fans the eight benchmarks out across the
    // study's own worker pool, so the degree loop stays serial here
    // (nesting pools would oversubscribe).
    Study study;
    Table t;
    t.setHeader({"degree", "superscalar", "superpipelined",
                 "gap (SS/SP)"});
    bench::journalHeader("Figure 4-1",
                         static_cast<std::size_t>(kMaxDegree));
    for (int degree = 1; degree <= kMaxDegree; ++degree) {
        double ss = study.harmonicSpeedup(idealSuperscalar(degree));
        double sp = study.harmonicSpeedup(superpipelined(degree));
        Json cell = Json::object();
        cell.set("superscalar", Json(ss));
        cell.set("superpipelined", Json(sp));
        bench::journalCell("degree:" + std::to_string(degree), cell);
        t.row()
            .cell(static_cast<long long>(degree))
            .cell(ss, 3)
            .cell(sp, 3)
            .cell(ss / sp, 3);
    }
    t.print();
    std::printf("\npaper: both curves saturate near ~2; the "
                "superpipelined machine trails by <10%%\nand "
                "converges towards the superscalar one as the degree "
                "grows.\n");

    // With SSIM_BENCH_STATS set, record one full snapshot per
    // benchmark on the headline ss4 machine so perf PRs can diff
    // stall attribution across revisions.  The runs go through the
    // study, so the degree sweep above already compiled and executed
    // every (benchmark, ss4) cell — these are pure replays.  Appends
    // follow serially in suite order so the trajectory is
    // deterministic under any job count.
    if (bench::statsTrajectoryPath()) {
        const auto &suite = allWorkloads();
        std::vector<RunOutcome> outs =
            bench::sweeper().map<RunOutcome>(
                suite.size(), [&](std::size_t i) {
                    return study.timedRun(
                        suite[i], idealSuperscalar(4),
                        defaultCompileOptions(suite[i]),
                        bench::benchTelemetry());
                });
        for (std::size_t i = 0; i < suite.size(); ++i)
            bench::appendStatsTrajectory(
                "Figure 4-1", suite[i].name + "@ss4", outs[i].stats);
    }
    return 0;
}
