/**
 * @file
 * Shared scaffolding for the per-table/per-figure bench binaries.
 * Each binary regenerates one table or figure of the paper as an
 * aligned text table (absolute values are ours; the *shape* is what
 * reproduces — see EXPERIMENTS.md).
 */

#ifndef SUPERSYM_BENCH_COMMON_HH
#define SUPERSYM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace ilp::bench {

/** Print the standard header naming the paper artifact. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("==== %s — %s ====\n", artifact.c_str(),
                caption.c_str());
    std::printf("(Jouppi & Wall, ASPLOS 1989; reproduced by supersym."
                " Shapes, not absolute values, are the target.)\n\n");
}

// ------------------------------------------- stats trajectory (opt-in)
//
// When SSIM_BENCH_STATS names a file, bench binaries append stats
// snapshots of their runs to it as a JSON array of
// {artifact, label, stats} entries (the BENCH_*.json trajectory).
// Future perf PRs diff these entries to prove where cycles went.
// Unset, everything below is a no-op and runs collect nothing.

/** Path of the trajectory file, or nullptr when disabled. */
inline const char *
statsTrajectoryPath()
{
    const char *path = std::getenv("SSIM_BENCH_STATS");
    return (path && *path) ? path : nullptr;
}

/** Run telemetry for bench runs: stats only when the trajectory is
 *  enabled, so the default bench cost is unchanged. */
inline RunTelemetryOptions
benchTelemetry()
{
    RunTelemetryOptions t;
    t.collectStats = statsTrajectoryPath() != nullptr;
    return t;
}

/** Append one snapshot to the trajectory (no-op when disabled). */
inline void
appendStatsTrajectory(const std::string &artifact,
                      const std::string &label,
                      const stats::StatsSnapshot &snapshot)
{
    const char *path = statsTrajectoryPath();
    if (!path)
        return;

    Json doc = Json::array();
    std::ifstream in(path);
    if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        if (!ss.str().empty())
            doc = Json::parse(ss.str());
    }
    if (!doc.isArray())
        doc = Json::array();

    Json entry = Json::object();
    entry.set("artifact", Json(artifact));
    entry.set("label", Json(label));
    entry.set("stats", snapshot.root);
    doc.push(std::move(entry));

    std::ofstream out(path);
    if (out)
        out << doc.dump(2) << "\n";
}

} // namespace ilp::bench

#endif // SUPERSYM_BENCH_COMMON_HH
