/**
 * @file
 * Shared scaffolding for the per-table/per-figure bench binaries.
 * Each binary regenerates one table or figure of the paper as an
 * aligned text table (absolute values are ours; the *shape* is what
 * reproduces — see EXPERIMENTS.md).
 */

#ifndef SUPERSYM_BENCH_COMMON_HH
#define SUPERSYM_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "support/table.hh"

namespace ilp::bench {

/** Print the standard header naming the paper artifact. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("==== %s — %s ====\n", artifact.c_str(),
                caption.c_str());
    std::printf("(Jouppi & Wall, ASPLOS 1989; reproduced by supersym."
                " Shapes, not absolute values, are the target.)\n\n");
}

} // namespace ilp::bench

#endif // SUPERSYM_BENCH_COMMON_HH
