/**
 * @file
 * Shared scaffolding for the per-table/per-figure bench binaries.
 * Each binary regenerates one table or figure of the paper as an
 * aligned text table (absolute values are ours; the *shape* is what
 * reproduces — see EXPERIMENTS.md).
 *
 * Sweep cells fan out across bench::sweeper() (job count from
 * SSIM_JOBS, default all cores); results are merged in cell order
 * after the barrier, so parallel output is byte-identical to a
 * serial run (see docs/parallel-sweeps.md).
 */

#ifndef SUPERSYM_BENCH_COMMON_HH
#define SUPERSYM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/machine/models.hh"
#include "core/study/experiment.hh"
#include "core/study/journal.hh"
#include "core/study/sweep.hh"
#include "support/bench.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace ilp::bench {

/** Print the standard header naming the paper artifact. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("==== %s — %s ====\n", artifact.c_str(),
                caption.c_str());
    std::printf("(Jouppi & Wall, ASPLOS 1989; reproduced by supersym."
                " Shapes, not absolute values, are the target.)\n\n");
}

/** The bench-wide worker pool (SSIM_JOBS, default all cores). */
inline const SweepRunner &
sweeper()
{
    static const SweepRunner runner;
    return runner;
}

// ------------------------------------------- stats trajectory (opt-in)
//
// When SSIM_BENCH_STATS names a file, bench binaries append bench-v2
// datapoints to it (support/bench.hh): stats snapshots from the
// figure binaries, sampled rates from the throughput bench.  Future
// perf PRs diff these entries to prove where cycles went, and the
// regression sentinel (`ssim bench-check`) judges the newest point of
// every label against its rolling baseline.  Unset, everything below
// is a no-op and runs collect nothing.
//
// Appends are safe under concurrency (process-local mutex + advisory
// flock() + temp-file/atomic rename) and a corrupt trajectory is
// preserved under `.bak` rather than aborting the bench — all
// inherited from bench::appendPoint.

/** Path of the trajectory file, or nullptr when disabled. */
inline const char *
statsTrajectoryPath()
{
    const char *path = std::getenv("SSIM_BENCH_STATS");
    return (path && *path) ? path : nullptr;
}

/** Run telemetry for bench runs: stats only when the trajectory is
 *  enabled, so the default bench cost is unchanged. */
inline RunTelemetryOptions
benchTelemetry()
{
    RunTelemetryOptions t;
    t.collectStats = statsTrajectoryPath() != nullptr;
    return t;
}

/** Append one stats snapshot to the trajectory as a bench-v2
 *  datapoint (no-op when disabled; append failures warn, never
 *  abort the bench). */
inline void
appendStatsTrajectory(const std::string &artifact,
                      const std::string &label,
                      const stats::StatsSnapshot &snapshot)
{
    const char *path = statsTrajectoryPath();
    if (!path)
        return;
    std::string error;
    if (!appendPoint(path, makeStatsPoint(artifact, label, snapshot.root),
                     &error))
        std::fprintf(stderr, "warning: stats trajectory %s: %s\n",
                     path, error.c_str());
}

// --------------------------------------------- sweep journal (opt-in)
//
// When SSIM_SWEEP_JOURNAL names a file, bench binaries checkpoint
// their completed sweep cells to it through the same crash-safe JSONL
// writer `ssim ilp/suite --journal` use (core/study/journal.hh):
// header + one CRC-framed line per cell, O_APPEND single-write lines,
// batched fsync.  A bench killed mid-sweep leaves every finished cell
// on disk for post-mortem inspection (`docs/robustness.md`).  Unset,
// everything below is a no-op.

/** Path of the bench sweep journal, or nullptr when disabled. */
inline const char *
sweepJournalPath()
{
    const char *path = std::getenv("SSIM_SWEEP_JOURNAL");
    return (path && *path) ? path : nullptr;
}

/** The process-wide bench journal writer (nullptr when disabled or
 *  unopenable — the bench itself must never fail on journal I/O). */
inline journal::Writer *
sweepJournal()
{
    static journal::Writer writer;
    static bool usable = [] {
        const char *path = sweepJournalPath();
        if (!path)
            return false;
        std::string error;
        if (!writer.open(path, &error)) {
            std::fprintf(stderr,
                         "warning: cannot open sweep journal %s: "
                         "%s\n",
                         path, error.c_str());
            return false;
        }
        return true;
    }();
    return usable ? &writer : nullptr;
}

/** Write the bench's identity header (no-op when disabled). */
inline void
journalHeader(const std::string &artifact, std::size_t cells)
{
    journal::Writer *w = sweepJournal();
    if (!w)
        return;
    Json identity = Json::object();
    identity.set("command", Json(std::string("bench")));
    identity.set("artifact", Json(artifact));
    identity.set("cells", Json(std::uint64_t(cells)));
    w->writeHeader(identity);
}

/** Checkpoint one completed bench cell (no-op when disabled). */
inline void
journalCell(const std::string &key, const Json &value)
{
    if (journal::Writer *w = sweepJournal())
        w->writeCell(key, value);
}

} // namespace ilp::bench

#endif // SUPERSYM_BENCH_COMMON_HH
