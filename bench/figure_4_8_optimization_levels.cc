/**
 * Figure 4-8: the effect of cumulative optimization levels on
 * available parallelism, per benchmark: none -> +pipeline scheduling
 * -> +intra-block optimization -> +global optimization -> +global
 * register allocation, with 16 expression temps and 26 home
 * registers.  Expected shape: scheduling raises parallelism 10-60%;
 * later classical levels barely move it (sometimes down); register
 * allocation nudges numeric benchmarks up and others slightly down.
 */

#include "bench/common.hh"

using namespace ilp;

int
main()
{
    bench::banner("Figure 4-8", "parallelism vs optimization level");

    Study study;
    const auto &suite = allWorkloads();
    constexpr int kLevels = 5;

    // 8 benchmarks x 5 cumulative levels = 40 independent cells.
    std::vector<double> cells = bench::sweeper().map<double>(
        suite.size() * kLevels, [&](std::size_t i) {
            const Workload &w = suite[i / kLevels];
            CompileOptions o = defaultCompileOptions(w);
            o.level = static_cast<OptLevel>(i % kLevels);
            o.layout.numTemp = 16;
            o.layout.numHome = 26;
            return study.availableParallelism(w, o, 8);
        });

    Table t;
    t.setHeader({"benchmark", "none", "+sched", "+local", "+global",
                 "+regalloc"});
    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        auto &row = t.row();
        row.cell(suite[wi].name);
        for (int level = 0; level < kLevels; ++level)
            row.cell(cells[wi * kLevels +
                           static_cast<std::size_t>(level)],
                     2);
    }
    t.print();
    std::printf(
        "\npaper: \"doing pipeline scheduling can increase the "
        "available parallelism by\n10%% to 60%%... for most programs, "
        "further optimization has little effect on\nthe "
        "instruction-level parallelism (although of course it has a "
        "large effect\non the performance)\"; global register "
        "allocation slightly lowers most\nbenchmarks but raises the "
        "numeric ones (§4.4).\n");
    return 0;
}
