/**
 * Figure 4-8: the effect of cumulative optimization levels on
 * available parallelism, per benchmark: none -> +pipeline scheduling
 * -> +intra-block optimization -> +global optimization -> +global
 * register allocation, with 16 expression temps and 26 home
 * registers.  Expected shape: scheduling raises parallelism 10-60%;
 * later classical levels barely move it (sometimes down); register
 * allocation nudges numeric benchmarks up and others slightly down.
 */

#include "bench/common.hh"

using namespace ilp;

int
main()
{
    bench::banner("Figure 4-8", "parallelism vs optimization level");

    Study study;
    Table t;
    t.setHeader({"benchmark", "none", "+sched", "+local", "+global",
                 "+regalloc"});
    for (const auto &w : allWorkloads()) {
        auto &row = t.row();
        row.cell(w.name);
        for (int level = 0; level <= 4; ++level) {
            CompileOptions o = defaultCompileOptions(w);
            o.level = static_cast<OptLevel>(level);
            o.layout.numTemp = 16;
            o.layout.numHome = 26;
            row.cell(study.availableParallelism(w, o, 8), 2);
        }
    }
    t.print();
    std::printf(
        "\npaper: \"doing pipeline scheduling can increase the "
        "available parallelism by\n10%% to 60%%... for most programs, "
        "further optimization has little effect on\nthe "
        "instruction-level parallelism (although of course it has a "
        "large effect\non the performance)\"; global register "
        "allocation slightly lowers most\nbenchmarks but raises the "
        "numeric ones (§4.4).\n");
    return 0;
}
