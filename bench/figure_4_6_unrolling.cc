/**
 * Figure 4-6: parallelism versus loop unrolling for linpack and
 * livermore, naive and careful, factors 1..10, with the paper's
 * forty temporary registers.  Expected shape: naive unrolling is
 * "mostly flat after unrolling by four"; careful unrolling keeps
 * improving but stays well below the unroll factor, limited by
 * non-parallel code and the finite temp file (§4.4).
 */

#include "bench/common.hh"

using namespace ilp;

namespace {

double
parallelism(Study &study, const Workload &w, int factor, bool careful)
{
    CompileOptions o = defaultCompileOptions(w);
    o.unroll.factor = factor;
    o.unroll.careful = careful;
    // Careful unrolling pairs with the hand-analysis alias level the
    // paper used for exactly these two benchmarks.
    o.alias = careful ? AliasLevel::Heroic : AliasLevel::Arrays;
    o.layout.numTemp = 40; // "only forty temporary registers"
    return study.availableParallelism(w, o, 8);
}

} // namespace

int
main()
{
    bench::banner("Figure 4-6", "parallelism vs loop unrolling");

    Study study;
    Table t;
    t.setHeader({"iterations unrolled", "linpack naive",
                 "linpack careful", "livermore naive",
                 "livermore careful"});
    const Workload &linpack = workloadByName("linpack");
    const Workload &livermore = workloadByName("livermore");
    for (int u : {1, 2, 4, 6, 8, 10}) {
        t.row()
            .cell(static_cast<long long>(u))
            .cell(parallelism(study, linpack, u, false), 2)
            .cell(parallelism(study, linpack, u, true), 2)
            .cell(parallelism(study, livermore, u, false), 2)
            .cell(parallelism(study, livermore, u, true), 2);
    }
    t.print();
    std::printf(
        "\npaper: naive improvement \"is mostly flat after unrolling "
        "by four ...\nbecause of false conflicts between the "
        "different copies\"; careful\nunrolling \"gives us a more "
        "dramatic improvement, but the parallelism\navailable is "
        "still limited even for tenfold unrolling\" (§4.4).\n");
    return 0;
}
