/**
 * Figure 4-6: parallelism versus loop unrolling for linpack and
 * livermore, naive and careful, factors 1..10, with the paper's
 * forty temporary registers.  Expected shape: naive unrolling is
 * "mostly flat after unrolling by four"; careful unrolling keeps
 * improving but stays well below the unroll factor, limited by
 * non-parallel code and the finite temp file (§4.4).
 */

#include "bench/common.hh"

using namespace ilp;

namespace {

double
parallelism(Study &study, const Workload &w, int factor, bool careful)
{
    CompileOptions o = defaultCompileOptions(w);
    o.unroll.factor = factor;
    o.unroll.careful = careful;
    // Careful unrolling pairs with the hand-analysis alias level the
    // paper used for exactly these two benchmarks.
    o.alias = careful ? AliasLevel::Heroic : AliasLevel::Arrays;
    o.layout.numTemp = 40; // "only forty temporary registers"
    return study.availableParallelism(w, o, 8);
}

} // namespace

int
main()
{
    bench::banner("Figure 4-6", "parallelism vs loop unrolling");

    Study study;
    const Workload &linpack = workloadByName("linpack");
    const Workload &livermore = workloadByName("livermore");
    const std::vector<int> factors{1, 2, 4, 6, 8, 10};

    // 6 factors x 4 (benchmark, mode) columns = 24 independent cells.
    std::vector<double> cells = bench::sweeper().map<double>(
        factors.size() * 4, [&](std::size_t i) {
            const int u = factors[i / 4];
            const Workload &w = (i % 4 < 2) ? linpack : livermore;
            const bool careful = (i % 2) == 1;
            return parallelism(study, w, u, careful);
        });

    Table t;
    t.setHeader({"iterations unrolled", "linpack naive",
                 "linpack careful", "livermore naive",
                 "livermore careful"});
    for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        t.row()
            .cell(static_cast<long long>(factors[fi]))
            .cell(cells[fi * 4 + 0], 2)
            .cell(cells[fi * 4 + 1], 2)
            .cell(cells[fi * 4 + 2], 2)
            .cell(cells[fi * 4 + 3], 2);
    }
    t.print();
    std::printf(
        "\npaper: naive improvement \"is mostly flat after unrolling "
        "by four ...\nbecause of false conflicts between the "
        "different copies\"; careful\nunrolling \"gives us a more "
        "dramatic improvement, but the parallelism\navailable is "
        "still limited even for tenfold unrolling\" (§4.4).\n");
    return 0;
}
