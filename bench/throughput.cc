/**
 * Google-benchmark microbenchmarks of the toolchain itself: compile
 * throughput, functional-simulation rate, and timing-simulation rate.
 * Not a paper artifact — operational health of the reproduction.
 */

#include <benchmark/benchmark.h>

#include "core/study/driver.hh"
#include "core/machine/models.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"

using namespace ilp;

namespace {

const Workload &
wl()
{
    return workloadByName("yacc");
}

void
BM_CompileWorkload(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    for (auto _ : state) {
        Module m = compileWorkload(w.source, idealSuperscalar(4), o);
        benchmark::DoNotOptimize(m.functions().size());
    }
}
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulation(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    Module m = compileWorkload(w.source, baseMachine(), o);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Interpreter interp(m);
        RunResult r = interp.run();
        instrs += r.instructions;
        benchmark::DoNotOptimize(r.returnValue);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    MachineConfig mc = idealSuperscalar(4);
    Module m = compileWorkload(w.source, mc, o);
    Interpreter trace_run(m);
    TraceBuffer trace;
    trace_run.run("main", &trace);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        IssueEngine engine(mc);
        trace.replay(engine);
        instrs += engine.instructions();
        benchmark::DoNotOptimize(engine.baseCycles());
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void
BM_ListScheduler(benchmark::State &state)
{
    const Workload &w = workloadByName("linpack");
    CompileOptions o = defaultCompileOptions(w);
    o.unroll.factor = 10; // big blocks stress the scheduler
    for (auto _ : state) {
        Module m = compileWorkload(w.source, idealSuperscalar(8), o);
        benchmark::DoNotOptimize(m.functions().size());
    }
}
BENCHMARK(BM_ListScheduler)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
