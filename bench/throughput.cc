/**
 * Google-benchmark microbenchmarks of the toolchain itself: compile
 * throughput, functional-simulation rate, and timing-simulation rate.
 * Not a paper artifact — operational health of the reproduction.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/common.hh"
#include "core/study/driver.hh"
#include "core/study/experiment.hh"
#include "core/study/sweep.hh"
#include "core/machine/models.hh"
#include "sim/exec.hh"
#include "sim/interp.hh"
#include "sim/issue.hh"
#include "support/trace.hh"

using namespace ilp;

namespace {

const Workload &
wl()
{
    return workloadByName("yacc");
}

using BenchClock = std::chrono::steady_clock;

double
secondsSince(BenchClock::time_point t0)
{
    return std::chrono::duration<double>(BenchClock::now() - t0)
        .count();
}

/**
 * Record one per-repetition rate sample for the SSIM_BENCH_STATS
 * trajectory (BENCH_throughput.json).  google-benchmark invokes each
 * BM function several times — calibration runs at small iteration
 * counts, then the settled repetitions — so every invocation records
 * one sample here and main() folds each label's samples into a single
 * bench-v2 datapoint (robust summary + provenance) at exit;
 * bench::flushSamples drops the calibration runs as warmup by their
 * iteration counts.  No-op when the trajectory is disabled, so the
 * default bench cost is unchanged.
 */
void
recordRateSample(const std::string &label, const char *unit,
                 double value, const benchmark::State &state)
{
    if (!bench::statsTrajectoryPath())
        return;
    bench::recordSample(label, unit, "higher", value,
                        static_cast<std::uint64_t>(state.iterations()));
}

void
BM_CompileWorkload(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    for (auto _ : state) {
        Module m = compileWorkload(w.source, idealSuperscalar(4), o);
        benchmark::DoNotOptimize(m.functions().size());
    }
}
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulation(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    Module m = compileWorkload(w.source, baseMachine(), o);
    std::uint64_t instrs = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        Interpreter interp(m);
        RunResult r = interp.run();
        instrs += r.instructions;
        benchmark::DoNotOptimize(r.returnValue);
    }
    const double wall = secondsSince(t0);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    recordRateSample(
        "BM_FunctionalSimulation", "instr_per_s",
        wall > 0.0 ? static_cast<double>(instrs) / wall : 0.0, state);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_BytecodeRun(benchmark::State &state)
{
    // BM_FunctionalSimulation on the bytecode backend: same workload,
    // same artifacts, threaded dispatch over the lowered image.  The
    // image is built once (executors are reusable across runs), so
    // the loop measures pure execution rate; the gap to
    // BM_FunctionalSimulation is the whole bytecode win.
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    Module m = compileWorkload(w.source, baseMachine(), o);
    std::unique_ptr<Executor> exec =
        makeExecutor(m, ExecBackend::Bytecode);
    std::uint64_t instrs = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        RunResult r = exec->run();
        instrs += r.instructions;
        benchmark::DoNotOptimize(r.returnValue);
    }
    const double wall = secondsSince(t0);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    recordRateSample(
        "BM_BytecodeRun", "instr_per_s",
        wall > 0.0 ? static_cast<double>(instrs) / wall : 0.0, state);
}
BENCHMARK(BM_BytecodeRun)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    MachineConfig mc = idealSuperscalar(4);
    Module m = compileWorkload(w.source, mc, o);
    Interpreter trace_run(m);
    TraceBuffer trace;
    trace_run.run("main", &trace);
    std::uint64_t instrs = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        IssueEngine engine(mc);
        trace.replay(engine);
        instrs += engine.instructions();
        benchmark::DoNotOptimize(engine.baseCycles());
    }
    const double wall = secondsSince(t0);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    recordRateSample(
        "BM_TimingSimulation", "instr_per_s",
        wall > 0.0 ? static_cast<double>(instrs) / wall : 0.0, state);
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

void
BM_LiveRun(benchmark::State &state)
{
    // The coupled path: every iteration re-executes the workload
    // functionally while timing it (runOnMachine).  Compare against
    // BM_TraceReplay for the execute-once / time-many win.
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    MachineConfig mc = idealSuperscalar(4);
    Module m = compileWorkload(w.source, mc, o);
    std::uint64_t instrs = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        RunOutcome out = runOnMachine(m, mc);
        instrs += out.instructions;
        benchmark::DoNotOptimize(out.cycles);
    }
    const double wall = secondsSince(t0);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    recordRateSample(
        "BM_LiveRun", "instr_per_s",
        wall > 0.0 ? static_cast<double>(instrs) / wall : 0.0, state);
}
BENCHMARK(BM_LiveRun)->Unit(benchmark::kMillisecond);

void
BM_TraceReplay(benchmark::State &state)
{
    // The split path: one functional execution up front
    // (executeWorkload), then each iteration is pure timing over the
    // packed trace (timeTrace) — the steady-state cost of a sweep
    // cell once the TraceCache is warm.
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    MachineConfig mc = idealSuperscalar(4);
    Module m = compileWorkload(w.source, mc, o);
    TraceArtifact artifact = executeWorkload(m);
    std::uint64_t instrs = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        RunOutcome out = timeTrace(artifact, mc);
        instrs += out.instructions;
        benchmark::DoNotOptimize(out.cycles);
    }
    const double wall = secondsSince(t0);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
    state.counters["trace_mb"] =
        static_cast<double>(artifact.byteSize()) / (1024.0 * 1024.0);
    recordRateSample(
        "BM_TraceReplay", "instr_per_s",
        wall > 0.0 ? static_cast<double>(instrs) / wall : 0.0, state);
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

void
BM_ProfiledReplay(benchmark::State &state)
{
    // BM_TraceReplay with the cycle profiler on: the per-pc counter
    // updates are the only delta, so the gap to BM_TraceReplay is the
    // whole observability cost (profiling off must stay at
    // BM_TraceReplay speed — it is a single predictable branch).
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    MachineConfig mc = idealSuperscalar(4);
    Module m = compileWorkload(w.source, mc, o);
    TraceArtifact artifact = executeWorkload(m);
    RunTelemetryOptions t;
    t.collectProfile = true;
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        RunOutcome out = timeTrace(artifact, mc, t);
        instrs += out.instructions;
        benchmark::DoNotOptimize(out.pcCounters.data());
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfiledReplay)->Unit(benchmark::kMillisecond);

void
BM_CompileCacheHit(benchmark::State &state)
{
    // Steady-state cost of a shared compilation lookup (one compile,
    // then all hits).
    const Workload &w = wl();
    CompileOptions o = defaultCompileOptions(w);
    CompileCache cache;
    cache.compile(w, idealSuperscalar(4), o);
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        std::shared_ptr<const Module> m =
            cache.compile(w, idealSuperscalar(4), o);
        benchmark::DoNotOptimize(m.get());
    }
    const double wall = secondsSince(t0);
    state.counters["hit_rate"] =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
    // Hits per second, not raw loop wall time: a rate stays
    // comparable across runs whose iteration counts differ.
    recordRateSample(
        "BM_CompileCacheHit", "hits_per_s",
        wall > 0.0 ? static_cast<double>(state.iterations()) / wall
                   : 0.0,
        state);
}
BENCHMARK(BM_CompileCacheHit);

void
BM_ParallelSweep(benchmark::State &state)
{
    // A figure-4-5-shaped sweep slice (2 workloads x degrees 1..4) at
    // Arg jobs (0 = all cores).  A fresh Study per iteration keeps
    // the compile cache cold, so this measures the full
    // compile+simulate pipeline under the worker pool.
    const std::vector<const Workload *> wls{
        &workloadByName("yacc"), &workloadByName("whet")};
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        Study study(static_cast<int>(state.range(0)));
        std::vector<double> cells =
            study.runner().map<double>(wls.size() * 4,
                                       [&](std::size_t i) {
                return study.speedup(
                    *wls[i / 4],
                    idealSuperscalar(static_cast<int>(i % 4) + 1));
            });
        benchmark::DoNotOptimize(cells.data());
    }
    const double wall = secondsSince(t0);
    state.counters["jobs"] = static_cast<double>(
        SweepRunner(static_cast<int>(state.range(0))).jobs());
    recordRateSample(
        "BM_ParallelSweep/" + std::to_string(state.range(0)),
        "cells_per_s",
        wall > 0.0
            ? static_cast<double>(state.iterations()) * 8.0 / wall
            : 0.0,
        state);
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void
BM_ParallelSweepTraced(benchmark::State &state)
{
    // BM_ParallelSweep with a flight-recorder session armed around
    // every iteration (the recording is drained and discarded): the
    // tracing-on overhead that scripts/check.sh holds under its 2%
    // soft budget.
    const std::vector<const Workload *> wls{
        &workloadByName("yacc"), &workloadByName("whet")};
    std::size_t spans = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        trace::Recorder::instance().start();
        Study study(static_cast<int>(state.range(0)));
        std::vector<double> cells =
            study.runner().map<double>(wls.size() * 4,
                                       [&](std::size_t i) {
                return study.speedup(
                    *wls[i / 4],
                    idealSuperscalar(static_cast<int>(i % 4) + 1));
            });
        benchmark::DoNotOptimize(cells.data());
        trace::Recording rec = trace::Recorder::instance().stop();
        spans += rec.spans.size();
        benchmark::DoNotOptimize(rec.spans.data());
    }
    const double wall = secondsSince(t0);
    state.counters["jobs"] = static_cast<double>(
        SweepRunner(static_cast<int>(state.range(0))).jobs());
    state.counters["spans"] = static_cast<double>(
        state.iterations() > 0
            ? spans / static_cast<std::size_t>(state.iterations())
            : 0);
    recordRateSample(
        "BM_ParallelSweepTraced/" + std::to_string(state.range(0)),
        "cells_per_s",
        wall > 0.0
            ? static_cast<double>(state.iterations()) * 8.0 / wall
            : 0.0,
        state);
}
BENCHMARK(BM_ParallelSweepTraced)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void
BM_WhatIfQuery(benchmark::State &state)
{
    // One analytic analyze() over a prebuilt dependence graph — the
    // per-cell cost of a pruned sweep, to be read against
    // BM_TimingReplay (the exact replay it substitutes for).
    const Workload &w = wl();
    const CompileOptions o = defaultCompileOptions(w);
    const MachineConfig machine = idealSuperscalar(4);
    Study study(1);
    auto graph = study.dependenceGraph(w, machine, o);
    std::uint64_t nodes = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        AnalyticResult a = graph->analyze(machine);
        nodes += a.instructions;
        benchmark::DoNotOptimize(a.minorCycles);
    }
    const double wall = secondsSince(t0);
    recordRateSample(
        "BM_WhatIfQuery", "instr_per_s",
        wall > 0.0 ? static_cast<double>(nodes) / wall : 0.0, state);
}
BENCHMARK(BM_WhatIfQuery)->Unit(benchmark::kMillisecond);

void
BM_PrunedSweep(benchmark::State &state)
{
    // The figure-4-1 degree sweep through prune-then-confirm: same
    // output as the exact sweep inside BM_ParallelSweep's cells, but
    // only the extreme cells replay.  Fresh Study per iteration so
    // graph/trace caches start cold, matching BM_ParallelSweep.
    const Workload &w = workloadByName("whet");
    const CompileOptions o = defaultCompileOptions(w);
    std::uint64_t replays = 0;
    const auto t0 = BenchClock::now();
    for (auto _ : state) {
        Study study(static_cast<int>(state.range(0)));
        whatif::PruneOutcome po = whatif::prunedIlpSweep(study, w, o);
        replays += po.exactReplays;
        benchmark::DoNotOptimize(po.cells.data());
    }
    const double wall = secondsSince(t0);
    state.counters["replays"] = static_cast<double>(
        state.iterations() > 0
            ? replays / static_cast<std::uint64_t>(state.iterations())
            : 0);
    recordRateSample(
        "BM_PrunedSweep/" + std::to_string(state.range(0)),
        "cells_per_s",
        wall > 0.0
            ? static_cast<double>(state.iterations()) * 8.0 / wall
            : 0.0,
        state);
}
BENCHMARK(BM_PrunedSweep)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void
BM_ListScheduler(benchmark::State &state)
{
    const Workload &w = workloadByName("linpack");
    CompileOptions o = defaultCompileOptions(w);
    o.unroll.factor = 10; // big blocks stress the scheduler
    for (auto _ : state) {
        Module m = compileWorkload(w.source, idealSuperscalar(8), o);
        benchmark::DoNotOptimize(m.functions().size());
    }
}
BENCHMARK(BM_ListScheduler)->Unit(benchmark::kMillisecond);

} // namespace

// BENCHMARK_MAIN() expanded so the recorded samples can be flushed
// after every benchmark (and all its repetitions) has run: one
// bench-v2 datapoint per label per invocation of this binary.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (const char *path = bench::statsTrajectoryPath())
        bench::flushSamples("throughput", path);
    return 0;
}
