/**
 * Figure 4-4: parallel instruction issue on the CRAY-1 with unit
 * latencies (the mistaken assumption of [Acosta et al.]) versus its
 * real functional-unit latencies.  Expected shape: large gains from
 * multiple issue under unit latencies, almost none under real
 * latencies, because the CRAY-1's average degree of superpipelining
 * (4.4) already covers the available parallelism.
 */

#include "bench/common.hh"

using namespace ilp;

namespace {

double
harmonicAt(Study &study, bool unit_latencies, int width)
{
    MachineConfig m = cray1(unit_latencies);
    m.issueWidth = width;
    m.name += "+w" + std::to_string(width);
    return study.harmonicSpeedup(m);
}

} // namespace

int
main()
{
    bench::banner("Figure 4-4",
                  "CRAY-1 issue multiplicity, unit vs real latencies");

    Study study;
    // Normalize each curve to its own multiplicity-1 point, like the
    // paper's "relative performance" axis.
    double unit1 = harmonicAt(study, true, 1);
    double real1 = harmonicAt(study, false, 1);

    Table t;
    t.setHeader({"issue multiplicity", "all latencies = 1",
                 "actual CRAY-1 latencies"});
    for (int width = 1; width <= 8; ++width) {
        t.row()
            .cell(static_cast<long long>(width))
            .cell(harmonicAt(study, true, width) / unit1, 3)
            .cell(harmonicAt(study, false, width) / real1, 3);
    }
    t.print();
    std::printf("\npaper: up to ~2.7x apparent speedup with unit "
                "latencies, and almost no\nbenefit with the actual "
                "latencies taken into account (§4.2).\n");
    return 0;
}
